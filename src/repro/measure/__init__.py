"""Measurement instruments.

* :class:`PowerAnalyzer` — the Keysight N6705B/N6781A substitute: samples
  the platform-power trace at a fixed interval (50 us in the paper's
  setup) and reports per-window statistics.
* :mod:`repro.measure.residency` — the performance-counter-monitor
  substitute: state residencies and per-state energy from the trace.
"""

from repro.measure.analyzer import AnalyzerReading, PowerAnalyzer
from repro.measure.residency import ResidencyReport, energy_by_state, residency_report

__all__ = [
    "AnalyzerReading",
    "PowerAnalyzer",
    "ResidencyReport",
    "energy_by_state",
    "residency_report",
]
