"""The sampling power analyzer (Keysight N6705B + N6781A substitute).

The paper measures "the power consumption of the four power states ...
Each measurement uses four analog channels with a 50-microsecond sampling
interval" (Sec. 7).  This instrument samples the piecewise-constant
platform-power trace on that grid, applies the instrument's gain accuracy
(99.975 % for the N6781A), and reports window statistics.

:meth:`PowerAnalyzer.measure` never walks the grid point by point: the
trace is piecewise constant, so for every power step the number of grid
points it covers follows arithmetically, making the reading O(#steps)
instead of O(window / 50 us).  The per-step contributions are summed with
exact rational arithmetic and rounded once, so the reported average is
the correctly rounded mean of the grid samples — identical to summing
the raw :meth:`PowerAnalyzer.sample_window` list with :func:`math.fsum`,
and independent of summation order.

The exact integral is available from the
:class:`~repro.power.meter.EnergyMeter`; the analyzer exists so tests can
show the sampled measurement converges to the exact one — the same
validation argument the paper makes for its instrument choice.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import List, Tuple

from repro.errors import MeasurementError
from repro.obs.profile import host_phase
from repro.obs.tracer import MEASURE_TRACK, active as _active_tracer
from repro.sim.trace import TraceRecorder
from repro.system.states import POWER_CHANNEL
from repro.units import PICOSECONDS_PER_SECOND, us_to_ps


def _ceil_div(numerator: int, denominator: int) -> int:
    """Ceiling division for non-negative numerators."""
    return -(-numerator // denominator)


@dataclass(frozen=True)
class AnalyzerReading:
    """Statistics of one measurement window."""

    start_ps: int
    end_ps: int
    samples: int
    average_watts: float
    min_watts: float
    max_watts: float

    @property
    def window_s(self) -> float:
        return (self.end_ps - self.start_ps) / PICOSECONDS_PER_SECOND


class PowerAnalyzer:
    """Fixed-interval sampler over the recorded platform-power trace."""

    #: N6781A gain accuracy (Sec. 7: "around 99.975%").
    GAIN_ACCURACY = 0.99975

    def __init__(
        self,
        trace: TraceRecorder,
        sampling_interval_ps: int = us_to_ps(50),
        apply_gain_error: bool = False,
        channel: str = POWER_CHANNEL,
    ) -> None:
        """``channel`` selects the analog input: the default measures the
        battery-side platform total; ``rail:<name>`` channels measure
        individual rails, like the paper's four-channel setup measuring
        "DRAM, storage ..., chipset, crystal oscillators, and the
        processor" separately (Sec. 7)."""
        if sampling_interval_ps <= 0:
            raise MeasurementError("sampling interval must be positive")
        self.trace = trace
        self.sampling_interval_ps = sampling_interval_ps
        self.apply_gain_error = apply_gain_error
        self.channel = channel

    def sample_window(self, start_ps: int, end_ps: int) -> List[float]:
        """Instantaneous power samples on the instrument's grid.

        This is the raw-sample reference path: it visits every grid point
        (O(window / interval)) and exists for tests and validation against
        the closed-form :meth:`measure`.  Grid points that precede the
        first recorded sample read 0.0 W — the instrument shows nothing
        before its input is driven — which can only happen when the
        measurement window starts before the first record of the channel.
        """
        if end_ps <= start_ps:
            raise MeasurementError("empty measurement window")
        steps = list(self.trace.intervals(self.channel, end_ps))
        if not steps:
            raise MeasurementError("no power trace recorded")
        gain = self.GAIN_ACCURACY if self.apply_gain_error else 1.0
        first_record_ps = steps[0][0]
        samples: List[float] = []
        index = 0
        t = start_ps
        while t < end_ps:
            if t < first_record_ps:
                samples.append(0.0)  # window starts before the first record
            else:
                while index + 1 < len(steps) and steps[index][1] <= t:
                    index += 1
                samples.append(steps[index][2] * gain)
            t += self.sampling_interval_ps
        return samples

    def _sample_runs(self, start_ps: int, end_ps: int) -> Tuple[int, List[Tuple[int, float]]]:
        """Closed-form grid sampling: ``(total_samples, [(count, watts)])``.

        The grid points are ``start_ps + k * interval`` for ``k`` in
        ``[0, total)``.  For each piecewise-constant step the covered grid
        indices form a contiguous range computed arithmetically, so the
        whole decomposition is O(#steps).  The runs partition the grid:
        their counts sum to ``total``.
        """
        if end_ps <= start_ps:
            raise MeasurementError("empty measurement window")
        interval = self.sampling_interval_ps
        total = _ceil_div(end_ps - start_ps, interval)
        steps = list(self.trace.intervals(self.channel, end_ps, start_ps=start_ps))
        if not steps:
            raise MeasurementError("no power trace recorded")
        gain = self.GAIN_ACCURACY if self.apply_gain_error else 1.0
        runs: List[Tuple[int, float]] = []
        first_record_ps = steps[0][0]
        if start_ps < first_record_ps:
            # grid points before the first record read 0.0 W
            zero_count = min(total, _ceil_div(first_record_ps - start_ps, interval))
            if zero_count:
                runs.append((zero_count, 0.0))
        for lo, hi, watts in steps:
            k_lo = _ceil_div(lo - start_ps, interval) if lo > start_ps else 0
            k_hi = _ceil_div(hi - start_ps, interval) if hi > start_ps else 0
            if k_hi > total:
                k_hi = total
            if k_hi > k_lo:
                runs.append((k_hi - k_lo, watts * gain))
        return total, runs

    def measure(self, start_ps: int, end_ps: int) -> AnalyzerReading:
        """One reading over the window, in O(#steps) of the power trace.

        The average is the correctly rounded mean of the grid samples
        (exact rational accumulation, one final rounding), so it does not
        depend on the order the samples would have been summed in.
        """
        with host_phase("measure"):
            total, runs = self._sample_runs(start_ps, end_ps)
            acc = Fraction(0)
            for count, watts in runs:
                acc += Fraction(watts) * count
            values = [watts for _count, watts in runs]
            reading = AnalyzerReading(
                start_ps=start_ps,
                end_ps=end_ps,
                samples=total,
                average_watts=float(acc / total),
                min_watts=min(values),
                max_watts=max(values),
            )
        tracer = _active_tracer()
        if tracer is not None:
            window = tracer.begin(
                f"analyzer:{self.channel}",
                start_ps,
                track=MEASURE_TRACK,
                args={"average_watts": reading.average_watts, "samples": total},
            )
            tracer.end(window, end_ps)
            tracer.metrics.counter("analyzer.measurements").inc()
        return reading

    def exact_average(self, start_ps: int, end_ps: int) -> float:
        """Exact trace integral over the window (the reference value)."""
        if end_ps <= start_ps:
            raise MeasurementError("empty measurement window")
        total = 0.0
        for lo, hi, watts in self.trace.intervals(self.channel, end_ps, start_ps=start_ps):
            lo = max(lo, start_ps)
            hi = min(hi, end_ps)
            if hi > lo:
                total += watts * (hi - lo)
        return total / (end_ps - start_ps)
