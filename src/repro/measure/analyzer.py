"""The sampling power analyzer (Keysight N6705B + N6781A substitute).

The paper measures "the power consumption of the four power states ...
Each measurement uses four analog channels with a 50-microsecond sampling
interval" (Sec. 7).  This instrument samples the piecewise-constant
platform-power trace on that grid, applies the instrument's gain accuracy
(99.975 % for the N6781A), and reports window statistics.

The exact integral is available from the
:class:`~repro.power.meter.EnergyMeter`; the analyzer exists so tests can
show the sampled measurement converges to the exact one — the same
validation argument the paper makes for its instrument choice.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.errors import MeasurementError
from repro.sim.trace import TraceRecorder
from repro.system.states import POWER_CHANNEL
from repro.units import PICOSECONDS_PER_SECOND, us_to_ps


@dataclass(frozen=True)
class AnalyzerReading:
    """Statistics of one measurement window."""

    start_ps: int
    end_ps: int
    samples: int
    average_watts: float
    min_watts: float
    max_watts: float

    @property
    def window_s(self) -> float:
        return (self.end_ps - self.start_ps) / PICOSECONDS_PER_SECOND


class PowerAnalyzer:
    """Fixed-interval sampler over the recorded platform-power trace."""

    #: N6781A gain accuracy (Sec. 7: "around 99.975%").
    GAIN_ACCURACY = 0.99975

    def __init__(
        self,
        trace: TraceRecorder,
        sampling_interval_ps: int = us_to_ps(50),
        apply_gain_error: bool = False,
        channel: str = POWER_CHANNEL,
    ) -> None:
        """``channel`` selects the analog input: the default measures the
        battery-side platform total; ``rail:<name>`` channels measure
        individual rails, like the paper's four-channel setup measuring
        "DRAM, storage ..., chipset, crystal oscillators, and the
        processor" separately (Sec. 7)."""
        if sampling_interval_ps <= 0:
            raise MeasurementError("sampling interval must be positive")
        self.trace = trace
        self.sampling_interval_ps = sampling_interval_ps
        self.apply_gain_error = apply_gain_error
        self.channel = channel

    def sample_window(self, start_ps: int, end_ps: int) -> List[float]:
        """Instantaneous power samples on the instrument's grid."""
        if end_ps <= start_ps:
            raise MeasurementError("empty measurement window")
        steps = list(self.trace.intervals(self.channel, end_ps))
        if not steps:
            raise MeasurementError("no power trace recorded")
        gain = self.GAIN_ACCURACY if self.apply_gain_error else 1.0
        samples: List[float] = []
        index = 0
        t = start_ps
        while t < end_ps:
            while index + 1 < len(steps) and steps[index][1] <= t:
                index += 1
            lo, hi, watts = steps[index]
            if t < lo:
                samples.append(0.0)  # before the first recorded level
            else:
                samples.append(watts * gain)
            t += self.sampling_interval_ps
        return samples

    def measure(self, start_ps: int, end_ps: int) -> AnalyzerReading:
        """One reading over the window."""
        samples = self.sample_window(start_ps, end_ps)
        return AnalyzerReading(
            start_ps=start_ps,
            end_ps=end_ps,
            samples=len(samples),
            average_watts=sum(samples) / len(samples),
            min_watts=min(samples),
            max_watts=max(samples),
        )

    def exact_average(self, start_ps: int, end_ps: int) -> float:
        """Exact trace integral over the window (the reference value)."""
        if end_ps <= start_ps:
            raise MeasurementError("empty measurement window")
        total = 0.0
        for lo, hi, watts in self.trace.intervals(self.channel, end_ps):
            lo = max(lo, start_ps)
            hi = min(hi, end_ps)
            if hi > lo:
                total += watts * (hi - lo)
        return total / (end_ps - start_ps)
