"""State residency and per-state energy from the simulation trace.

Substitutes for the Intel Performance Counter Monitor the paper uses to
measure "the percentage of time the processor spends in a given power
state" (Sec. 7), and provides the per-state energy split behind
Equation 1.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.errors import MeasurementError
from repro.sim.trace import TraceRecorder
from repro.system.states import POWER_CHANNEL, STATE_CHANNEL
from repro.units import PICOSECONDS_PER_SECOND


def _clipped_intervals(
    trace: TraceRecorder, channel: str, start_ps: int, end_ps: int
) -> List[Tuple[int, int, object]]:
    """Step intervals of ``channel`` clipped to ``[start_ps, end_ps)``."""
    out = []
    for lo, hi, value in trace.intervals(channel, end_ps, start_ps=start_ps):
        lo = max(lo, start_ps)
        hi = min(hi, end_ps)
        if hi > lo:
            out.append((lo, hi, value))
    return out


def merge_state_power(
    trace: TraceRecorder, start_ps: int, end_ps: int
) -> List[Tuple[int, int, str, float]]:
    """``(lo, hi, state, watts)`` segments merging state and power steps.

    The common substrate of :func:`energy_by_state` and the
    macro-stepping cycle compiler (:mod:`repro.sim.macro`): the window is
    partitioned at every record of either channel, so each segment
    carries one platform state and one constant battery-side power.
    Segment boundaries depend only on the records inside the window —
    the property that lets the macro executor compose per-cycle segment
    lists into the exact run's segmentation bit-for-bit.
    """
    if end_ps <= start_ps:
        raise MeasurementError("empty measurement window")
    power_steps = _clipped_intervals(trace, POWER_CHANNEL, start_ps, end_ps)
    state_steps = _clipped_intervals(trace, STATE_CHANNEL, start_ps, end_ps)
    if not power_steps or not state_steps:
        raise MeasurementError("trace has no samples inside the window")
    segments: List[Tuple[int, int, str, float]] = []
    state_index = 0
    for lo, hi, watts in power_steps:
        position = lo
        while position < hi:
            while (
                state_index + 1 < len(state_steps)
                and state_steps[state_index][1] <= position
            ):
                state_index += 1
            s_lo, s_hi, state = state_steps[state_index]
            segment_end = min(hi, s_hi)
            if segment_end <= position:
                segment_end = hi  # state channel exhausted; stay on last value
            segments.append((position, segment_end, state, watts))
            position = segment_end
    return segments


def energy_by_state(
    trace: TraceRecorder, start_ps: int, end_ps: int
) -> Dict[str, float]:
    """Joules consumed in each platform state within the window.

    Merges the piecewise-constant ``platform`` power channel with the
    ``state`` channel.  Each per-state total is the correctly-rounded sum
    (:func:`math.fsum`) of its segment energies, so the result depends
    only on the *multiset* of segments — not their order — which is what
    lets the macro-stepping executor reproduce it analytically,
    bit-for-bit, without walking every cycle.
    """
    products: Dict[str, List[float]] = {}
    for lo, hi, state, watts in merge_state_power(trace, start_ps, end_ps):
        products.setdefault(state, []).append(
            watts * ((hi - lo) / PICOSECONDS_PER_SECOND)
        )
    return {state: math.fsum(values) for state, values in products.items()}


@dataclass
class ResidencyReport:
    """Residencies, per-state energy and per-state average power."""

    window_ps: int
    dwell_ps: Dict[str, int] = field(default_factory=dict)
    energy_j: Dict[str, float] = field(default_factory=dict)

    @property
    def window_s(self) -> float:
        return self.window_ps / PICOSECONDS_PER_SECOND

    def residency(self, state: str) -> float:
        """Fraction of the window spent in ``state``."""
        return self.dwell_ps.get(state, 0) / self.window_ps

    def average_power(self, state: str) -> float:
        """Average battery-side watts while in ``state``."""
        dwell = self.dwell_ps.get(state, 0)
        if dwell == 0:
            return 0.0
        return self.energy_j.get(state, 0.0) / (dwell / PICOSECONDS_PER_SECOND)

    def total_average_power(self) -> float:
        """Average watts over the whole window (Equation 1's left side).

        Correctly rounded over the per-state energies, so the total is
        independent of state insertion order (exact and macro-stepped
        runs build the dict along different walks).
        """
        return math.fsum(self.energy_j.values()) / self.window_s

    def equation1_terms(self) -> Dict[str, float]:
        """Per-state ``power x residency`` terms of Equation 1, in watts."""
        return {
            state: self.average_power(state) * self.residency(state)
            for state in self.dwell_ps
        }


def residency_report(
    trace: TraceRecorder, start_ps: int, end_ps: int
) -> ResidencyReport:
    """Build a :class:`ResidencyReport` for the window."""
    report = ResidencyReport(window_ps=end_ps - start_ps)
    for lo, hi, state in _clipped_intervals(trace, STATE_CHANNEL, start_ps, end_ps):
        report.dwell_ps[state] = report.dwell_ps.get(state, 0) + (hi - lo)
    report.energy_j = energy_by_state(trace, start_ps, end_ps)
    return report
