"""Components, power domains and supply rails.

A :class:`Component` is a leaf load with a piecewise-constant power level.
Components live in a :class:`PowerDomain`, which may be gated by a
:class:`~repro.power.gates.PowerGate`.  Domains hang off a :class:`Rail`
fed by one :class:`~repro.power.regulator.Regulator`.

Any leaf change propagates up to the owning
:class:`~repro.power.tree.PowerTree`, which re-evaluates battery-side power
and updates the energy meter — so power accounting is exact at every event
boundary without polling.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.errors import PowerError
from repro.power.gates import PowerGate
from repro.power.regulator import Regulator

ChangeListener = Callable[[], None]


class Component:
    """A leaf power load.

    Components distinguish *leakage* (drawn whenever the domain is powered)
    from *dynamic* (activity-dependent) power, because the paper's
    techniques mostly attack leakage (S/R SRAM retention, AON IO leakage)
    while transitions add dynamic energy.
    """

    def __init__(self, name: str, leakage_watts: float = 0.0, dynamic_watts: float = 0.0) -> None:
        if leakage_watts < 0 or dynamic_watts < 0:
            raise PowerError(f"component {name}: negative power")
        self.name = name
        self._leakage_watts = leakage_watts
        self._dynamic_watts = dynamic_watts
        self._domain: Optional["PowerDomain"] = None

    # --- wiring ------------------------------------------------------------

    def attach(self, domain: "PowerDomain") -> None:
        if self._domain is not None:
            raise PowerError(f"component {self.name} already attached to {self._domain.name}")
        self._domain = domain

    @property
    def domain(self) -> Optional["PowerDomain"]:
        return self._domain

    # --- power -------------------------------------------------------------

    @property
    def leakage_watts(self) -> float:
        return self._leakage_watts

    @property
    def dynamic_watts(self) -> float:
        return self._dynamic_watts

    @property
    def power_watts(self) -> float:
        """Nominal demand of this component (leakage + dynamic)."""
        return self._leakage_watts + self._dynamic_watts

    def set_leakage(self, watts: float) -> None:
        """Set the leakage level (e.g. retention-voltage scaling)."""
        if watts < 0:
            raise PowerError(f"component {self.name}: negative leakage")
        self._leakage_watts = watts
        self._notify()

    def set_dynamic(self, watts: float) -> None:
        """Set the activity-dependent power level."""
        if watts < 0:
            raise PowerError(f"component {self.name}: negative dynamic power")
        self._dynamic_watts = watts
        self._notify()

    def set_power(self, leakage_watts: float, dynamic_watts: float = 0.0) -> None:
        """Set both power terms in one notification."""
        if leakage_watts < 0 or dynamic_watts < 0:
            raise PowerError(f"component {self.name}: negative power")
        self._leakage_watts = leakage_watts
        self._dynamic_watts = dynamic_watts
        self._notify()

    def _notify(self) -> None:
        if self._domain is not None:
            self._domain.notify_change()

    @property
    def powered(self) -> bool:
        """True when the owning domain actually delivers power."""
        return self._domain is not None and self._domain.delivering

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Component {self.name} {self.power_watts * 1e3:.3f} mW>"


class PowerDomain:
    """A gateable group of components sharing an on/off boundary.

    The effective load of the domain is::

        gate.delivered_power(sum(component powers))      if enabled
        gate.delivered_power(0)                          if disabled

    Disabling a domain models power-gating its contents (context is lost —
    enforcing that is the job of the device models, e.g. SRAMs raise
    :class:`~repro.errors.MemoryFault` when read after power loss).
    """

    def __init__(self, name: str, gate: Optional[PowerGate] = None) -> None:
        self.name = name
        self.gate = gate
        self._components: List[Component] = []
        self._enabled = True
        self._listener: Optional[ChangeListener] = None
        self.transition_count = 0

    def add(self, component: Component) -> Component:
        """Attach ``component`` and return it (builder convenience)."""
        component.attach(self)
        self._components.append(component)
        self.notify_change()
        return component

    def new_component(self, name: str, leakage_watts: float = 0.0, dynamic_watts: float = 0.0) -> Component:
        """Create and attach a component in one call."""
        return self.add(Component(name, leakage_watts, dynamic_watts))

    @property
    def components(self) -> List[Component]:
        return list(self._components)

    # --- on/off ------------------------------------------------------------

    @property
    def enabled(self) -> bool:
        return self._enabled

    @property
    def delivering(self) -> bool:
        """True when components actually receive power."""
        if not self._enabled:
            return False
        if self.gate is not None and not self.gate.closed:
            return False
        return True

    def power_off(self) -> None:
        """Power-gate the whole domain (contents lose state)."""
        if self._enabled:
            self._enabled = False
            self.transition_count += 1
            if self.gate is not None:
                self.gate.open()
            self.notify_change()

    def power_on(self) -> None:
        """Restore power to the domain."""
        if not self._enabled:
            self._enabled = True
            self.transition_count += 1
            if self.gate is not None:
                self.gate.close()
            self.notify_change()

    # --- accounting ----------------------------------------------------------

    def nominal_load_watts(self) -> float:
        """Sum of component demands, ignoring gating."""
        return sum(component.power_watts for component in self._components)

    def load_watts(self) -> float:
        """Load presented to the rail, accounting for the gate state."""
        nominal = self.nominal_load_watts() if self._enabled else 0.0
        if self.gate is not None:
            if not self._enabled:
                # The gate leaks a fraction of what the load *would* draw.
                return self.gate.delivered_power(self.nominal_load_watts())
            return self.gate.delivered_power(nominal)
        return nominal

    def set_listener(self, listener: ChangeListener) -> None:
        self._listener = listener

    def notify_change(self) -> None:
        if self._listener is not None:
            self._listener()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "on" if self._enabled else "off"
        return f"<PowerDomain {self.name} {state} {self.load_watts() * 1e3:.3f} mW>"


class Rail:
    """A supply rail: one regulator feeding one or more domains."""

    def __init__(self, name: str, voltage: float, regulator: Regulator) -> None:
        if voltage <= 0:
            raise PowerError(f"rail {name}: voltage must be positive")
        self.name = name
        self.voltage = voltage
        self.regulator = regulator
        self._domains: List[PowerDomain] = []
        self._listener: Optional[ChangeListener] = None

    def add_domain(self, domain: PowerDomain) -> PowerDomain:
        self._domains.append(domain)
        domain.set_listener(self._on_change)
        self._on_change()
        return domain

    def new_domain(self, name: str, gate: Optional[PowerGate] = None) -> PowerDomain:
        return self.add_domain(PowerDomain(name, gate))

    @property
    def domains(self) -> List[PowerDomain]:
        return list(self._domains)

    def load_watts(self) -> float:
        """Total load the rail presents to its regulator."""
        return sum(domain.load_watts() for domain in self._domains)

    def input_power(self) -> float:
        """Battery-side power of this rail through its regulator."""
        return self.regulator.input_power(self.load_watts())

    def turn_off(self) -> None:
        """Disable the regulator.  All domains must be off first."""
        live = [domain.name for domain in self._domains if domain.load_watts() > 1e-12]
        if live:
            raise PowerError(f"rail {self.name}: domains still loaded: {live}")
        self.regulator.disable()
        self._on_change()

    def turn_on(self) -> None:
        """Enable the regulator."""
        self.regulator.enable()
        self._on_change()

    def set_listener(self, listener: ChangeListener) -> None:
        self._listener = listener

    def _on_change(self) -> None:
        if self._listener is not None:
            self._listener()

    def breakdown(self) -> Dict[str, float]:
        """Per-domain nominal loads in watts (diagnostic view)."""
        return {domain.name: domain.load_watts() for domain in self._domains}
