"""Power-delivery and energy-accounting models.

The power model is a tree::

    PowerTree (platform/battery view)
      └── Regulator (voltage regulator with an efficiency curve)
            └── Rail (a supply voltage)
                  └── PowerDomain (gateable group of loads)
                        └── Component (a leaf load, piecewise-constant watts)

Leaf components report power-level changes; the tree re-evaluates input
(battery-side) power and streams it into an :class:`EnergyMeter`, which
integrates energy exactly over the piecewise-constant intervals.

This mirrors the paper's methodology: Fig. 1(b) is a component breakdown of
platform DRIPS power *including* the power-delivery "tax" (Sec. 8, footnote:
74 % delivery efficiency in DRIPS — a 10 mW load costs 13.51 mW at the
battery).
"""

from repro.power.domain import Component, PowerDomain, Rail
from repro.power.gates import BoardFETGate, EmbeddedPowerGate, PowerGate
from repro.power.meter import EnergyMeter
from repro.power.regulator import EfficiencyCurve, Regulator
from repro.power.tree import PowerTree

__all__ = [
    "BoardFETGate",
    "Component",
    "EfficiencyCurve",
    "EmbeddedPowerGate",
    "EnergyMeter",
    "PowerDomain",
    "PowerGate",
    "PowerTree",
    "Rail",
    "Regulator",
]
