"""The platform power tree: rails aggregated into battery-side power.

The :class:`PowerTree` is the root of the power model.  Every change in a
leaf component propagates here; the tree recomputes battery-side power,
pushes it into the :class:`~repro.power.meter.EnergyMeter` and records it
on the trace.  It also produces the attributed per-component breakdown that
reproduces Fig. 1(b): each component is charged its share of the
power-delivery loss of its rail (the "power-delivery tax" of Sec. 8).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.power.domain import Rail
from repro.power.meter import EnergyMeter
from repro.power.regulator import EfficiencyCurve, Regulator
from repro.sim.kernel import Kernel
from repro.sim.trace import TraceRecorder


class PowerTree:
    """Aggregates rails, integrates energy, exposes breakdowns."""

    PLATFORM_CHANNEL = "platform"

    def __init__(
        self,
        kernel: Kernel,
        meter: Optional[EnergyMeter] = None,
        trace: Optional[TraceRecorder] = None,
    ) -> None:
        self.kernel = kernel
        self.meter = meter if meter is not None else EnergyMeter()
        self.trace = trace
        self._rails: List[Rail] = []
        self._suspended = 0

    # --- construction ---------------------------------------------------------

    def add_rail(self, rail: Rail) -> Rail:
        self._rails.append(rail)
        rail.set_listener(self._on_change)
        self._on_change()
        return rail

    def new_rail(
        self,
        name: str,
        voltage: float,
        curve: Optional[EfficiencyCurve] = None,
        quiescent_watts: float = 0.0,
        enabled: bool = True,
    ) -> Rail:
        """Create a rail with its own regulator and register it."""
        regulator = Regulator(
            f"vr:{name}",
            curve if curve is not None else EfficiencyCurve.constant(1.0),
            quiescent_watts,
            enabled,
        )
        return self.add_rail(Rail(name, voltage, regulator))

    @property
    def rails(self) -> List[Rail]:
        return list(self._rails)

    def rail(self, name: str) -> Rail:
        for rail in self._rails:
            if rail.name == name:
                return rail
        raise KeyError(f"no rail named {name!r}")

    # --- introspection (used by repro.lint's model verifier) -------------------

    def iter_domains(self):
        """Every power domain registered through a rail of this tree."""
        for rail in self._rails:
            yield from rail.domains

    def iter_components(self):
        """Every component reachable through this tree's rails."""
        for domain in self.iter_domains():
            yield from domain.components

    # --- change propagation -----------------------------------------------------

    def suspend_updates(self) -> None:
        """Batch many component changes into one re-evaluation.

        Nested suspensions are counted; the tree re-evaluates when the last
        one resumes.  Use around multi-component state transitions that
        happen at a single simulation instant.
        """
        self._suspended += 1

    def resume_updates(self) -> None:
        if self._suspended <= 0:
            return
        self._suspended -= 1
        if self._suspended == 0:
            self._on_change()

    def _on_change(self) -> None:
        if self._suspended:
            return
        now = self.kernel.now
        total = self.platform_power()
        # Only the platform total goes to the energy meter: per-rail numbers
        # are views (available via rail.input_power()), and feeding them to
        # the meter would double-count energy.  The trace, however, records
        # per-rail channels too — that is what lets the simulated power
        # analyzer measure individual rails like the paper's four-channel
        # N6705B setup (Sec. 7).
        self.meter.set_power(now, self.PLATFORM_CHANNEL, total)
        if self.trace is not None:
            self.trace.record(now, self.PLATFORM_CHANNEL, total)
            for rail in self._rails:
                self.trace.record(now, f"rail:{rail.name}", rail.input_power())

    def refresh(self) -> None:
        """Force re-evaluation (e.g. after attaching pre-built rails)."""
        self._on_change()

    # --- views -----------------------------------------------------------------

    def platform_power(self) -> float:
        """Instantaneous battery-side platform power in watts."""
        return sum(rail.input_power() for rail in self._rails)

    def budget_description(self) -> Dict[str, object]:
        """Declared trace channels of the power tree, for the budget probe.

        The priced-timed analysis (:mod:`repro.check.budgets`) integrates
        per-state and per-flow-step energies out of the recorded power
        trace; this declaration pins which channel carries the
        battery-side total and how per-rail channels are named, so the
        probe reads the tree's contract instead of hard-coding it.
        """
        return {
            "platform_channel": self.PLATFORM_CHANNEL,
            "rail_channel_prefix": "rail:",
            "rail_channels": tuple(f"rail:{rail.name}" for rail in self._rails),
        }

    def attributed_breakdown(self) -> Dict[str, float]:
        """Battery-side watts per component, distributing the PD tax.

        Each rail's regulator loss (including quiescent draw) is spread over
        the rail's components proportionally to their nominal demand; a rail
        with zero load books its quiescent draw under ``vr:<rail>``.
        Domain-gate leakage while a domain is off is booked under
        ``gate:<domain>``.
        """
        breakdown: Dict[str, float] = {}
        for rail in self._rails:
            load = rail.load_watts()
            input_power = rail.input_power()
            if load <= 0:
                if input_power > 0:
                    breakdown[f"vr:{rail.name}"] = breakdown.get(f"vr:{rail.name}", 0.0) + input_power
                continue
            tax_factor = input_power / load
            for domain in rail.domains:
                domain_load = domain.load_watts()
                if domain_load <= 0:
                    continue
                if not domain.delivering:
                    key = f"gate:{domain.name}"
                    breakdown[key] = breakdown.get(key, 0.0) + domain_load * tax_factor
                    continue
                nominal = domain.nominal_load_watts()
                gate_overhead = domain_load - nominal
                for component in domain.components:
                    share = component.power_watts
                    if nominal > 0:
                        share += gate_overhead * (component.power_watts / nominal)
                    breakdown[component.name] = (
                        breakdown.get(component.name, 0.0) + share * tax_factor
                    )
        return breakdown

    def breakdown_fractions(self) -> Dict[str, float]:
        """Attributed breakdown normalized to fractions of platform power."""
        breakdown = self.attributed_breakdown()
        total = sum(breakdown.values())
        if total <= 0:
            return {name: 0.0 for name in breakdown}
        return {name: watts / total for name, watts in breakdown.items()}
