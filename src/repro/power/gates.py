"""Power gates: embedded (on-die) gates and on-board FETs.

Sec. 5.1 of the paper weighs two options for gating the processor's
always-on IOs: an embedded power gate (EPG) in the silicon die, or an
external FET on the board.  The paper chooses the FET because it leaks
less (measured leakage below 0.3 % of the gated load), needs no extra
processor pins, and needs no processor design effort.  Both options are
modeled here so the ablation bench can reproduce that comparison.
"""

from __future__ import annotations

from repro.errors import PowerError


class PowerGate:
    """Base power gate: passes load when closed, leaks a fraction when open.

    "Closed" means conducting (the load is powered); "open" means gated
    (the load is cut off and only gate leakage remains).
    """

    #: Leakage of the open gate as a fraction of the load it would pass.
    leakage_fraction = 0.0

    #: Extra on-resistance loss while conducting, as a fraction of the load.
    conduction_loss_fraction = 0.0

    def __init__(self, name: str, closed: bool = True) -> None:
        self.name = name
        self._closed = closed
        self.switch_count = 0

    @property
    def closed(self) -> bool:
        """True when the gate conducts (load powered)."""
        return self._closed

    def close(self) -> None:
        """Conduct: power the load."""
        if not self._closed:
            self._closed = True
            self.switch_count += 1

    def open(self) -> None:
        """Gate: cut the load off."""
        if self._closed:
            self._closed = False
            self.switch_count += 1

    def delivered_power(self, load_watts: float) -> float:
        """Power drawn from the supply for a nominal ``load_watts`` demand."""
        if load_watts < 0:
            raise PowerError(f"gate {self.name}: negative load {load_watts}")
        if self._closed:
            return load_watts * (1.0 + self.conduction_loss_fraction)
        return load_watts * self.leakage_fraction


class EmbeddedPowerGate(PowerGate):
    """On-die embedded power gate (EPG).

    Area-efficient and board-free, but built in the processor's
    performance-optimized process, so it leaks more when open and has a
    non-trivial on-resistance.  Leakage numbers follow the qualitative
    comparison of Sec. 5.1 (EPG leaks more than the FET).
    """

    leakage_fraction = 0.02
    conduction_loss_fraction = 0.005


class BoardFETGate(PowerGate):
    """Discrete on-board FET gating a power rail.

    The paper measures its off-state leakage at "less than 0.3 % of the
    gated load's power" (Sec. 5.3); we use 0.25 %.  Needs a GPIO from the
    chipset to drive the gate terminal, which the chipset model allocates
    from its spare GPIOs.
    """

    leakage_fraction = 0.0025
    conduction_loss_fraction = 0.001

    def __init__(self, name: str, closed: bool = True) -> None:
        super().__init__(name, closed)
        self.control_gpio: int | None = None

    def bind_gpio(self, gpio_index: int) -> None:
        """Record which chipset GPIO drives this FET's gate."""
        self.control_gpio = gpio_index
