"""Voltage regulators with load-dependent efficiency.

The paper reports a measured power-delivery efficiency of 74 % in DRIPS
(Sec. 8, footnote 5): every milliwatt of silicon load costs 1/0.74 mW at
the battery.  Efficiency improves at higher loads (switching regulators
are most efficient near their design point), which the
:class:`EfficiencyCurve` captures with piecewise-linear interpolation in
log-load space.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

from repro.errors import PowerError


class EfficiencyCurve:
    """Piecewise-linear efficiency vs. log10(load) interpolation.

    Points are ``(load_watts, efficiency)`` pairs; between points the
    efficiency is interpolated linearly in ``log10(load)``, clamping at the
    ends.  This is the standard shape of a buck regulator efficiency plot.
    """

    def __init__(self, points: Sequence[Tuple[float, float]]) -> None:
        if not points:
            raise PowerError("efficiency curve needs at least one point")
        cleaned: List[Tuple[float, float]] = []
        for load, eff in sorted(points):
            if load <= 0:
                raise PowerError(f"efficiency point load must be positive: {load}")
            if not 0 < eff <= 1:
                raise PowerError(f"efficiency must be in (0, 1]: {eff}")
            cleaned.append((load, eff))
        self._points = cleaned

    def efficiency(self, load_watts: float) -> float:
        """Efficiency at ``load_watts`` (clamped outside the defined range)."""
        if load_watts <= 0:
            return self._points[0][1]
        points = self._points
        if load_watts <= points[0][0]:
            return points[0][1]
        if load_watts >= points[-1][0]:
            return points[-1][1]
        x = math.log10(load_watts)
        for (load_lo, eff_lo), (load_hi, eff_hi) in zip(points, points[1:]):
            if load_lo <= load_watts <= load_hi:
                x_lo, x_hi = math.log10(load_lo), math.log10(load_hi)
                if x_hi == x_lo:
                    return eff_hi
                t = (x - x_lo) / (x_hi - x_lo)
                return eff_lo + t * (eff_hi - eff_lo)
        return points[-1][1]  # pragma: no cover - unreachable by construction

    @classmethod
    def constant(cls, efficiency: float) -> "EfficiencyCurve":
        """A flat efficiency curve."""
        return cls([(1e-6, efficiency), (100.0, efficiency)])


class Regulator:
    """A voltage regulator converting battery power to a rail.

    A disabled regulator delivers nothing; asking it to supply a load while
    disabled is a modeling error (the platform flows must sequence
    regulators correctly, exactly as the PMU firmware does).

    ``quiescent_watts`` is the regulator's own idle draw while enabled; it
    is consumed even at zero load and disappears when the regulator is
    turned off — this is part of the "power delivery" savings ODRIPS gets
    by turning compute-domain regulators off in DRIPS.
    """

    def __init__(
        self,
        name: str,
        curve: EfficiencyCurve,
        quiescent_watts: float = 0.0,
        enabled: bool = True,
    ) -> None:
        if quiescent_watts < 0:
            raise PowerError(f"negative quiescent power on {name}")
        self.name = name
        self.curve = curve
        self.quiescent_watts = quiescent_watts
        self._enabled = enabled
        self.enable_count = 0

    @property
    def enabled(self) -> bool:
        """True while the regulator can deliver power."""
        return self._enabled

    def enable(self) -> None:
        """Turn the regulator on."""
        if not self._enabled:
            self._enabled = True
            self.enable_count += 1

    def disable(self, load_watts: float = 0.0) -> None:
        """Turn the regulator off.  The load must already be quiesced."""
        if load_watts > 1e-12:
            raise PowerError(
                f"regulator {self.name} disabled with live load {load_watts} W"
            )
        self._enabled = False

    def input_power(self, load_watts: float) -> float:
        """Battery-side power needed to supply ``load_watts`` on the rail."""
        if load_watts < 0:
            raise PowerError(f"negative load on regulator {self.name}")
        if not self._enabled:
            if load_watts > 1e-12:
                raise PowerError(
                    f"regulator {self.name} is disabled but asked for {load_watts} W"
                )
            return 0.0
        if load_watts <= 0:
            # <=, not ==: exact float equality on an accumulated load is
            # fragile (negative loads were already rejected above).
            return self.quiescent_watts
        return load_watts / self.curve.efficiency(load_watts) + self.quiescent_watts
