"""Exact energy integration over piecewise-constant power.

The :class:`EnergyMeter` is the accounting backbone of every experiment:
components report power changes at event boundaries and the meter integrates
``power x time`` exactly between changes, per channel and in total.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.errors import MeasurementError
from repro.units import PICOSECONDS_PER_SECOND


class _Channel:
    __slots__ = ("power_watts", "last_update_ps", "energy_joules")

    def __init__(self, time_ps: int) -> None:
        self.power_watts = 0.0
        self.last_update_ps = time_ps
        self.energy_joules = 0.0

    def advance(self, time_ps: int) -> None:
        if time_ps < self.last_update_ps:
            raise MeasurementError(
                f"meter time went backwards: {time_ps} < {self.last_update_ps}"
            )
        elapsed = time_ps - self.last_update_ps
        if elapsed:
            self.energy_joules += self.power_watts * (elapsed / PICOSECONDS_PER_SECOND)
            self.last_update_ps = time_ps


class EnergyMeter:
    """Integrates per-channel and total energy from power-change reports.

    Channels are created lazily on first report.  ``set_power`` must be
    called with monotonically non-decreasing timestamps per channel.
    """

    def __init__(self, start_ps: int = 0) -> None:
        self._start_ps = start_ps
        self._channels: Dict[str, _Channel] = {}
        self._marks: Dict[str, Dict[str, float]] = {}

    def set_power(self, time_ps: int, channel: str, power_watts: float) -> None:
        """Report that ``channel`` draws ``power_watts`` from ``time_ps`` on."""
        if power_watts < 0:
            raise MeasurementError(f"negative power on {channel!r}: {power_watts}")
        entry = self._channels.get(channel)
        if entry is None:
            entry = _Channel(time_ps)
            self._channels[channel] = entry
        entry.advance(time_ps)
        entry.power_watts = power_watts

    def advance(self, time_ps: int) -> None:
        """Integrate all channels up to ``time_ps`` without changing levels."""
        for entry in self._channels.values():
            entry.advance(time_ps)

    def inject(self, time_ps: int, energy_joules: Dict[str, float]) -> None:
        """Jump every channel to ``time_ps``, crediting precomputed energy.

        The macro-stepping seam (:mod:`repro.sim.macro`): when compiled
        standby cycles are skipped with a kernel time warp, the per-channel
        energy of the skipped span is known analytically, so each listed
        channel is credited its joules directly and its integration anchor
        moved past the warp.  Channels without an entry in
        ``energy_joules`` are integrated normally (their power level is
        assumed to hold across the span).  Callers must integrate up to
        the pre-warp time first (:meth:`advance`) so the credit covers
        exactly the warped span.
        """
        for channel, joules in energy_joules.items():
            entry = self._channels.get(channel)
            if entry is None:
                entry = self._channels[channel] = _Channel(time_ps)
            if time_ps < entry.last_update_ps:
                raise MeasurementError(
                    f"meter time went backwards: {time_ps} < {entry.last_update_ps}"
                )
            entry.energy_joules += joules
            entry.last_update_ps = time_ps
        for channel, entry in self._channels.items():
            if channel not in energy_joules:
                entry.advance(time_ps)

    # --- queries ---------------------------------------------------------

    def power(self, channel: str) -> float:
        """Current power level of ``channel`` in watts (0 if unknown)."""
        entry = self._channels.get(channel)
        return entry.power_watts if entry else 0.0

    def total_power(self) -> float:
        """Sum of the current power levels of all channels."""
        return sum(entry.power_watts for entry in self._channels.values())

    def energy(self, channel: str, up_to_ps: Optional[int] = None) -> float:
        """Accumulated energy of ``channel`` in joules.

        When ``up_to_ps`` is given the channel is first integrated up to
        that time.
        """
        entry = self._channels.get(channel)
        if entry is None:
            return 0.0
        if up_to_ps is not None:
            entry.advance(up_to_ps)
        return entry.energy_joules

    def total_energy(self, up_to_ps: Optional[int] = None) -> float:
        """Accumulated energy across all channels in joules."""
        if up_to_ps is not None:
            self.advance(up_to_ps)
        return sum(entry.energy_joules for entry in self._channels.values())

    def channels(self) -> Dict[str, float]:
        """Mapping of channel name to its current power in watts."""
        return {name: entry.power_watts for name, entry in self._channels.items()}

    # --- interval measurement ---------------------------------------------

    def mark(self, name: str, time_ps: int) -> None:
        """Snapshot per-channel energies under ``name`` for later deltas."""
        self.advance(time_ps)
        self._marks[name] = {
            channel: entry.energy_joules for channel, entry in self._channels.items()
        }
        self._marks[name]["__time_ps__"] = float(time_ps)

    def energy_since(self, name: str, time_ps: int, channel: Optional[str] = None) -> float:
        """Energy accumulated since :meth:`mark` ``name``, in joules."""
        if name not in self._marks:
            raise MeasurementError(f"unknown mark {name!r}")
        snapshot = self._marks[name]
        self.advance(time_ps)
        if channel is not None:
            entry = self._channels.get(channel)
            current = entry.energy_joules if entry else 0.0
            return current - snapshot.get(channel, 0.0)
        total = 0.0
        for chan, entry in self._channels.items():
            total += entry.energy_joules - snapshot.get(chan, 0.0)
        return total

    def average_power_since(self, name: str, time_ps: int) -> float:
        """Average total power since mark ``name``, in watts."""
        if name not in self._marks:
            raise MeasurementError(f"unknown mark {name!r}")
        start_ps = int(self._marks[name]["__time_ps__"])
        window_ps = time_ps - start_ps
        if window_ps <= 0:
            raise MeasurementError("zero-length measurement window")
        energy = self.energy_since(name, time_ps)
        return energy / (window_ps / PICOSECONDS_PER_SECOND)
