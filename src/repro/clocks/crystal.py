"""Crystal oscillator model.

A crystal has a *nominal* frequency and a manufacturing/thermal frequency
error in parts-per-million.  Its *effective* period is stored as an integer
number of picoseconds, which defines the exact edge grid used by all timer
arithmetic.  Because both the 24 MHz and the 32.768 kHz crystals carry
independent errors, the fast/slow frequency ratio is neither exact nor an
integer — precisely the situation the paper's fixed-point Step calibration
(Sec. 4.1.3) is designed for.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ClockError
from repro.power.domain import Component
from repro.units import PICOSECONDS_PER_SECOND, parts_per_million


class CrystalOscillator:
    """An on-board crystal oscillator (XTAL).

    The oscillator can be enabled and disabled at run time (ODRIPS turns
    the 24 MHz crystal off in deep idle).  Re-enabling incurs a start-up
    delay during which the output is not yet stable; edge queries inside
    the start-up window raise :class:`~repro.errors.ClockError`.

    Edge grid: while enabled from time ``t_on``, rising edges occur at
    ``t_on + startup + k * period_ps`` for ``k = 0, 1, 2, ...``.
    """

    def __init__(
        self,
        name: str,
        nominal_hz: float,
        ppm_error: float = 0.0,
        power_watts: float = 0.0,
        startup_time_ps: int = 0,
        power_component: Optional[Component] = None,
    ) -> None:
        if nominal_hz <= 0:
            raise ClockError(f"crystal {name}: frequency must be positive")
        self.name = name
        self.nominal_hz = nominal_hz
        self.ppm_error = ppm_error
        actual_hz = parts_per_million(nominal_hz, ppm_error)
        self.period_ps = round(PICOSECONDS_PER_SECOND / actual_hz)
        if self.period_ps <= 0:
            raise ClockError(f"crystal {name}: frequency too high for 1 ps resolution")
        self.power_watts = power_watts
        self.startup_time_ps = startup_time_ps
        self.power_component = power_component
        self._enabled = True
        self._anchor_ps = 0  # time of the first edge of the current run
        self.enable_count = 0
        self.disable_count = 0
        #: Clocks derived from this crystal (filled by register_consumer;
        #: lets repro.lint walk the complete clock graph).
        self.consumers: list = []
        if power_component is not None:
            power_component.set_power(power_watts)

    def register_consumer(self, clock: object) -> None:
        """Record a derived clock driven by this crystal."""
        self.consumers.append(clock)

    # --- effective frequency ----------------------------------------------------

    @property
    def effective_hz(self) -> float:
        """The exact frequency implied by the integer period grid."""
        return PICOSECONDS_PER_SECOND / self.period_ps

    # --- enable / disable ----------------------------------------------------------

    @property
    def enabled(self) -> bool:
        return self._enabled

    def disable(self, now_ps: int) -> None:
        """Stop the oscillator (saves its power; edges cease)."""
        if not self._enabled:
            return
        self._enabled = False
        self.disable_count += 1
        if self.power_component is not None:
            self.power_component.set_power(0.0)

    def enable(self, now_ps: int) -> None:
        """Restart the oscillator; stable after ``startup_time_ps``."""
        if self._enabled:
            return
        self._enabled = True
        self.enable_count += 1
        self._anchor_ps = now_ps + self.startup_time_ps
        if self.power_component is not None:
            self.power_component.set_power(self.power_watts)

    @property
    def anchor_ps(self) -> int:
        """Time of the first edge of the current enabled run."""
        return self._anchor_ps

    # --- edge arithmetic -------------------------------------------------------------

    def _check_stable(self, time_ps: int) -> None:
        if not self._enabled:
            raise ClockError(f"crystal {self.name} is disabled")
        if time_ps < self._anchor_ps:
            raise ClockError(
                f"crystal {self.name} not yet stable at t={time_ps}ps "
                f"(stable from t={self._anchor_ps}ps)"
            )

    def next_edge(self, time_ps: int) -> int:
        """First rising edge at or after ``time_ps``."""
        if not self._enabled:
            raise ClockError(f"crystal {self.name} is disabled")
        if time_ps <= self._anchor_ps:
            return self._anchor_ps
        offset = time_ps - self._anchor_ps
        k = -(-offset // self.period_ps)  # ceil division
        return self._anchor_ps + k * self.period_ps

    def previous_edge(self, time_ps: int) -> int:
        """Last rising edge at or before ``time_ps``."""
        self._check_stable(time_ps)
        offset = time_ps - self._anchor_ps
        return self._anchor_ps + (offset // self.period_ps) * self.period_ps

    def edges_in(self, start_ps: int, stop_ps: int) -> int:
        """Number of rising edges in the half-open interval [start, stop)."""
        if stop_ps <= start_ps:
            return 0
        self._check_stable(start_ps)
        first = self.next_edge(start_ps)
        if first >= stop_ps:
            return 0
        return (stop_ps - 1 - first) // self.period_ps + 1

    def edge_number(self, time_ps: int) -> int:
        """Index of the last edge at or before ``time_ps`` (0-based)."""
        self._check_stable(time_ps)
        return (time_ps - self._anchor_ps) // self.period_ps

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "on" if self._enabled else "off"
        return f"<XTAL {self.name} {self.nominal_hz:.0f}Hz {state}>"
