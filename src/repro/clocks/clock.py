"""Derived and gateable clocks.

A :class:`DerivedClock` divides a crystal by an integer ratio; a
:class:`GateableClock` adds a clock gate in front of a consumer.  Gating a
clock is free and instantaneous (an AND gate on the clock path); the power
saving shows up in the consumer's dynamic power, which the clock reports
through an optional power component scaled by frequency and activity.
"""

from __future__ import annotations

from typing import Optional

from repro.clocks.crystal import CrystalOscillator
from repro.errors import ClockError
from repro.power.domain import Component


class DerivedClock:
    """An integer divider of a crystal's edge grid."""

    def __init__(self, name: str, source: CrystalOscillator, divider: int = 1) -> None:
        if divider < 1:
            raise ClockError(f"clock {name}: divider must be >= 1")
        self.name = name
        self.source = source
        self.divider = divider
        #: Gateable clocks fed from this one (repro.lint clock-graph hook).
        self.consumers: list = []
        register = getattr(source, "register_consumer", None)
        if register is not None:
            register(self)

    def register_consumer(self, clock: object) -> None:
        """Record a gateable clock fed by this derived clock."""
        self.consumers.append(clock)

    @property
    def period_ps(self) -> int:
        return self.source.period_ps * self.divider

    @property
    def effective_hz(self) -> float:
        return self.source.effective_hz / self.divider

    @property
    def available(self) -> bool:
        """True when the source crystal is running."""
        return self.source.enabled

    def next_edge(self, time_ps: int) -> int:
        """First divided rising edge at or after ``time_ps``."""
        if not self.source.enabled:
            raise ClockError(f"clock {self.name}: source crystal is off")
        anchor = self.source.anchor_ps
        if time_ps <= anchor:
            return anchor
        offset = time_ps - anchor
        period = self.period_ps
        k = -(-offset // period)
        return anchor + k * period

    def edges_in(self, start_ps: int, stop_ps: int) -> int:
        """Number of divided edges in [start, stop)."""
        if stop_ps <= start_ps:
            return 0
        first = self.next_edge(start_ps)
        if first >= stop_ps:
            return 0
        return (stop_ps - 1 - first) // self.period_ps + 1


class GateableClock:
    """A clock gate feeding one consumer block.

    The gate tracks an optional power component representing the toggling
    power of the consumer's clock network: ``watts_per_hz * frequency``
    while ungated, zero while gated.  This models why parking the wake-up
    timer on a 32 kHz clock (instead of 24 MHz) saves power even before the
    crystal itself is turned off — a 730x slower clock toggles 730x less
    capacitance per second.
    """

    def __init__(
        self,
        name: str,
        source: DerivedClock,
        watts_per_hz: float = 0.0,
        power_component: Optional[Component] = None,
    ) -> None:
        self.name = name
        self.source = source
        self.watts_per_hz = watts_per_hz
        self.power_component = power_component
        self._gated = False
        self.gate_count = 0
        register = getattr(source, "register_consumer", None)
        if register is not None:
            register(self)
        self._update_power()

    @property
    def gated(self) -> bool:
        return self._gated

    @property
    def running(self) -> bool:
        return not self._gated and self.source.available

    def gate(self) -> None:
        """Stop the clock at the consumer (source keeps running)."""
        if not self._gated:
            self._gated = True
            self.gate_count += 1
            self._update_power()

    def ungate(self) -> None:
        """Let the clock through again."""
        if self._gated:
            self._gated = False
            self._update_power()

    def _update_power(self) -> None:
        if self.power_component is None:
            return
        if self._gated or not self.source.available:
            self.power_component.set_dynamic(0.0)
        else:
            self.power_component.set_dynamic(self.watts_per_hz * self.source.effective_hz)

    def refresh(self) -> None:
        """Re-evaluate power after the source crystal changed state."""
        self._update_power()

    def next_edge(self, time_ps: int) -> int:
        """First edge delivered to the consumer at or after ``time_ps``."""
        if self._gated:
            raise ClockError(f"clock {self.name} is gated")
        return self.source.next_edge(time_ps)

    def edges_in(self, start_ps: int, stop_ps: int) -> int:
        """Edges delivered in [start, stop); zero while gated."""
        if self._gated:
            return 0
        return self.source.edges_in(start_ps, stop_ps)

    @property
    def period_ps(self) -> int:
        return self.source.period_ps

    @property
    def effective_hz(self) -> float:
        return self.source.effective_hz
