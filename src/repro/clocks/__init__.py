"""Clock sources and distribution.

Models the two platform crystals of Fig. 1(a)/Fig. 3(a) — the 24 MHz fast
crystal and the 32.768 kHz real-time-clock crystal — plus gateable derived
clocks and the clock-distribution buffers whose power scales with
frequency.

Edges are computed, never ticked: a :class:`CrystalOscillator` holds an
integer period in picoseconds, so "the first rising edge at or after t" and
"how many edges fall inside [t0, t1)" are exact integer arithmetic.  This
is what makes the Step-calibration algorithm of Sec. 4.1.3 reproducible
bit-for-bit.
"""

from repro.clocks.crystal import CrystalOscillator
from repro.clocks.clock import DerivedClock, GateableClock
from repro.clocks.tree import ClockBuffer, ClockTree

__all__ = [
    "ClockBuffer",
    "ClockTree",
    "CrystalOscillator",
    "DerivedClock",
    "GateableClock",
]
