"""Clock distribution tree with per-buffer power accounting.

The differential 24 MHz clock buffers are one of the AON IO loads the paper
power-gates (Sec. 5, "differential clock (24 MHz) buffers").  A
:class:`ClockBuffer` draws power proportional to the frequency it
distributes whenever its input crystal runs and the buffer is enabled; the
:class:`ClockTree` groups buffers and exposes bulk enable/disable used by
the ODRIPS entry flow.
"""

from __future__ import annotations

from typing import Dict, List

from repro.clocks.crystal import CrystalOscillator
from repro.errors import ClockError
from repro.power.domain import Component, PowerDomain


class ClockBuffer:
    """A distribution buffer re-driving a crystal's clock to consumers."""

    def __init__(
        self,
        name: str,
        source: CrystalOscillator,
        domain: PowerDomain,
        watts_per_hz: float,
        static_watts: float = 0.0,
    ) -> None:
        self.name = name
        self.source = source
        self.watts_per_hz = watts_per_hz
        self.static_watts = static_watts
        self.component: Component = domain.new_component(f"clkbuf:{name}")
        self._enabled = True
        self.refresh()

    @property
    def enabled(self) -> bool:
        return self._enabled

    def enable(self) -> None:
        self._enabled = True
        self.refresh()

    def disable(self) -> None:
        self._enabled = False
        self.refresh()

    def refresh(self) -> None:
        """Recompute the buffer's draw from crystal + enable state."""
        if self._enabled and self.source.enabled:
            dynamic = self.watts_per_hz * self.source.effective_hz
            self.component.set_power(self.static_watts, dynamic)
        else:
            self.component.set_power(0.0, 0.0)


class ClockTree:
    """A named collection of clock buffers with bulk control."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._buffers: Dict[str, ClockBuffer] = {}

    def add(self, buffer: ClockBuffer) -> ClockBuffer:
        if buffer.name in self._buffers:
            raise ClockError(f"duplicate clock buffer {buffer.name!r}")
        self._buffers[buffer.name] = buffer
        return buffer

    def buffer(self, name: str) -> ClockBuffer:
        try:
            return self._buffers[name]
        except KeyError:
            raise ClockError(f"no clock buffer named {name!r}") from None

    @property
    def buffers(self) -> List[ClockBuffer]:
        return list(self._buffers.values())

    def disable_all(self) -> None:
        for buffer in self._buffers.values():
            buffer.disable()

    def enable_all(self) -> None:
        for buffer in self._buffers.values():
            buffer.enable()

    def refresh(self) -> None:
        """Re-evaluate all buffers (after a crystal state change)."""
        for buffer in self._buffers.values():
            buffer.refresh()

    def total_power(self) -> float:
        """Sum of buffer component draws in watts."""
        return sum(buffer.component.power_watts for buffer in self._buffers.values())
