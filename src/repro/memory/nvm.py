"""Emerging non-volatile memories: PCM and embedded MRAM (Sec. 8.3).

Both devices retain data with their supply removed, which is exactly what
makes them attractive as context stores:

* **eMRAM** (on-die): the paper assumes an *optimistic* design with
  SRAM-comparable endurance, power, and performance — the context stays on
  die and the voltage source is simply turned off in ODRIPS
  (``ODRIPS-MRAM``).
* **PCM** (replacing DRAM as main memory): non-volatility obviates
  self-refresh *and* the CKE drive from the processor (``ODRIPS-PCM``),
  which is where the large 37 % average-power reduction comes from.

Both track write endurance so tests can exercise the paper's stated
concern that "many emerging eNVMs still suffer from low endurance".
"""

from __future__ import annotations

from typing import Optional

from repro.errors import MemoryFault
from repro.memory.store import SparseMemory
from repro.power.domain import Component
from repro.units import GIB, PICOSECONDS_PER_SECOND


class NVMDevice:
    """Base non-volatile device: zero standby power, persistent contents."""

    def __init__(
        self,
        name: str,
        capacity_bytes: int,
        read_bandwidth_bytes_per_s: float,
        write_bandwidth_bytes_per_s: float,
        read_energy_pj_per_byte: float,
        write_energy_pj_per_byte: float,
        base_read_latency_ps: int,
        base_write_latency_ps: int,
        standby_watts: float = 0.0,
        endurance_cycles: Optional[int] = None,
        power_component: Optional[Component] = None,
    ) -> None:
        self.name = name
        self.capacity_bytes = capacity_bytes
        self.read_bandwidth_bytes_per_s = read_bandwidth_bytes_per_s
        self.write_bandwidth_bytes_per_s = write_bandwidth_bytes_per_s
        self.read_energy_pj_per_byte = read_energy_pj_per_byte
        self.write_energy_pj_per_byte = write_energy_pj_per_byte
        self.base_read_latency_ps = base_read_latency_ps
        self.base_write_latency_ps = base_write_latency_ps
        self.standby_watts = standby_watts
        #: Interface/controller draw while the host actively uses the
        #: device (bus PHY, row buffers).  An NVM used as *main memory*
        #: pays this in the Active state just like DRAM; non-volatility
        #: only removes the standby (refresh/CKE) cost.
        self.interface_watts = 0.0
        self.endurance_cycles = endurance_cycles
        self.power_component = power_component
        self._store = SparseMemory(capacity_bytes)
        self._powered = True
        self._interface_active = False
        self.access_energy_joules = 0.0
        self.bytes_read = 0
        self.bytes_written = 0
        self.max_writes_per_region = 0
        self._write_counts: dict = {}
        self._update_power()

    # --- power ---------------------------------------------------------------

    @property
    def powered(self) -> bool:
        return self._powered

    def power_off(self) -> None:
        """Remove power.  Contents persist — that is the whole point."""
        self._powered = False
        self._update_power()

    def power_on(self) -> None:
        """Restore power; contents are exactly as left."""
        self._powered = True
        self._update_power()

    def set_interface_active(self, active: bool) -> None:
        """Mark the host interface as in-use (Active state) or idle."""
        self._interface_active = active
        self._update_power()

    def _update_power(self) -> None:
        if self.power_component is None:
            return
        if not self._powered:
            self.power_component.set_power(0.0)
            return
        watts = self.standby_watts
        if self._interface_active:
            watts += self.interface_watts
        self.power_component.set_power(watts)

    # --- access ----------------------------------------------------------------

    def _check_powered(self) -> None:
        if not self._powered:
            raise MemoryFault(f"{self.name}: access while powered off")

    def read(self, address: int, length: int) -> tuple:
        """Read bytes; returns ``(data, latency_ps)``."""
        self._check_powered()
        data = self._store.read(address, length)
        self.bytes_read += length
        self.access_energy_joules += self.read_energy_pj_per_byte * 1e-12 * length
        streaming = length / self.read_bandwidth_bytes_per_s * PICOSECONDS_PER_SECOND
        return data, self.base_read_latency_ps + round(streaming)

    def write(self, address: int, data: bytes) -> int:
        """Write bytes; returns latency and tracks endurance per 4 KiB region."""
        self._check_powered()
        self._store.write(address, data)
        self.bytes_written += len(data)
        self.access_energy_joules += self.write_energy_pj_per_byte * 1e-12 * len(data)
        first_region = address // 4096
        last_region = (address + max(len(data) - 1, 0)) // 4096
        for region in range(first_region, last_region + 1):
            count = self._write_counts.get(region, 0) + 1
            self._write_counts[region] = count
            if count > self.max_writes_per_region:
                self.max_writes_per_region = count
            if self.endurance_cycles is not None and count > self.endurance_cycles:
                raise MemoryFault(
                    f"{self.name}: endurance exceeded on region {region} "
                    f"({count} > {self.endurance_cycles} writes)"
                )
        streaming = len(data) / self.write_bandwidth_bytes_per_s * PICOSECONDS_PER_SECOND
        return self.base_write_latency_ps + round(streaming)

    def wear_level_report(self) -> dict:
        """Write counts per 4 KiB region (diagnostic for endurance tests)."""
        return dict(self._write_counts)


class PCMDevice(NVMDevice):
    """Phase-change memory as a DRAM-replacing main memory.

    Parameters follow the PCM literature the paper cites (Lee et al.,
    Qureshi et al.): reads a few times slower than DRAM, writes an order
    of magnitude slower and more energetic, endurance around 1e8 writes.
    """

    def __init__(
        self,
        name: str = "pcm",
        capacity_bytes: int = 8 * GIB,
        power_component: Optional[Component] = None,
    ) -> None:
        super().__init__(
            name=name,
            capacity_bytes=capacity_bytes,
            read_bandwidth_bytes_per_s=6.0e9,
            write_bandwidth_bytes_per_s=1.5e9,
            read_energy_pj_per_byte=80.0,
            write_energy_pj_per_byte=600.0,
            base_read_latency_ps=150_000,       # ~150 ns
            base_write_latency_ps=1_000_000,    # ~1 us
            standby_watts=0.0,                  # no refresh, no CKE
            endurance_cycles=100_000_000,
            power_component=power_component,
        )


class EMRAMDevice(NVMDevice):
    """Embedded MRAM context store (on-die, optimistic design).

    The paper's Sec. 8.3 assumes eMRAM "that has comparable 1) endurance,
    2) power consumption, and 3) performance to SRAM", so the device is
    fast, cheap to access, and simply turned off in ODRIPS-MRAM.
    """

    def __init__(
        self,
        name: str = "emram",
        capacity_bytes: int = 256 * 1024,
        power_component: Optional[Component] = None,
    ) -> None:
        super().__init__(
            name=name,
            capacity_bytes=capacity_bytes,
            read_bandwidth_bytes_per_s=20.0e9,
            write_bandwidth_bytes_per_s=10.0e9,
            read_energy_pj_per_byte=1.0,
            write_energy_pj_per_byte=2.0,
            base_read_latency_ps=5_000,     # ~5 ns
            base_write_latency_ps=10_000,   # ~10 ns
            standby_watts=0.0,
            endurance_cycles=None,          # SRAM-comparable endurance
            power_component=power_component,
        )
