"""Memory regions and the protected-range register.

Fig. 4: "a protected memory range register (Context/SGX RR) inside the
memory-controller ... determines if the memory access is to a protected
memory region or to the rest of the memory.  An access to a protected
memory region is redirected to the memory encryption-engine (MEE)."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import MemoryFault


@dataclass(frozen=True)
class MemoryRegion:
    """A half-open byte range ``[base, base + size)``."""

    base: int
    size: int

    def __post_init__(self) -> None:
        if self.base < 0 or self.size <= 0:
            raise MemoryFault(f"invalid region base={self.base} size={self.size}")

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, address: int, length: int = 1) -> bool:
        """True when the whole access lies inside the region."""
        return self.base <= address and address + length <= self.end

    def overlaps(self, address: int, length: int) -> bool:
        """True when any byte of the access lies inside the region."""
        return address < self.end and address + length > self.base

    def offset_of(self, address: int) -> int:
        """Offset of ``address`` within the region."""
        if not self.contains(address):
            raise MemoryFault(f"address {address} outside region [{self.base}, {self.end})")
        return address - self.base


class RangeRegister:
    """A lockable protected-range register (the Context/SGX RR).

    Once locked, the range cannot be reprogrammed until a platform reset —
    matching how SGX range registers behave so that untrusted software
    cannot move the protected window from under the MEE.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._region: MemoryRegion | None = None
        self._locked = False

    @property
    def region(self) -> MemoryRegion | None:
        return self._region

    @property
    def locked(self) -> bool:
        return self._locked

    def program(self, region: MemoryRegion) -> None:
        """Set the protected range.  Illegal after :meth:`lock`."""
        if self._locked:
            raise MemoryFault(f"{self.name}: locked until reset")
        self._region = region

    def lock(self) -> None:
        """Freeze the register until :meth:`reset`."""
        if self._region is None:
            raise MemoryFault(f"{self.name}: nothing programmed")
        self._locked = True

    def reset(self) -> None:
        """Platform reset: clear and unlock."""
        self._region = None
        self._locked = False

    def matches(self, address: int, length: int) -> bool:
        """True when the access falls entirely inside the protected range."""
        return self._region is not None and self._region.contains(address, length)

    def straddles(self, address: int, length: int) -> bool:
        """True when the access crosses the protection boundary.

        Straddling accesses are illegal: they would let an attacker read
        protected bytes through an unprotected request.
        """
        if self._region is None:
            return False
        return self._region.overlaps(address, length) and not self._region.contains(
            address, length
        )
