"""Sparse byte-addressable backing store.

Devices up to gigabytes are modeled without allocating their capacity:
pages materialize on first write.  Reads of never-written bytes return the
device's fill value (DRAM powers up with undefined content; we use 0 for
determinism).
"""

from __future__ import annotations

from typing import Dict

from repro.errors import MemoryFault

PAGE_SIZE = 4096


class SparseMemory:
    """A dict-of-pages byte store with range checking."""

    def __init__(self, capacity_bytes: int, fill: int = 0) -> None:
        if capacity_bytes <= 0:
            raise MemoryFault(f"capacity must be positive, got {capacity_bytes}")
        if not 0 <= fill <= 0xFF:
            raise MemoryFault(f"fill byte out of range: {fill}")
        self.capacity_bytes = capacity_bytes
        self.fill = fill
        self._pages: Dict[int, bytearray] = {}

    def _check_range(self, address: int, length: int) -> None:
        if address < 0 or length < 0 or address + length > self.capacity_bytes:
            raise MemoryFault(
                f"access [{address}, {address + length}) outside capacity "
                f"{self.capacity_bytes}"
            )

    def read(self, address: int, length: int) -> bytes:
        """Read ``length`` bytes starting at ``address``."""
        self._check_range(address, length)
        out = bytearray(length)
        offset = 0
        while offset < length:
            page_index, page_offset = divmod(address + offset, PAGE_SIZE)
            chunk = min(length - offset, PAGE_SIZE - page_offset)
            page = self._pages.get(page_index)
            if page is None:
                out[offset : offset + chunk] = bytes([self.fill]) * chunk
            else:
                out[offset : offset + chunk] = page[page_offset : page_offset + chunk]
            offset += chunk
        return bytes(out)

    def write(self, address: int, data: bytes) -> None:
        """Write ``data`` starting at ``address``."""
        self._check_range(address, len(data))
        offset = 0
        while offset < len(data):
            page_index, page_offset = divmod(address + offset, PAGE_SIZE)
            chunk = min(len(data) - offset, PAGE_SIZE - page_offset)
            page = self._pages.get(page_index)
            if page is None:
                page = bytearray([self.fill]) * PAGE_SIZE
                self._pages[page_index] = page
            page[page_offset : page_offset + chunk] = data[offset : offset + chunk]
            offset += chunk

    def erase(self) -> None:
        """Drop all content (models power loss of volatile devices)."""
        self._pages.clear()

    @property
    def resident_pages(self) -> int:
        """Number of materialized pages (diagnostic)."""
        return len(self._pages)
