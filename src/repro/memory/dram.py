"""DDR3L-style DRAM device with self-refresh and frequency scaling.

DRIPS entry step (4) "plac[es] DRAM into self-refresh mode with the help
of the CKE signal to avoid data loss" (Sec. 2.2).  In self-refresh the
device refreshes itself from its internal oscillator; the only thing the
processor must keep alive is the CKE drive — which is exactly the cost
that disappears when PCM replaces DRAM (Sec. 8.3).

Frequency scaling (Sec. 8.2) changes both the active power and the
effective bandwidth, which in turn stretches the context save/restore
latency.
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.errors import MemoryFault
from repro.memory.store import SparseMemory
from repro.power.domain import Component
from repro.units import GIB, PICOSECONDS_PER_SECOND


class DRAMState(enum.Enum):
    """Power state of the DRAM device."""

    ACTIVE = "active"           # clocked, accessible
    SELF_REFRESH = "self_refresh"  # CKE low, data retained internally
    OFF = "off"                 # power removed, data lost


class DRAMDevice:
    """A dual-channel DDR3L DIMM model.

    ``transfer_rate_hz`` is the data rate (e.g. 1.6e9 for DDR3L-1600).
    Effective sequential bandwidth is
    ``transfer_rate * bus_bytes * channels * bus_efficiency``.
    """

    def __init__(
        self,
        name: str,
        capacity_bytes: int = 8 * GIB,
        transfer_rate_hz: float = 1.6e9,
        channels: int = 2,
        bus_bytes: int = 8,
        bus_efficiency: float = 0.7,
        self_refresh_watts_per_gib: float = 0.0055,
        active_standby_watts_per_gib: float = 0.055,
        access_energy_pj_per_byte_at_1600: float = 40.0,
        base_access_latency_ps: int = 50_000,  # ~50 ns closed-page access
        power_component: Optional[Component] = None,
    ) -> None:
        self.name = name
        self.capacity_bytes = capacity_bytes
        self.transfer_rate_hz = transfer_rate_hz
        self.reference_rate_hz = 1.6e9
        self.channels = channels
        self.bus_bytes = bus_bytes
        self.bus_efficiency = bus_efficiency
        self.self_refresh_watts_per_gib = self_refresh_watts_per_gib
        self.active_standby_watts_per_gib = active_standby_watts_per_gib
        self.access_energy_pj_per_byte_at_1600 = access_energy_pj_per_byte_at_1600
        self.base_access_latency_ps = base_access_latency_ps
        self.power_component = power_component
        self._store = SparseMemory(capacity_bytes)
        self._state = DRAMState.ACTIVE
        self.access_energy_joules = 0.0
        self.bytes_read = 0
        self.bytes_written = 0
        self._update_power()

    # --- derived quantities ------------------------------------------------

    @property
    def capacity_gib(self) -> float:
        return self.capacity_bytes / GIB

    def bandwidth_bytes_per_s(self) -> float:
        """Effective sequential bandwidth at the current frequency."""
        return (
            self.transfer_rate_hz * self.bus_bytes * self.channels * self.bus_efficiency
        )

    def set_frequency(self, transfer_rate_hz: float) -> None:
        """Re-train the interface at a new data rate (Sec. 8.2 sweep)."""
        if transfer_rate_hz <= 0:
            raise MemoryFault(f"{self.name}: frequency must be positive")
        if self._state != DRAMState.ACTIVE:
            raise MemoryFault(f"{self.name}: retrain only in active state")
        self.transfer_rate_hz = transfer_rate_hz
        self._update_power()

    def _frequency_scale(self) -> float:
        return self.transfer_rate_hz / self.reference_rate_hz

    # --- power states --------------------------------------------------------

    @property
    def state(self) -> DRAMState:
        return self._state

    def enter_self_refresh(self) -> None:
        """CKE low: the device refreshes itself (data retained)."""
        if self._state == DRAMState.OFF:
            raise MemoryFault(f"{self.name}: device is off")
        self._state = DRAMState.SELF_REFRESH
        self._update_power()

    def exit_self_refresh(self) -> None:
        """CKE high: back to the active/idle state."""
        if self._state == DRAMState.OFF:
            raise MemoryFault(f"{self.name}: device is off")
        self._state = DRAMState.ACTIVE
        self._update_power()

    def power_off(self) -> None:
        """Remove power: all data is lost."""
        self._state = DRAMState.OFF
        self._store.erase()
        self._update_power()

    def power_on(self) -> None:
        """Restore power (content undefined, modeled zero-filled)."""
        self._state = DRAMState.ACTIVE
        self._update_power()

    def self_refresh_power_watts(self) -> float:
        """Self-refresh draw for the full device (frequency independent)."""
        return self.self_refresh_watts_per_gib * self.capacity_gib

    def active_standby_power_watts(self) -> float:
        """Idle-active draw; interface power scales with frequency."""
        scale = 0.4 + 0.6 * self._frequency_scale()
        return self.active_standby_watts_per_gib * self.capacity_gib * scale

    def _update_power(self) -> None:
        if self.power_component is None:
            return
        if self._state == DRAMState.OFF:
            self.power_component.set_power(0.0)
        elif self._state == DRAMState.SELF_REFRESH:
            self.power_component.set_power(self.self_refresh_power_watts())
        else:
            self.power_component.set_power(self.active_standby_power_watts())

    # --- access ----------------------------------------------------------------

    def _check_accessible(self) -> None:
        if self._state != DRAMState.ACTIVE:
            raise MemoryFault(f"{self.name}: access in state {self._state.value}")

    def transfer_latency_ps(self, length: int) -> int:
        """Latency of a sequential ``length``-byte transfer."""
        if length <= 0:
            return 0
        streaming = length / self.bandwidth_bytes_per_s() * PICOSECONDS_PER_SECOND
        return self.base_access_latency_ps + round(streaming)

    def _access_energy(self, length: int) -> float:
        # Energy per byte falls slightly at lower frequency (less interface
        # toggling), dominated by the array energy which is constant.
        scale = 0.7 + 0.3 * self._frequency_scale()
        return self.access_energy_pj_per_byte_at_1600 * 1e-12 * length * scale

    def read(self, address: int, length: int) -> tuple:
        """Read bytes; returns ``(data, latency_ps)``."""
        self._check_accessible()
        data = self._store.read(address, length)
        self.bytes_read += length
        self.access_energy_joules += self._access_energy(length)
        return data, self.transfer_latency_ps(length)

    def write(self, address: int, data: bytes) -> int:
        """Write bytes; returns the transfer latency in picoseconds."""
        self._check_accessible()
        self._store.write(address, data)
        self.bytes_written += len(data)
        self.access_energy_joules += self._access_energy(len(data))
        return self.transfer_latency_ps(len(data))
