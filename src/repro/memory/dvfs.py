"""Dynamic memory frequency scaling (the Sec. 8.2 recommendation).

The paper finds that *statically* under-clocking DRAM helps connected
standby slightly but "might degrade performance of other workloads", and
concludes that it would be "more efficient to apply dynamic voltage and
frequency scaling to main memory, similar to [17 — MemScale]".  This
module implements that recommendation:

* :class:`MemoryDVFSGovernor` — retrains the DRAM interface when the
  platform's usage mode changes: a low rate while in connected standby
  (nothing is bandwidth-bound), the full rate when the user is active.
* :func:`memory_dvfs_comparison` — the evaluation the paper sketches:
  static-high vs static-low vs dynamic across a day that mixes standby
  and interactive use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.config import PlatformConfig, skylake_config
from repro.errors import ConfigError

# NOTE: repro.core imports repro.system which imports repro.memory, so the
# controller/technique types used by memory_dvfs_comparison are imported
# lazily inside the function to keep the package import graph acyclic.


class MemoryDVFSGovernor:
    """Switches the DRAM data rate with the platform usage mode.

    Retraining is only legal while the device is in its active state, so
    the governor defers a pending retrain until the platform reports the
    memory is accessible again.  A retrain costs ``retrain_latency_ps``
    of memory unavailability (frequency-change DLL re-lock), counted for
    reporting.
    """

    def __init__(
        self,
        platform,
        standby_rate_hz: float = 0.8e9,
        interactive_rate_hz: float = 1.6e9,
        retrain_latency_ps: int = 5_000_000,  # ~5 us DLL re-lock
    ) -> None:
        if standby_rate_hz <= 0 or interactive_rate_hz < standby_rate_hz:
            raise ConfigError("need interactive rate >= standby rate > 0")
        self.platform = platform
        self.standby_rate_hz = standby_rate_hz
        self.interactive_rate_hz = interactive_rate_hz
        self.retrain_latency_ps = retrain_latency_ps
        self.retrain_count = 0
        self.retrain_time_ps = 0
        self._mode = "interactive"

    @property
    def mode(self) -> str:
        return self._mode

    def enter_standby_mode(self) -> None:
        """User away: run the memory at the low rate."""
        self._retrain(self.standby_rate_hz, "standby")

    def enter_interactive_mode(self) -> None:
        """User back: restore full memory bandwidth."""
        self._retrain(self.interactive_rate_hz, "interactive")

    def _retrain(self, rate_hz: float, mode: str) -> None:
        if self._mode == mode:
            return
        memory = self.platform.board.memory
        if not hasattr(memory, "set_frequency"):
            self._mode = mode  # PCM main memory: nothing to retrain
            return
        if memory.state.value != "active":
            raise ConfigError("retrain only while the memory is accessible")
        memory.set_frequency(rate_hz)
        self._mode = mode
        self.retrain_count += 1
        self.retrain_time_ps += self.retrain_latency_ps


@dataclass(frozen=True)
class DVFSPolicyResult:
    """One policy's outcome over the mixed day."""

    policy: str
    day_energy_wh: float
    standby_power_mw: float
    interactive_slowdown: float


#: How much an interactive (memory-sensitive) workload stretches when the
#: DRAM rate drops: runtime scale = 1 + sensitivity * (full/rate - 1).
INTERACTIVE_MEMORY_SENSITIVITY = 0.35

#: Interactive (screen-on) platform power at full DRAM rate, watts.
INTERACTIVE_POWER_W = 8.0


def _interactive_energy_wh(hours: float, rate_hz: float, full_rate_hz: float) -> float:
    """Energy of the interactive hours at a given DRAM rate.

    Lower rate saves DRAM interface power but stretches runtime; for a
    memory-sensitive mix the stretch dominates — the paper's
    "might degrade performance ... and therefore even result in an
    increase in the overall platform energy consumption" (Sec. 8.2).
    """
    slowdown = 1.0 + INTERACTIVE_MEMORY_SENSITIVITY * (full_rate_hz / rate_hz - 1.0)
    dram_scale = 0.4 + 0.6 * (rate_hz / full_rate_hz)
    power = INTERACTIVE_POWER_W - 0.6 * (1.0 - dram_scale)
    return power * hours * slowdown


def memory_dvfs_comparison(
    config: Optional[PlatformConfig] = None,
    standby_hours: float = 21.0,
    interactive_hours: float = 3.0,
    low_rate_hz: float = 0.8e9,
    cycles: int = 1,
) -> List[DVFSPolicyResult]:
    """Static-high vs static-low vs dynamic DVFS over a mixed day."""
    from repro.core.odrips import ODRIPSController
    from repro.core.techniques import TechniqueSet

    cfg = config if config is not None else skylake_config()
    full_rate = cfg.dram_rate_hz

    def standby_power(rate_hz: float) -> float:
        controller = ODRIPSController(TechniqueSet.odrips(), config=cfg)
        return controller.measure(cycles=cycles, dram_rate_hz=rate_hz).average_power_w

    standby_high = standby_power(full_rate)
    standby_low = standby_power(low_rate_hz)

    results = []
    for policy, standby_w, interactive_rate in [
        ("static full rate", standby_high, full_rate),
        ("static low rate", standby_low, low_rate_hz),
        ("dynamic DVFS (recommended)", standby_low, full_rate),
    ]:
        energy_wh = (
            standby_w * standby_hours
            + _interactive_energy_wh(interactive_hours, interactive_rate, full_rate)
        )
        slowdown = 1.0 + INTERACTIVE_MEMORY_SENSITIVITY * (
            full_rate / interactive_rate - 1.0
        )
        results.append(
            DVFSPolicyResult(
                policy=policy,
                day_energy_wh=energy_wh,
                standby_power_mw=standby_w * 1e3,
                interactive_slowdown=slowdown,
            )
        )
    return results
