"""Wear leveling for non-volatile context stores (Sec. 6.1 concern).

"Many emerging eNVMs still suffer from low endurance" — and ODRIPS-PCM
rewrites the ~200 KB context region on *every* DRIPS entry.  A rotating
allocator spreads those writes across the (huge, Sec. 6.3: 64 MB) SGX
region so no PCM cell sees more than 1/N of the traffic.

* :class:`RotatingContextAllocator` — round-robin slot allocator with
  write accounting.
* :func:`years_to_wearout` — lifetime arithmetic for the bench.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.errors import ConfigError, MemoryFault


class RotatingContextAllocator:
    """Round-robin placement of the context inside the protected region.

    Each DRIPS entry asks for a fresh slot; the allocator walks the
    region so every slot is written once per N cycles.  Alignment is
    kept at 64 B (the MEE block size) so slots never share integrity
    blocks.
    """

    BLOCK = 64

    def __init__(self, region_capacity_bytes: int, context_bytes: int) -> None:
        if context_bytes <= 0:
            raise ConfigError("context size must be positive")
        if region_capacity_bytes < context_bytes:
            raise ConfigError("region smaller than the context")
        slot_bytes = -(-context_bytes // self.BLOCK) * self.BLOCK
        self.slot_bytes = slot_bytes
        self.slots = region_capacity_bytes // slot_bytes
        self.context_bytes = context_bytes
        self._next = 0
        self.writes_per_slot: Dict[int, int] = {}

    def allocate(self) -> int:
        """Return the byte offset for this cycle's context save."""
        slot = self._next
        self._next = (self._next + 1) % self.slots
        self.writes_per_slot[slot] = self.writes_per_slot.get(slot, 0) + 1
        return slot * self.slot_bytes

    @property
    def max_slot_writes(self) -> int:
        return max(self.writes_per_slot.values(), default=0)

    def wear_ratio(self) -> float:
        """max/mean slot writes; 1.0 is perfectly level."""
        if not self.writes_per_slot:
            return 1.0
        total = sum(self.writes_per_slot.values())
        mean = total / self.slots
        return self.max_slot_writes / mean if mean else 1.0

    def check_endurance(self, endurance_cycles: int) -> None:
        """Fault when any slot exceeded the cell endurance."""
        if self.max_slot_writes > endurance_cycles:
            raise MemoryFault(
                f"slot exceeded endurance: {self.max_slot_writes} > {endurance_cycles}"
            )


@dataclass(frozen=True)
class WearoutEstimate:
    slots: int
    saves_per_day: float
    endurance_cycles: int
    years: float


def years_to_wearout(
    region_capacity_bytes: int,
    context_bytes: int,
    endurance_cycles: int = 100_000_000,
    idle_interval_s: float = 30.0,
) -> WearoutEstimate:
    """Lifetime of the PCM context region under connected standby.

    One save per standby cycle; rotation divides the per-cell write rate
    by the slot count.
    """
    if idle_interval_s <= 0:
        raise ConfigError("idle interval must be positive")
    allocator = RotatingContextAllocator(region_capacity_bytes, context_bytes)
    saves_per_day = 86_400.0 / idle_interval_s
    writes_per_slot_per_day = saves_per_day / allocator.slots
    days = endurance_cycles / writes_per_slot_per_day
    return WearoutEstimate(
        slots=allocator.slots,
        saves_per_day=saves_per_day,
        endurance_cycles=endurance_cycles,
        years=days / 365.25,
    )
