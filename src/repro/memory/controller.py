"""The memory controller: routing, protection, and self-refresh control.

Implements the system-agent-resident controller of Fig. 4: a protected
range register (Context/SGX RR) redirects matching accesses through the
MEE; everything else goes straight to the device.  The controller also
owns the CKE signal that places DRAM into self-refresh during DRIPS entry
(step 4 of the entry flow, Sec. 2.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.errors import MemoryFault
from repro.memory.region import MemoryRegion, RangeRegister
from repro.sim.signals import Signal


@dataclass
class AccessStats:
    """Cumulative controller traffic statistics."""

    reads: int = 0
    writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    protected_reads: int = 0
    protected_writes: int = 0

    def reset(self) -> None:
        self.reads = 0
        self.writes = 0
        self.bytes_read = 0
        self.bytes_written = 0
        self.protected_reads = 0
        self.protected_writes = 0


class MemoryController:
    """Routes CPU-side accesses to the memory device, via the MEE when
    the protected range register matches."""

    def __init__(self, name: str, device, mee=None) -> None:
        self.name = name
        self.device = device
        self.mee = mee
        self.range_register = RangeRegister(f"{name}.context_rr")
        self.cke = Signal(f"{name}.cke", initial=True)  # high = clocked
        self.stats = AccessStats()
        self._powered = True

    # --- power ---------------------------------------------------------------

    @property
    def powered(self) -> bool:
        return self._powered

    def power_off(self) -> None:
        """The controller loses state in DRIPS; Boot FSM restores it."""
        self._powered = False

    def power_on(self) -> None:
        self._powered = True

    def _check_powered(self) -> None:
        if not self._powered:
            raise MemoryFault(f"{self.name}: controller is powered off")

    # --- protection setup ------------------------------------------------------

    def attach_mee(self, mee, region: MemoryRegion) -> None:
        """Install the MEE over ``region`` and lock the range register."""
        self.mee = mee
        self.range_register.program(region)
        self.range_register.lock()

    # --- data path ----------------------------------------------------------------

    def read(self, address: int, length: int) -> Tuple[bytes, int]:
        """Read ``length`` bytes; returns ``(data, latency_ps)``."""
        self._check_powered()
        if self.range_register.straddles(address, length):
            raise MemoryFault(
                f"{self.name}: access [{address}, {address + length}) straddles "
                "the protected-region boundary"
            )
        self.stats.reads += 1
        self.stats.bytes_read += length
        if self.range_register.matches(address, length):
            if self.mee is None:
                raise MemoryFault(f"{self.name}: protected access without an MEE")
            self.stats.protected_reads += 1
            region = self.range_register.region
            assert region is not None
            return self.mee.read(address - region.base, length)
        return self.device.read(address, length)

    def write(self, address: int, data: bytes) -> int:
        """Write bytes; returns the access latency in picoseconds."""
        self._check_powered()
        if self.range_register.straddles(address, len(data)):
            raise MemoryFault(
                f"{self.name}: access [{address}, {address + len(data)}) straddles "
                "the protected-region boundary"
            )
        self.stats.writes += 1
        self.stats.bytes_written += len(data)
        if self.range_register.matches(address, len(data)):
            if self.mee is None:
                raise MemoryFault(f"{self.name}: protected access without an MEE")
            self.stats.protected_writes += 1
            region = self.range_register.region
            assert region is not None
            return self.mee.write(address - region.base, data)
        return self.device.write(address, data)

    # --- self-refresh control ---------------------------------------------------------

    def enter_self_refresh(self) -> None:
        """Drive CKE low and put the device into self-refresh."""
        if hasattr(self.device, "enter_self_refresh"):
            self.device.enter_self_refresh()
        self.cke.deassert()

    def exit_self_refresh(self) -> None:
        """Raise CKE and bring the device back to the active state."""
        self.cke.assert_()
        if hasattr(self.device, "exit_self_refresh"):
            self.device.exit_self_refresh()

    @property
    def in_self_refresh(self) -> bool:
        return not bool(self.cke)

    # --- context save/restore state ------------------------------------------------------

    def export_state(self) -> dict:
        """The controller configuration the Boot FSM must restore."""
        region = self.range_register.region
        return {
            "protected_base": region.base if region else None,
            "protected_size": region.size if region else None,
            "locked": self.range_register.locked,
        }

    def import_state(self, state: dict) -> None:
        """Restore configuration after a power cycle."""
        if state.get("protected_base") is not None:
            self.range_register.reset()
            self.range_register.program(
                MemoryRegion(state["protected_base"], state["protected_size"])
            )
            if state.get("locked"):
                self.range_register.lock()
