"""On-die SRAM with process-dependent retention leakage.

Observation 3 (Sec. 3): the save/restore SRAMs hold the processor context
in DRIPS at *retention voltage* — "the lowest possible power supply
voltage at which the data can be retained" — and still burn 9 % of
platform DRIPS power, because the processor's performance-optimized
process leaks nearly **five times** more than equal-capacity SRAM in the
chipset's power-optimized process.

States:

* ``OPERATIONAL`` — full voltage; reads and writes allowed.
* ``RETENTION``   — minimum retention voltage; data held, no access.
* ``OFF``         — power removed; data lost.
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.errors import MemoryFault
from repro.memory.store import SparseMemory
from repro.power.domain import Component


class SRAMState(enum.Enum):
    """Power state of an SRAM array."""

    OPERATIONAL = "operational"
    RETENTION = "retention"
    OFF = "off"


class SRAMDevice:
    """An SRAM array with leakage scaled by state and process.

    ``leakage_watts_per_byte`` is the *retention-voltage* leakage of the
    array's process.  Operational leakage is higher by
    ``operational_leakage_factor`` (full supply voltage), and access adds
    dynamic power while the array is being exercised.
    """

    #: Retention leakage ratio, performance process vs low-power process
    #: ("nearly five times", Sec. 3 Observation 3).
    PROCESS_LEAKAGE_RATIO = 5.0

    def __init__(
        self,
        name: str,
        capacity_bytes: int,
        leakage_watts_per_byte: float,
        power_component: Optional[Component] = None,
        operational_leakage_factor: float = 2.5,
        access_energy_pj_per_byte: float = 0.5,
    ) -> None:
        if leakage_watts_per_byte < 0:
            raise MemoryFault(f"{name}: negative leakage")
        self.name = name
        self.capacity_bytes = capacity_bytes
        self.leakage_watts_per_byte = leakage_watts_per_byte
        self.operational_leakage_factor = operational_leakage_factor
        self.access_energy_pj_per_byte = access_energy_pj_per_byte
        self.power_component = power_component
        self._store = SparseMemory(capacity_bytes)
        self._state = SRAMState.OPERATIONAL
        self.access_energy_joules = 0.0
        self._update_power()

    # --- power states -------------------------------------------------------

    @property
    def state(self) -> SRAMState:
        return self._state

    def enter_retention(self) -> None:
        """Drop to retention voltage (data held, access illegal)."""
        if self._state == SRAMState.OFF:
            raise MemoryFault(f"{self.name}: cannot retain a powered-off array")
        self._state = SRAMState.RETENTION
        self._update_power()

    def exit_retention(self) -> None:
        """Return to operational voltage."""
        if self._state == SRAMState.OFF:
            raise MemoryFault(f"{self.name}: power the array on first")
        self._state = SRAMState.OPERATIONAL
        self._update_power()

    def power_off(self) -> None:
        """Remove power entirely; contents are lost."""
        self._state = SRAMState.OFF
        self._store.erase()
        self._update_power()

    def power_on(self) -> None:
        """Restore power (contents undefined, modeled as zero-filled)."""
        self._state = SRAMState.OPERATIONAL
        self._update_power()

    def retention_power_watts(self) -> float:
        """Leakage at retention voltage for the full array."""
        return self.leakage_watts_per_byte * self.capacity_bytes

    def _update_power(self) -> None:
        if self.power_component is None:
            return
        if self._state == SRAMState.OFF:
            self.power_component.set_power(0.0)
        elif self._state == SRAMState.RETENTION:
            self.power_component.set_power(self.retention_power_watts())
        else:
            self.power_component.set_power(
                self.retention_power_watts() * self.operational_leakage_factor
            )

    # --- access ---------------------------------------------------------------

    def _check_accessible(self) -> None:
        if self._state != SRAMState.OPERATIONAL:
            raise MemoryFault(f"{self.name}: access in state {self._state.value}")

    def read(self, address: int, length: int) -> bytes:
        """Read bytes (operational state only)."""
        self._check_accessible()
        self.access_energy_joules += self.access_energy_pj_per_byte * 1e-12 * length
        return self._store.read(address, length)

    def write(self, address: int, data: bytes) -> None:
        """Write bytes (operational state only)."""
        self._check_accessible()
        self.access_energy_joules += self.access_energy_pj_per_byte * 1e-12 * len(data)
        self._store.write(address, data)

    @classmethod
    def chipset_equivalent_leakage(cls, processor_leakage_watts_per_byte: float) -> float:
        """Per-byte leakage of an equal-capacity chipset-process SRAM."""
        return processor_leakage_watts_per_byte / cls.PROCESS_LEAKAGE_RATIO
