"""Memory devices and the memory controller.

Implements every storage technology the paper evaluates as a context
store:

* :class:`SRAMDevice` — on-die save/restore SRAM with process-dependent
  retention leakage (processor SRAM leaks ~5x more than chipset SRAM,
  Sec. 3 Observation 3).
* :class:`DRAMDevice` — DDR3L-style device with self-refresh + CKE
  (Sec. 2.2), frequency scaling (Sec. 8.2), and a bandwidth/latency model.
* :class:`PCMDevice` / :class:`EMRAMDevice` — the emerging non-volatile
  technologies of Sec. 8.3 (no refresh; asymmetric read/write cost;
  endurance tracking).
* :class:`MemoryController` — address routing with a protected-range
  register that redirects accesses through the MEE (Fig. 4).
"""

from repro.memory.store import SparseMemory
from repro.memory.sram import SRAMDevice, SRAMState
from repro.memory.dram import DRAMDevice, DRAMState
from repro.memory.nvm import EMRAMDevice, NVMDevice, PCMDevice
from repro.memory.region import MemoryRegion, RangeRegister
from repro.memory.controller import AccessStats, MemoryController
from repro.memory.dvfs import MemoryDVFSGovernor

__all__ = [
    "AccessStats",
    "DRAMDevice",
    "DRAMState",
    "EMRAMDevice",
    "MemoryController",
    "MemoryDVFSGovernor",
    "MemoryRegion",
    "NVMDevice",
    "PCMDevice",
    "RangeRegister",
    "SRAMDevice",
    "SRAMState",
    "SparseMemory",
]
