"""The chipset's fast/slow dual timer (Sec. 4.1.2, Fig. 3).

Two timers are added to the chipset: a *fast* timer on the 24 MHz clock
(+1 per cycle) and a *slow* timer on the 32.768 kHz clock (+Step per
cycle, Step a 10.21 fixed-point).  ODRIPS entry copies the processor's
main-timer value into the fast timer, then — on the next rising edge of
the slow clock — hands the count to the slow timer so that the 24 MHz
crystal can be switched off.  Exit reverses the handoff on a slow-clock
edge and compensates for the PML transfer delay by adding a fixed constant
to the transferred value.

The implementation is event-driven but *bit-exact*: the slow timer is a
(64 + f)-bit register accumulating the integer Step raw value on every
slow edge, exactly as the RTL would.
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.clocks.clock import DerivedClock
from repro.errors import TimerError
from repro.timers.fixedpoint import FixedPoint


class TimerMode(enum.Enum):
    """Which of the two chipset timers currently owns the count."""

    IDLE = "idle"       # no value loaded (before first DRIPS entry)
    FAST = "fast"       # fast timer counting at 24 MHz
    SLOW = "slow"       # slow timer counting at 32.768 kHz


class ChipsetDualTimer:
    """Fast + slow timer pair with edge-aligned handoff."""

    WIDTH_BITS = 64

    def __init__(
        self,
        name: str,
        fast_clock: DerivedClock,
        slow_clock: DerivedClock,
        frac_bits: int,
    ) -> None:
        self.name = name
        self.fast_clock = fast_clock
        self.slow_clock = slow_clock
        self.frac_bits = frac_bits
        self.step: Optional[FixedPoint] = None
        self.mode = TimerMode.IDLE
        # fast-timer anchor
        self._fast_base_count = 0
        self._fast_anchor_ps = 0
        # slow-timer anchor: raw register value at the anchor edge
        self._slow_base_raw = 0
        self._slow_anchor_ps = 0
        self.handoff_count = 0

    # --- configuration -----------------------------------------------------

    def set_step(self, step: FixedPoint) -> None:
        """Install the calibrated Step value (Sec. 4.1.3)."""
        if step.frac_bits != self.frac_bits:
            raise TimerError(
                f"{self.name}: step has {step.frac_bits} frac bits, timer needs {self.frac_bits}"
            )
        if step.raw <= 0:
            raise TimerError(f"{self.name}: step must be positive")
        self.step = step

    @property
    def calibrated(self) -> bool:
        return self.step is not None

    # --- loading from the processor ------------------------------------------

    def load_fast(self, now_ps: int, value: int, compensation_cycles: int = 0) -> None:
        """Copy the processor's main-timer value into the fast timer.

        ``compensation_cycles`` is the fixed constant added "to compensate
        for the time it takes to transfer the timer value on the [PML]
        channel" (Sec. 4.1.2), expressed in fast-clock cycles.
        """
        self._fast_base_count = (value + compensation_cycles) & ((1 << self.WIDTH_BITS) - 1)
        self._fast_anchor_ps = self.fast_clock.source.previous_edge(now_ps)
        self.mode = TimerMode.FAST

    # --- reading -----------------------------------------------------------------

    def read(self, now_ps: int) -> int:
        """Current 64-bit count (integer part in slow mode)."""
        if self.mode == TimerMode.IDLE:
            raise TimerError(f"{self.name}: no value loaded")
        if self.mode == TimerMode.FAST:
            return self._read_fast(now_ps)
        return self._read_slow_raw(now_ps) >> self.frac_bits

    def _read_fast(self, now_ps: int) -> int:
        edges = self.fast_clock.edges_in(self._fast_anchor_ps + 1, now_ps + 1)
        return (self._fast_base_count + edges) & ((1 << self.WIDTH_BITS) - 1)

    def _slow_edges_since_anchor(self, now_ps: int) -> int:
        return self.slow_clock.edges_in(self._slow_anchor_ps + 1, now_ps + 1)

    def _read_slow_raw(self, now_ps: int) -> int:
        assert self.step is not None
        edges = self._slow_edges_since_anchor(now_ps)
        mask = (1 << (self.WIDTH_BITS + self.frac_bits)) - 1
        return (self._slow_base_raw + edges * self.step.raw) & mask

    def value_for_processor(self, now_ps: int, compensation_cycles: int = 0) -> int:
        """Value to send back over the PML, with transfer compensation."""
        return (self.read(now_ps) + compensation_cycles) & ((1 << self.WIDTH_BITS) - 1)

    # --- handoff: fast -> slow ------------------------------------------------------

    def next_slow_edge(self, now_ps: int) -> int:
        """Time of the rising slow-clock edge the handoff must wait for."""
        return self.slow_clock.next_edge(now_ps + 1)

    def switch_to_slow(self, edge_ps: int) -> None:
        """Complete the fast→slow handoff at slow-clock edge ``edge_ps``.

        At the edge, "the fast-timer value is copied into the slow-timer,
        and [the] slow-timer starts toggling with the 32KHz clock"
        (Sec. 4.1.2).  After this returns, the 24 MHz clock may be gated
        and its crystal turned off.
        """
        if self.mode != TimerMode.FAST:
            raise TimerError(f"{self.name}: switch_to_slow from mode {self.mode}")
        if self.step is None:
            raise TimerError(f"{self.name}: not calibrated")
        fast_value = self._read_fast(edge_ps)
        self._slow_base_raw = fast_value << self.frac_bits
        self._slow_anchor_ps = edge_ps
        self.mode = TimerMode.SLOW
        self.handoff_count += 1

    # --- handoff: slow -> fast ---------------------------------------------------------

    def switch_to_fast(self, edge_ps: int) -> None:
        """Complete the slow→fast handoff at slow-clock edge ``edge_ps``.

        "The process waits for the rising edge of the 32KHz clock, and
        copies the timer value (upper 64 bits) into the fast-timer"
        (Sec. 4.1.2).  The fast crystal must already be re-enabled and
        stable at ``edge_ps``.
        """
        if self.mode != TimerMode.SLOW:
            raise TimerError(f"{self.name}: switch_to_fast from mode {self.mode}")
        slow_raw = self._read_slow_raw(edge_ps)
        self._fast_base_count = slow_raw >> self.frac_bits
        self._fast_anchor_ps = self.fast_clock.source.previous_edge(edge_ps)
        self.mode = TimerMode.FAST
        self.handoff_count += 1

    # --- deadlines ----------------------------------------------------------------------

    def time_of_count(self, target: int, now_ps: int) -> int:
        """Earliest time the count reaches ``target`` in the current mode."""
        if self.mode == TimerMode.IDLE:
            raise TimerError(f"{self.name}: no value loaded")
        if self.mode == TimerMode.FAST:
            current = self._read_fast(now_ps)
            if target <= current:
                return now_ps
            remaining = target - current
            last_edge = self.fast_clock.source.previous_edge(now_ps)
            return last_edge + remaining * self.fast_clock.period_ps
        # Slow mode: find the smallest edge index k with
        # base_raw + k * step_raw >= target << f.
        assert self.step is not None
        target_raw = target << self.frac_bits
        current_edges = self._slow_edges_since_anchor(now_ps)
        current_raw = self._slow_base_raw + current_edges * self.step.raw
        if current_raw >= target_raw:
            return now_ps
        deficit = target_raw - self._slow_base_raw
        k = -(-deficit // self.step.raw)  # ceil division
        return self._slow_anchor_ps + k * self.slow_clock.period_ps
