"""Timer subsystem: TSC, chipset dual timer, and Step calibration.

Implements Sec. 4 of the paper:

* :class:`FixedPoint` — the m-bit integer / f-bit fraction arithmetic the
  slow timer and the Step value use (Sec. 4.1.3).
* :class:`TimeStampCounter` — a lazily-evaluated counter on a clock's edge
  grid (the processor's main timer / TSC).
* :class:`ChipsetDualTimer` — the fast (24 MHz) + slow (32.768 kHz) timer
  pair added to the chipset, with the edge-aligned handoff of Fig. 3(b).
* :class:`StepCalibrator` — the run-once-per-reset calibration that counts
  fast edges over 2^f slow cycles and derives the fixed-point Step.
* Sizing helpers implementing Equations 2–4 (``m = 10``, ``f = 21`` for
  1 ppb at 24 MHz / 32.768 kHz).
"""

from repro.timers.fixedpoint import FixedPoint
from repro.timers.tsc import TimeStampCounter
from repro.timers.dual_timer import ChipsetDualTimer, TimerMode
from repro.timers.calibration import (
    StepCalibrator,
    fractional_bits_for_precision,
    integer_bits_for_ratio,
    worst_case_drift_ppb,
)

__all__ = [
    "ChipsetDualTimer",
    "FixedPoint",
    "StepCalibrator",
    "TimeStampCounter",
    "TimerMode",
    "fractional_bits_for_precision",
    "integer_bits_for_ratio",
    "worst_case_drift_ppb",
]
