"""Step calibration (Sec. 4.1.3).

The calibration counts ``N_fast`` fast-clock edges over ``N_slow = 2**f``
slow-clock cycles and divides by reinterpreting the counter bits — no
divider circuit needed.  It runs once per platform reset and yields the
fixed-point Step installed into the chipset's slow timer.

Register sizing follows Equations 2–4 of the paper:

* Eq. 2: ``m = floor(log2(fast/slow)) + 1`` integer bits.
* Eq. 3 defines the counting drift ``epsilon``.
* Eq. 4: for 1 ppb precision, ``2**f`` slow cycles must cover at least
  ``(10**9 - 1) / (fast/slow)`` — giving ``f = 21`` for 24 MHz / 32.768 kHz.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.clocks.crystal import CrystalOscillator
from repro.errors import TimerError
from repro.timers.fixedpoint import FixedPoint


def integer_bits_for_ratio(fast_hz: float, slow_hz: float) -> int:
    """Equation 2: integer bits needed for the Step register."""
    if fast_hz <= 0 or slow_hz <= 0 or fast_hz <= slow_hz:
        raise TimerError("need fast_hz > slow_hz > 0")
    return int(math.floor(math.log2(fast_hz / slow_hz))) + 1


def fractional_bits_for_precision(fast_hz: float, slow_hz: float, ppb: float = 1.0) -> int:
    """Equation 4: fractional bits needed for ``ppb`` precision.

    ``2**f`` slow cycles must span at least ``(1/ppb_fraction - 1)`` fast
    cycles so that the quantized Step drifts by less than one fast count
    over that horizon.
    """
    if ppb <= 0:
        raise TimerError("ppb must be positive")
    ratio = fast_hz / slow_hz
    min_slow_cycles = (1e9 / ppb - 1.0) / ratio
    return max(0, math.ceil(math.log2(min_slow_cycles)))


def worst_case_drift_ppb(fast_hz: float, slow_hz: float, frac_bits: int) -> float:
    """Upper bound on steady-state drift from Step quantization, in ppb.

    Each slow cycle can accumulate at most ``2**-f`` fast-count error, and
    a slow cycle spans ``fast/slow`` fast counts, so the relative drift is
    bounded by ``2**-f / (fast/slow)``.
    """
    ratio = fast_hz / slow_hz
    return (2.0 ** -frac_bits) / ratio * 1e9


@dataclass(frozen=True)
class CalibrationResult:
    """Outcome of one calibration run."""

    step: FixedPoint
    n_fast: int
    n_slow: int
    duration_ps: int
    start_ps: int
    end_ps: int

    @property
    def measured_ratio(self) -> float:
        """The average fast/slow frequency ratio the hardware observed."""
        return self.n_fast / self.n_slow


class StepCalibrator:
    """Counts fast edges over ``2**f`` slow cycles and derives Step.

    The calibration "lasts for several seconds ... [but] needs to be
    carried out only once after each reset" (Sec. 4.1.3).  In simulation
    the edge counts are computed analytically from the crystals' integer
    edge grids, so the multi-second window costs O(1).
    """

    def __init__(
        self,
        fast_crystal: CrystalOscillator,
        slow_crystal: CrystalOscillator,
        frac_bits: int,
        int_bits: int,
    ) -> None:
        self.fast_crystal = fast_crystal
        self.slow_crystal = slow_crystal
        self.frac_bits = frac_bits
        self.int_bits = int_bits
        self.result: CalibrationResult | None = None

    @property
    def n_slow(self) -> int:
        """Number of slow cycles the calibration window spans (2**f)."""
        return 1 << self.frac_bits

    def duration_ps(self) -> int:
        """Length of the calibration window in picoseconds."""
        return self.n_slow * self.slow_crystal.period_ps

    def run(self, start_ps: int) -> CalibrationResult:
        """Perform the calibration starting at ``start_ps``.

        Both crystals must be enabled and stable for the whole window.
        The window is aligned to the first slow edge at or after
        ``start_ps`` and spans exactly ``2**f`` slow cycles; ``N_fast`` is
        the number of fast edges inside it.
        """
        if not self.fast_crystal.enabled:
            raise TimerError("calibration needs the fast crystal running")
        if not self.slow_crystal.enabled:
            raise TimerError("calibration needs the slow crystal running")
        window_start = self.slow_crystal.next_edge(start_ps)
        window_end = window_start + self.n_slow * self.slow_crystal.period_ps
        n_fast = self.fast_crystal.edges_in(window_start, window_end)
        step = FixedPoint.from_ratio(
            n_fast,
            denominator_pow2=self.frac_bits,
            frac_bits=self.frac_bits,
            int_bits=self.int_bits,
        )
        self.result = CalibrationResult(
            step=step,
            n_fast=n_fast,
            n_slow=self.n_slow,
            duration_ps=window_end - window_start,
            start_ps=window_start,
            end_ps=window_end,
        )
        return self.result

    @classmethod
    def for_precision(
        cls,
        fast_crystal: CrystalOscillator,
        slow_crystal: CrystalOscillator,
        ppb: float = 1.0,
    ) -> "StepCalibrator":
        """Build a calibrator sized by Equations 2 and 4 for ``ppb``."""
        int_bits = integer_bits_for_ratio(fast_crystal.nominal_hz, slow_crystal.nominal_hz)
        frac_bits = fractional_bits_for_precision(
            fast_crystal.nominal_hz, slow_crystal.nominal_hz, ppb
        )
        return cls(fast_crystal, slow_crystal, frac_bits=frac_bits, int_bits=int_bits)
