"""Time-stamp counter (TSC) / main timer.

"A timer event is an interrupt that occurs when the time-stamp-counter
(TSC) of the system reaches a pre-scheduled target time" (Sec. 4.1).

The counter never ticks in simulation: its value at time ``t`` is computed
from the clock's edge grid relative to a ``(base_time, base_count)``
anchor.  Freezing (clock gated / value handed off to the chipset) and
re-loading (value handed back) move the anchor.
"""

from __future__ import annotations

from typing import Optional

from repro.clocks.clock import DerivedClock
from repro.errors import TimerError


class TimeStampCounter:
    """A 64-bit counter incremented by one on every clock edge."""

    WIDTH_BITS = 64

    def __init__(self, name: str, clock: DerivedClock) -> None:
        self.name = name
        self.clock = clock
        self._base_count = 0
        self._base_time_ps = 0
        self._frozen = False
        self._frozen_value: Optional[int] = None

    # --- value ------------------------------------------------------------

    def read(self, now_ps: int) -> int:
        """Counter value at ``now_ps``."""
        if self._frozen:
            assert self._frozen_value is not None
            return self._frozen_value
        if now_ps < self._base_time_ps:
            raise TimerError(f"{self.name}: read before base time")
        elapsed_edges = self.clock.edges_in(self._base_time_ps, now_ps + 1) - 1
        if elapsed_edges < 0:
            elapsed_edges = 0
        value = self._base_count + elapsed_edges
        return value & ((1 << self.WIDTH_BITS) - 1)

    def load(self, now_ps: int, value: int) -> None:
        """Set the counter to ``value``, counting onward from ``now_ps``.

        The anchor snaps to the last clock edge at or before ``now_ps`` so
        subsequent reads advance on the true edge grid.
        """
        if value < 0 or value >= (1 << self.WIDTH_BITS):
            raise TimerError(f"{self.name}: value out of 64-bit range")
        self._frozen = False
        self._frozen_value = None
        self._base_count = value
        self._base_time_ps = self.clock.source.previous_edge(now_ps) if now_ps > 0 else 0

    # --- freeze / thaw (DRIPS handoff) -----------------------------------------

    def freeze(self, now_ps: int) -> int:
        """Stop counting and return the held value (for handoff)."""
        if self._frozen:
            assert self._frozen_value is not None
            return self._frozen_value
        value = self.read(now_ps)
        self._frozen = True
        self._frozen_value = value
        return value

    def thaw(self, now_ps: int, value: Optional[int] = None) -> None:
        """Resume counting from ``value`` (or the frozen value)."""
        if not self._frozen:
            raise TimerError(f"{self.name}: thaw without freeze")
        resume = value if value is not None else self._frozen_value
        assert resume is not None
        self.load(now_ps, resume)

    @property
    def frozen(self) -> bool:
        return self._frozen

    # --- deadline arithmetic ----------------------------------------------------

    def time_of_count(self, target: int, now_ps: int) -> int:
        """Earliest simulation time at which the counter reaches ``target``.

        Raises :class:`TimerError` when frozen (a frozen counter never
        reaches anything — the chipset timer owns deadlines then).
        """
        if self._frozen:
            raise TimerError(f"{self.name}: frozen counter has no deadlines")
        current = self.read(now_ps)
        if target <= current:
            return now_ps
        remaining = target - current
        last_edge = self.clock.source.previous_edge(now_ps)
        return last_edge + remaining * self.clock.period_ps
