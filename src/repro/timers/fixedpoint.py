"""Fixed-point arithmetic for the slow timer and the Step value.

Sec. 4.1.3: "we need to represent both the Step and the slow timer as
fixed-point numbers (i.e., integer and fractional parts)".  A
:class:`FixedPoint` value with ``f`` fractional bits stores the quantity
``raw / 2**f`` as the integer ``raw``.  All arithmetic stays in integers,
exactly as the hardware registers would, so quantization behaves
bit-for-bit like the design the paper describes: the Step register has a
10-bit integer and 21-bit fractional part; the slow timer accumulates
(64 + 21) bits.
"""

from __future__ import annotations

from typing import Union

from repro.errors import TimerError

Number = Union[int, float, "FixedPoint"]


class FixedPoint:
    """An unsigned fixed-point number with ``f`` fractional bits.

    Instances are immutable.  ``int_bits`` is optional metadata used for
    register-width overflow checking; arithmetic between values requires
    equal ``frac_bits`` (hardware registers do not silently align points).
    """

    __slots__ = ("raw", "frac_bits", "int_bits")

    def __init__(self, raw: int, frac_bits: int, int_bits: int | None = None) -> None:
        if frac_bits < 0:
            raise TimerError(f"frac_bits must be non-negative, got {frac_bits}")
        if raw < 0:
            raise TimerError(f"fixed-point values are unsigned, got raw={raw}")
        if int_bits is not None:
            if int_bits < 0:
                raise TimerError(f"int_bits must be non-negative, got {int_bits}")
            if raw >> frac_bits >= (1 << int_bits):
                raise TimerError(
                    f"value {raw / (1 << frac_bits)} overflows "
                    f"{int_bits}.{frac_bits} fixed-point register"
                )
        self.raw = raw
        self.frac_bits = frac_bits
        self.int_bits = int_bits

    # --- constructors -----------------------------------------------------

    @classmethod
    def from_int(cls, value: int, frac_bits: int, int_bits: int | None = None) -> "FixedPoint":
        """Represent the integer ``value`` exactly."""
        return cls(value << frac_bits, frac_bits, int_bits)

    @classmethod
    def from_float(cls, value: float, frac_bits: int, int_bits: int | None = None) -> "FixedPoint":
        """Quantize ``value`` to ``f`` fractional bits (round to nearest)."""
        if value < 0:
            raise TimerError("fixed-point values are unsigned")
        return cls(round(value * (1 << frac_bits)), frac_bits, int_bits)

    @classmethod
    def from_ratio(
        cls, numerator: int, denominator_pow2: int, frac_bits: int, int_bits: int | None = None
    ) -> "FixedPoint":
        """Divide ``numerator`` by ``2**denominator_pow2`` exactly as the
        calibration hardware does: "placing the fixed point after the first
        f least significant bits" (Sec. 4.1.3).

        When ``denominator_pow2 == frac_bits`` the division is literally a
        reinterpretation of the counter bits, with no arithmetic at all.
        """
        if numerator < 0:
            raise TimerError("fixed-point values are unsigned")
        shift = frac_bits - denominator_pow2
        raw = numerator << shift if shift >= 0 else numerator >> (-shift)
        return cls(raw, frac_bits, int_bits)

    # --- views ----------------------------------------------------------------

    @property
    def integer_part(self) -> int:
        """Bits above the point (the value rounded toward zero)."""
        return self.raw >> self.frac_bits

    @property
    def fraction_raw(self) -> int:
        """Bits below the point as an integer in [0, 2**f)."""
        return self.raw & ((1 << self.frac_bits) - 1)

    def to_float(self) -> float:
        """Approximate float value (for reporting only, never arithmetic)."""
        return self.raw / (1 << self.frac_bits)

    @property
    def quantum(self) -> float:
        """The value of one least-significant bit: 2**-f."""
        return 1.0 / (1 << self.frac_bits)

    # --- arithmetic ---------------------------------------------------------------

    def _check_compatible(self, other: "FixedPoint") -> None:
        if self.frac_bits != other.frac_bits:
            raise TimerError(
                f"fixed-point mismatch: {self.frac_bits} vs {other.frac_bits} frac bits"
            )

    def __add__(self, other: "FixedPoint") -> "FixedPoint":
        self._check_compatible(other)
        return FixedPoint(self.raw + other.raw, self.frac_bits)

    def __sub__(self, other: "FixedPoint") -> "FixedPoint":
        self._check_compatible(other)
        if other.raw > self.raw:
            raise TimerError("fixed-point subtraction underflow")
        return FixedPoint(self.raw - other.raw, self.frac_bits)

    def mul_int(self, factor: int) -> "FixedPoint":
        """Multiply by a non-negative integer (exact)."""
        if factor < 0:
            raise TimerError("fixed-point values are unsigned")
        return FixedPoint(self.raw * factor, self.frac_bits)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FixedPoint):
            return NotImplemented
        return self.frac_bits == other.frac_bits and self.raw == other.raw

    def __lt__(self, other: "FixedPoint") -> bool:
        self._check_compatible(other)
        return self.raw < other.raw

    def __le__(self, other: "FixedPoint") -> bool:
        self._check_compatible(other)
        return self.raw <= other.raw

    def __hash__(self) -> int:
        return hash((self.raw, self.frac_bits))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        width = f"{self.int_bits}.{self.frac_bits}" if self.int_bits else f"?.{self.frac_bits}"
        return f"<FixedPoint {self.to_float():.9f} ({width})>"
