"""repro.regress — the golden-number regression watchdog.

``python -m repro report`` joins the flight-recorder run history
(:mod:`repro.obs.runlog`) with the microbenchmark figures in
``BENCH_perf.json`` and applies per-metric tolerance policies
(:mod:`repro.regress.policies`): paper-fidelity deltas for every
registered experiment, speedup floors for the perf work, and the
tracer-overhead ceiling.  One nonzero exit covers both
correctness-vs-paper and the performance trajectory.
"""

from repro.regress.policies import (
    BENCH_KINDS,
    BENCH_POLICIES,
    BenchPolicy,
    bench_policies,
    golden_policies,
)
from repro.regress.report import (
    DEFAULT_BENCH_PATH,
    EXIT_DRIFT,
    EXIT_OK,
    EXIT_USAGE,
    REPORT_SCHEMA,
    build_report,
    load_baseline,
    render_html,
    render_text,
)

__all__ = [
    "BENCH_KINDS",
    "BENCH_POLICIES",
    "BenchPolicy",
    "DEFAULT_BENCH_PATH",
    "EXIT_DRIFT",
    "EXIT_OK",
    "EXIT_USAGE",
    "REPORT_SCHEMA",
    "bench_policies",
    "build_report",
    "golden_policies",
    "load_baseline",
    "render_html",
    "render_text",
]
