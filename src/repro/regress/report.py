"""The golden-number regression watchdog: ``python -m repro report``.

Joins the two telemetry stores the repo accumulates — the flight
recorder's run history (:class:`repro.obs.runlog.RunLog`, one JSON
record per experiment run) and the microbenchmark figures in
``BENCH_perf.json`` — and applies the tolerance policies of
:mod:`repro.regress.policies`:

* every registered experiment's **latest** recorded metrics are compared
  against the paper's golden values (Fig. 1(b)/2/6, Sec. 4.1.3/6.3);
* every benchmark figure with a policy is held to its speedup floor or
  overhead ceiling.

The report renders as an aligned terminal table, ``--json`` for
machines, or ``--html`` for a static page; the process exits nonzero
exactly when a check drifted out of tolerance, so CI gets one gate over
both correctness-vs-paper and the performance trajectory.  Experiments
with no recorded run and benchmark figures not present in the file are
reported as *missing*, never as drift — a fresh checkout that has only
run ``fig2`` must still pass.  A figure the harness recorded with a
``policy_skip`` reason (e.g. a parallel-speedup floor measured on a
single-CPU host, where worker processes time-slice one core) is
likewise skipped with that reason surfaced.

A ``--baseline`` JSON file overrides individual tolerances (see
:mod:`repro.regress.policies` for the format).
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.analysis.report import format_table
from repro.errors import ConfigError
from repro.obs.html import esc, html_table, page
from repro.obs.runlog import RunLog
from repro.regress.policies import bench_policies, golden_policies

#: Schema identifier stamped into JSON reports; bump on breaking change.
REPORT_SCHEMA = "repro-regress/1"

#: Where the benchmark harness writes its figures (repo root).
DEFAULT_BENCH_PATH = "BENCH_perf.json"

EXIT_OK = 0
EXIT_DRIFT = 1
EXIT_USAGE = 2


def load_baseline(path: Union[str, Path]) -> Dict[str, Any]:
    """Parse a ``--baseline`` override file (see :mod:`.policies`)."""
    try:
        data = json.loads(Path(path).read_text(encoding="utf-8"))
    except OSError as error:
        raise ConfigError(f"cannot read baseline {path}: {error}") from error
    except json.JSONDecodeError as error:
        raise ConfigError(f"baseline {path} is not valid JSON: {error}") from error
    if not isinstance(data, dict):
        raise ConfigError(f"baseline {path} must be a JSON object")
    unknown = sorted(set(data) - {"goldens", "benches"})
    if unknown:
        raise ConfigError(
            f"baseline {path}: unknown top-level key(s) {', '.join(unknown)}; "
            "allowed: goldens, benches"
        )
    return data


def _load_bench(path: Union[str, Path]) -> Optional[Dict[str, Any]]:
    """The ``benches`` table of ``BENCH_perf.json``, or ``None`` if absent."""
    try:
        data = json.loads(Path(path).read_text(encoding="utf-8"))
    except OSError:
        return None
    except json.JSONDecodeError as error:
        raise ConfigError(f"bench file {path} is not valid JSON: {error}") from error
    benches = data.get("benches") if isinstance(data, dict) else None
    return benches if isinstance(benches, dict) else {}


def build_report(
    runlog: Optional[RunLog] = None,
    bench_path: Union[str, Path] = DEFAULT_BENCH_PATH,
    baseline: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Evaluate every policy against the stores; returns a JSON-able dict."""
    runlog = runlog if runlog is not None else RunLog()
    baseline = baseline or {}
    latest = runlog.latest_by_experiment()
    findings: List[Dict[str, Any]] = []
    missing: List[Dict[str, Any]] = []

    goldens = golden_policies(baseline.get("goldens"))
    for experiment in sorted(goldens):
        record = latest.get(experiment)
        if record is None:
            missing.append(
                {
                    "source": "golden",
                    "experiment": experiment,
                    "reason": "no run recorded (run the experiment first)",
                }
            )
            continue
        metrics = record.get("metrics")
        metrics = metrics if isinstance(metrics, dict) else {}
        for golden in goldens[experiment]:
            measured = metrics.get(golden.key)
            if not isinstance(measured, (int, float)):
                missing.append(
                    {
                        "source": "golden",
                        "experiment": experiment,
                        "key": golden.key,
                        "reason": "metric absent from the latest recorded run",
                    }
                )
                continue
            finding: Dict[str, Any] = {
                "source": "golden",
                "experiment": experiment,
                "key": golden.key,
            }
            finding.update(golden.evaluate(float(measured)))
            finding["fingerprint"] = record.get("fingerprint")
            finding["git_rev"] = record.get("git_rev")
            findings.append(finding)

    benches = _load_bench(bench_path)
    for policy in bench_policies(baseline.get("benches")):
        if benches is None:
            missing.append(
                {
                    "source": "bench",
                    "bench": policy.bench,
                    "metric": policy.metric,
                    "reason": f"bench file {bench_path} not found",
                }
            )
            continue
        figure = benches.get(policy.bench, {})
        skip_reason = figure.get("policy_skip") if isinstance(figure, dict) else None
        if isinstance(skip_reason, str) and skip_reason:
            missing.append(
                {
                    "source": "bench",
                    "bench": policy.bench,
                    "metric": policy.metric,
                    "reason": f"harness opted out: {skip_reason}",
                }
            )
            continue
        value = figure.get(policy.metric) if isinstance(figure, dict) else None
        if not isinstance(value, (int, float)):
            missing.append(
                {
                    "source": "bench",
                    "bench": policy.bench,
                    "metric": policy.metric,
                    "reason": "figure absent from the bench file (re-run the harness)",
                }
            )
            continue
        finding = {"source": "bench"}
        finding.update(policy.evaluate(float(value)))
        findings.append(finding)

    _attach_explains(findings, runlog)
    drift = [finding for finding in findings if not finding["within"]]
    # anomaly advisories over the whole run history (EWMA + robust-z,
    # repro.obs.dash): surfaced for humans, never a gate — `ok` and the
    # exit code depend only on the policy findings above
    from repro.obs.dash import detect_anomalies

    advisories = detect_anomalies(runlog.records())
    return {
        "schema": REPORT_SCHEMA,
        "runlog": str(runlog.path),
        "records": len(runlog),
        "bench_path": str(bench_path),
        "findings": findings,
        "missing": missing,
        "advisories": advisories,
        "checked": len(findings),
        "drift": len(drift),
        "ok": not drift,
    }


def _attach_explains(findings: List[Dict[str, Any]], runlog: RunLog) -> None:
    """Embed a drift explainer into every drifted golden finding.

    The digest is the history-mode ``repro explain`` between the
    experiment's latest two records (top metric deltas, backend
    compatibility, config-fingerprint drift) — so the watchdog's verdict
    says not just *that* a golden drifted but what moved since the last
    recorded run.  With fewer than two records the finding stays bare.
    """
    from repro.obs.diff import explain_summary

    summaries: Dict[str, Optional[Dict[str, Any]]] = {}
    for finding in findings:
        if finding.get("source") != "golden" or finding["within"]:
            continue
        experiment = finding["experiment"]
        if experiment not in summaries:
            summaries[experiment] = explain_summary(experiment, runlog=runlog)
        if summaries[experiment] is not None:
            finding["explain"] = summaries[experiment]


# --- rendering ----------------------------------------------------------------


def _status(within: bool) -> str:
    return "ok" if within else "DRIFT"


def _fmt(value: float) -> str:
    return f"{value:.6g}"


def render_text(report: Dict[str, Any]) -> str:
    """Aligned terminal rendering of a report."""
    sections: List[str] = []
    golden_rows = [
        [
            finding["experiment"],
            finding["key"],
            _fmt(finding["paper"]),
            _fmt(finding["measured"]),
            f"{finding['delta']:+.4g}",
            f"{finding['kind']} {_fmt(finding['tolerance'])}",
            _status(finding["within"]),
        ]
        for finding in report["findings"]
        if finding["source"] == "golden"
    ]
    if golden_rows:
        sections.append(
            format_table(
                ["experiment", "metric", "paper", "measured", "delta",
                 "tolerance", "status"],
                golden_rows,
                title="Paper-fidelity goldens (latest recorded runs)",
            )
        )
    bench_rows = [
        [
            finding["bench"],
            finding["metric"],
            _fmt(finding["value"]),
            f"{finding['kind']} {_fmt(finding['limit'])}",
            _status(finding["within"]),
        ]
        for finding in report["findings"]
        if finding["source"] == "bench"
    ]
    if bench_rows:
        sections.append(
            format_table(
                ["bench", "figure", "value", "policy", "status"],
                bench_rows,
                title=f"Benchmark policies ({report['bench_path']})",
            )
        )
    explain_lines = _explain_lines(report)
    if explain_lines:
        sections.append(
            "Drift explainers (latest vs previous recorded run)\n"
            + "\n".join(f"  {line}" for line in explain_lines)
        )
    advisory_rows = [
        [
            advisory["experiment"],
            advisory["metric"],
            _fmt(advisory["value"]),
            f"{advisory['robust_z']:+.2f}",
            f"{advisory['ewma_rel']:+.1%}",
            f"{advisory['points']} runs",
        ]
        for advisory in report.get("advisories", [])
    ]
    if advisory_rows:
        sections.append(
            format_table(
                ["experiment", "metric", "latest", "robust z", "vs EWMA", "history"],
                advisory_rows,
                title="Anomaly advisories (history outliers, never a gate)",
            )
        )
    if report["missing"]:
        rows = [
            [
                entry["source"],
                entry.get("experiment") or entry.get("bench", ""),
                entry.get("key") or entry.get("metric", ""),
                entry["reason"],
            ]
            for entry in report["missing"]
        ]
        sections.append(
            format_table(
                ["source", "subject", "metric", "why it was skipped"],
                rows,
                title="Skipped checks (missing data, not drift)",
            )
        )
    verdict = "OK" if report["ok"] else "DRIFT"
    sections.append(
        f"{verdict}: {report['checked']} check(s), {report['drift']} drift(s), "
        f"{len(report['missing'])} skipped - {report['records']} run record(s) "
        f"in {report['runlog']}"
    )
    return "\n\n".join(sections)


def _explain_lines(report: Dict[str, Any]) -> List[str]:
    """One digest line per drifted experiment that has an explainer."""
    explains: Dict[str, Dict[str, Any]] = {}
    for finding in report["findings"]:
        explain = finding.get("explain")
        if isinstance(explain, dict):
            explains.setdefault(finding["experiment"], explain)
    lines: List[str] = []
    for experiment in sorted(explains):
        explain = explains[experiment]
        if not explain.get("compatible", True):
            lines.append(f"{experiment}: {explain.get('reason', 'incompatible runs')}")
            continue
        note = " [config changed]" if explain.get("config_drift") else ""
        tops = []
        for row in explain.get("top", []):
            entry = f"{row['metric']} {row['delta']:+.4g}"
            if row.get("relative") is not None:
                entry += f" ({row['relative']:+.2%})"
            tops.append(entry)
        lines.append(
            f"{experiment}{note}: "
            + (", ".join(tops) if tops else "no metric movement between runs")
        )
    return lines


def render_html(report: Dict[str, Any]) -> str:
    """Minimal static HTML page for the report (no external assets).

    Built on :mod:`repro.obs.html` — the same table/shell vocabulary the
    fleet dashboard (``python -m repro dash``) uses.
    """
    golden_rows = [
        [f["experiment"], f["key"], _fmt(f["paper"]), _fmt(f["measured"]),
         f"{f['delta']:+.4g}", f"{f['kind']} {_fmt(f['tolerance'])}",
         _status(f["within"])]
        for f in report["findings"] if f["source"] == "golden"
    ]
    bench_rows = [
        [f["bench"], f["metric"], _fmt(f["value"]),
         f"{f['kind']} {_fmt(f['limit'])}", _status(f["within"])]
        for f in report["findings"] if f["source"] == "bench"
    ]
    missing_rows = [
        [entry["source"], entry.get("experiment") or entry.get("bench", ""),
         entry.get("key") or entry.get("metric", ""), entry["reason"]]
        for entry in report["missing"]
    ]
    advisory_rows = [
        [a["experiment"], a["metric"], _fmt(a["value"]),
         f"{a['robust_z']:+.2f}", f"{a['ewma_rel']:+.1%}", f"{a['points']} runs"]
        for a in report.get("advisories", [])
    ]
    verdict = "OK" if report["ok"] else "DRIFT"
    parts = [
        f"<p>{report['checked']} check(s), {report['drift']} drift(s), "
        f"{len(report['missing'])} skipped; {report['records']} run record(s) "
        f"in <code>{esc(report['runlog'])}</code></p>",
    ]
    if golden_rows:
        parts.append("<h2>Paper-fidelity goldens</h2>")
        parts.append(html_table(
            ["experiment", "metric", "paper", "measured", "delta", "tolerance",
             "status"], golden_rows))
    if bench_rows:
        parts.append(f"<h2>Benchmark policies ({esc(report['bench_path'])})</h2>")
        parts.append(html_table(["bench", "figure", "value", "policy", "status"],
                                bench_rows))
    explain_lines = _explain_lines(report)
    if explain_lines:
        parts.append("<h2>Drift explainers</h2><ul>")
        parts.extend(f"<li>{esc(line)}</li>" for line in explain_lines)
        parts.append("</ul>")
    if advisory_rows:
        parts.append("<h2>Anomaly advisories (never a gate)</h2>")
        parts.append(html_table(
            ["experiment", "metric", "latest", "robust z", "vs EWMA", "history"],
            advisory_rows))
    if missing_rows:
        parts.append("<h2>Skipped checks</h2>")
        parts.append(html_table(["source", "subject", "metric", "reason"],
                                missing_rows))
    return page(f"repro regression report: {verdict}", parts)


def cmd_report(args: argparse.Namespace) -> int:
    """The ``python -m repro report`` entry point."""
    import sys

    baseline = None
    try:
        if args.baseline:
            baseline = load_baseline(args.baseline)
        report = build_report(
            bench_path=args.bench or DEFAULT_BENCH_PATH, baseline=baseline
        )
    except ConfigError as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_USAGE
    if args.json:
        print(json.dumps(report, indent=1, sort_keys=True))
    else:
        print(render_text(report))
    if args.html:
        target = Path(args.html)
        target.write_text(render_html(report), encoding="utf-8")
        if not args.json:
            print(f"\nHTML report written to {target}")
    return EXIT_OK if report["ok"] else EXIT_DRIFT
