"""Tolerance policies of the regression watchdog.

Two families of checks feed ``python -m repro report``:

* **Paper-fidelity goldens** — the :class:`~repro.core.experiments.GoldenValue`
  declarations on each registered experiment driver
  (:data:`repro.core.experiments.EXPERIMENTS`): the published figure, the
  tolerance the reproduction is allowed to drift by, and the comparison
  kind (absolute, relative, ceiling, floor).
* **Benchmark policies** — floors and ceilings over the figures the
  microbenchmark harness writes to ``BENCH_perf.json``: speedups the
  perf work must keep, and the tracer-overhead ceiling the observability
  work must stay under.

A ``--baseline`` JSON file can override either family field-by-field::

    {
      "goldens": {"fig2": {"drips_power_mw": {"paper": 61.0}}},
      "benches": {"analyzer_fast_path": {"speedup": {"limit": 10.0}}}
    }

Overrides are how CI pins a project-specific baseline — and how the
acceptance test injects a perturbed golden to prove the watchdog trips.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.core.experiments import EXPERIMENTS, GOLDEN_KINDS, GoldenValue
from repro.errors import ConfigError

#: Comparison kinds a benchmark policy supports.
BENCH_KINDS = ("floor", "ceiling")

#: Baseline-overridable fields per policy family.
_GOLDEN_FIELDS = ("paper", "tolerance", "kind")
_BENCH_FIELDS = ("limit", "kind")


@dataclass(frozen=True)
class BenchPolicy:
    """A floor or ceiling over one ``BENCH_perf.json`` figure."""

    bench: str
    metric: str
    kind: str  # "floor" | "ceiling"
    limit: float
    reason: str

    def evaluate(self, value: float) -> Dict[str, Any]:
        """JSON-able verdict for one measured benchmark figure."""
        if self.kind == "floor":
            within = value >= self.limit
        else:
            within = value <= self.limit
        return {
            "bench": self.bench,
            "metric": self.metric,
            "kind": self.kind,
            "limit": self.limit,
            "value": value,
            "within": within,
            "reason": self.reason,
        }


#: The shipped benchmark policy catalog.  Floors restate the asserts the
#: benchmarks themselves carry (a stale BENCH_perf.json can drift even
#: when the asserts would pass today); the overhead ceiling watches the
#: observability off-switch.
BENCH_POLICIES: Tuple[BenchPolicy, ...] = (
    BenchPolicy(
        "analyzer_fast_path", "speedup", "floor", 20.0,
        "closed-form measure() must beat the raw-sample reference",
    ),
    BenchPolicy(
        "memoized_experiment", "speedup", "floor", 5.0,
        "a cache-hit rerun must skip the simulation entirely",
    ),
    BenchPolicy(
        "parallel_sweep_fig6b", "speedup", "floor", 1.2,
        "the parallel sweep must amortize worker startup and beat serial",
    ),
    BenchPolicy(
        "tracer_overhead_fig2", "enabled_overhead_frac", "ceiling", 0.25,
        "observing a run must stay cheap enough to leave enabled",
    ),
    BenchPolicy(
        "check_fig2_statespace", "cold_wall_s", "ceiling", 5.0,
        "the exhaustive model check gates every commit and must stay interactive",
    ),
    BenchPolicy(
        "check_fig2_statespace", "speedup", "floor", 10.0,
        "a fingerprint-cached model check must skip the exploration",
    ),
    BenchPolicy(
        "check_budgets_statespace", "cold_wall_s", "ceiling", 5.0,
        "the priced budget analysis runs in CI on every commit and must stay interactive",
    ),
    BenchPolicy(
        "check_budgets_statespace", "speedup", "floor", 10.0,
        "a fingerprint-cached budget check must skip the probes and exploration",
    ),
    BenchPolicy(
        "check_shared_parse", "parse_speedup", "floor", 1.1,
        "one ModuleCache parse must feed every source-analysis pass",
    ),
    BenchPolicy(
        "macro_step_week", "speedup", "floor", 100.0,
        "cycle-compiled macro-stepping must keep week-long horizons interactive",
    ),
    BenchPolicy(
        "explain_fig2_delta", "speedup", "floor", 1.5,
        "explaining a cached pair must reuse the memoized run profiles",
    ),
    BenchPolicy(
        "obs_stream_fig2", "disabled_overhead_frac", "ceiling", 0.05,
        "an uninstalled telemetry stream must cost under 5% of a fig2 run",
    ),
    BenchPolicy(
        "obs_stream_week", "enabled_overhead_frac", "ceiling", 0.25,
        "streaming a week-scale macro run must stay cheap enough to leave on",
    ),
)


def _check_fields(
    fields: Mapping[str, Any], allowed: Tuple[str, ...], context: str
) -> None:
    unknown = sorted(set(fields) - set(allowed))
    if unknown:
        raise ConfigError(
            f"unknown baseline field(s) {', '.join(unknown)} for {context}; "
            f"allowed: {', '.join(allowed)}"
        )


def golden_policies(
    overrides: Optional[Mapping[str, Mapping[str, Mapping[str, Any]]]] = None,
) -> Dict[str, Tuple[GoldenValue, ...]]:
    """Golden values per experiment, with baseline overrides applied.

    The base catalog is every registered driver's declaration; overrides
    replace individual fields of an existing golden or add a new golden
    key for an experiment.  Unknown fields or kinds raise
    :class:`~repro.errors.ConfigError`.
    """
    policies: Dict[str, Tuple[GoldenValue, ...]] = {
        name: spec.goldens for name, spec in EXPERIMENTS.items() if spec.goldens
    }
    for experiment, keys in (overrides or {}).items():
        base = {golden.key: golden for golden in policies.get(experiment, ())}
        for key, fields in keys.items():
            _check_fields(fields, _GOLDEN_FIELDS, f"golden {experiment}.{key}")
            current = base.get(key, GoldenValue(key=key, paper=0.0, tolerance=0.0))
            updated = replace(current, **dict(fields))
            if updated.kind not in GOLDEN_KINDS:
                raise ConfigError(
                    f"golden {experiment}.{key}: unknown kind {updated.kind!r}; "
                    f"allowed: {', '.join(GOLDEN_KINDS)}"
                )
            base[key] = updated
        policies[experiment] = tuple(base.values())
    return policies


def bench_policies(
    overrides: Optional[Mapping[str, Mapping[str, Mapping[str, Any]]]] = None,
) -> Tuple[BenchPolicy, ...]:
    """The benchmark policy catalog, with baseline overrides applied."""
    catalog = {(policy.bench, policy.metric): policy for policy in BENCH_POLICIES}
    for bench, metrics in (overrides or {}).items():
        for metric, fields in metrics.items():
            _check_fields(fields, _BENCH_FIELDS, f"bench {bench}.{metric}")
            current = catalog.get(
                (bench, metric),
                BenchPolicy(bench, metric, "floor", 0.0, "baseline-defined policy"),
            )
            updated = replace(current, **dict(fields))
            if updated.kind not in BENCH_KINDS:
                raise ConfigError(
                    f"bench {bench}.{metric}: unknown kind {updated.kind!r}; "
                    f"allowed: {', '.join(BENCH_KINDS)}"
                )
            catalog[(bench, metric)] = updated
    return tuple(catalog.values())
