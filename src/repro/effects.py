"""Declared-effects escape hatch for the C5xx effect analysis.

The effect/determinism checker (:mod:`repro.check.effects`) proves that
everything reachable from a fingerprint-cached entry point or a
parallel sweep worker is a pure, deterministic function of its
configuration.  Some impurity is intentional — the experiment flight
recorder stamps host wall time, the host-phase profiler reads
``perf_counter`` — and the right place to say so is the *boundary*
function that owns the instrumentation, not every file it touches:

    from repro.effects import declares_effects

    @declares_effects("time")
    def measure(self, cycles: int = 2) -> StandbyMeasurement:
        ...  # wall-time instrumentation never leaks into the result

A declared effect is absorbed at that boundary: the checker neither
reports it on the function itself nor propagates it to callers.  The
declaration is a claim the author makes — "this effect does not reach
the returned result" — and it is deliberately narrow: only the named
kinds are absorbed, every other effect still propagates.

The decorator is a runtime no-op apart from validation and a metadata
attribute; the checker reads it syntactically (it never imports the
code under analysis).
"""

from __future__ import annotations

from typing import Any, Callable, Tuple, TypeVar

Fn = TypeVar("Fn", bound=Callable[..., Any])

#: Every effect kind the checker tracks (and a declaration may name).
#:
#: * ``time`` — host wallclock/monotonic clock reads.
#: * ``rng`` — the process-global or otherwise unseeded RNG.
#: * ``env`` — environment variables and host-shape reads (cpu count).
#: * ``fs`` — filesystem reads/writes.
#: * ``net`` — sockets and HTTP clients.
#: * ``module-state`` — mutation of module-level or closure state.
#: * ``identity`` — ``id()``/``hash()``/pid dependence.
#: * ``order`` — set/dict iteration order escaping into results.
EFFECT_KINDS: Tuple[str, ...] = (
    "time",
    "rng",
    "env",
    "fs",
    "net",
    "module-state",
    "identity",
    "order",
)

#: Attribute carrying a function's declared effects at runtime.
DECLARED_EFFECTS_ATTR = "__declared_effects__"


def declares_effects(*effects: str) -> Callable[[Fn], Fn]:
    """Declare that ``effects`` are intentional and stop at this boundary.

    Raises :class:`ValueError` at decoration time on an unknown effect
    kind, so a typo fails the import instead of silently absorbing
    nothing.
    """
    unknown = sorted(set(effects) - set(EFFECT_KINDS))
    if unknown:
        known = ", ".join(EFFECT_KINDS)
        raise ValueError(
            f"unknown effect kind(s) {unknown!r}; known kinds: {known}"
        )
    if not effects:
        raise ValueError("declares_effects() needs at least one effect kind")

    def wrap(fn: Fn) -> Fn:
        declared = tuple(dict.fromkeys(effects))  # dedupe, keep order
        setattr(fn, DECLARED_EFFECTS_ATTR, declared)
        return fn

    return wrap


def declared_effects(fn: Any) -> Tuple[str, ...]:
    """The effects ``fn`` declares (empty when undecorated)."""
    return tuple(getattr(fn, DECLARED_EFFECTS_ATTR, ()))
