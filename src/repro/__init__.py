"""Reproduction of *Techniques for Reducing the Connected-Standby Energy
Consumption of Mobile Devices* (Haj-Yahya et al., HPCA 2020).

The library is a discrete-event platform power-management simulator that
implements the paper's baseline system (an Intel Skylake mobile platform
with its DRIPS deepest-runtime-idle state) and its contribution, ODRIPS,
with all three techniques:

* ``WAKE-UP-OFF`` — timer wake-event migration to the chipset on a
  32.768 kHz clock (Sec. 4),
* ``AON-IO-GATE`` — always-on IO offload and FET power-gating (Sec. 5),
* ``CTX-SGX-DRAM`` — processor context stored in an SGX-protected DRAM
  region through a functional memory-encryption engine (Sec. 6),

plus the emerging-memory variants ODRIPS-MRAM and ODRIPS-PCM (Sec. 8.3).

Quickstart::

    from repro import ODRIPSController, TechniqueSet

    baseline = ODRIPSController(TechniqueSet.baseline()).measure(cycles=2)
    odrips = ODRIPSController(TechniqueSet.odrips()).measure(cycles=2)
    print(f"ODRIPS saves {100 * odrips.saving_vs(baseline):.1f}% average power")

See ``DESIGN.md`` for the system inventory and ``EXPERIMENTS.md`` for
paper-vs-measured numbers of every table and figure.
"""

from repro.config import (
    ActivePowerModel,
    ContextInventory,
    DRIPSPowerBudget,
    PlatformConfig,
    StandbyWorkloadConfig,
    TransitionModel,
    haswell_config,
    skylake_config,
)
from repro.core import (
    ContextStore,
    ODRIPSController,
    StandbyMeasurement,
    Technique,
    TechniqueSet,
)
from repro.errors import ReproError
from repro.system import FlowController, PlatformState, SkylakePlatform
from repro.workloads import ConnectedStandbyRunner, StandbyResult

__version__ = "1.0.0"

__all__ = [
    "ActivePowerModel",
    "ConnectedStandbyRunner",
    "ContextInventory",
    "ContextStore",
    "DRIPSPowerBudget",
    "FlowController",
    "ODRIPSController",
    "PlatformConfig",
    "PlatformState",
    "ReproError",
    "SkylakePlatform",
    "StandbyMeasurement",
    "StandbyResult",
    "StandbyWorkloadConfig",
    "Technique",
    "TechniqueSet",
    "TransitionModel",
    "haswell_config",
    "skylake_config",
    "__version__",
]
