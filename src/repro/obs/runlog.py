"""Experiment flight recorder: one structured record per experiment run.

Every run of a registered experiment driver appends one JSON record to
an append-only store under ``.repro/runs/`` (override with the
``REPRO_RUNLOG_DIR`` environment variable), so results stop being
recomputed-and-thrown-away: the regression watchdog (``python -m repro
report``) replays the history against the paper's golden values and
BENCH_perf.json to catch fidelity or performance drift.

A record carries:

* the experiment name and the SHA-256 **config fingerprint** of the
  driver's resolved arguments (via :func:`repro.perf.fingerprint`, cache
  handles excluded) — two records with the same fingerprint ran the same
  configuration;
* the **git revision** of the working tree (read from ``.git`` directly,
  no subprocess) and a UTC timestamp;
* host **wall time**, per-measurement timings contributed by
  :class:`~repro.core.odrips.ODRIPSController`, and sweep fan-out stats
  contributed by :func:`repro.analysis.sweep.sweep` (including parallel
  worker process ids and per-point wall times);
* simulation-cache hit/miss stats when a cache was used;
* the **result metrics** and their deltas against the paper's golden
  values, as declared by the driver's registry entry
  (:data:`repro.core.experiments.EXPERIMENTS`);
* the active host-phase profiler summary, when one is installed.

Recording follows the same process-wide opt-in pattern as the tracer:
:func:`install_recorder` / :func:`active_recorder` / :func:`recording`.
With no recorder installed every seam is one ``None`` check.  The store
itself is line-oriented JSON (one record per line), so concurrent
appends from separate processes interleave whole records and the file
is grep-able.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Union

from repro.effects import declares_effects

#: Schema identifier stamped into every record; bump on breaking change.
RUNLOG_SCHEMA = "repro-runlog/1"

#: Default store location, relative to the current working directory.
DEFAULT_RUNLOG_DIR = os.path.join(".repro", "runs")

#: Environment variable overriding the store location.
RUNLOG_DIR_ENV = "REPRO_RUNLOG_DIR"

#: File name of the append-only record stream inside the store directory.
RUNLOG_FILE = "runs.jsonl"


def default_runlog_dir() -> Path:
    """The store directory: ``$REPRO_RUNLOG_DIR`` or ``.repro/runs``."""
    return Path(os.environ.get(RUNLOG_DIR_ENV) or DEFAULT_RUNLOG_DIR)


# --- git revision, without a subprocess ---------------------------------------


def _git_dir(start: Optional[Path] = None) -> Optional[Path]:
    """The enclosing repository's ``.git`` directory, if any."""
    current = (start or Path.cwd()).resolve()
    for candidate in [current, *current.parents]:
        git = candidate / ".git"
        if git.is_dir():
            return git
        if git.is_file():  # worktree: "gitdir: <path>"
            try:
                text = git.read_text(encoding="utf-8").strip()
            except OSError:
                return None
            if text.startswith("gitdir:"):
                target = Path(text.split(":", 1)[1].strip())
                if not target.is_absolute():
                    target = candidate / target
                return target if target.is_dir() else None
    return None


def git_revision(start: Optional[Path] = None) -> Optional[str]:
    """The checked-out commit hash, or ``None`` outside a repository.

    Reads ``.git/HEAD`` (following a symbolic ref through the loose ref
    file or ``packed-refs``) so recording never shells out.
    """
    git = _git_dir(start)
    if git is None:
        return None
    try:
        head = (git / "HEAD").read_text(encoding="utf-8").strip()
    except OSError:
        return None
    if not head.startswith("ref:"):
        return head or None  # detached HEAD: the hash itself
    ref = head.split(":", 1)[1].strip()
    loose = git / ref
    try:
        return loose.read_text(encoding="utf-8").strip() or None
    except OSError:
        pass
    try:
        packed = (git / "packed-refs").read_text(encoding="utf-8")
    except OSError:
        return None
    for line in packed.splitlines():
        if line.startswith("#") or line.startswith("^"):
            continue
        parts = line.split()
        if len(parts) == 2 and parts[1] == ref:
            return parts[0]
    return None


# --- the recorder (in-memory collector) ---------------------------------------


class RunRecorder:
    """Collects one CLI invocation's worth of run records.

    Instrumented seams contribute *pending* sub-events (individual
    measurements, sweep fan-outs); each registered experiment driver then
    drains them into one record via :meth:`experiment`.  Sub-events left
    pending when the recorder is finished (e.g. the ``battery`` command,
    which measures without a registered driver) are flushed into a
    ``cli:<command>`` record so no simulation goes unlogged.
    """

    def __init__(self) -> None:
        self.records: List[Dict[str, Any]] = []
        self._pending_measurements: List[Dict[str, Any]] = []
        self._pending_sweeps: List[Dict[str, Any]] = []

    # --- seams ------------------------------------------------------------

    def measurement(
        self,
        label: str,
        wall_s: float,
        cached: bool,
        macro: Optional[Dict[str, Any]] = None,
    ) -> None:
        """One controller measurement (from ``ODRIPSController.measure``).

        ``macro`` is the backend provenance
        (``{"enabled", "cycles_compiled", "steps"}``): whether the run
        was macro-stepped and how much of it was compiled.  It rolls up
        into the enclosing experiment record so ``repro explain`` can
        refuse to diff a macro run against an exact one.
        """
        entry = {"label": label, "wall_s": wall_s, "cached": cached}
        if macro is not None:
            entry["macro"] = macro
        self._pending_measurements.append(entry)

    def sweep(
        self,
        points: int,
        parallel: bool,
        workers: Optional[int],
        wall_s: float,
        point_walls_s: List[float],
        worker_pids: List[int],
        backend: Optional[str] = None,
    ) -> None:
        """One sweep fan-out (from :func:`repro.analysis.sweep.sweep`).

        ``backend`` names the execution strategy actually used —
        ``"serial"``, ``"parallel"``, or ``"serial-fallback"`` when a
        parallel request degraded to serial on a single-CPU host.
        """
        if backend is None:
            backend = "parallel" if parallel else "serial"
        self._pending_sweeps.append(
            {
                "points": points,
                "parallel": parallel,
                "workers": workers,
                "backend": backend,
                "wall_s": wall_s,
                "point_walls_s": point_walls_s,
                "worker_pids": sorted(set(worker_pids)),
            }
        )

    def experiment(
        self,
        name: str,
        fingerprint: str,
        wall_s: float,
        metrics: Dict[str, float],
        goldens: Dict[str, Dict[str, Any]],
        context: Optional[Dict[str, Any]] = None,
        cache_stats: Optional[Dict[str, int]] = None,
    ) -> Dict[str, Any]:
        """Close one experiment run into a record, draining sub-events."""
        record: Dict[str, Any] = {
            "schema": RUNLOG_SCHEMA,
            "experiment": name,
            "fingerprint": fingerprint,
            "wall_s": wall_s,
            "metrics": metrics,
            "goldens": goldens,
        }
        if context:
            record["context"] = context
        if cache_stats is not None:
            record["cache"] = cache_stats
        if self._pending_measurements:
            record["measurements"] = self._pending_measurements
            provenance = [
                m["macro"]
                for m in self._pending_measurements
                if isinstance(m.get("macro"), dict)
            ]
            if provenance:
                # record-level backend provenance: an experiment counts as
                # macro-stepped if any of its measurements was
                record["macro"] = {
                    "enabled": any(bool(p.get("enabled")) for p in provenance),
                    "cycles_compiled": sum(
                        int(p.get("cycles_compiled", 0)) for p in provenance
                    ),
                    "steps": sum(int(p.get("steps", 0)) for p in provenance),
                }
            self._pending_measurements = []
        if self._pending_sweeps:
            record["sweeps"] = self._pending_sweeps
            self._pending_sweeps = []
        profiler = _active_profiler()
        if profiler is not None:
            record["profile"] = profiler.summary()
        self.records.append(record)
        return record

    def finish(self, command: str) -> None:
        """Flush orphaned sub-events into a synthetic ``cli:`` record."""
        if not self._pending_measurements and not self._pending_sweeps:
            return
        self.experiment(
            name=f"cli:{command}",
            fingerprint="",
            wall_s=sum(m["wall_s"] for m in self._pending_measurements),
            metrics={},
            goldens={},
        )


def _active_profiler():
    from repro.obs.profile import active_profiler

    return active_profiler()


# --- process-wide opt-in hook -------------------------------------------------

_active: Optional[RunRecorder] = None


def install_recorder(recorder: Optional[RunRecorder] = None) -> RunRecorder:
    """Activate ``recorder`` (a fresh one when omitted) process-wide."""
    global _active
    if recorder is None:
        recorder = RunRecorder()
    _active = recorder
    return recorder


def uninstall_recorder() -> None:
    global _active
    _active = None


def active_recorder() -> Optional[RunRecorder]:
    """The installed recorder, or ``None`` when recording is disabled."""
    return _active


@contextmanager
def recording(recorder: Optional[RunRecorder] = None) -> Iterator[RunRecorder]:
    """Context manager: install a run recorder for a block."""
    installed = install_recorder(recorder)
    try:
        yield installed
    finally:
        uninstall_recorder()


def host_wall_s() -> float:
    """Host wall-clock reading for run records (never simulated time)."""
    return time.perf_counter()  # lint: allow(S401) flight-recorder wall time


# --- the append-only store ----------------------------------------------------


class RunLog:
    """Append-only JSONL store of run records under one directory."""

    def __init__(self, directory: Optional[Union[str, Path]] = None) -> None:
        self.directory = Path(directory) if directory is not None else default_runlog_dir()

    @property
    def path(self) -> Path:
        return self.directory / RUNLOG_FILE

    @declares_effects("time", "fs")  # persistence stamp + the store itself
    def append(self, record: Dict[str, Any]) -> Path:
        """Stamp and append one record; returns the store path.

        The git revision and UTC timestamp are stamped here (not in the
        recorder) so in-memory records stay cheap and the stamps reflect
        the moment of persistence.
        """
        stamped = dict(record)
        stamped.setdefault("git_rev", git_revision())
        stamped.setdefault(
            "recorded_at_unix_s",
            time.time(),  # lint: allow(S401) persistence timestamp, host domain
        )
        self.directory.mkdir(parents=True, exist_ok=True)
        with self.path.open("a", encoding="utf-8") as stream:
            stream.write(json.dumps(stamped, sort_keys=True) + "\n")
        return self.path

    def append_all(self, records: List[Dict[str, Any]]) -> Optional[Path]:
        path = None
        for record in records:
            path = self.append(record)
        return path

    def records(self) -> List[Dict[str, Any]]:
        """Every parseable record, in append order (corrupt lines skipped)."""
        try:
            text = self.path.read_text(encoding="utf-8")
        except OSError:
            return []
        out: List[Dict[str, Any]] = []
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # a torn concurrent append must not poison history
            if isinstance(record, dict):
                out.append(record)
        return out

    def latest_by_experiment(self) -> Dict[str, Dict[str, Any]]:
        """The most recent record per experiment name."""
        latest: Dict[str, Dict[str, Any]] = {}
        for record in self.records():
            name = record.get("experiment")
            if isinstance(name, str):
                latest[name] = record
        return latest

    def __len__(self) -> int:
        return len(self.records())
