"""Structured span/event tracing on the simulated timeline.

A :class:`Tracer` collects three kinds of records, all stamped in
simulated picoseconds (never the host wall clock — lint rule S401):

* **spans** — named intervals with a begin and an end, e.g. one span per
  flow step of the DRIPS entry/exit flows;
* **instants** — point events, e.g. a kernel event dispatch, a PMU mode
  transition, a wake delivery;
* **metrics** — counters/gauges/histograms in the attached
  :class:`~repro.obs.metrics.MetricsRegistry`.

Instrumentation is process-wide opt-in: :func:`install` activates a
tracer, :func:`active` is what instrumented construction sites (for
example :class:`~repro.system.skylake.SkylakePlatform`) read, and
:func:`uninstall` deactivates it.  Hot paths hold a direct ``obs``
attribute that defaults to ``None``, so with tracing disabled the only
cost is a single attribute check — no tracer object is ever consulted.

Tracer state is pure observation: it never schedules kernel events,
never perturbs simulated time, and is excluded from the
:mod:`repro.perf` configuration fingerprints, so cached measurements are
byte-identical with and without a tracer attached.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.effects import declares_effects

from repro.obs.metrics import MetricsRegistry

#: Default track names the instrumented seams publish on.
KERNEL_TRACK = "kernel"
FLOW_STEP_TRACK = "flow-steps"
FLOW_TRACK = "flows"
PMU_TRACK = "pmu"
WAKE_TRACK = "wake"
MEASURE_TRACK = "measure"
MACRO_TRACK = "macro"

#: Causal-edge kinds threaded through the instrumented seams.
EDGE_DELIVERY = "delivery"  # kernel event dispatch -> wake delivery
EDGE_TRIGGER = "trigger"  # wake delivery -> exit flow it starts
EDGE_FOLLOWUP = "followup"  # wake delivery -> entry flow closing its cycle
EDGE_COMPILED = "compiled"  # wake template -> macro-compiled span (N cycles)


class Span:
    """One named interval on a track of the simulated timeline.

    ``end_ps`` is ``None`` while the span is open; :meth:`Tracer.end`
    closes it.  Spans are plain records — they carry no behaviour and
    never touch the simulation.
    """

    __slots__ = ("name", "track", "start_ps", "end_ps", "args")

    def __init__(
        self, name: str, track: str, start_ps: int, args: Optional[Dict[str, Any]] = None
    ) -> None:
        self.name = name
        self.track = track
        self.start_ps = start_ps
        self.end_ps: Optional[int] = None
        self.args = args

    @property
    def closed(self) -> bool:
        return self.end_ps is not None

    @property
    def duration_ps(self) -> int:
        """Span length in picoseconds (0 while still open)."""
        if self.end_ps is None:
            return 0
        return self.end_ps - self.start_ps

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = f"..{self.end_ps}" if self.closed else " (open)"
        return f"<Span {self.track}/{self.name} {self.start_ps}{state}>"


class Instant:
    """A point event on a track of the simulated timeline."""

    __slots__ = ("name", "track", "time_ps", "args")

    def __init__(
        self, name: str, track: str, time_ps: int, args: Optional[Dict[str, Any]] = None
    ) -> None:
        self.name = name
        self.track = track
        self.time_ps = time_ps
        self.args = args

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Instant {self.track}/{self.name} @{self.time_ps}>"


class CausalEdge:
    """A directed causal link between two trace records.

    ``source`` and ``target`` are the :class:`Span`/:class:`Instant`
    objects already held by the tracer — an edge adds no timeline records
    of its own.  Edges are pure observation, like everything else here;
    exporters render them as Perfetto flow arrows.
    """

    __slots__ = ("source", "target", "kind")

    def __init__(self, source: Any, target: Any, kind: str) -> None:
        self.source = source
        self.target = target
        self.kind = kind

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<CausalEdge {self.kind} {self.source!r} -> {self.target!r}>"


class Tracer:
    """Collects spans, instants and metrics from an observed run.

    Usage::

        from repro import obs

        with obs.observe() as tracer:
            measurement = ODRIPSController(TechniqueSet.baseline()).measure(cycles=1)
        print(obs.render_summary(tracer))
    """

    def __init__(self) -> None:
        #: Every span, in begin order (open spans included).
        self.spans: List[Span] = []
        #: Every instant, in record order.
        self.instants: List[Instant] = []
        self.metrics = MetricsRegistry()
        #: Platforms built while this tracer was installed (append order).
        self.platforms: List[Any] = []
        #: Measurement window of the last observed run, set by the runner.
        self.window_ps: Optional[Tuple[int, int]] = None
        #: Causal links between records, in record order.
        self.edges: List[CausalEdge] = []
        self._open: List[Span] = []
        self._last_kernel: Optional[Instant] = None
        self._last_wake: Optional[Instant] = None

    # --- spans -----------------------------------------------------------

    def begin(
        self,
        name: str,
        start_ps: int,
        track: str = FLOW_STEP_TRACK,
        args: Optional[Dict[str, Any]] = None,
    ) -> Span:
        """Open a span at ``start_ps`` and return it."""
        span = Span(name, track, start_ps, args)
        self.spans.append(span)
        self._open.append(span)
        return span

    def end(self, span: Span, end_ps: int) -> Span:
        """Close ``span`` at ``end_ps``.  Closing twice is an error."""
        if span.end_ps is not None:
            raise ValueError(f"span {span.name!r} already closed")
        if end_ps < span.start_ps:
            raise ValueError(
                f"span {span.name!r} would close before it opened "
                f"({end_ps} < {span.start_ps})"
            )
        span.end_ps = end_ps
        self._open.remove(span)
        return span

    @contextmanager
    def span(
        self, name: str, start_ps: int, end_ps: int, track: str = MEASURE_TRACK
    ) -> Iterator[Span]:
        """Record an already-bounded interval (begin and end known)."""
        span = self.begin(name, start_ps, track=track)
        try:
            yield span
        finally:
            self.end(span, end_ps)

    def open_spans(self) -> List[Span]:
        """Spans begun but not yet ended (leak detector for tests/lint)."""
        return list(self._open)

    def closed_spans(self, track: Optional[str] = None) -> List[Span]:
        """Closed spans, optionally restricted to one track."""
        return [
            span
            for span in self.spans
            if span.closed and (track is None or span.track == track)
        ]

    # --- instants --------------------------------------------------------

    def instant(
        self,
        name: str,
        time_ps: int,
        track: str = KERNEL_TRACK,
        args: Optional[Dict[str, Any]] = None,
    ) -> Instant:
        record = Instant(name, track, time_ps, args)
        self.instants.append(record)
        return record

    # --- causal edges ----------------------------------------------------

    def link(self, source: Any, target: Any, kind: str) -> CausalEdge:
        """Record a causal edge between two already-recorded records."""
        edge = CausalEdge(source, target, kind)
        self.edges.append(edge)
        return edge

    def flow_rooted(
        self,
        span: Span,
        kind: str,
        time_ps: int,
        detail: str = "",
        role: str = EDGE_TRIGGER,
    ) -> None:
        """Attribute a flow span to the wake event that caused it.

        Called by the flow controller when an exit flow starts
        (``EDGE_TRIGGER``) and when the following entry flow closes the
        same standby cycle (``EDGE_FOLLOWUP``).  The root is the
        ``wake:<kind>`` instant the wake hub already delivered; platforms
        without a hub in the wake path (baseline timer wakes land in the
        PMU directly) get a synthesized root instant so the wake-chain
        graph stays uniform across technique sets.
        """
        root = self._last_wake
        if root is None or root.time_ps != time_ps or root.name != f"wake:{kind}":
            args = {"detail": detail} if detail else None
            root = self.instant(f"wake:{kind}", time_ps, track=WAKE_TRACK, args=args)
            if self._last_kernel is not None and self._last_kernel.time_ps == time_ps:
                self.link(self._last_kernel, root, EDGE_DELIVERY)
            self._last_wake = root
        self.link(root, span, role)

    # --- instrumentation callbacks --------------------------------------

    def kernel_event(self, label: str, time_ps: int) -> None:
        """One kernel event dispatch (called from :meth:`Kernel.step`)."""
        name = label or "anon"
        record = Instant(name, KERNEL_TRACK, time_ps, None)
        self.instants.append(record)
        self._last_kernel = record
        self.metrics.counter(f"kernel.events:{name}").inc()

    def pmu_transition(self, old_mode: str, new_mode: str, time_ps: int) -> None:
        """One PMU gating-mode change (called from ``ProcessorPMU.set_mode``)."""
        self.instants.append(
            Instant(f"pmu:{old_mode}->{new_mode}", PMU_TRACK, time_ps, None)
        )
        self.metrics.counter(f"pmu.transitions:{new_mode}").inc()

    def wake_delivered(self, kind: str, time_ps: int, detail: str = "") -> None:
        """One wake-hub delivery (called from ``WakeHub._dispatch``)."""
        args = {"detail": detail} if detail else None
        record = Instant(f"wake:{kind}", WAKE_TRACK, time_ps, args)
        self.instants.append(record)
        if self._last_kernel is not None and self._last_kernel.time_ps == time_ps:
            self.link(self._last_kernel, record, EDGE_DELIVERY)
        self._last_wake = record
        self.metrics.counter(f"wake.delivered:{kind}").inc()

    def attach_platform(self, platform: Any) -> None:
        """Register a platform built under this tracer (for exporters)."""
        self.platforms.append(platform)

    def set_window(self, start_ps: int, end_ps: int) -> None:
        """Record the measurement window of the observed run."""
        self.window_ps = (start_ps, end_ps)

    def progress(self) -> Dict[str, int]:
        """Record counts so far — the tracer's live-telemetry snapshot.

        Cheap enough to poll mid-run (four ``len`` calls); the streaming
        pipeline (:mod:`repro.obs.stream`) folds these into heartbeats.
        """
        return {
            "spans": len(self.spans),
            "open_spans": len(self._open),
            "instants": len(self.instants),
            "edges": len(self.edges),
        }


# --- process-wide opt-in hook -------------------------------------------------

_active: Optional[Tracer] = None


@declares_effects("module-state")  # the process-wide opt-in hook itself
def install(tracer: Optional[Tracer] = None) -> Tracer:
    """Activate ``tracer`` (a fresh one when omitted) process-wide.

    Only construction sites read the active tracer; platforms built
    before :func:`install` stay uninstrumented.
    """
    global _active
    if tracer is None:
        tracer = Tracer()
    _active = tracer
    return tracer


@declares_effects("module-state")  # the process-wide opt-in hook itself
def uninstall() -> None:
    """Deactivate tracing; already-attached platforms keep their tracer."""
    global _active
    _active = None


def active() -> Optional[Tracer]:
    """The installed tracer, or ``None`` when tracing is disabled."""
    return _active


@contextmanager
def observe(tracer: Optional[Tracer] = None) -> Iterator[Tracer]:
    """Context manager: install a tracer for the duration of a block."""
    installed = install(tracer)
    try:
        yield installed
    finally:
        uninstall()
