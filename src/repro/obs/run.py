"""Observed experiment runs: one command, one tracer, one energy ledger.

:func:`run_traced` is the engine behind ``python -m repro trace``: it
installs a fresh :class:`~repro.obs.tracer.Tracer`, runs one
connected-standby measurement for a named configuration, and digests the
observation into a :class:`TraceSession` — tracer, instrumented
platform, measurement, and an :class:`~repro.obs.ledger.EnergyLedger`
over the measurement window.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.core.odrips import ODRIPSController, StandbyMeasurement
from repro.core.techniques import TechniqueSet
from repro.errors import ConfigError, MeasurementError
from repro.obs.ledger import EnergyLedger
from repro.obs.tracer import FLOW_STEP_TRACK, Tracer, observe

#: Traceable configurations: single-measurement technique sets.  ``fig2``
#: is the paper's baseline standby run; the rest are the Fig. 6(a)/(d)
#: technique combinations.
TRACE_CONFIGS: Dict[str, Callable[[], TechniqueSet]] = {
    "fig2": TechniqueSet.baseline,
    "baseline": TechniqueSet.baseline,
    "wake-up-off": TechniqueSet.wake_up_off_only,
    "aon-io-gate": TechniqueSet.with_io_gating,
    "ctx": TechniqueSet.ctx_sgx_dram_only,
    "odrips": TechniqueSet.odrips,
    "odrips-mram": TechniqueSet.odrips_mram,
    "odrips-pcm": TechniqueSet.odrips_pcm,
}


@dataclass
class TraceSession:
    """Everything one observed run produced."""

    experiment: str
    tracer: Tracer
    platform: object
    measurement: StandbyMeasurement
    ledger: EnergyLedger


def run_traced(
    experiment: str,
    cycles: int = 2,
    idle_interval_s: Optional[float] = None,
) -> TraceSession:
    """Run ``experiment`` under a fresh tracer and build its ledger.

    The ledger integrates the platform's per-rail power channels over the
    measurement window (the same wake-to-wake window the runner reports)
    and attributes flow-step spans to domains.
    """
    factory = TRACE_CONFIGS.get(experiment)
    if factory is None:
        known = ", ".join(sorted(TRACE_CONFIGS))
        raise ConfigError(f"unknown trace target {experiment!r}; pick one of: {known}")
    with observe() as tracer:
        controller = ODRIPSController(factory())
        measurement = controller.measure(cycles=cycles, idle_interval_s=idle_interval_s)
    if not tracer.platforms:
        raise MeasurementError("observed run built no instrumented platform")
    if tracer.window_ps is None:
        raise MeasurementError("observed run recorded no measurement window")
    platform = tracer.platforms[-1]
    start_ps, end_ps = tracer.window_ps
    ledger = EnergyLedger.from_trace(
        platform.trace,
        start_ps,
        end_ps,
        spans=tracer.closed_spans(FLOW_STEP_TRACK),
    )
    return TraceSession(
        experiment=experiment,
        tracer=tracer,
        platform=platform,
        measurement=measurement,
        ledger=ledger,
    )
