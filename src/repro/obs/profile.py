"""Host-time phase profiler: where does the *wall clock* go?

The tracer (:mod:`repro.obs.tracer`) observes the simulated timeline;
this module observes the host that computes it.  A
:class:`PhaseProfiler` attributes host wall time and peak heap
allocations to the four phases every experiment decomposes into:

* ``build`` — constructing and wiring a platform
  (:meth:`~repro.core.odrips.ODRIPSController.build_platform`);
* ``simulate`` — running the discrete-event kernel through the
  connected-standby workload;
* ``measure`` — the power analyzer digesting the recorded trace;
* ``analyze`` — everything around them: driver glue, sweep fan-out,
  table formatting (the CLI opens this phase around each command).

Hooks are context managers; instrumented seams guard on one
``active_profiler() is None`` check, so the disabled path costs a single
function call per seam — the same zero-cost discipline as the tracer,
enforced by the 3% overhead guard in ``benchmarks/bench_perf_engine.py``.

Host time is exactly what lint rule S401 bans from simulation code, so
the two clock reads below carry explicit ``lint: allow`` pragmas — this
module is the one place in the library where wall time is the point.

Usage::

    from repro import obs

    with obs.profiled(track_allocations=True) as profiler:
        fig2_connected_standby(cycles=1)
    print(obs.render_profile(profiler))
"""

from __future__ import annotations

import time
import tracemalloc
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional

from repro.effects import declares_effects

#: The canonical phase names, in pipeline order.
PHASE_BUILD = "build"
PHASE_SIMULATE = "simulate"
PHASE_MEASURE = "measure"
PHASE_ANALYZE = "analyze"
PHASES = (PHASE_BUILD, PHASE_SIMULATE, PHASE_MEASURE, PHASE_ANALYZE)


class PhaseSpan:
    """One completed phase instance on the host timeline.

    ``start_s``/``end_s`` are host seconds relative to the profiler's
    creation (so exported timelines start at zero); ``depth`` is the
    nesting level (``measure`` typically nests inside ``simulate``).
    ``peak_bytes`` is the peak traced allocation observed during the
    span's tail segment (see :class:`PhaseProfiler` for the caveat), or
    ``None`` when allocation tracking is off.
    """

    __slots__ = ("name", "start_s", "end_s", "depth", "peak_bytes", "children_s")

    def __init__(self, name: str, start_s: float, depth: int) -> None:
        self.name = name
        self.start_s = start_s
        self.end_s: Optional[float] = None
        self.depth = depth
        self.peak_bytes: Optional[int] = None
        self.children_s = 0.0

    @property
    def wall_s(self) -> float:
        """Inclusive wall time of the span (0.0 while still open)."""
        if self.end_s is None:
            return 0.0
        return self.end_s - self.start_s

    @property
    def self_s(self) -> float:
        """Exclusive wall time: the span minus its nested child spans."""
        return max(self.wall_s - self.children_s, 0.0)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<PhaseSpan {self.name} {self.wall_s:.3f}s depth={self.depth}>"


class PhaseStats:
    """Aggregate of every span sharing one phase name."""

    __slots__ = ("name", "count", "wall_s", "self_s", "peak_bytes")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.wall_s = 0.0
        self.self_s = 0.0
        self.peak_bytes: Optional[int] = None

    def add(self, span: PhaseSpan) -> None:
        self.count += 1
        self.wall_s += span.wall_s
        self.self_s += span.self_s
        if span.peak_bytes is not None:
            current = self.peak_bytes if self.peak_bytes is not None else 0
            self.peak_bytes = max(current, span.peak_bytes)

    def to_json(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "count": self.count,
            "wall_s": self.wall_s,
            "self_s": self.self_s,
        }
        if self.peak_bytes is not None:
            payload["peak_bytes"] = self.peak_bytes
        return payload


class PhaseProfiler:
    """Attributes host wall time (and, optionally, allocations) to phases.

    ``track_allocations=True`` starts :mod:`tracemalloc` while the
    profiler is active and records per-span peak traced memory.  Peaks
    are measured with ``tracemalloc.reset_peak``, which is a single
    process-wide watermark: a nested child resets it for its own
    measurement, so a parent's recorded peak covers the segment *after*
    its last child — an attribution approximation, documented rather
    than hidden, that keeps the hooks allocation-free themselves.

    The profiler never touches simulated time: spans are stamped with
    the host clock only, and profiler state is excluded from the
    :mod:`repro.perf` configuration fingerprints.
    """

    def __init__(self, track_allocations: bool = False) -> None:
        self.track_allocations = track_allocations
        self.spans: List[PhaseSpan] = []
        self._stack: List[PhaseSpan] = []
        self._started_tracemalloc = False
        if track_allocations and not tracemalloc.is_tracing():
            tracemalloc.start()
            self._started_tracemalloc = True
        self._origin_s = time.perf_counter()  # lint: allow(S401) host-phase profiler

    @declares_effects("time")  # the profiler is host-side instrumentation
    def _now_s(self) -> float:
        """Host seconds since the profiler was created."""
        return time.perf_counter() - self._origin_s  # lint: allow(S401) host-phase profiler

    @contextmanager
    def phase(self, name: str) -> Iterator[PhaseSpan]:
        """Open a named phase for the duration of the ``with`` block."""
        span = PhaseSpan(name, self._now_s(), depth=len(self._stack))
        self.spans.append(span)
        self._stack.append(span)
        if self.track_allocations and tracemalloc.is_tracing():
            tracemalloc.reset_peak()
        try:
            yield span
        finally:
            span.end_s = self._now_s()
            if self.track_allocations and tracemalloc.is_tracing():
                span.peak_bytes = tracemalloc.get_traced_memory()[1]
                tracemalloc.reset_peak()
            self._stack.pop()
            if self._stack:
                self._stack[-1].children_s += span.wall_s

    def close(self) -> None:
        """Stop the tracemalloc session this profiler started, if any."""
        if self._started_tracemalloc and tracemalloc.is_tracing():
            tracemalloc.stop()
            self._started_tracemalloc = False

    # --- digests ----------------------------------------------------------

    def closed_spans(self) -> List[PhaseSpan]:
        return [span for span in self.spans if span.end_s is not None]

    def stats(self) -> Dict[str, PhaseStats]:
        """Per-phase aggregates, known phases first, then first-seen order."""
        order: List[str] = list(PHASES)
        totals: Dict[str, PhaseStats] = {}
        for span in self.closed_spans():
            if span.name not in order:
                order.append(span.name)
            totals.setdefault(span.name, PhaseStats(span.name)).add(span)
        return {name: totals[name] for name in order if name in totals}

    def total_wall_s(self) -> float:
        """Wall time covered by top-level phases (no double counting)."""
        return sum(span.wall_s for span in self.closed_spans() if span.depth == 0)

    def summary(self) -> Dict[str, Dict[str, object]]:
        """JSON-able per-phase digest (what the flight recorder stores)."""
        return {name: stats.to_json() for name, stats in self.stats().items()}


# --- process-wide opt-in hook -------------------------------------------------

_active: Optional[PhaseProfiler] = None


def install_profiler(profiler: Optional[PhaseProfiler] = None) -> PhaseProfiler:
    """Activate ``profiler`` (a fresh one when omitted) process-wide."""
    global _active
    if profiler is None:
        profiler = PhaseProfiler()
    _active = profiler
    return profiler


def uninstall_profiler() -> None:
    """Deactivate phase profiling (the profiler keeps its records)."""
    global _active
    if _active is not None:
        _active.close()
    _active = None


def active_profiler() -> Optional[PhaseProfiler]:
    """The installed profiler, or ``None`` when profiling is disabled."""
    return _active


@contextmanager
def profiled(
    profiler: Optional[PhaseProfiler] = None, track_allocations: bool = False
) -> Iterator[PhaseProfiler]:
    """Context manager: install a phase profiler for a block."""
    if profiler is None:
        profiler = PhaseProfiler(track_allocations=track_allocations)
    installed = install_profiler(profiler)
    try:
        yield installed
    finally:
        uninstall_profiler()


@contextmanager
def host_phase(name: str) -> Iterator[None]:
    """Instrumentation seam: a phase on the active profiler, or a no-op.

    This is what the hooks in ``cli.py`` / ``core/odrips.py`` /
    ``measure/analyzer.py`` call; with no profiler installed it is one
    ``None`` check.
    """
    profiler = _active
    if profiler is None:
        yield None
        return
    with profiler.phase(name):
        yield None
