"""Counters, gauges and histograms for observed runs.

A :class:`MetricsRegistry` is the aggregate side of :mod:`repro.obs`:
where spans record *when* something happened, metrics record *how often*
and *how much*.  Instruments are created lazily on first use and are
plain Python objects — no background threads, no sampling, no host
clocks — so they are safe to update from simulation callbacks.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from repro.errors import MeasurementError

Number = Union[int, float]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise MeasurementError(f"counter {self.name!r} cannot decrease")
        self.value += amount


class Gauge:
    """A value that can move both ways (e.g. pending events, open spans)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Number = 0

    def set(self, value: Number) -> None:
        self.value = value


class Histogram:
    """A distribution of observations (e.g. flow latencies).

    Keeps every observation: observed runs record at most a few thousand
    values, and exact percentiles beat bucketed approximations at that
    scale.
    """

    __slots__ = ("name", "values")

    def __init__(self, name: str) -> None:
        self.name = name
        self.values: List[float] = []

    def observe(self, value: Number) -> None:
        self.values.append(float(value))

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def total(self) -> float:
        return sum(self.values)

    @property
    def mean(self) -> float:
        return self.total / len(self.values) if self.values else 0.0

    def percentile(self, fraction: float) -> float:
        """Nearest-rank percentile; ``fraction`` in [0, 1]."""
        if not 0.0 <= fraction <= 1.0:
            raise MeasurementError(f"percentile fraction {fraction} outside [0, 1]")
        if not self.values:
            return 0.0
        ordered = sorted(self.values)
        index = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
        return ordered[index]


class MetricsRegistry:
    """Lazily-created named instruments, one namespace per tracer."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(name)
        return instrument

    # --- views -----------------------------------------------------------

    def counters(self) -> Dict[str, int]:
        return {name: c.value for name, c in sorted(self._counters.items())}

    def gauges(self) -> Dict[str, Number]:
        return {name: g.value for name, g in sorted(self._gauges.items())}

    def histograms(self) -> Dict[str, Histogram]:
        return dict(sorted(self._histograms.items()))

    def counter_value(self, name: str, default: int = 0) -> int:
        instrument = self._counters.get(name)
        return instrument.value if instrument is not None else default

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """JSON-able view of every instrument (for the JSONL exporter)."""
        return {
            "counters": dict(self.counters()),
            "gauges": dict(self.gauges()),
            "histograms": {
                name: {
                    "count": hist.count,
                    "total": hist.total,
                    "mean": hist.mean,
                    "p50": hist.percentile(0.50),
                    "p95": hist.percentile(0.95),
                }
                for name, hist in self.histograms().items()
            },
        }

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)
