"""Counters, gauges and histograms for observed runs.

A :class:`MetricsRegistry` is the aggregate side of :mod:`repro.obs`:
where spans record *when* something happened, metrics record *how often*
and *how much*.  Instruments are created lazily on first use and are
plain Python objects — no background threads, no sampling, no host
clocks — so they are safe to update from simulation callbacks.

Two histogram classes cover the two observation regimes:

* :class:`Histogram` keeps every exact sample — right for post-hoc
  analysis of a few thousand observations, wrong for week-scale macro
  horizons (lint rule S408 flags it in hot paths);
* :class:`BoundedHistogram` keeps log-spaced buckets with exact
  count/sum/min/max — memory bounded by the value *range*, not the
  observation count, and mergeable across sweep worker processes
  (request it with ``MetricsRegistry.histogram(name, bounded=True)``).
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Optional, Tuple, Union

from repro.errors import MeasurementError

Number = Union[int, float]

#: Geometric bucket ratio of :class:`BoundedHistogram` — ~12.6 buckets
#: per decade, so relative quantile error stays under ~10%.
DEFAULT_LOG_BASE = 1.2


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise MeasurementError(f"counter {self.name!r} cannot decrease")
        self.value += amount


class Gauge:
    """A value that can move both ways (e.g. pending events, open spans)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Number = 0

    def set(self, value: Number) -> None:
        self.value = value


class Histogram:
    """A distribution of observations (e.g. flow latencies).

    Keeps every observation: observed runs record at most a few thousand
    values, and exact percentiles beat bucketed approximations at that
    scale.
    """

    __slots__ = ("name", "values")

    def __init__(self, name: str) -> None:
        self.name = name
        self.values: List[float] = []

    def observe(self, value: Number) -> None:
        self.values.append(float(value))

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def total(self) -> float:
        return sum(self.values)

    @property
    def mean(self) -> float:
        return self.total / len(self.values) if self.values else 0.0

    def percentile(self, fraction: float) -> float:
        """Nearest-rank percentile; ``fraction`` in [0, 1].

        Raises :class:`~repro.errors.MeasurementError` on an empty
        histogram — a percentile of nothing is a question, not a zero.
        """
        if not 0.0 <= fraction <= 1.0:
            raise MeasurementError(f"percentile fraction {fraction} outside [0, 1]")
        if not self.values:
            raise MeasurementError(
                f"percentile of empty histogram {self.name!r}"
            )
        ordered = sorted(self.values)
        index = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
        return ordered[index]


class BoundedHistogram:
    """A log-bucketed streaming histogram with exact count/sum/min/max.

    A positive observation lands in geometric bucket
    ``floor(log(value) / log(base))`` (value range
    ``[base**i, base**(i+1))``); negative observations mirror into a
    sign-split bucket map keyed by the magnitude's bucket, and zero has
    a dedicated bucket.  Memory is bounded by the number of *occupied*
    buckets (a handful per decade of dynamic range), never by the
    observation count, so the instrument is safe inside week-scale macro
    runs and sweep workers.

    ``count``/``total``/``min_value``/``max_value`` stay exact;
    :meth:`percentile` is bucket-approximate (geometric-midpoint
    representative, relative error bounded by ``sqrt(base) - 1``).
    Histograms with equal bases merge exactly — counts and sums add —
    via :meth:`merge`, and :meth:`snapshot`/:meth:`from_snapshot`
    round-trip through JSON so worker processes can ship partial
    aggregates to the parent.
    """

    __slots__ = (
        "name", "base", "count", "total", "zeros",
        "_pos", "_neg", "_min", "_max", "_log_base",
    )

    def __init__(self, name: str, base: float = DEFAULT_LOG_BASE) -> None:
        if base <= 1.0:
            raise MeasurementError(
                f"histogram {name!r}: bucket base must exceed 1 (got {base})"
            )
        self.name = name
        self.base = float(base)
        self._log_base = math.log(self.base)
        self.count = 0
        self.total = 0.0
        self.zeros = 0
        #: bucket index -> count for positive / negative observations.
        self._pos: Dict[int, int] = {}
        self._neg: Dict[int, int] = {}
        self._min: Optional[float] = None
        self._max: Optional[float] = None

    def _index(self, magnitude: float) -> int:
        return math.floor(math.log(magnitude) / self._log_base)

    def observe(self, value: Number) -> None:
        sample = float(value)
        if not math.isfinite(sample):
            raise MeasurementError(
                f"histogram {self.name!r} cannot bucket non-finite value {sample!r}"
            )
        self.count += 1
        self.total += sample
        if self._min is None or sample < self._min:
            self._min = sample
        if self._max is None or sample > self._max:
            self._max = sample
        if sample == 0.0:
            self.zeros += 1
        elif sample > 0.0:
            index = self._index(sample)
            self._pos[index] = self._pos.get(index, 0) + 1
        else:
            index = self._index(-sample)
            self._neg[index] = self._neg.get(index, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def min_value(self) -> float:
        if self._min is None:
            raise MeasurementError(f"histogram {self.name!r} is empty")
        return self._min

    @property
    def max_value(self) -> float:
        if self._max is None:
            raise MeasurementError(f"histogram {self.name!r} is empty")
        return self._max

    def bucket_bounds(self, index: int) -> Tuple[float, float]:
        """Value range ``[lo, hi)`` of positive bucket ``index``."""
        return self.base ** index, self.base ** (index + 1)

    def merge(self, other: "BoundedHistogram") -> None:
        """Fold ``other`` into this histogram (bases must match)."""
        if abs(other.base - self.base) > 1e-12:
            raise MeasurementError(
                f"cannot merge histogram {other.name!r} (base {other.base}) "
                f"into {self.name!r} (base {self.base})"
            )
        if other.count == 0:
            return
        self.count += other.count
        self.total += other.total
        self.zeros += other.zeros
        for index, bucket_count in other._pos.items():
            self._pos[index] = self._pos.get(index, 0) + bucket_count
        for index, bucket_count in other._neg.items():
            self._neg[index] = self._neg.get(index, 0) + bucket_count
        if self._min is None or other._min < self._min:  # type: ignore[operator]
            self._min = other._min
        if self._max is None or other._max > self._max:  # type: ignore[operator]
            self._max = other._max

    def _ordered_buckets(self) -> List[Tuple[float, float, int]]:
        """``(upper_bound, representative, count)`` in ascending value order."""
        out: List[Tuple[float, float, int]] = []
        for index in sorted(self._neg, reverse=True):
            lo, hi = self.bucket_bounds(index)
            out.append((-lo, -math.sqrt(lo * hi), self._neg[index]))
        if self.zeros:
            out.append((0.0, 0.0, self.zeros))
        for index in sorted(self._pos):
            lo, hi = self.bucket_bounds(index)
            out.append((hi, math.sqrt(lo * hi), self._pos[index]))
        return out

    def cumulative_buckets(self) -> List[Tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, ascending — the
        OpenMetrics ``le`` series (the writer appends the ``+Inf`` bucket)."""
        out: List[Tuple[float, int]] = []
        running = 0
        for upper, _representative, bucket_count in self._ordered_buckets():
            running += bucket_count
            out.append((upper, running))
        return out

    def percentile(self, fraction: float) -> float:
        """Bucket-approximate nearest-rank percentile; ``fraction`` in [0, 1].

        Returns the geometric midpoint of the bucket holding the rank,
        clamped to the exact observed ``[min_value, max_value]`` range.
        Raises :class:`~repro.errors.MeasurementError` when empty.
        """
        if not 0.0 <= fraction <= 1.0:
            raise MeasurementError(f"percentile fraction {fraction} outside [0, 1]")
        if self.count == 0:
            raise MeasurementError(
                f"percentile of empty histogram {self.name!r}"
            )
        rank = min(self.count - 1, max(0, round(fraction * (self.count - 1))))
        seen = 0
        for _upper, representative, bucket_count in self._ordered_buckets():
            seen += bucket_count
            if rank < seen:
                return min(max(representative, self.min_value), self.max_value)
        return self.max_value  # pragma: no cover - rank always lands above

    def snapshot(self) -> Dict[str, object]:
        """JSON-able state; :meth:`from_snapshot` round-trips it exactly."""
        return {
            "name": self.name,
            "base": self.base,
            "count": self.count,
            "total": self.total,
            "zeros": self.zeros,
            "min": self._min,
            "max": self._max,
            "pos": {str(index): count for index, count in sorted(self._pos.items())},
            "neg": {str(index): count for index, count in sorted(self._neg.items())},
        }

    @classmethod
    def from_snapshot(cls, data: Mapping[str, object]) -> "BoundedHistogram":
        """Rebuild a histogram from a :meth:`snapshot` payload."""
        try:
            hist = cls(str(data["name"]), base=float(data["base"]))  # type: ignore[arg-type]
            hist.count = int(data["count"])  # type: ignore[arg-type]
            hist.total = float(data["total"])  # type: ignore[arg-type]
            hist.zeros = int(data["zeros"])  # type: ignore[arg-type]
            minimum = data.get("min")  # type: ignore[union-attr]
            maximum = data.get("max")  # type: ignore[union-attr]
            hist._min = None if minimum is None else float(minimum)  # type: ignore[arg-type]
            hist._max = None if maximum is None else float(maximum)  # type: ignore[arg-type]
            hist._pos = {
                int(index): int(count)
                for index, count in dict(data["pos"]).items()  # type: ignore[arg-type]
            }
            hist._neg = {
                int(index): int(count)
                for index, count in dict(data["neg"]).items()  # type: ignore[arg-type]
            }
        except (KeyError, TypeError, ValueError) as error:
            raise MeasurementError(
                f"malformed bounded-histogram snapshot: {error}"
            ) from error
        return hist


#: Either histogram flavour, as stored in a :class:`MetricsRegistry`.
AnyHistogram = Union[Histogram, BoundedHistogram]


class MetricsRegistry:
    """Lazily-created named instruments, one namespace per tracer."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, AnyHistogram] = {}

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str, bounded: bool = False) -> AnyHistogram:
        """The named histogram, created on first use.

        ``bounded=True`` creates a :class:`BoundedHistogram` (log-bucket
        aggregation, memory bounded by value range) instead of the exact
        :class:`Histogram` — the right flavour inside macro or sweep hot
        paths (lint rule S408).  The flavour is fixed at first creation;
        later lookups return the existing instrument regardless of the
        flag.
        """
        instrument = self._histograms.get(name)
        if instrument is None:
            if bounded:
                instrument = self._histograms[name] = BoundedHistogram(name)
            else:
                instrument = self._histograms[name] = Histogram(name)
        return instrument

    # --- views -----------------------------------------------------------

    def counters(self) -> Dict[str, int]:
        return {name: c.value for name, c in sorted(self._counters.items())}

    def gauges(self) -> Dict[str, Number]:
        return {name: g.value for name, g in sorted(self._gauges.items())}

    def histograms(self) -> Dict[str, AnyHistogram]:
        return dict(sorted(self._histograms.items()))

    def counter_value(self, name: str, default: int = 0) -> int:
        instrument = self._counters.get(name)
        return instrument.value if instrument is not None else default

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """JSON-able view of every instrument (for the JSONL exporter)."""
        return {
            "counters": dict(self.counters()),
            "gauges": dict(self.gauges()),
            "histograms": {
                name: {
                    "count": hist.count,
                    "total": hist.total,
                    "mean": hist.mean,
                    "p50": hist.percentile(0.50) if hist.count else None,
                    "p95": hist.percentile(0.95) if hist.count else None,
                    "bounded": isinstance(hist, BoundedHistogram),
                }
                for name, hist in self.histograms().items()
            },
        }

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)
