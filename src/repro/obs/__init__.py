"""repro.obs — structured tracing, metrics, and energy attribution.

The observability layer of the reproduction: a span/event
:class:`Tracer` stamped in simulated time, a
:class:`~repro.obs.metrics.MetricsRegistry` of counters/gauges/
histograms, an :class:`EnergyLedger` attributing per-domain energy to
flow steps, and exporters for Chrome trace JSON (Perfetto), JSONL, and
terminal summaries.  Two host-side companions watch the repo itself: the
:mod:`~repro.obs.runlog` flight recorder (one JSON record per experiment
run under ``.repro/runs/``, consumed by ``python -m repro report``), the
:mod:`~repro.obs.profile` phase profiler (host wall time and peak
allocations per build/simulate/measure/analyze phase), and the
:mod:`~repro.obs.stream` live-telemetry pipeline (bounded histograms,
heartbeats, and rolling windows feeding the
:mod:`~repro.obs.openmetrics` exposition and the
:mod:`~repro.obs.dash` fleet dashboard).

Quick start::

    from repro import obs
    from repro.core import ODRIPSController, TechniqueSet

    with obs.observe() as tracer:
        ODRIPSController(TechniqueSet.odrips()).measure(cycles=1)
    print(obs.render_summary(tracer))
    obs.write_chrome_trace(tracer, "trace.json", platform=tracer.platforms[-1])

Instrumentation is opt-in and zero-cost when disabled: the hot seams
guard on one ``obs is not None`` attribute check, and tracer state never
perturbs simulated time or the :mod:`repro.perf` cache fingerprints.

The exporters and the traced runner are loaded lazily (PEP 562): the
instrumented modules (kernel, flows, PMU, cache, analyzer) import
:mod:`repro.obs.tracer` at module scope, and an eager import of
:mod:`repro.obs.run` here would close an import cycle back through
:mod:`repro.core`.
"""

from repro.obs.ledger import EnergyLedger, LedgerCell
from repro.obs.metrics import (
    BoundedHistogram,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.tracer import (
    FLOW_STEP_TRACK,
    FLOW_TRACK,
    KERNEL_TRACK,
    MACRO_TRACK,
    MEASURE_TRACK,
    PMU_TRACK,
    WAKE_TRACK,
    CausalEdge,
    Instant,
    Span,
    Tracer,
    active,
    install,
    observe,
    uninstall,
)

#: Lazily-resolved public names -> defining module (import-cycle guard).
_LAZY = {
    "chrome_trace": "repro.obs.export",
    "jsonl_lines": "repro.obs.export",
    "render_profile": "repro.obs.export",
    "render_summary": "repro.obs.export",
    "write_chrome_trace": "repro.obs.export",
    "write_jsonl": "repro.obs.export",
    "TRACE_CONFIGS": "repro.obs.run",
    "TraceSession": "repro.obs.run",
    "run_traced": "repro.obs.run",
    "CausalReport": "repro.obs.causal",
    "attribution_cells": "repro.obs.causal",
    "build_causal_report": "repro.obs.causal",
    "flow_critical_paths": "repro.obs.causal",
    "wake_cause": "repro.obs.causal",
    "EXPLAIN_SCHEMA": "repro.obs.diff",
    "RunProfile": "repro.obs.diff",
    "diff_profiles": "repro.obs.diff",
    "explain_history": "repro.obs.diff",
    "explain_simulate": "repro.obs.diff",
    "profile_config": "repro.obs.diff",
    "render_explain": "repro.obs.diff",
    "validate_explain_payload": "repro.obs.diff",
    "PhaseProfiler": "repro.obs.profile",
    "active_profiler": "repro.obs.profile",
    "host_phase": "repro.obs.profile",
    "install_profiler": "repro.obs.profile",
    "profiled": "repro.obs.profile",
    "uninstall_profiler": "repro.obs.profile",
    "RunLog": "repro.obs.runlog",
    "RunRecorder": "repro.obs.runlog",
    "active_recorder": "repro.obs.runlog",
    "git_revision": "repro.obs.runlog",
    "install_recorder": "repro.obs.runlog",
    "recording": "repro.obs.runlog",
    "uninstall_recorder": "repro.obs.runlog",
    "RollingWindow": "repro.obs.stream",
    "TelemetryStream": "repro.obs.stream",
    "active_stream": "repro.obs.stream",
    "install_stream": "repro.obs.stream",
    "merge_worker_heartbeats": "repro.obs.stream",
    "read_heartbeat_dir": "repro.obs.stream",
    "record_worker_point": "repro.obs.stream",
    "streaming": "repro.obs.stream",
    "uninstall_stream": "repro.obs.stream",
    "openmetrics_lines": "repro.obs.openmetrics",
    "render_openmetrics": "repro.obs.openmetrics",
    "validate_openmetrics": "repro.obs.openmetrics",
    "write_openmetrics": "repro.obs.openmetrics",
    "build_dashboard": "repro.obs.dash",
    "detect_anomalies": "repro.obs.dash",
    "render_dashboard": "repro.obs.dash",
    "write_dashboard": "repro.obs.dash",
}

__all__ = [
    "BoundedHistogram",
    "CausalEdge",
    "CausalReport",
    "Counter",
    "EXPLAIN_SCHEMA",
    "EnergyLedger",
    "FLOW_STEP_TRACK",
    "FLOW_TRACK",
    "Gauge",
    "Histogram",
    "Instant",
    "KERNEL_TRACK",
    "LedgerCell",
    "MACRO_TRACK",
    "MEASURE_TRACK",
    "MetricsRegistry",
    "PMU_TRACK",
    "PhaseProfiler",
    "RollingWindow",
    "RunLog",
    "RunProfile",
    "RunRecorder",
    "Span",
    "TelemetryStream",
    "TRACE_CONFIGS",
    "TraceSession",
    "Tracer",
    "WAKE_TRACK",
    "active",
    "active_profiler",
    "active_recorder",
    "active_stream",
    "attribution_cells",
    "build_causal_report",
    "build_dashboard",
    "chrome_trace",
    "detect_anomalies",
    "diff_profiles",
    "explain_history",
    "explain_simulate",
    "flow_critical_paths",
    "git_revision",
    "host_phase",
    "install",
    "install_profiler",
    "install_recorder",
    "install_stream",
    "jsonl_lines",
    "merge_worker_heartbeats",
    "observe",
    "openmetrics_lines",
    "profile_config",
    "profiled",
    "read_heartbeat_dir",
    "record_worker_point",
    "recording",
    "render_dashboard",
    "render_explain",
    "render_openmetrics",
    "render_profile",
    "render_summary",
    "run_traced",
    "streaming",
    "uninstall",
    "uninstall_profiler",
    "uninstall_recorder",
    "uninstall_stream",
    "validate_explain_payload",
    "validate_openmetrics",
    "wake_cause",
    "write_chrome_trace",
    "write_dashboard",
    "write_jsonl",
    "write_openmetrics",
]


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro.obs' has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(__all__))
