"""Causal wake-attribution over an observed run.

The paper's analytical method is attribution: decompose connected-standby
drain into per-source, per-state contributions *before* optimizing any of
them.  This module reconstructs that decomposition from a traced run: the
causal edges the instrumented seams recorded (kernel event -> wake
delivery -> entry/exit flow spans, :class:`~repro.obs.tracer.CausalEdge`)
plus the platform's wake log and state/power trace channels, composed
into

* a **wake-chain graph** — one :class:`WakeChain` per wake event inside
  the measurement window, linking the root wake to the exit flow it
  triggered and the entry flow that closed its cycle (macro-compiled
  spans appear as one aggregated chain carrying their cycle count);
* **per-cause rollups** — every joule and picosecond of the window
  attributed to one root cause: a wake source (``wake:timer``,
  ``wake:network``, ...) for the entry/exit transitions it forces,
  ``maintenance-burst`` for Active dwell, ``steady-idle`` for DRIPS
  dwell, and ``boot`` for anything before the first wake;
* **critical-path decompositions** — per flow name, the step spans that
  tile each entry/exit flow aggregated and ranked by total latency;
* **attribution cells** — the (domain x state x cause) energy cube the
  differential explainer (:mod:`repro.obs.diff`) ranks deltas over.

Everything here is read-only post-processing of records the tracer and
platform already hold: building a report never touches the simulation,
so measurement results are bit-for-bit identical whether or not a causal
report is ever built.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import MeasurementError
from repro.obs.ledger import RAIL_CHANNEL_PREFIX
from repro.obs.tracer import (
    EDGE_COMPILED,
    EDGE_FOLLOWUP,
    EDGE_TRIGGER,
    FLOW_STEP_TRACK,
    FLOW_TRACK,
    MACRO_TRACK,
    Span,
    Tracer,
)
from repro.units import PICOSECONDS_PER_SECOND

#: Root-cause labels of the non-wake rollup buckets.
CAUSE_MAINTENANCE = "maintenance-burst"
CAUSE_IDLE = "steady-idle"
CAUSE_BOOT = "boot"

#: Prefix of the wake-rooted causes (completed by the wake-event type).
WAKE_CAUSE_PREFIX = "wake:"

#: Pseudo-state the macro engine's summary records carry (mirrored from
#: :data:`repro.sim.macro.MACRO_STATE` without importing the engine).
_MACRO_STATE = "macro:compiled"

#: Platform states attributed to fixed causes regardless of wake chains.
_STATE_CAUSES = {
    "active": CAUSE_MAINTENANCE,
    "drips": CAUSE_IDLE,
    "boot": CAUSE_BOOT,
}


def wake_cause(event_type_value: str) -> str:
    """The rollup cause label of a wake-event type (``wake:<type>``)."""
    return WAKE_CAUSE_PREFIX + event_type_value


@dataclass
class WakeChain:
    """One wake event and the flow spans it causally roots.

    ``cycles`` is 1 for an exactly-simulated chain; an aggregated chain
    standing for a macro-compiled span carries the span's cycle count
    and its summary span in ``macro_span``.
    """

    index: int
    cause: str
    wake_time_ps: int
    detail: str = ""
    cycles: int = 1
    exit_span: Optional[Span] = None
    entry_span: Optional[Span] = None
    macro_span: Optional[Span] = None

    @property
    def exit_latency_ps(self) -> int:
        return self.exit_span.duration_ps if self.exit_span is not None else 0

    @property
    def entry_latency_ps(self) -> int:
        return self.entry_span.duration_ps if self.entry_span is not None else 0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "cause": self.cause,
            "wake_time_ps": self.wake_time_ps,
            "detail": self.detail,
            "cycles": self.cycles,
            "exit_latency_ps": self.exit_latency_ps,
            "entry_latency_ps": self.entry_latency_ps,
            "compiled": self.macro_span is not None,
        }


@dataclass
class CauseRollup:
    """Energy/residency attributed to one root cause over the window."""

    cause: str
    energy_j: float = 0.0
    dwell_ps: int = 0
    events: int = 0

    def residency(self, window_ps: int) -> float:
        return self.dwell_ps / window_ps if window_ps else 0.0

    def as_dict(self, window_ps: int) -> Dict[str, Any]:
        return {
            "cause": self.cause,
            "energy_j": self.energy_j,
            "dwell_ps": self.dwell_ps,
            "residency": self.residency(window_ps),
            "events": self.events,
        }


@dataclass
class FlowCriticalPath:
    """Per-step latency decomposition of one flow name.

    ``steps`` holds ``(label, total_ps, count)`` ranked by total latency
    — the critical path of a serial flow is the ranking of the steps
    that tile it.
    """

    flow: str
    count: int
    total_ps: int
    steps: List[Tuple[str, int, int]] = field(default_factory=list)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "flow": self.flow,
            "count": self.count,
            "total_ps": self.total_ps,
            "steps": [
                {"label": label, "total_ps": total, "count": count}
                for label, total, count in self.steps
            ],
        }


@dataclass
class CausalReport:
    """The assembled wake-attribution view of one measurement window."""

    start_ps: int
    end_ps: int
    chains: List[WakeChain]
    rollups: Dict[str, CauseRollup]
    critical_paths: List[FlowCriticalPath]

    @property
    def window_ps(self) -> int:
        return self.end_ps - self.start_ps

    @property
    def total_energy_j(self) -> float:
        return math.fsum(r.energy_j for r in self.rollups.values())

    def ranked_rollups(self) -> List[CauseRollup]:
        """Rollups ranked by energy, ties broken by cause name."""
        return sorted(self.rollups.values(), key=lambda r: (-r.energy_j, r.cause))

    def as_dict(self) -> Dict[str, Any]:
        window = self.window_ps
        return {
            "window_ps": [self.start_ps, self.end_ps],
            "total_energy_j": self.total_energy_j,
            "chains": [chain.as_dict() for chain in self.chains],
            "rollups": [r.as_dict(window) for r in self.ranked_rollups()],
            "critical_paths": [path.as_dict() for path in self.critical_paths],
        }


def _window(
    tracer: Tracer, start_ps: Optional[int], end_ps: Optional[int]
) -> Tuple[int, int]:
    if start_ps is None or end_ps is None:
        if tracer.window_ps is None:
            raise MeasurementError(
                "no measurement window: pass start_ps/end_ps or observe a run"
            )
        start_ps, end_ps = tracer.window_ps
    if end_ps <= start_ps:
        raise MeasurementError("empty measurement window")
    return start_ps, end_ps


def _causal_segments(
    platform: Any, start_ps: int, end_ps: int
) -> List[Tuple[int, int, str, str, float]]:
    """``(lo, hi, state, cause, watts)`` segments covering the window.

    Plain state segments classify directly (Active -> maintenance burst,
    DRIPS -> steady idle, Entry/Exit -> the governing wake's cause, via
    the wake log).  ``macro:compiled`` segments keep the pseudo-state and
    take the compiled wake cause; their per-state split is refined by
    :func:`_macro_rollups` from the summary-span attribution args.
    """
    from repro.measure.residency import merge_state_power

    wake_times = [event.time_ps for event in platform.wake_log]
    wake_causes = [wake_cause(event.event_type.value) for event in platform.wake_log]
    segments: List[Tuple[int, int, str, str, float]] = []
    for lo, hi, state, watts in merge_state_power(platform.trace, start_ps, end_ps):
        cause = _STATE_CAUSES.get(state)
        if cause is None:
            # entry/exit transitions (and the macro pseudo-state) belong
            # to the latest wake at or before the segment start
            i = bisect_right(wake_times, lo)
            cause = wake_causes[i - 1] if i else CAUSE_BOOT
        segments.append((lo, hi, state, cause, watts))
    return segments


def _macro_spans(tracer: Tracer) -> List[Span]:
    return [span for span in tracer.closed_spans(MACRO_TRACK) if span.args]


def _macro_rollups(
    tracer: Tracer,
    rollups: Dict[str, CauseRollup],
    lo: int,
    hi: int,
) -> bool:
    """Fold one ``macro:compiled`` segment into the rollups.

    The summary span covering the segment carries the per-cycle
    attribution the engine compiled (state dwell/energy + wake cause),
    so N skipped cycles decompose into causes without per-cycle records.
    Returns False when no attributed summary span covers the segment.
    """
    for span in _macro_spans(tracer):
        if span.start_ps > lo or (span.end_ps or 0) < hi:
            continue
        args = span.args or {}
        period = args.get("period_ps")
        dwell = args.get("cycle_state_dwell_ps")
        energy = args.get("cycle_state_energy_j")
        if not period or not isinstance(dwell, dict) or not isinstance(energy, dict):
            continue
        cycles = (hi - lo) / period
        compiled_cause = wake_cause(str(args.get("wake_type", "timer")))
        for state in sorted(set(dwell) | set(energy)):
            cause = _STATE_CAUSES.get(state, compiled_cause)
            bucket = rollups.setdefault(cause, CauseRollup(cause))
            bucket.dwell_ps += round(dwell.get(state, 0) * cycles)
            bucket.energy_j += energy.get(state, 0.0) * cycles
        # events are NOT counted here: the engine synthesizes the wake-log
        # entries for skipped cycles, so the wake loop already tallies them
        return True
    return False


def build_wake_chains(
    tracer: Tracer, platform: Any, start_ps: int, end_ps: int
) -> List[WakeChain]:
    """The wake-chain graph: one chain per in-window wake root.

    Joins the platform's wake log against the tracer's causal edges.
    Wakes synthesized inside a macro-compiled span collapse into one
    aggregated chain per summary span (carrying the cycle count), so
    week-scale runs stay a few chains, not tens of thousands.
    """
    triggers: Dict[Tuple[str, int], Span] = {}
    followups: Dict[Tuple[str, int], Span] = {}
    compiled: Dict[Tuple[str, int], Span] = {}
    for edge in tracer.edges:
        source = edge.source
        key = (getattr(source, "name", ""), getattr(source, "time_ps", -1))
        if edge.kind == EDGE_TRIGGER:
            triggers[key] = edge.target
        elif edge.kind == EDGE_FOLLOWUP:
            followups[key] = edge.target
        elif edge.kind == EDGE_COMPILED:
            compiled[key] = edge.target

    chains: List[WakeChain] = []
    seen_macro: Dict[int, WakeChain] = {}
    macro_spans = _macro_spans(tracer)
    for event in platform.wake_log:
        if not (start_ps <= event.time_ps < end_ps):
            continue
        cause = wake_cause(event.event_type.value)
        key = (cause, event.time_ps)
        if key in triggers or key in followups:
            chains.append(
                WakeChain(
                    index=len(chains),
                    cause=cause,
                    wake_time_ps=event.time_ps,
                    detail=event.detail,
                    exit_span=triggers.get(key),
                    entry_span=followups.get(key),
                )
            )
            continue
        # a wake without flow edges was synthesized by a macro skip:
        # aggregate every wake of the covering span into one chain
        for span in macro_spans:
            if span.start_ps <= event.time_ps < (span.end_ps or 0):
                chain = seen_macro.get(id(span))
                if chain is None:
                    args = span.args or {}
                    chain = WakeChain(
                        index=len(chains),
                        cause=wake_cause(str(args.get("wake_type", "timer"))),
                        wake_time_ps=event.time_ps,
                        detail=str(args.get("wake_detail", "")),
                        cycles=0,
                        macro_span=span,
                    )
                    seen_macro[id(span)] = chain
                    chains.append(chain)
                chain.cycles += 1
                break
        else:
            chains.append(
                WakeChain(
                    index=len(chains),
                    cause=cause,
                    wake_time_ps=event.time_ps,
                    detail=event.detail,
                )
            )
    return chains


def build_cause_rollups(
    tracer: Tracer, platform: Any, start_ps: int, end_ps: int
) -> Dict[str, CauseRollup]:
    """Attribute every joule and picosecond of the window to a cause."""
    rollups: Dict[str, CauseRollup] = {}
    energies: Dict[str, List[float]] = {}
    for lo, hi, state, cause, watts in _causal_segments(platform, start_ps, end_ps):
        if state == _MACRO_STATE and _macro_rollups(tracer, rollups, lo, hi):
            continue
        bucket = rollups.setdefault(cause, CauseRollup(cause))
        bucket.dwell_ps += hi - lo
        energies.setdefault(cause, []).append(
            watts * ((hi - lo) / PICOSECONDS_PER_SECOND)
        )
    for cause, products in energies.items():
        rollups[cause].energy_j += math.fsum(products)
    for event in platform.wake_log:
        if start_ps <= event.time_ps < end_ps:
            cause = wake_cause(event.event_type.value)
            bucket = rollups.setdefault(cause, CauseRollup(cause))
            bucket.events += 1
    return rollups


def flow_critical_paths(
    tracer: Tracer,
    start_ps: Optional[int] = None,
    end_ps: Optional[int] = None,
) -> List[FlowCriticalPath]:
    """Rank each flow's step spans by total latency contribution.

    Flow steps tile their flow (span-discipline rule M306), so for these
    serial flows the critical path *is* the ranked step decomposition:
    the top entry tells you which step to shorten first.
    """
    start_ps, end_ps = _window(tracer, start_ps, end_ps)
    flows = [
        span
        for span in tracer.closed_spans(FLOW_TRACK)
        if start_ps <= span.start_ps and (span.end_ps or 0) <= end_ps
    ]
    steps = tracer.closed_spans(FLOW_STEP_TRACK)
    paths: Dict[str, FlowCriticalPath] = {}
    for flow in flows:
        path = paths.setdefault(flow.name, FlowCriticalPath(flow.name, 0, 0))
        path.count += 1
        path.total_ps += flow.duration_ps
        totals: Dict[str, Tuple[int, int]] = {
            label: (total, count) for label, total, count in path.steps
        }
        for step in steps:
            if step.start_ps >= flow.start_ps and (step.end_ps or 0) <= (
                flow.end_ps or 0
            ):
                total, count = totals.get(step.name, (0, 0))
                totals[step.name] = (total + step.duration_ps, count + 1)
        path.steps = [
            (label, total, count) for label, (total, count) in totals.items()
        ]
    for path in paths.values():
        path.steps.sort(key=lambda item: (-item[1], item[0]))
    return sorted(paths.values(), key=lambda p: p.flow)


def build_causal_report(
    tracer: Tracer,
    platform: Any,
    start_ps: Optional[int] = None,
    end_ps: Optional[int] = None,
) -> CausalReport:
    """Assemble the full causal view of one observed measurement window."""
    start_ps, end_ps = _window(tracer, start_ps, end_ps)
    return CausalReport(
        start_ps=start_ps,
        end_ps=end_ps,
        chains=build_wake_chains(tracer, platform, start_ps, end_ps),
        rollups=build_cause_rollups(tracer, platform, start_ps, end_ps),
        critical_paths=flow_critical_paths(tracer, start_ps, end_ps),
    )


def attribution_cells(
    tracer: Tracer,
    platform: Any,
    start_ps: Optional[int] = None,
    end_ps: Optional[int] = None,
) -> Dict[Tuple[str, str, str], float]:
    """The (domain x state x cause) energy cube, in joules.

    Splits every per-rail power channel across the causal segmentation
    of the window — the cells the differential explainer ranks deltas
    over.  Macro-compiled regions keep the ``macro:compiled``
    pseudo-state (their per-rail split is per-cycle, not per-state) under
    the compiled wake cause.
    """
    start_ps, end_ps = _window(tracer, start_ps, end_ps)
    segments = _causal_segments(platform, start_ps, end_ps)
    trace = platform.trace
    rails = sorted(
        name[len(RAIL_CHANNEL_PREFIX):]
        for name in trace.channels()
        if name.startswith(RAIL_CHANNEL_PREFIX)
    )
    products: Dict[Tuple[str, str, str], List[float]] = {}
    for rail in rails:
        channel = RAIL_CHANNEL_PREFIX + rail
        intervals = [
            (max(lo, start_ps), min(hi, end_ps), watts)
            for lo, hi, watts in trace.intervals(channel, end_ps, start_ps=start_ps)
            if min(hi, end_ps) > max(lo, start_ps)
        ]
        index = 0
        for lo, hi, state, cause, _watts in segments:
            while index < len(intervals) and intervals[index][1] <= lo:
                index += 1
            scan = index
            while scan < len(intervals) and intervals[scan][0] < hi:
                i_lo, i_hi, watts = intervals[scan]
                overlap = min(i_hi, hi) - max(i_lo, lo)
                if overlap > 0:
                    products.setdefault((rail, state, cause), []).append(
                        watts * (overlap / PICOSECONDS_PER_SECOND)
                    )
                scan += 1
    return {cell: math.fsum(values) for cell, values in products.items()}
