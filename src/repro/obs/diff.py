"""The differential drift explainer: *why* did two runs disagree.

``python -m repro explain`` aligns two connected-standby runs and ranks
what moved the energy between them.  Two alignment modes:

* **simulate** — re-run two configurations through the tracer (optionally
  one configuration against a perturbed copy of itself, ``--perturb
  KEY=FACTOR``) and decompose the energy delta over the causal
  attribution cube of :func:`repro.obs.causal.attribution_cells`:
  ranked ``(domain x FSM-state x wake-cause)`` contributors whose deltas
  sum to the whole-window energy delta.
* **history** — align the two most recent flight-recorder records of an
  experiment (:class:`repro.obs.runlog.RunLog`) and rank their
  metric-level deltas; no re-simulation, so drift triage works on a
  checkout that only has the run history.

Profiles built by the simulate mode are memoized through the ordinary
:class:`~repro.perf.cache.SimulationCache` (key prefix
``repro.obs.diff.profile``), so explaining the same pair twice is a
cache hit.  Both modes refuse — ``compatible: false`` with an explicit
reason, never a silent apples-to-oranges table — to diff a macro-stepped
run against an exactly-simulated one, using the backend provenance the
runlog records carry.

Ranking is deterministic: contributors order by descending ``|delta|``
with the cell key as tie-break, so CI can assert on the top entry.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.errors import ConfigError, MeasurementError
from repro.obs.runlog import RunLog
from repro.units import PICOSECONDS_PER_SECOND

#: Schema identifier stamped into every explain payload; bump on change.
EXPLAIN_SCHEMA = "repro-explain/1"

#: Cache-key prefix of memoized run profiles (never collides with the
#: controller's ``ODRIPSController.measure`` entries).
PROFILE_CACHE_PREFIX = "repro.obs.diff.profile"

#: ``--perturb`` registry: knob name -> what a factor of it scales.
PERTURBATIONS: Dict[str, str] = {
    "dram-self-refresh": "scale the DRAM self-refresh power budget",
    "external-wake-rate": (
        "scale the external wake rate (enables external wakes on both runs)"
    ),
}


def apply_perturbation(
    name: str,
    factor: float,
    config: Optional[Any] = None,
    workload: Optional[Any] = None,
) -> Tuple[Any, Any, Dict[str, Any]]:
    """A perturbed ``(config, workload, measure_kwargs)`` triple.

    ``measure_kwargs`` must be applied to the *base* run too (e.g. the
    external-wake perturbation needs external wakes enabled on both
    sides), so the two runs differ only in the scaled knob.
    """
    from repro.config import StandbyWorkloadConfig, skylake_config

    config = config if config is not None else skylake_config()
    workload = workload if workload is not None else StandbyWorkloadConfig()
    if name == "dram-self-refresh":
        budget = replace(
            config.budget,
            dram_self_refresh_w=config.budget.dram_self_refresh_w * factor,
        )
        return replace(config, budget=budget), workload, {}
    if name == "external-wake-rate":
        workload = replace(
            workload,
            external_wake_rate_per_hour=workload.external_wake_rate_per_hour
            * factor,
        )
        return config, workload, {"external_wakes": True}
    known = ", ".join(sorted(PERTURBATIONS))
    raise ConfigError(f"unknown perturbation {name!r}; pick one of: {known}")


def parse_perturbation(spec: str) -> Tuple[str, float]:
    """Parse a ``--perturb KEY=FACTOR`` argument."""
    name, sep, factor_text = spec.partition("=")
    if not sep:
        raise ConfigError(
            f"bad perturbation {spec!r}: expected KEY=FACTOR "
            f"(e.g. dram-self-refresh=1.2)"
        )
    try:
        factor = float(factor_text)
    except ValueError as error:
        raise ConfigError(f"bad perturbation factor {factor_text!r}") from error
    if name not in PERTURBATIONS:
        known = ", ".join(sorted(PERTURBATIONS))
        raise ConfigError(f"unknown perturbation {name!r}; pick one of: {known}")
    return name, factor


# --- run profiles -------------------------------------------------------------


@dataclass(frozen=True)
class RunProfile:
    """One traced run digested for differential comparison.

    ``cells`` is the causal attribution cube — joules per ``(domain,
    FSM state, wake cause)`` — and ``metrics`` the scalar measurement
    digest.  Profiles are cached by configuration fingerprint and must
    be treated as immutable.
    """

    label: str
    target: str
    fingerprint: str
    metrics: Dict[str, float]
    cells: Dict[Tuple[str, str, str], float]
    macro: Dict[str, Any]

    @property
    def backend(self) -> str:
        return "macro" if self.macro.get("enabled") else "exact"

    def summary(self) -> Dict[str, Any]:
        return {
            "label": self.label,
            "target": self.target,
            "fingerprint": self.fingerprint,
            "backend": self.backend,
            "metrics": dict(self.metrics),
        }


def profile_config(
    target: str,
    cycles: int = 2,
    config: Optional[Any] = None,
    workload: Optional[Any] = None,
    cache: Optional[Any] = None,
    measure_kwargs: Optional[Dict[str, Any]] = None,
) -> RunProfile:
    """Trace one configuration and digest it into a :class:`RunProfile`.

    ``target`` names a traceable configuration (the same registry as
    ``python -m repro trace``).  With a ``cache``, identical profiles
    are returned memoized — the traced simulation runs once per
    fingerprint.  The profile is built from its own observed run, so an
    outer tracer (``--trace``) is never mixed into the cube.
    """
    from repro.core.odrips import ODRIPSController
    from repro.obs.causal import attribution_cells
    from repro.obs.run import TRACE_CONFIGS
    from repro.obs.tracer import observe
    from repro.perf.fingerprint import fingerprint

    factory = TRACE_CONFIGS.get(target)
    if factory is None:
        known = ", ".join(sorted(TRACE_CONFIGS))
        raise ConfigError(f"unknown explain target {target!r}; pick one of: {known}")
    measure_kwargs = dict(measure_kwargs or {})
    measure_kwargs.setdefault("cycles", cycles)
    controller = ODRIPSController(factory(), config=config, workload=workload)
    key = fingerprint(
        PROFILE_CACHE_PREFIX,
        controller.config,
        controller.techniques,
        controller.workload,
        {"target": target, **measure_kwargs},
    )

    def _build() -> RunProfile:
        with observe() as tracer:
            measurement = controller.measure(**measure_kwargs)
        if not tracer.platforms or tracer.window_ps is None:
            raise MeasurementError("profiled run recorded no measurement window")
        platform = tracer.platforms[-1]
        start_ps, end_ps = tracer.window_ps
        cells = attribution_cells(tracer, platform, start_ps, end_ps)
        metrics = {
            "average_power_w": measurement.average_power_w,
            "drips_power_w": measurement.drips_power_w,
            "drips_residency": measurement.drips_residency,
            "active_power_w": measurement.active_power_w,
            "entry_latency_us": measurement.entry_latency_us,
            "exit_latency_us": measurement.exit_latency_us,
            "window_s": (end_ps - start_ps) / PICOSECONDS_PER_SECOND,
            "total_energy_j": math.fsum(cells.values()),
        }
        return RunProfile(
            label=measurement.label,
            target=target,
            fingerprint=key,
            metrics=metrics,
            cells=cells,
            macro=measurement.macro_provenance(),
        )

    if cache is not None:
        return cache.get_or_run(key, _build)
    return _build()


# --- the differ ---------------------------------------------------------------


def _backend_of(macro: Any) -> str:
    if isinstance(macro, dict) and macro.get("enabled"):
        return "macro"
    return "exact"


def _compatibility(base_macro: Any, subject_macro: Any) -> Tuple[bool, str]:
    base = _backend_of(base_macro)
    subject = _backend_of(subject_macro)
    if base == subject:
        return True, ""
    return False, (
        f"refusing to diff runs from different backends (base: {base}, "
        f"subject: {subject}): macro-compiled cycles carry aggregated "
        "attribution, so the decomposition would not be comparable — re-run "
        "both with the same backend"
    )


def _metric_deltas(
    base: Dict[str, Any], subject: Dict[str, Any]
) -> List[Dict[str, Any]]:
    """Scalar metric deltas, ranked by relative magnitude."""
    rows: List[Dict[str, Any]] = []
    for metric in set(base) | set(subject):
        before = base.get(metric)
        after = subject.get(metric)
        if not isinstance(before, (int, float)) or not isinstance(after, (int, float)):
            continue
        delta = float(after) - float(before)
        relative = delta / before if before else None
        rows.append(
            {
                "metric": metric,
                "base": float(before),
                "subject": float(after),
                "delta": delta,
                "relative": relative,
            }
        )
    rows.sort(key=lambda row: (-abs(row["relative"] or 0.0), row["metric"]))
    return rows


def ranked_contributors(
    base_cells: Dict[Tuple[str, str, str], float],
    subject_cells: Dict[Tuple[str, str, str], float],
) -> List[Dict[str, Any]]:
    """Per-cell energy deltas ranked by ``|delta|`` (cell key tie-break).

    ``share`` is each cell's fraction of the total absolute delta, so
    the ranking reads as "this cell explains N% of the movement".
    """
    keys = sorted(set(base_cells) | set(subject_cells))
    deltas = [
        (key, subject_cells.get(key, 0.0) - base_cells.get(key, 0.0)) for key in keys
    ]
    total_abs = math.fsum(abs(delta) for _key, delta in deltas)
    rows = [
        {
            "domain": key[0],
            "state": key[1],
            "cause": key[2],
            "base_j": base_cells.get(key, 0.0),
            "subject_j": subject_cells.get(key, 0.0),
            "delta_j": delta,
            "share": abs(delta) / total_abs if total_abs else 0.0,
        }
        for key, delta in deltas
    ]
    rows.sort(
        key=lambda row: (-abs(row["delta_j"]), row["domain"], row["state"], row["cause"])
    )
    return rows


def diff_profiles(base: RunProfile, subject: RunProfile) -> Dict[str, Any]:
    """The full explain payload for two traced profiles."""
    compatible, reason = _compatibility(base.macro, subject.macro)
    payload: Dict[str, Any] = {
        "schema": EXPLAIN_SCHEMA,
        "mode": "simulate",
        "base": base.summary(),
        "subject": subject.summary(),
        "compatible": compatible,
        "reason": reason,
        "metric_deltas": _metric_deltas(base.metrics, subject.metrics),
        "contributors": [],
        "energy_delta_j": 0.0,
    }
    if compatible:
        payload["contributors"] = ranked_contributors(base.cells, subject.cells)
        payload["energy_delta_j"] = math.fsum(
            row["delta_j"] for row in payload["contributors"]
        )
    return payload


def explain_simulate(
    target: str,
    target2: Optional[str] = None,
    perturb: Optional[str] = None,
    cycles: int = 2,
    cache: Optional[Any] = None,
) -> Dict[str, Any]:
    """Simulate-mode explain: two targets, or one target vs a perturbation."""
    if perturb is not None:
        name, factor = parse_perturbation(perturb)
        config, workload, measure_kwargs = apply_perturbation(name, factor)
        base = profile_config(
            target, cycles=cycles, cache=cache, measure_kwargs=measure_kwargs
        )
        subject = profile_config(
            target2 or target,
            cycles=cycles,
            config=config,
            workload=workload,
            cache=cache,
            measure_kwargs=measure_kwargs,
        )
        payload = diff_profiles(base, subject)
        payload["perturbation"] = {"key": name, "factor": factor}
        return payload
    if target2 is None:
        raise ConfigError(
            "explain needs two runs: a second target, --perturb KEY=FACTOR, "
            "or --history"
        )
    base = profile_config(target, cycles=cycles, cache=cache)
    subject = profile_config(target2, cycles=cycles, cache=cache)
    return diff_profiles(base, subject)


# --- history mode -------------------------------------------------------------


def _record_summary(record: Dict[str, Any]) -> Dict[str, Any]:
    metrics = record.get("metrics")
    return {
        "label": str(record.get("experiment", "")),
        "target": str(record.get("experiment", "")),
        "fingerprint": str(record.get("fingerprint", "")),
        "backend": _backend_of(record.get("macro")),
        "metrics": dict(metrics) if isinstance(metrics, dict) else {},
        "git_rev": record.get("git_rev"),
        "recorded_at_unix_s": record.get("recorded_at_unix_s"),
    }


def explain_history(
    experiment: str, runlog: Optional[RunLog] = None
) -> Dict[str, Any]:
    """History-mode explain: the two most recent records of an experiment.

    Raises :class:`~repro.errors.MeasurementError` with fewer than two
    records — drift between runs needs two runs.
    """
    runlog = runlog if runlog is not None else RunLog()
    records = [
        record
        for record in runlog.records()
        if record.get("experiment") == experiment
    ]
    if len(records) < 2:
        raise MeasurementError(
            f"need two recorded runs of {experiment!r} in {runlog.path} "
            f"(found {len(records)}); run the experiment twice or use the "
            "simulate mode"
        )
    base, subject = records[-2], records[-1]
    compatible, reason = _compatibility(base.get("macro"), subject.get("macro"))
    base_summary = _record_summary(base)
    subject_summary = _record_summary(subject)
    return {
        "schema": EXPLAIN_SCHEMA,
        "mode": "history",
        "base": base_summary,
        "subject": subject_summary,
        "compatible": compatible,
        "reason": reason,
        "config_drift": base_summary["fingerprint"] != subject_summary["fingerprint"],
        "metric_deltas": (
            _metric_deltas(base_summary["metrics"], subject_summary["metrics"])
            if compatible
            else []
        ),
        "contributors": [],
        "energy_delta_j": 0.0,
    }


def explain_summary(
    experiment: str, runlog: Optional[RunLog] = None, top: int = 3
) -> Optional[Dict[str, Any]]:
    """Compact history-mode digest for embedding in a drift verdict.

    ``None`` when the history holds fewer than two runs of the
    experiment — the watchdog then reports drift without an explainer,
    never an error.
    """
    try:
        payload = explain_history(experiment, runlog=runlog)
    except MeasurementError:
        return None
    return {
        "base_fingerprint": payload["base"]["fingerprint"],
        "subject_fingerprint": payload["subject"]["fingerprint"],
        "config_drift": payload["config_drift"],
        "compatible": payload["compatible"],
        "reason": payload["reason"],
        "top": payload["metric_deltas"][:top],
    }


# --- payload validation -------------------------------------------------------


def _expect(value: Any, kinds: Tuple[type, ...], where: str) -> Iterator[str]:
    if not isinstance(value, kinds) or isinstance(value, bool) and bool not in kinds:
        names = "/".join(kind.__name__ for kind in kinds)
        yield f"{where}: expected {names}, got {type(value).__name__}"


def _check_run_summary(summary: Any, where: str) -> Iterator[str]:
    yield from _expect(summary, (dict,), where)
    if not isinstance(summary, dict):
        return
    for key in ("label", "target", "fingerprint", "backend", "metrics"):
        if key not in summary:
            yield f"{where}: missing key {key!r}"
    for key in ("label", "target", "fingerprint"):
        if key in summary:
            yield from _expect(summary[key], (str,), f"{where}.{key}")
    if summary.get("backend") not in (None, "exact", "macro"):
        yield f"{where}.backend: expected 'exact' or 'macro'"
    metrics = summary.get("metrics")
    if isinstance(metrics, dict):
        for metric, value in metrics.items():
            yield from _expect(value, (int, float), f"{where}.metrics[{metric!r}]")
    elif metrics is not None:
        yield f"{where}.metrics: expected object"


def _check_contributor(row: Any, where: str) -> Iterator[str]:
    yield from _expect(row, (dict,), where)
    if not isinstance(row, dict):
        return
    for key in ("domain", "state", "cause"):
        if key not in row:
            yield f"{where}: missing key {key!r}"
        elif not isinstance(row[key], str):
            yield f"{where}.{key}: expected str"
    for key in ("base_j", "subject_j", "delta_j", "share"):
        if key not in row:
            yield f"{where}: missing key {key!r}"
        else:
            yield from _expect(row[key], (int, float), f"{where}.{key}")
    share = row.get("share")
    if isinstance(share, (int, float)) and not 0.0 <= share <= 1.0:
        yield f"{where}.share: expected a fraction in [0, 1], got {share}"


def validate_explain_payload(payload: Any) -> List[str]:
    """Every structural problem in a ``repro explain --json`` payload.

    Returns an empty list when the payload conforms — the same contract
    as :func:`repro.check.schema.validate_check_payload`, so CI jobs can
    gate on either with one idiom.
    """
    problems: List[str] = []
    if not isinstance(payload, dict):
        return [f"payload: expected object, got {type(payload).__name__}"]
    if payload.get("schema") != EXPLAIN_SCHEMA:
        problems.append(
            f"schema: expected {EXPLAIN_SCHEMA}, got {payload.get('schema')!r}"
        )
    if payload.get("mode") not in ("simulate", "history"):
        problems.append("mode: expected 'simulate' or 'history'")
    for key in ("base", "subject"):
        if key not in payload:
            problems.append(f"payload: missing key {key!r}")
        else:
            problems.extend(_check_run_summary(payload[key], key))
    if "compatible" not in payload:
        problems.append("payload: missing key 'compatible'")
    else:
        problems.extend(_expect(payload["compatible"], (bool,), "compatible"))
    if "reason" in payload:
        problems.extend(_expect(payload["reason"], (str,), "reason"))
    if payload.get("compatible") is False and not payload.get("reason"):
        problems.append("reason: incompatible payload carries no reason")
    deltas = payload.get("metric_deltas")
    if not isinstance(deltas, list):
        problems.append("metric_deltas: expected list")
    else:
        for index, row in enumerate(deltas):
            where = f"metric_deltas[{index}]"
            if not isinstance(row, dict):
                problems.append(f"{where}: expected object")
                continue
            for key in ("metric", "base", "subject", "delta"):
                if key not in row:
                    problems.append(f"{where}: missing key {key!r}")
    contributors = payload.get("contributors")
    if not isinstance(contributors, list):
        problems.append("contributors: expected list")
    else:
        for index, row in enumerate(contributors):
            problems.extend(_check_contributor(row, f"contributors[{index}]"))
        shares = [
            row["share"]
            for row in contributors
            if isinstance(row, dict) and isinstance(row.get("share"), (int, float))
        ]
        if any(share > 0 for share in shares) and not math.isclose(
            sum(shares), 1.0, abs_tol=1e-6
        ):
            problems.append(
                f"contributors: shares sum to {sum(shares):.6f}, expected 1"
            )
    if "energy_delta_j" in payload:
        problems.extend(
            _expect(payload["energy_delta_j"], (int, float), "energy_delta_j")
        )
    if payload.get("mode") == "simulate" and "energy_delta_j" not in payload:
        problems.append("payload: missing key 'energy_delta_j'")
    return problems


# --- rendering ----------------------------------------------------------------


def render_explain(payload: Dict[str, Any], limit: int = 10) -> str:
    """Aligned terminal rendering of an explain payload."""
    from repro.analysis.report import format_table

    sections: List[str] = []
    base = payload["base"]
    subject = payload["subject"]
    header = (
        f"explain [{payload['mode']}]: {base.get('label') or base.get('target')} "
        f"({base.get('backend')}) -> "
        f"{subject.get('label') or subject.get('target')} "
        f"({subject.get('backend')})"
    )
    perturbation = payload.get("perturbation")
    if perturbation:
        header += f"  [perturb {perturbation['key']} x{perturbation['factor']:g}]"
    sections.append(header)
    if not payload["compatible"]:
        sections.append(f"INCOMPATIBLE: {payload['reason']}")
        return "\n\n".join(sections)
    if payload.get("config_drift"):
        sections.append(
            "note: the two records ran different configurations "
            "(fingerprints differ)"
        )
    deltas = payload["metric_deltas"]
    if deltas:
        rows = [
            [
                row["metric"],
                f"{row['base']:.6g}",
                f"{row['subject']:.6g}",
                f"{row['delta']:+.4g}",
                "-" if row["relative"] is None else f"{row['relative']:+.2%}",
            ]
            for row in deltas
        ]
        sections.append(
            format_table(
                ["metric", "base", "subject", "delta", "relative"],
                rows,
                title="Metric deltas",
            )
        )
    contributors = payload["contributors"]
    if contributors:
        shown = contributors[:limit]
        rows = [
            [
                row["domain"],
                row["state"],
                row["cause"],
                f"{row['delta_j'] * 1e3:+,.3f} mJ",
                f"{row['share']:.1%}",
            ]
            for row in shown
        ]
        if len(contributors) > len(shown):
            tail = contributors[len(shown):]
            tail_j = math.fsum(row["delta_j"] for row in tail)
            rows.append(
                [f"(+{len(tail)} more)", "", "", f"{tail_j * 1e3:+,.3f} mJ", ""]
            )
        sections.append(
            format_table(
                ["domain", "state", "cause", "delta", "share of |delta|"],
                rows,
                title=(
                    "Energy-delta contributors "
                    f"(total {payload['energy_delta_j'] * 1e3:+,.3f} mJ)"
                ),
            )
        )
        top = contributors[0]
        sections.append(
            f"top contributor: {top['domain']} x {top['state']} x {top['cause']} "
            f"({top['delta_j'] * 1e3:+,.3f} mJ, {top['share']:.1%} of the movement)"
        )
    return "\n\n".join(sections)
