"""The energy-attribution ledger: which domain burned what, and when.

The power tree records a piecewise-constant power channel per rail
(``rail:<name>``) alongside the battery-side ``platform`` total, all at
the same event boundaries.  :class:`EnergyLedger` integrates those rail
channels over a measurement window — per rail, and per (span x rail)
cell for any set of tracer spans — so an observed run can answer the
paper's Fig. 2/3 style questions: *which domain burned what during which
flow step*.

Because the platform total is the sum of the rail inputs at every
recorded instant, the ledger's per-domain totals sum to the analyzer's
average power times the window (up to float associativity, well inside
1e-9 relative) — the cross-check ``tests/test_obs_ledger.py`` enforces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Tuple

from repro.errors import MeasurementError
from repro.sim.trace import TraceRecorder
from repro.units import PICOSECONDS_PER_SECOND

if TYPE_CHECKING:
    from repro.obs.tracer import Span

#: Trace-channel prefix of the per-rail power channels.
RAIL_CHANNEL_PREFIX = "rail:"


def _integrate_joules(
    trace: TraceRecorder, channel: str, start_ps: int, end_ps: int
) -> float:
    """Exact integral of a piecewise-constant power channel, in joules."""
    total = 0.0
    for lo, hi, watts in trace.intervals(channel, end_ps, start_ps=start_ps):
        lo = max(lo, start_ps)
        hi = min(hi, end_ps)
        if hi > lo:
            total += watts * ((hi - lo) / PICOSECONDS_PER_SECOND)
    return total


@dataclass(frozen=True)
class LedgerCell:
    """Energy one domain burned during one span occurrence."""

    span: str
    span_start_ps: int
    span_end_ps: int
    domain: str
    energy_joules: float


@dataclass
class EnergyLedger:
    """Per-domain energy over a window, with optional span attribution."""

    start_ps: int
    end_ps: int
    #: Joules per domain (rail) over the whole window.
    domain_energy_j: Dict[str, float] = field(default_factory=dict)
    #: Per-span, per-domain attribution cells (clipped to the window).
    cells: List[LedgerCell] = field(default_factory=list)

    @property
    def window_ps(self) -> int:
        return self.end_ps - self.start_ps

    @property
    def window_s(self) -> float:
        return self.window_ps / PICOSECONDS_PER_SECOND

    @property
    def total_energy_j(self) -> float:
        """Whole-window battery-side energy: the sum over domains."""
        return sum(self.domain_energy_j.values())

    @property
    def average_power_w(self) -> float:
        return self.total_energy_j / self.window_s

    def domain_average_power_w(self, domain: str) -> float:
        """Average battery-side watts one domain drew over the window."""
        return self.domain_energy_j.get(domain, 0.0) / self.window_s

    def span_energy_j(self) -> Dict[str, float]:
        """Joules per span name, summed over occurrences and domains."""
        totals: Dict[str, float] = {}
        for cell in self.cells:
            totals[cell.span] = totals.get(cell.span, 0.0) + cell.energy_joules
        return totals

    def span_domain_energy_j(self) -> Dict[str, Dict[str, float]]:
        """Joules per (span name, domain), summed over occurrences."""
        table: Dict[str, Dict[str, float]] = {}
        for cell in self.cells:
            row = table.setdefault(cell.span, {})
            row[cell.domain] = row.get(cell.domain, 0.0) + cell.energy_joules
        return table

    # --- construction -----------------------------------------------------

    @classmethod
    def from_trace(
        cls,
        trace: TraceRecorder,
        start_ps: int,
        end_ps: int,
        spans: Iterable["Span"] = (),
    ) -> "EnergyLedger":
        """Integrate every rail channel of ``trace`` over the window.

        ``spans`` (typically the tracer's flow-step spans) are clipped to
        the window and attributed per domain; open spans are skipped.
        """
        if end_ps <= start_ps:
            raise MeasurementError("empty ledger window")
        domains = [
            channel
            for channel in trace.channels()
            if channel.startswith(RAIL_CHANNEL_PREFIX)
        ]
        if not domains:
            raise MeasurementError("trace has no rail channels to attribute")
        ledger = cls(start_ps=start_ps, end_ps=end_ps)
        for channel in domains:
            name = channel[len(RAIL_CHANNEL_PREFIX):]
            ledger.domain_energy_j[name] = _integrate_joules(
                trace, channel, start_ps, end_ps
            )
        for span in spans:
            if span.end_ps is None:
                continue
            lo = max(span.start_ps, start_ps)
            hi = min(span.end_ps, end_ps)
            if hi <= lo:
                continue
            for channel in domains:
                name = channel[len(RAIL_CHANNEL_PREFIX):]
                ledger.cells.append(
                    LedgerCell(
                        span=span.name,
                        span_start_ps=span.start_ps,
                        span_end_ps=span.end_ps,
                        domain=name,
                        energy_joules=_integrate_joules(trace, channel, lo, hi),
                    )
                )
        return ledger

    def snapshot(self) -> Dict[str, object]:
        """JSON-able totals — the ledger's live-telemetry view.

        Carries the window and per-domain energies (not the per-cell
        attribution table), so the streaming pipeline and the dashboard
        can publish ledger deltas without the full cube.
        """
        return {
            "start_ps": self.start_ps,
            "end_ps": self.end_ps,
            "window_s": self.window_s,
            "total_energy_j": self.total_energy_j,
            "average_power_w": self.average_power_w,
            "domain_energy_j": dict(sorted(self.domain_energy_j.items())),
            "cells": len(self.cells),
        }

    # --- rendering --------------------------------------------------------

    def domain_rows(self) -> List[Tuple[str, float, float]]:
        """``(domain, joules, average watts)`` rows, largest burner first."""
        rows = [
            (domain, joules, joules / self.window_s)
            for domain, joules in self.domain_energy_j.items()
        ]
        rows.sort(key=lambda row: -row[1])
        return rows

    def step_rows(self, limit: Optional[int] = None) -> List[Tuple[str, str, float]]:
        """``(span, domain, joules)`` rows, largest cells first.

        When ``limit`` truncates the table, the dropped tail is rolled
        into one explicit ``(+N more, X mJ)`` row instead of silently
        vanishing — the rendered ledger always sums to the window total.
        """
        table = self.span_domain_energy_j()
        rows = [
            (span, domain, joules)
            for span, per_domain in table.items()
            for domain, joules in per_domain.items()
        ]
        rows.sort(key=lambda row: -row[2])
        if limit is not None and len(rows) > limit:
            tail = rows[limit:]
            tail_joules = sum(joules for _span, _domain, joules in tail)
            rows = rows[:limit]
            rows.append(
                (f"(+{len(tail)} more, {tail_joules * 1e3:,.3f} mJ)", "", tail_joules)
            )
        return rows
