"""Bounded-memory streaming telemetry: ``repro.obs.stream``.

Everything else in :mod:`repro.obs` is post-hoc — tracer spans, run
records and attribution cubes only become visible after a run finishes.
This module is the live side: a :class:`TelemetryStream` aggregates
tracer metrics, measurement digests, and kernel/macro/sweep progress
into bounded-memory structures **while a run executes**:

* :class:`~repro.obs.metrics.BoundedHistogram` instances (base-1.2 log
  buckets, exact count/sum/min/max, mergeable across worker processes);
* :class:`RollingWindow` aggregates over *simulated* time;
* per-source progress **heartbeats** — cycles done vs target, events per
  wall second, simulated-vs-wall ratio, and an ETA — emitted from the
  :class:`~repro.workloads.standby.ConnectedStandbyRunner` cycle loop,
  the macro engine's skip executor, and :func:`repro.analysis.sweep.sweep`
  workers.

The stream follows the same process-wide opt-in pattern as the tracer
(:func:`install_stream` / :func:`active_stream` / :func:`uninstall_stream`
/ the :func:`streaming` context manager): hot paths capture the active
stream once per run and pay a single ``None`` check per cycle when
telemetry is disabled.  Streaming is pure observation — it never touches
the kernel, the meter, or the RNG streams, so simulation results are
bit-for-bit identical with and without a stream installed.

Sweep workers are separate *processes*: their channel back to the parent
is the **heartbeat directory** — one atomically-replaced JSON file per
worker carrying its latest progress plus bounded-histogram snapshots,
which the parent merges via :func:`merge_worker_heartbeats` (and which
``python -m repro dash`` joins into the fleet dashboard while the sweep
is still running).

Two sinks consume a stream: the OpenMetrics text exposition
(:mod:`repro.obs.openmetrics`, ``python -m repro metrics --openmetrics``)
and the static fleet dashboard (:mod:`repro.obs.dash`,
``python -m repro dash``).
"""

from __future__ import annotations

import json
import os
from collections import deque
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Deque, Dict, Iterator, List, Optional, Tuple, Union

from repro.effects import declares_effects
from repro.errors import MeasurementError
from repro.obs.metrics import BoundedHistogram
from repro.obs.runlog import host_wall_s
from repro.units import PICOSECONDS_PER_SECOND

#: Schema identifier stamped into every heartbeat payload.
HEARTBEAT_SCHEMA = "repro-heartbeat/1"

#: Default heartbeat directory (``--heartbeat`` with no argument),
#: relative to the working directory like the runlog store.
DEFAULT_HEARTBEAT_DIR = os.path.join(".repro", "heartbeats")

#: File-name prefix of per-worker heartbeat files in a heartbeat dir.
WORKER_HEARTBEAT_PREFIX = "worker-"

#: File-name prefix of in-process heartbeat files in a heartbeat dir.
SOURCE_HEARTBEAT_PREFIX = "hb-"


class RollingWindow:
    """A bounded rolling aggregate over *simulated* time.

    Keeps at most ``maxlen`` recent ``(time_ps, value)`` samples inside a
    trailing window of ``window_ps`` simulated picoseconds; older samples
    are evicted as new ones arrive.  Memory is bounded by ``maxlen``
    regardless of horizon length, so week-scale macro runs can keep a
    live "recent cycles" view without accumulating history.
    """

    __slots__ = ("name", "window_ps", "_samples")

    def __init__(self, name: str, window_ps: int, maxlen: int = 4096) -> None:
        if window_ps <= 0:
            raise MeasurementError(
                f"rolling window {name!r} needs a positive span (got {window_ps} ps)"
            )
        self.name = name
        self.window_ps = window_ps
        self._samples: Deque[Tuple[int, float]] = deque(maxlen=maxlen)

    def observe(self, time_ps: int, value: float) -> None:
        self._samples.append((time_ps, float(value)))
        horizon = time_ps - self.window_ps
        while self._samples and self._samples[0][0] < horizon:
            self._samples.popleft()

    @property
    def count(self) -> int:
        return len(self._samples)

    @property
    def total(self) -> float:
        return sum(value for _time_ps, value in self._samples)

    @property
    def mean(self) -> float:
        return self.total / len(self._samples) if self._samples else 0.0

    def rate_per_sim_second(self) -> float:
        """Samples per simulated second across the retained span."""
        if len(self._samples) < 2:
            return 0.0
        span_ps = self._samples[-1][0] - self._samples[0][0]
        if span_ps <= 0:
            return 0.0
        return (len(self._samples) - 1) / (span_ps / PICOSECONDS_PER_SECOND)

    def snapshot(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "window_ps": self.window_ps,
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "rate_per_sim_s": self.rate_per_sim_second(),
        }


@declares_effects("fs")  # atomic heartbeat replace is the sink's contract
def _atomic_write_json(path: Path, payload: Dict[str, Any]) -> Path:
    """Write ``payload`` to ``path`` via rename, so readers never see a torn file."""
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + f".tmp-{os.getpid()}")
    tmp.write_text(json.dumps(payload, sort_keys=True) + "\n", encoding="utf-8")
    os.replace(tmp, path)
    return path


class TelemetryStream:
    """Live bounded-memory aggregation for one observed run or sweep.

    Collects bounded histograms, rolling windows, labels (experiment
    name, config fingerprint — the OpenMetrics exemplar payload), and
    the latest heartbeat per source.  With ``heartbeat_dir`` set, every
    heartbeat is also mirrored to an atomically-replaced JSON file so
    concurrent readers (the dashboard, other processes) can watch
    progress live.
    """

    def __init__(
        self, heartbeat_dir: Optional[Union[str, Path]] = None
    ) -> None:
        self.heartbeat_dir = Path(heartbeat_dir) if heartbeat_dir is not None else None
        self.histograms: Dict[str, BoundedHistogram] = {}
        self.windows: Dict[str, RollingWindow] = {}
        self.heartbeats: Dict[str, Dict[str, Any]] = {}
        self.labels: Dict[str, str] = {}
        self._epoch_s = host_wall_s()

    # --- instruments ------------------------------------------------------

    def histogram(self, name: str) -> BoundedHistogram:
        instrument = self.histograms.get(name)
        if instrument is None:
            instrument = self.histograms[name] = BoundedHistogram(name)
        return instrument

    def window(self, name: str, window_ps: int) -> RollingWindow:
        instrument = self.windows.get(name)
        if instrument is None:
            instrument = self.windows[name] = RollingWindow(name, window_ps)
        return instrument

    def set_label(self, key: str, value: str) -> None:
        """Attach a run label (e.g. ``experiment``, ``fingerprint``)."""
        self.labels[key] = str(value)

    # --- heartbeats -------------------------------------------------------

    @declares_effects("time", "fs", "identity")  # wall clock + mirror file + pid
    def heartbeat(
        self,
        source: str,
        done: int,
        total: int,
        sim_now_ps: int = 0,
        events: int = 0,
        label: str = "",
    ) -> Dict[str, Any]:
        """Record one progress heartbeat for ``source``.

        ``done``/``total`` count the source's own units (standby cycles
        for the runner and macro engine, sweep points for ``sweep``).
        The payload derives events per wall second, the simulated-vs-wall
        time ratio, and a naive proportional ETA.  Heartbeats overwrite
        per source — the stream keeps the *latest*, never a history.
        """
        wall_s = host_wall_s() - self._epoch_s
        sim_s = sim_now_ps / PICOSECONDS_PER_SECOND
        frac = (done / total) if total > 0 else 0.0
        payload: Dict[str, Any] = {
            "schema": HEARTBEAT_SCHEMA,
            "source": source,
            "pid": os.getpid(),
            "label": label or self.labels.get("experiment", ""),
            "done": done,
            "total": total,
            "frac": frac,
            "sim_now_ps": sim_now_ps,
            "sim_s": sim_s,
            "wall_s": wall_s,
            "events": events,
            "events_per_s": (events / wall_s) if wall_s > 0 else 0.0,
            "sim_per_wall": (sim_s / wall_s) if wall_s > 0 else 0.0,
            "eta_s": (wall_s * (1.0 - frac) / frac) if 0.0 < frac < 1.0 else None,
        }
        self.heartbeats[source] = payload
        if self.heartbeat_dir is not None:
            name = "".join(c if c.isalnum() or c in "-_." else "-" for c in source)
            _atomic_write_json(
                self.heartbeat_dir / f"{SOURCE_HEARTBEAT_PREFIX}{name}.json", payload
            )
        return payload

    # --- sweep aggregation ------------------------------------------------

    @declares_effects("time", "fs", "identity")  # heartbeat mirror per point
    def sweep_point(
        self, done: int, total: int, result: float, wall_s: float
    ) -> None:
        """Fold one completed sweep point into the stream (parent side).

        The two histograms keep exact counts and sums, so a finished
        sweep's ``sweep.point_result`` totals match the per-point exact
        results — the merge-correctness anchor the acceptance test pins.
        """
        self.histogram("sweep.point_result").observe(result)
        self.histogram("sweep.point_wall_s").observe(wall_s)
        self.heartbeat("sweep", done=done, total=total, label="sweep")

    @declares_effects("fs")  # reads the shared heartbeat directory
    def absorb_worker_heartbeats(self) -> int:
        """Merge per-worker heartbeat files into this stream.

        Worker-side bounded histograms (``sweep.worker_result``,
        ``sweep.worker_wall_s``) merge into the same-named parent
        histograms; worker heartbeats land under their own source names.
        Returns the number of worker files absorbed.
        """
        if self.heartbeat_dir is None:
            return 0
        absorbed = 0
        for path, payload in read_heartbeat_dir(self.heartbeat_dir):
            if not path.name.startswith(WORKER_HEARTBEAT_PREFIX):
                continue
            absorbed += 1
            self.heartbeats[str(payload.get("source", path.stem))] = payload
            for name, snap in dict(payload.get("histograms", {})).items():
                incoming = BoundedHistogram.from_snapshot(snap)
                mine = self.histograms.get(name)
                if mine is None:
                    self.histograms[name] = incoming
                else:
                    mine.merge(incoming)
        return absorbed

    # --- snapshots --------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """JSON-able view of the whole stream (dashboard / exposition input)."""
        return {
            "labels": dict(sorted(self.labels.items())),
            "histograms": {
                name: hist.snapshot()
                for name, hist in sorted(self.histograms.items())
            },
            "windows": {
                name: window.snapshot()
                for name, window in sorted(self.windows.items())
            },
            "heartbeats": {
                source: dict(payload)
                for source, payload in sorted(self.heartbeats.items())
            },
        }


# --- worker-side heartbeat emission (separate processes) ----------------------

#: Per-process sweep-worker aggregation state, keyed by heartbeat dir.
#: Lives across tasks served by the same pool worker.
_WORKER_STATE: Dict[str, Dict[str, Any]] = {}


@declares_effects("time", "fs", "identity", "module-state")
def record_worker_point(
    directory: str, result: float, wall_s: float, points_total: int
) -> None:
    """Fold one sweep point into this worker's heartbeat file.

    Called from inside a sweep worker process: updates the worker-local
    bounded histograms and atomically replaces
    ``<dir>/worker-<pid>.json`` with the worker's latest progress +
    histogram snapshots.  The parent merges the files after (or during)
    the sweep via :meth:`TelemetryStream.absorb_worker_heartbeats`.
    """
    state = _WORKER_STATE.get(directory)
    if state is None:
        state = _WORKER_STATE[directory] = {
            "result": BoundedHistogram("sweep.worker_result"),
            "wall_s": BoundedHistogram("sweep.worker_wall_s"),
            "points": 0,
            "total_wall_s": 0.0,
        }
    state["result"].observe(result)
    state["wall_s"].observe(wall_s)
    state["points"] += 1
    state["total_wall_s"] += wall_s
    pid = os.getpid()
    done = int(state["points"])
    payload = {
        "schema": HEARTBEAT_SCHEMA,
        "source": f"sweep-worker-{pid}",
        "pid": pid,
        "label": "sweep-worker",
        "done": done,
        "total": points_total,
        "frac": (done / points_total) if points_total > 0 else 0.0,
        "sim_now_ps": 0,
        "sim_s": 0.0,
        "wall_s": float(state["total_wall_s"]),
        "events": done,
        "events_per_s": (
            done / state["total_wall_s"] if state["total_wall_s"] > 0 else 0.0
        ),
        "sim_per_wall": 0.0,
        "eta_s": None,
        "histograms": {
            "sweep.worker_result": state["result"].snapshot(),
            "sweep.worker_wall_s": state["wall_s"].snapshot(),
        },
    }
    _atomic_write_json(Path(directory) / f"{WORKER_HEARTBEAT_PREFIX}{pid}.json", payload)


@declares_effects("fs")  # reads the shared heartbeat directory
def read_heartbeat_dir(
    directory: Union[str, Path],
) -> List[Tuple[Path, Dict[str, Any]]]:
    """Every parseable heartbeat payload in ``directory``, sorted by name.

    Torn or foreign files are skipped — the atomic-replace protocol makes
    them transient, and the dashboard must never crash on a live dir.
    """
    root = Path(directory)
    out: List[Tuple[Path, Dict[str, Any]]] = []
    if not root.is_dir():
        return out
    for path in sorted(root.glob("*.json")):
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            continue
        if isinstance(payload, dict) and payload.get("schema") == HEARTBEAT_SCHEMA:
            out.append((path, payload))
    return out


def merge_worker_heartbeats(
    directory: Union[str, Path],
) -> Dict[str, BoundedHistogram]:
    """Merge every worker heartbeat file's histograms into one map.

    The cross-process aggregation primitive: each worker ships bounded
    snapshots, the merge adds counts and sums exactly.
    """
    merged: Dict[str, BoundedHistogram] = {}
    for path, payload in read_heartbeat_dir(directory):
        if not path.name.startswith(WORKER_HEARTBEAT_PREFIX):
            continue
        for name, snap in dict(payload.get("histograms", {})).items():
            incoming = BoundedHistogram.from_snapshot(snap)
            current = merged.get(name)
            if current is None:
                merged[name] = incoming
            else:
                current.merge(incoming)
    return merged


# --- process-wide opt-in hook -------------------------------------------------

_active_stream: Optional[TelemetryStream] = None


@declares_effects("module-state")  # the process-wide opt-in hook itself
def install_stream(stream: Optional[TelemetryStream] = None) -> TelemetryStream:
    """Activate ``stream`` (a fresh one when omitted) process-wide.

    Hot paths capture the active stream once per run (not per cycle), so
    a stream installed mid-run attaches at the next run boundary.
    """
    global _active_stream
    if stream is None:
        stream = TelemetryStream()
    _active_stream = stream
    return stream


@declares_effects("module-state")  # the process-wide opt-in hook itself
def uninstall_stream() -> None:
    """Deactivate streaming; captured references keep their stream."""
    global _active_stream
    _active_stream = None


def active_stream() -> Optional[TelemetryStream]:
    """The installed stream, or ``None`` when streaming is disabled."""
    return _active_stream


@contextmanager
def streaming(stream: Optional[TelemetryStream] = None) -> Iterator[TelemetryStream]:
    """Context manager: install a telemetry stream for a block."""
    installed = install_stream(stream)
    try:
        yield installed
    finally:
        uninstall_stream()
