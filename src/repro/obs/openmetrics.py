"""OpenMetrics text exposition for repro telemetry.

Renders a :class:`~repro.obs.metrics.MetricsRegistry` and/or a
:class:`~repro.obs.stream.TelemetryStream` as an `OpenMetrics
<https://openmetrics.io>`_ text exposition (``python -m repro metrics
--openmetrics``):

* counters become ``counter`` families with the mandatory ``_total``
  suffix; instrumented counter names carrying a ``:``-variant (e.g.
  ``kernel.events:timer-fire``) split into one family with an ``event``
  label per variant;
* gauges and heartbeat fields become ``gauge`` families;
* exact :class:`~repro.obs.metrics.Histogram` instruments become
  ``summary`` families (exact ``quantile`` samples beat bucketed ones at
  post-hoc scale);
* :class:`~repro.obs.metrics.BoundedHistogram` instruments become true
  ``histogram`` families — the log buckets map directly onto cumulative
  ``le`` series — with the run's config fingerprint attached to the
  ``+Inf`` bucket as an OpenMetrics **exemplar**, so a scraped sample
  points back at the exact configuration that produced it;
* the exposition ends with the mandatory ``# EOF`` terminator.

:func:`validate_openmetrics` is a hand-rolled structural validator in
the spirit of ``repro.regress.validate_check_payload``: CI renders an
exposition and round-trips it through the validator with no external
dependencies.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Tuple, Union

from repro.obs.metrics import BoundedHistogram, Histogram, MetricsRegistry

if TYPE_CHECKING:  # import cycle guard: stream imports nothing from here
    from repro.obs.stream import TelemetryStream

#: Exposition content type (HTTP); recorded for documentation purposes.
CONTENT_TYPE = "application/openmetrics-text; version=1.0.0; charset=utf-8"

#: Prefix of every exposed metric family.
METRIC_PREFIX = "repro_"

_NAME_OK = re.compile(r"[^a-zA-Z0-9_]")

#: Sample line grammar: name, optional labelset, value, optional exemplar.
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^}]*\})?"
    r" (?P<value>-?(?:[0-9.eE+-]+|Inf)|NaN)"
    r"(?P<exemplar> # \{[^}]*\} \S+)?$"
)

_TYPES = ("counter", "gauge", "histogram", "summary", "info", "unknown")

#: Heartbeat payload fields exposed as per-source gauges.
_HEARTBEAT_GAUGES = (
    "done", "total", "frac", "sim_s", "wall_s",
    "events", "events_per_s", "sim_per_wall",
)


def sanitize_metric_name(name: str) -> str:
    """Instrument name -> legal OpenMetrics family name (prefixed)."""
    cleaned = _NAME_OK.sub("_", name.strip())
    cleaned = re.sub(r"__+", "_", cleaned).strip("_")
    if not cleaned:
        cleaned = "unnamed"
    if cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return METRIC_PREFIX + cleaned


def escape_label_value(value: str) -> str:
    """Escape a label value per the OpenMetrics text grammar."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _labelset(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{escape_label_value(value)}"'
        for key, value in sorted(labels.items())
    )
    return "{" + inner + "}"


def _format_value(value: Union[int, float]) -> str:
    if isinstance(value, bool):  # bools are ints; never expose them raw
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def _counter_lines(counters: Mapping[str, int]) -> List[str]:
    """Counter families; ``family:variant`` names fold into one family."""
    families: Dict[str, List[Tuple[Optional[str], int]]] = {}
    for name, value in sorted(counters.items()):
        family, _, variant = name.partition(":")
        families.setdefault(sanitize_metric_name(family), []).append(
            (variant or None, value)
        )
    lines: List[str] = []
    for family, samples in sorted(families.items()):
        lines.append(f"# TYPE {family} counter")
        for variant, value in samples:
            labels = {"event": variant} if variant is not None else {}
            lines.append(f"{family}_total{_labelset(labels)} {_format_value(value)}")
    return lines


def _gauge_lines(gauges: Mapping[str, Union[int, float]]) -> List[str]:
    lines: List[str] = []
    for name, value in sorted(gauges.items()):
        family = sanitize_metric_name(name)
        lines.append(f"# TYPE {family} gauge")
        lines.append(f"{family} {_format_value(value)}")
    return lines


def _summary_lines(name: str, hist: Histogram) -> List[str]:
    """Exact histograms expose as summaries with exact quantiles."""
    family = sanitize_metric_name(name)
    lines = [f"# TYPE {family} summary"]
    if hist.count:
        for fraction in (0.5, 0.95):
            lines.append(
                f'{family}{{quantile="{fraction}"}} '
                f"{_format_value(hist.percentile(fraction))}"
            )
    lines.append(f"{family}_count {hist.count}")
    lines.append(f"{family}_sum {_format_value(hist.total)}")
    return lines


def _histogram_lines(
    name: str, hist: BoundedHistogram, exemplar: Optional[str] = None
) -> List[str]:
    """Bounded histograms expose as native histogram families.

    ``exemplar`` (a config fingerprint) rides on the ``+Inf`` bucket —
    the one sample every scrape reads — pointing the series back at the
    exact configuration that produced it.
    """
    family = sanitize_metric_name(name)
    lines = [f"# TYPE {family} histogram"]
    for upper, cumulative in hist.cumulative_buckets():
        lines.append(
            f'{family}_bucket{{le="{_format_value(upper)}"}} {cumulative}'
        )
    suffix = ""
    if exemplar is not None:
        suffix = (
            f' # {{fingerprint="{escape_label_value(exemplar)}"}} '
            f"{_format_value(hist.mean)}"
        )
    lines.append(f'{family}_bucket{{le="+Inf"}} {hist.count}{suffix}')
    lines.append(f"{family}_count {hist.count}")
    lines.append(f"{family}_sum {_format_value(hist.total)}")
    return lines


def _heartbeat_lines(heartbeats: Mapping[str, Mapping[str, object]]) -> List[str]:
    """Latest heartbeat per source, one gauge family per payload field."""
    lines: List[str] = []
    for fieldname in _HEARTBEAT_GAUGES:
        family = sanitize_metric_name(f"heartbeat.{fieldname}")
        samples: List[str] = []
        for source, payload in sorted(heartbeats.items()):
            value = payload.get(fieldname)
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                continue
            labels = {"source": str(source)}
            label = payload.get("label")
            if label:
                labels["experiment"] = str(label)
            samples.append(f"{family}{_labelset(labels)} {_format_value(value)}")
        if samples:
            lines.append(f"# TYPE {family} gauge")
            lines.extend(samples)
    return lines


def openmetrics_lines(
    metrics: Optional[MetricsRegistry] = None,
    stream: Optional["TelemetryStream"] = None,
) -> List[str]:
    """Exposition lines (without the ``# EOF`` terminator)."""
    lines: List[str] = []
    exemplar = None
    if stream is not None:
        exemplar = stream.labels.get("fingerprint")
    if metrics is not None:
        lines.extend(_counter_lines(metrics.counters()))
        lines.extend(_gauge_lines(metrics.gauges()))
        for name, hist in metrics.histograms().items():
            if isinstance(hist, BoundedHistogram):
                lines.extend(_histogram_lines(name, hist, exemplar))
            else:
                lines.extend(_summary_lines(name, hist))
    if stream is not None:
        for name, hist in sorted(stream.histograms.items()):
            lines.extend(_histogram_lines(name, hist, exemplar))
        lines.extend(_heartbeat_lines(stream.heartbeats))
    return lines


def render_openmetrics(
    metrics: Optional[MetricsRegistry] = None,
    stream: Optional["TelemetryStream"] = None,
) -> str:
    """The full exposition text, ``# EOF``-terminated."""
    return "\n".join(openmetrics_lines(metrics, stream) + ["# EOF"]) + "\n"


def write_openmetrics(
    path: Union[str, Path],
    metrics: Optional[MetricsRegistry] = None,
    stream: Optional["TelemetryStream"] = None,
) -> Path:
    """Render and write an exposition; returns the path."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(render_openmetrics(metrics, stream), encoding="utf-8")
    return target


# --- structural validation ----------------------------------------------------

def _family_of(sample_name: str, declared: Mapping[str, str]) -> Optional[str]:
    """The declared family a sample name belongs to, if any."""
    if sample_name in declared:
        return sample_name
    for suffix in ("_total", "_bucket", "_count", "_sum"):
        if sample_name.endswith(suffix) and sample_name[: -len(suffix)] in declared:
            return sample_name[: -len(suffix)]
    return None


def _parse_le(labels: str) -> Optional[str]:
    match = re.search(r'le="([^"]*)"', labels or "")
    return match.group(1) if match else None


def validate_openmetrics(text: str) -> List[str]:
    """Structural problems with an OpenMetrics exposition (empty: valid).

    Hand-rolled (no client library in the image), in the spirit of
    ``validate_check_payload``: checks the line grammar, the ``# TYPE``
    discipline, counter ``_total`` naming, histogram bucket monotonicity
    and ``+Inf``/``_count``/``_sum`` consistency, and the ``# EOF``
    terminator.
    """
    problems: List[str] = []
    lines = text.splitlines()
    if not lines or lines[-1] != "# EOF":
        problems.append("exposition must end with a '# EOF' line")
    declared: Dict[str, str] = {}
    buckets: Dict[str, List[Tuple[str, float]]] = {}
    counts: Dict[str, float] = {}
    sums: Dict[str, bool] = {}
    for number, line in enumerate(lines, start=1):
        if not line:
            problems.append(f"line {number}: blank lines are not allowed")
            continue
        if line == "# EOF":
            if number != len(lines):
                problems.append(f"line {number}: '# EOF' before end of exposition")
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4 or parts[3] not in _TYPES:
                problems.append(f"line {number}: malformed TYPE line {line!r}")
                continue
            family = parts[2]
            if family in declared:
                problems.append(f"line {number}: duplicate TYPE for {family!r}")
            declared[family] = parts[3]
            continue
        if line.startswith("#"):
            problems.append(f"line {number}: unexpected comment {line!r}")
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            problems.append(f"line {number}: unparseable sample {line!r}")
            continue
        name = match.group("name")
        family = _family_of(name, declared)
        if family is None:
            problems.append(
                f"line {number}: sample {name!r} has no preceding TYPE declaration"
            )
            continue
        kind = declared[family]
        value = float(match.group("value").replace("Inf", "inf"))
        if kind == "counter" and not name.endswith("_total"):
            problems.append(
                f"line {number}: counter sample {name!r} must end in '_total'"
            )
        if kind == "histogram":
            if name.endswith("_bucket"):
                le = _parse_le(match.group("labels") or "")
                if le is None:
                    problems.append(
                        f"line {number}: histogram bucket without 'le' label"
                    )
                else:
                    buckets.setdefault(family, []).append((le, value))
            elif name.endswith("_count"):
                counts[family] = value
            elif name.endswith("_sum"):
                sums[family] = True
    for family, series in sorted(buckets.items()):
        les = [le for le, _count in series]
        if not les or les[-1] != "+Inf":
            problems.append(f"histogram {family!r}: last bucket must be le=\"+Inf\"")
        bounds = [float(le.replace("Inf", "inf")) for le in les]
        if bounds != sorted(bounds):
            problems.append(f"histogram {family!r}: 'le' bounds not ascending")
        values = [count for _le, count in series]
        if any(later < earlier for earlier, later in zip(values, values[1:])):
            problems.append(f"histogram {family!r}: bucket counts not cumulative")
        if family in counts and series and counts[family] != series[-1][1]:
            problems.append(
                f"histogram {family!r}: _count {counts[family]} != "
                f"+Inf bucket {series[-1][1]}"
            )
        if not sums.get(family):
            problems.append(f"histogram {family!r}: missing _sum sample")
    return problems
