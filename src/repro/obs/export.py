"""Exporters for observed runs: Chrome trace JSON, JSONL, terminal tables.

Three views of one :class:`~repro.obs.tracer.Tracer`:

* :func:`chrome_trace` / :func:`write_chrome_trace` — the Chrome
  trace-event JSON format (``{"traceEvents": [...]}``) that Perfetto and
  ``chrome://tracing`` load directly.  Spans become ``"X"`` (complete)
  events, instants become ``"i"`` events, and — when a platform is given
  — the platform-state timeline becomes its own track and the recorded
  power channels become ``"C"`` counter tracks.  Timestamps are the
  simulated time converted to microseconds (the format's unit).
* :func:`jsonl_lines` / :func:`write_jsonl` — a flat, grep-able event
  log: one JSON object per span/instant, then one per metric.
* :func:`render_summary` — an aligned terminal digest (span totals,
  counters, histograms) built on the same table renderer the experiment
  commands use.

Each exporter also accepts the host-phase ``profiler``
(:class:`~repro.obs.profile.PhaseProfiler`): its build/simulate/
measure/analyze spans join the Chrome trace as a second ``repro-host``
process (host microseconds, not simulated ones), the JSONL stream as
``"phase"`` records, and the terminal digest as a "Host phases" table
(:func:`render_profile`).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Union

from repro.analysis.report import format_table
from repro.obs.ledger import EnergyLedger
from repro.obs.profile import PhaseProfiler
from repro.obs.tracer import Tracer

#: Process id used for every simulated-timeline event.
TRACE_PID = 1

#: Process id used for host-phase (profiler) events — a separate process
#: in the trace viewer because its clock is the host's, not the kernel's.
HOST_PID = 2

#: picoseconds per microsecond (the trace-event timestamp unit).
_PS_PER_US = 1_000_000


def _ts(time_ps: int) -> float:
    """Simulated picoseconds -> trace-event microseconds."""
    return time_ps / _PS_PER_US


def _track_ids(tracer: Tracer, platform: Optional[Any]) -> Dict[str, int]:
    """Stable track-name -> tid assignment, in first-use order."""
    order: List[str] = []
    for span in tracer.spans:
        if span.track not in order:
            order.append(span.track)
    for instant in tracer.instants:
        if instant.track not in order:
            order.append(instant.track)
    if platform is not None and "state" not in order:
        order.append("state")
    return {name: index for index, name in enumerate(order)}


def chrome_trace(
    tracer: Tracer,
    platform: Optional[Any] = None,
    end_ps: Optional[int] = None,
    profiler: Optional[PhaseProfiler] = None,
) -> Dict[str, Any]:
    """Build a Chrome trace-event document from an observed run.

    ``platform`` adds its state timeline and power-counter tracks from
    the platform's :class:`~repro.sim.trace.TraceRecorder`; ``end_ps``
    bounds them (default: the platform kernel's final time).
    ``profiler`` adds the host-phase timeline as a second process —
    its timestamps are host time, so the two processes share an origin
    but not a clock.
    """
    tracks = _track_ids(tracer, platform)
    events: List[Dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": TRACE_PID,
            "tid": 0,
            "args": {"name": "repro-sim"},
        }
    ]
    for track, tid in tracks.items():
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": TRACE_PID,
                "tid": tid,
                "args": {"name": track},
            }
        )
    for span in tracer.spans:
        tid = tracks[span.track]
        if span.closed:
            event = {
                "name": span.name,
                "cat": span.track,
                "ph": "X",
                "ts": _ts(span.start_ps),
                "dur": _ts(span.duration_ps),
                "pid": TRACE_PID,
                "tid": tid,
            }
        else:  # leaked span: emit the open edge so the leak is visible
            event = {
                "name": span.name,
                "cat": span.track,
                "ph": "B",
                "ts": _ts(span.start_ps),
                "pid": TRACE_PID,
                "tid": tid,
            }
        if span.args:
            event["args"] = dict(span.args)
        events.append(event)
    for instant in tracer.instants:
        event = {
            "name": instant.name,
            "cat": instant.track,
            "ph": "i",
            "ts": _ts(instant.time_ps),
            "pid": TRACE_PID,
            "tid": tracks[instant.track],
            "s": "t",
        }
        if instant.args:
            event["args"] = dict(instant.args)
        events.append(event)
    events.extend(_flow_arrow_events(tracer, tracks))
    if platform is not None:
        events.extend(_platform_events(platform, tracks, end_ps))
    if profiler is not None:
        events.extend(_profiler_events(profiler))
    events.sort(key=lambda event: (event.get("ts", -1.0), event["ph"] != "M"))
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "generator": "repro.obs",
            "clock": "simulated",
            "spans": len(tracer.spans),
            "instants": len(tracer.instants),
            "edges": len(tracer.edges),
        },
    }


def _record_ts_ps(record: Any) -> int:
    """Timeline position of a span/instant record (spans bind at start)."""
    time_ps = getattr(record, "time_ps", None)
    if time_ps is not None:
        return time_ps
    return record.start_ps


def _flow_arrow_events(
    tracer: Tracer, tracks: Dict[str, int]
) -> Iterator[Dict[str, Any]]:
    """Causal edges as Chrome trace flow arrows (``"s"``/``"f"`` pairs).

    Each :class:`~repro.obs.tracer.CausalEdge` becomes one flow id: a
    start event at the source record and a binding-enclosing finish at
    the target, so Perfetto draws the kernel-event -> wake ->
    entry/exit-flow chains as arrows across tracks.
    """
    for index, edge in enumerate(tracer.edges):
        for phase, record in (("s", edge.source), ("f", edge.target)):
            event: Dict[str, Any] = {
                "name": edge.kind,
                "cat": "causal",
                "ph": phase,
                "id": index,
                "ts": _ts(_record_ts_ps(record)),
                "pid": TRACE_PID,
                "tid": tracks.get(record.track, 0),
            }
            if phase == "f":
                event["bp"] = "e"
            yield event


def _profiler_events(profiler: PhaseProfiler) -> Iterator[Dict[str, Any]]:
    """Host-phase spans as a separate ``repro-host`` trace process."""
    yield {
        "name": "process_name",
        "ph": "M",
        "pid": HOST_PID,
        "tid": 0,
        "args": {"name": "repro-host"},
    }
    yield {
        "name": "thread_name",
        "ph": "M",
        "pid": HOST_PID,
        "tid": 0,
        "args": {"name": "host phases"},
    }
    for span in profiler.closed_spans():
        event: Dict[str, Any] = {
            "name": span.name,
            "cat": "host-phase",
            "ph": "X",
            "ts": span.start_s * 1e6,  # host seconds -> trace microseconds
            "dur": span.wall_s * 1e6,
            "pid": HOST_PID,
            "tid": 0,
            "args": {"depth": span.depth},
        }
        if span.peak_bytes is not None:
            event["args"]["peak_bytes"] = span.peak_bytes
        yield event


def _platform_events(
    platform: Any, tracks: Dict[str, int], end_ps: Optional[int]
) -> Iterator[Dict[str, Any]]:
    """State-track spans and power-counter events from a platform trace."""
    trace = platform.trace
    horizon_ps = end_ps if end_ps is not None else platform.kernel.now
    state_tid = tracks.get("state", len(tracks))
    for lo, hi, value in trace.intervals("state", horizon_ps):
        if hi > lo:
            yield {
                "name": str(value),
                "cat": "state",
                "ph": "X",
                "ts": _ts(lo),
                "dur": _ts(hi - lo),
                "pid": TRACE_PID,
                "tid": state_tid,
            }
    for channel in trace.channels():
        if channel != "platform" and not channel.startswith("rail:"):
            continue
        for sample in trace.samples(channel):
            if sample.time_ps > horizon_ps:
                break
            yield {
                "name": channel,
                "ph": "C",
                "ts": _ts(sample.time_ps),
                "pid": TRACE_PID,
                "args": {"watts": sample.value},
            }


def write_chrome_trace(
    tracer: Tracer,
    path: Union[str, Path],
    platform: Optional[Any] = None,
    end_ps: Optional[int] = None,
    profiler: Optional[PhaseProfiler] = None,
) -> Path:
    """Write :func:`chrome_trace` output to ``path`` and return it."""
    target = Path(path)
    document = chrome_trace(tracer, platform=platform, end_ps=end_ps, profiler=profiler)
    target.write_text(json.dumps(document, indent=1, sort_keys=True) + "\n")
    return target


# --- JSONL --------------------------------------------------------------------


def jsonl_lines(tracer: Tracer, profiler: Optional[PhaseProfiler] = None) -> Iterator[str]:
    """One JSON object per recorded span/instant, then per metric.

    ``profiler`` appends one ``"phase"`` record per closed host phase
    (host seconds, not simulated picoseconds)."""
    for span in tracer.spans:
        record: Dict[str, Any] = {
            "type": "span",
            "track": span.track,
            "name": span.name,
            "start_ps": span.start_ps,
            "end_ps": span.end_ps,
            "duration_ps": span.duration_ps if span.closed else None,
        }
        if span.args:
            record["args"] = dict(span.args)
        yield json.dumps(record, sort_keys=True)
    for instant in tracer.instants:
        record = {
            "type": "instant",
            "track": instant.track,
            "name": instant.name,
            "time_ps": instant.time_ps,
        }
        if instant.args:
            record["args"] = dict(instant.args)
        yield json.dumps(record, sort_keys=True)
    for edge in tracer.edges:
        yield json.dumps(
            {
                "type": "edge",
                "kind": edge.kind,
                "source": {
                    "track": edge.source.track,
                    "name": edge.source.name,
                    "time_ps": _record_ts_ps(edge.source),
                },
                "target": {
                    "track": edge.target.track,
                    "name": edge.target.name,
                    "time_ps": _record_ts_ps(edge.target),
                },
            },
            sort_keys=True,
        )
    snapshot = tracer.metrics.snapshot()
    for name, value in snapshot["counters"].items():
        yield json.dumps({"type": "counter", "name": name, "value": value}, sort_keys=True)
    for name, value in snapshot["gauges"].items():
        yield json.dumps({"type": "gauge", "name": name, "value": value}, sort_keys=True)
    for name, stats in snapshot["histograms"].items():
        yield json.dumps(
            {"type": "histogram", "name": name, **stats}, sort_keys=True
        )
    if profiler is not None:
        for span in profiler.closed_spans():
            record = {
                "type": "phase",
                "name": span.name,
                "start_s": span.start_s,
                "wall_s": span.wall_s,
                "self_s": span.self_s,
                "depth": span.depth,
            }
            if span.peak_bytes is not None:
                record["peak_bytes"] = span.peak_bytes
            yield json.dumps(record, sort_keys=True)


def write_jsonl(
    tracer: Tracer,
    path: Union[str, Path],
    profiler: Optional[PhaseProfiler] = None,
) -> Path:
    target = Path(path)
    target.write_text(
        "".join(line + "\n" for line in jsonl_lines(tracer, profiler=profiler))
    )
    return target


# --- terminal summary ---------------------------------------------------------


def render_profile(profiler: PhaseProfiler) -> str:
    """Aligned "Host phases" table for a :class:`PhaseProfiler`.

    Returns the empty string when the profiler recorded no closed
    phases, so callers can append it unconditionally.
    """
    stats = profiler.stats()
    if not stats:
        return ""
    track_allocations = any(
        entry.peak_bytes is not None for entry in stats.values()
    )
    headers = ["phase", "count", "wall time", "self time"]
    if track_allocations:
        headers.append("peak alloc")
    rows: List[List[Any]] = []
    for name, entry in stats.items():
        row: List[Any] = [
            name,
            entry.count,
            f"{entry.wall_s * 1e3:,.2f} ms",
            f"{entry.self_s * 1e3:,.2f} ms",
        ]
        if track_allocations:
            row.append(
                f"{entry.peak_bytes / 1024:,.1f} KiB"
                if entry.peak_bytes is not None
                else "-"
            )
        rows.append(row)
    total = profiler.total_wall_s()
    return format_table(
        headers, rows, title=f"Host phases ({total * 1e3:,.2f} ms top-level)"
    )


def render_summary(
    tracer: Tracer,
    ledger: Optional[EnergyLedger] = None,
    include_spans: bool = True,
    profiler: Optional[PhaseProfiler] = None,
    platform: Optional[Any] = None,
) -> str:
    """Aligned terminal digest of an observed run.

    ``include_spans=False`` restricts the digest to the metrics tables
    (the CLI's ``--metrics`` view).  ``profiler`` appends the
    :func:`render_profile` host-phase table.  ``platform`` (with a
    recorded measurement window) appends the wake-cause attribution and
    flow critical-path tables from :mod:`repro.obs.causal`.
    """
    sections: List[str] = []

    if include_spans:
        totals: Dict[tuple, List[int]] = {}
        for span in tracer.closed_spans():
            key = (span.track, span.name)
            entry = totals.setdefault(key, [0, 0])
            entry[0] += 1
            entry[1] += span.duration_ps
        if totals:
            rows = [
                [track, name, count, f"{total_ps / 1e6:,.2f} us"]
                for (track, name), (count, total_ps) in sorted(
                    totals.items(), key=lambda item: (item[0][0], -item[1][1])
                )
            ]
            sections.append(
                format_table(["track", "span", "count", "total sim time"], rows,
                             title="Spans")
            )
        leaked = tracer.open_spans()
        if leaked:
            rows = [[span.track, span.name, span.start_ps] for span in leaked]
            sections.append(
                format_table(["track", "span", "opened at (ps)"], rows,
                             title="LEAKED SPANS (never closed)")
            )

    counters = tracer.metrics.counters()
    if counters:
        rows = [[name, value] for name, value in counters.items()]
        sections.append(format_table(["counter", "value"], rows, title="Counters"))
    histograms = tracer.metrics.histograms()
    if histograms:
        rows = [
            [name, hist.count, hist.mean,
             hist.percentile(0.5) if hist.count else "-",
             hist.percentile(0.95) if hist.count else "-"]
            for name, hist in histograms.items()
        ]
        sections.append(
            format_table(["histogram", "count", "mean", "p50", "p95"], rows,
                         title="Histograms")
        )

    if ledger is not None:
        rows = [
            [domain, f"{joules:.6f} J", f"{watts * 1e3:.3f} mW"]
            for domain, joules, watts in ledger.domain_rows()
        ]
        rows.append(
            ["TOTAL", f"{ledger.total_energy_j:.6f} J",
             f"{ledger.average_power_w * 1e3:.3f} mW"]
        )
        sections.append(
            format_table(
                ["domain", "energy", "avg power"], rows,
                title=f"Energy ledger ({ledger.window_s:.2f} s window)",
            )
        )
        step_rows = ledger.step_rows(limit=12)
        if step_rows:
            rows = [
                [span, domain, f"{joules * 1e6:,.3f} uJ"]
                for span, domain, joules in step_rows
            ]
            sections.append(
                format_table(["flow step", "domain", "energy"], rows,
                             title="Flow-step attribution (top cells)")
            )

    if platform is not None and tracer.window_ps is not None:
        from repro.errors import MeasurementError
        from repro.obs.causal import build_causal_report

        try:
            report = build_causal_report(tracer, platform)
        except MeasurementError:
            report = None
        if report is not None and report.rollups:
            window = report.window_ps
            rows = [
                [
                    rollup.cause,
                    f"{rollup.energy_j * 1e3:,.3f} mJ",
                    f"{rollup.residency(window):.4%}",
                    rollup.events,
                ]
                for rollup in report.ranked_rollups()
            ]
            sections.append(
                format_table(
                    ["cause", "energy", "residency", "events"], rows,
                    title="Wake-cause attribution",
                )
            )
            rows = []
            for path in report.critical_paths:
                for label, total_ps, count in path.steps[:3]:
                    share = total_ps / path.total_ps if path.total_ps else 0.0
                    rows.append(
                        [path.flow, label, count,
                         f"{total_ps / 1e6:,.2f} us", f"{share:.1%}"]
                    )
            if rows:
                sections.append(
                    format_table(
                        ["flow", "step", "count", "total sim time", "share"],
                        rows, title="Flow critical path (top steps)",
                    )
                )

    if profiler is not None:
        phase_table = render_profile(profiler)
        if phase_table:
            sections.append(phase_table)
    return "\n\n".join(sections)
