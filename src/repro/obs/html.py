"""Shared static-HTML building blocks for repro's report and dashboard.

``python -m repro report --html`` and ``python -m repro dash`` emit
self-contained static pages — no scripts, no external assets, safe to
archive as CI artifacts.  This module is their common vocabulary:
escaping, the bordered monospace table, inline SVG sparklines, and
unicode bar rows for histogram views, plus the page shell both share.
"""

from __future__ import annotations

from html import escape as esc
from typing import Iterable, List, Optional, Sequence

#: The house style both pages share (monospace, bordered tables).
BASE_STYLE = (
    "body{font-family:monospace;margin:2em}"
    "table{border-collapse:collapse;margin:1em 0}"
    "td,th{border:1px solid #999;padding:0.3em 0.8em;text-align:left}"
    ".bar{color:#369}"
    ".flag{color:#b00;font-weight:bold}"
    "svg{vertical-align:middle}"
)

#: Eight-level unicode bar glyphs for histogram rows.
_BAR_GLYPHS = " ▁▂▃▄▅▆▇█"


def html_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """A bordered table; every cell is escaped unless it is a ``Raw``."""
    head = "".join(f"<th>{esc(str(header))}</th>" for header in headers)
    body = "".join(
        "<tr>"
        + "".join(
            str(cell) if isinstance(cell, Raw) else f"<td>{esc(str(cell))}</td>"
            for cell in row
        )
        + "</tr>"
        for row in rows
    )
    return f"<table><thead><tr>{head}</tr></thead><tbody>{body}</tbody></table>"


class Raw(str):
    """A pre-rendered table cell (``<td>…</td>``); skips escaping.

    Only helper output (sparklines, bar strings) should ever be wrapped —
    never data that originated outside this module.
    """


def bar_cell(fraction: float, width: int = 20) -> Raw:
    """A unicode bar filling ``fraction`` of ``width`` character cells."""
    fraction = min(1.0, max(0.0, fraction))
    whole = int(fraction * width)
    remainder = fraction * width - whole
    partial = _BAR_GLYPHS[round(remainder * 8)] if whole < width else ""
    bar = "█" * whole + partial
    return Raw(f'<td><span class="bar">{esc(bar)}</span></td>')


def sparkline_svg(
    values: Sequence[float],
    width: int = 160,
    height: int = 28,
    flags: Optional[Sequence[bool]] = None,
) -> Raw:
    """An inline SVG polyline over ``values``; flagged points get dots.

    Flat or single-point series render as a midline.  ``flags`` marks
    anomalous points (see :func:`repro.obs.dash.detect_anomalies`) with
    red circles.
    """
    if not values:
        return Raw("<td></td>")
    lo, hi = min(values), max(values)
    span = hi - lo
    pad = 3.0
    inner_w, inner_h = width - 2 * pad, height - 2 * pad

    def point(index: int, value: float) -> tuple:
        x = pad + (inner_w * index / max(1, len(values) - 1))
        frac = 0.5 if span == 0 else (value - lo) / span
        y = pad + inner_h * (1.0 - frac)
        return x, y

    coords = [point(index, value) for index, value in enumerate(values)]
    path = " ".join(f"{x:.1f},{y:.1f}" for x, y in coords)
    extras: List[str] = []
    if flags is not None:
        for (x, y), flagged in zip(coords, flags):
            if flagged:
                extras.append(
                    f'<circle cx="{x:.1f}" cy="{y:.1f}" r="2.5" fill="#b00"/>'
                )
    svg = (
        f'<svg width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}">'
        f'<polyline points="{path}" fill="none" stroke="#369" '
        'stroke-width="1.5"/>' + "".join(extras) + "</svg>"
    )
    return Raw(f"<td>{svg}</td>")


def histogram_rows(
    buckets: Sequence[tuple], total: int, width: int = 20
) -> List[List[object]]:
    """``(label, count)`` buckets -> table rows with proportional bars."""
    rows: List[List[object]] = []
    peak = max((count for _label, count in buckets), default=0)
    for label, count in buckets:
        share = (count / total) if total else 0.0
        rows.append(
            [
                label,
                count,
                f"{share:.1%}",
                bar_cell((count / peak) if peak else 0.0, width=width),
            ]
        )
    return rows


def page(title: str, body_parts: Iterable[str], style: str = BASE_STYLE) -> str:
    """The shared page shell: doctype, charset, style, title heading."""
    return "".join(
        [
            "<!DOCTYPE html><html><head><meta charset='utf-8'>",
            f"<title>{esc(title)}</title>",
            f"<style>{style}</style></head><body>",
            f"<h1>{esc(title)}</h1>",
            *body_parts,
            "</body></html>",
        ]
    )
