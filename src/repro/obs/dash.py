"""The fleet dashboard: ``python -m repro dash``.

Joins every telemetry store the repo accumulates into one static,
self-contained HTML page (no scripts, no external assets):

* the flight recorder's run history (``.repro/runs/runs.jsonl``) — run
  table, run-duration and average-power histograms (via
  :class:`~repro.obs.metrics.BoundedHistogram`), cache hit-rate trend,
  and per-experiment wall-time sparklines;
* the microbenchmark figures in ``BENCH_perf.json``, with their
  :mod:`repro.regress.policies` verdicts;
* live heartbeat files from a streaming run's ``--heartbeat`` directory
  (:mod:`repro.obs.stream`) and an optional in-process stream snapshot;
* the per-cause energy rollup of a fresh observed run (PR 8's causal
  attribution; skipped with ``--static``).

:func:`detect_anomalies` flags runs whose latest wall time or metrics
sit far outside their own history — a robust z-score over the series
(median/MAD, cutoff 3.5) cross-checked against an EWMA of the prior
points — and the same advisories surface as a non-gating section in
``python -m repro report``.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.obs.html import (
    bar_cell,
    esc,
    histogram_rows,
    html_table,
    page,
    sparkline_svg,
)
from repro.obs.metrics import BoundedHistogram
from repro.obs.runlog import RunLog
from repro.obs.stream import TelemetryStream, read_heartbeat_dir

#: Robust z-score beyond which a point is anomalous (the standard
#: median/MAD cutoff; 0.6745 rescales MAD to sigma-equivalents).
ROBUST_Z_CUTOFF = 3.5

#: EWMA smoothing factor for the cross-check trend.
EWMA_ALPHA = 0.3

#: Relative deviation from the EWMA that corroborates a robust-z flag.
EWMA_REL_CUTOFF = 0.5

#: Minimum history length before anomaly detection engages.
MIN_HISTORY = 4


def robust_z_scores(series: Sequence[float]) -> List[float]:
    """Per-point robust z-scores (median/MAD) over ``series``.

    A degenerate series (MAD == 0, e.g. constant history) scores every
    point 0 unless it differs from the median at all — then it scores
    the cutoff exactly, so "history was perfectly flat and this point
    moved" still flags.
    """
    ordered = sorted(series)
    n = len(ordered)
    if n == 0:
        return []
    median = (ordered[n // 2] + ordered[(n - 1) // 2]) / 2.0
    deviations = sorted(abs(value - median) for value in series)
    mad = (deviations[n // 2] + deviations[(n - 1) // 2]) / 2.0
    if mad == 0.0:
        return [
            0.0 if value == median else ROBUST_Z_CUTOFF for value in series
        ]
    return [0.6745 * (value - median) / mad for value in series]


def ewma(series: Sequence[float], alpha: float = EWMA_ALPHA) -> Optional[float]:
    """Exponentially weighted moving average of ``series`` (None: empty)."""
    smoothed: Optional[float] = None
    for value in series:
        smoothed = value if smoothed is None else alpha * value + (1 - alpha) * smoothed
    return smoothed


def _metric_histories(
    records: Sequence[Dict[str, Any]],
) -> Dict[Tuple[str, str], List[float]]:
    """``(experiment, metric) -> value series`` in append order.

    ``wall_s`` joins the record's metrics as a pseudo-metric so host-time
    regressions flag alongside fidelity movement.
    """
    histories: Dict[Tuple[str, str], List[float]] = {}
    for record in records:
        experiment = record.get("experiment")
        if not isinstance(experiment, str):
            continue
        metrics = record.get("metrics")
        series: Dict[str, Any] = dict(metrics) if isinstance(metrics, dict) else {}
        series["wall_s"] = record.get("wall_s")
        for key, value in series.items():
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                histories.setdefault((experiment, key), []).append(float(value))
    return histories


def detect_anomalies(records: Sequence[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Anomaly advisories over the run history's latest points.

    For every ``(experiment, metric)`` series with at least
    :data:`MIN_HISTORY` points, the **latest** point is flagged when its
    robust z-score exceeds :data:`ROBUST_Z_CUTOFF` *and* it deviates from
    the EWMA of the prior points by more than :data:`EWMA_REL_CUTOFF`
    relative (both detectors must agree — advisories are cheap to read
    but expensive to cry wolf with).  Advisory only: never a gate.
    """
    advisories: List[Dict[str, Any]] = []
    for (experiment, metric), series in sorted(_metric_histories(records).items()):
        if len(series) < MIN_HISTORY:
            continue
        z = robust_z_scores(series)[-1]
        if abs(z) < ROBUST_Z_CUTOFF:
            continue
        trend = ewma(series[:-1])
        latest = series[-1]
        if trend is None:
            continue
        scale = max(abs(trend), 1e-12)
        rel = (latest - trend) / scale
        if abs(rel) < EWMA_REL_CUTOFF:
            continue
        advisories.append(
            {
                "experiment": experiment,
                "metric": metric,
                "value": latest,
                "points": len(series),
                "robust_z": z,
                "ewma": trend,
                "ewma_rel": rel,
            }
        )
    return advisories


# --- data assembly ------------------------------------------------------------


def _short_rev(record: Dict[str, Any]) -> str:
    rev = record.get("git_rev")
    return rev[:10] if isinstance(rev, str) else "-"


def _bench_rows(bench_path: Union[str, Path]) -> List[List[str]]:
    """Bench figures with their policy verdicts (or ``advisory``)."""
    from repro.regress.policies import bench_policies
    from repro.regress.report import _load_bench

    benches = _load_bench(bench_path)
    if benches is None:
        return []
    policies = {
        (policy.bench, policy.metric): policy for policy in bench_policies(None)
    }
    rows: List[List[str]] = []
    for bench, figure in sorted(benches.items()):
        if not isinstance(figure, dict):
            continue
        skip = figure.get("policy_skip")
        for metric, value in sorted(figure.items()):
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                continue
            policy = policies.get((bench, metric))
            if policy is None:
                verdict = "advisory"
            elif isinstance(skip, str) and skip:
                verdict = f"skipped: {skip}"
            else:
                outcome = policy.evaluate(float(value))
                verdict = (
                    f"ok ({outcome['kind']} {outcome['limit']:g})"
                    if outcome["within"]
                    else f"DRIFT ({outcome['kind']} {outcome['limit']:g})"
                )
            rows.append([bench, metric, f"{float(value):.6g}", verdict])
    return rows


def build_dashboard(
    runlog: Optional[RunLog] = None,
    bench_path: Union[str, Path] = "BENCH_perf.json",
    heartbeat_dir: Optional[Union[str, Path]] = None,
    stream: Optional[TelemetryStream] = None,
    causal: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Assemble the dashboard's data (JSON-able except the histograms).

    ``causal`` is a :meth:`repro.obs.causal.CausalReport.as_dict` payload
    (the per-cause energy view); the CLI supplies one from a fresh
    observed run unless ``--static``.
    """
    runlog = runlog if runlog is not None else RunLog()
    records = runlog.records()

    duration_hist = BoundedHistogram("run.wall_s")
    power_hist = BoundedHistogram("run.power_metrics")
    cache_trend: List[float] = []
    for record in records:
        wall = record.get("wall_s")
        if isinstance(wall, (int, float)) and not isinstance(wall, bool):
            duration_hist.observe(float(wall))
        metrics = record.get("metrics")
        if isinstance(metrics, dict):
            for key, value in metrics.items():
                if "power" in key and isinstance(value, (int, float)):
                    power_hist.observe(float(value))
        cache = record.get("cache")
        if isinstance(cache, dict):
            hits = int(cache.get("hits", 0))
            misses = int(cache.get("misses", 0))
            if hits + misses:
                cache_trend.append(hits / (hits + misses))

    wall_series: Dict[str, List[float]] = {}
    for record in records:
        experiment = record.get("experiment")
        wall = record.get("wall_s")
        if isinstance(experiment, str) and isinstance(wall, (int, float)):
            wall_series.setdefault(experiment, []).append(float(wall))

    heartbeats: List[Dict[str, Any]] = []
    if heartbeat_dir is not None:
        heartbeats = [payload for _path, payload in read_heartbeat_dir(heartbeat_dir)]

    return {
        "records": records,
        "duration_hist": duration_hist,
        "power_hist": power_hist,
        "cache_trend": cache_trend,
        "wall_series": wall_series,
        "bench_rows": _bench_rows(bench_path),
        "bench_path": str(bench_path),
        "heartbeats": heartbeats,
        "stream": stream.snapshot() if stream is not None else None,
        "causal": causal,
        "anomalies": detect_anomalies(records),
        "runlog_path": str(runlog.path),
    }


# --- rendering ----------------------------------------------------------------


def _hist_section(title: str, hist: BoundedHistogram, unit: str) -> List[str]:
    if hist.count == 0:
        return []
    buckets = [
        (f"≤ {upper:.4g} {unit}", count)
        for (upper, count) in _bucket_counts(hist)
    ]
    return [
        f"<h2>{esc(title)}</h2>",
        f"<p>{hist.count} sample(s), mean {hist.mean:.4g} {esc(unit)}, "
        f"range [{hist.min_value:.4g}, {hist.max_value:.4g}]</p>",
        html_table(
            ["bucket", "count", "share", ""],
            histogram_rows(buckets, hist.count),
        ),
    ]


def _bucket_counts(hist: BoundedHistogram) -> List[Tuple[float, int]]:
    """Per-bucket (non-cumulative) counts from the cumulative series."""
    out: List[Tuple[float, int]] = []
    previous = 0
    for upper, cumulative in hist.cumulative_buckets():
        out.append((upper, cumulative - previous))
        previous = cumulative
    return out


def render_dashboard(data: Dict[str, Any]) -> str:
    """The dashboard page, from :func:`build_dashboard` output."""
    parts: List[str] = []
    records = data["records"]
    parts.append(
        f"<p>{len(records)} run record(s) in "
        f"<code>{esc(data['runlog_path'])}</code></p>"
    )

    if data["anomalies"]:
        parts.append("<h2>Anomaly advisories</h2>")
        parts.append(
            html_table(
                ["experiment", "metric", "latest", "robust z", "vs EWMA", "history"],
                [
                    [
                        a["experiment"],
                        a["metric"],
                        f"{a['value']:.6g}",
                        f"{a['robust_z']:+.2f}",
                        f"{a['ewma_rel']:+.1%}",
                        f"{a['points']} runs",
                    ]
                    for a in data["anomalies"]
                ],
            )
        )

    if data["heartbeats"]:
        parts.append("<h2>Live heartbeats</h2>")
        rows = []
        for hb in data["heartbeats"]:
            frac = float(hb.get("frac") or 0.0)
            rows.append(
                [
                    hb.get("source", "?"),
                    hb.get("label", ""),
                    f"{hb.get('done', 0)}/{hb.get('total', 0)}",
                    bar_cell(frac),
                    f"{float(hb.get('events_per_s') or 0.0):.4g}",
                    f"{float(hb.get('sim_per_wall') or 0.0):.4g}x",
                    (
                        f"{float(hb['eta_s']):.1f}s"
                        if isinstance(hb.get("eta_s"), (int, float))
                        else "-"
                    ),
                ]
            )
        parts.append(
            html_table(
                ["source", "experiment", "progress", "", "events/s",
                 "sim/wall", "eta"],
                rows,
            )
        )

    if records:
        parts.append("<h2>Run history</h2>")
        parts.append(
            html_table(
                ["experiment", "rev", "wall_s", "cache", "macro"],
                [
                    [
                        record.get("experiment", "?"),
                        _short_rev(record),
                        (
                            f"{record['wall_s']:.4g}"
                            if isinstance(record.get("wall_s"), (int, float))
                            else "-"
                        ),
                        (
                            "{hits}h/{misses}m".format(**record["cache"])
                            if isinstance(record.get("cache"), dict)
                            and {"hits", "misses"} <= set(record["cache"])
                            else "-"
                        ),
                        (
                            "compiled"
                            if isinstance(record.get("macro"), dict)
                            and record["macro"].get("enabled")
                            else "exact"
                        ),
                    ]
                    for record in records[-20:]
                ],
            )
        )

    parts.extend(_hist_section("Run durations", data["duration_hist"], "s"))
    parts.extend(_hist_section("Power metrics", data["power_hist"], ""))

    if data["cache_trend"]:
        parts.append("<h2>Cache hit-rate trend</h2>")
        parts.append(
            html_table(
                ["runs with cache stats", "latest", "trend"],
                [
                    [
                        len(data["cache_trend"]),
                        f"{data['cache_trend'][-1]:.1%}",
                        sparkline_svg(data["cache_trend"]),
                    ]
                ],
            )
        )

    trajectories = {
        name: series
        for name, series in sorted(data["wall_series"].items())
        if len(series) >= 2
    }
    if trajectories:
        flagged = {
            (a["experiment"], a["metric"]) for a in data["anomalies"]
        }
        parts.append("<h2>Wall-time trajectories</h2>")
        rows = []
        for name, series in trajectories.items():
            flags = [False] * len(series)
            if (name, "wall_s") in flagged:
                flags[-1] = True
            rows.append(
                [
                    name,
                    f"{len(series)} runs",
                    f"{series[-1]:.4g}s",
                    sparkline_svg(series, flags=flags),
                ]
            )
        parts.append(html_table(["experiment", "history", "latest", "trend"], rows))

    if data["bench_rows"]:
        parts.append(
            f"<h2>Benchmark trajectory ({esc(data['bench_path'])})</h2>"
        )
        parts.append(
            html_table(["bench", "figure", "value", "policy"], data["bench_rows"])
        )

    causal = data.get("causal")
    if isinstance(causal, dict) and causal.get("rollups"):
        total = float(causal.get("total_energy_j") or 0.0)
        parts.append("<h2>Per-cause energy (fresh observed run)</h2>")
        parts.append(
            html_table(
                ["cause", "energy", "share", "residency", ""],
                [
                    [
                        rollup["cause"],
                        f"{rollup['energy_j'] * 1e3:.4g} mJ",
                        f"{rollup['energy_j'] / total:.1%}" if total else "-",
                        f"{rollup['residency']:.2%}",
                        bar_cell(rollup["energy_j"] / total if total else 0.0),
                    ]
                    for rollup in causal["rollups"]
                ],
            )
        )

    stream_snapshot = data.get("stream")
    if isinstance(stream_snapshot, dict) and stream_snapshot.get("histograms"):
        parts.append("<h2>Live stream aggregates</h2>")
        parts.append(
            html_table(
                ["histogram", "count", "mean", "min", "max"],
                [
                    [
                        name,
                        snap["count"],
                        f"{snap['total'] / snap['count']:.6g}" if snap["count"] else "-",
                        f"{snap['min']:.6g}" if snap["min"] is not None else "-",
                        f"{snap['max']:.6g}" if snap["max"] is not None else "-",
                    ]
                    for name, snap in stream_snapshot["histograms"].items()
                ],
            )
        )

    if len(parts) <= 1:
        parts.append("<p>No telemetry yet: run an experiment first.</p>")
    return page("repro fleet dashboard", parts)


def write_dashboard(path: Union[str, Path], data: Dict[str, Any]) -> Path:
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(render_dashboard(data), encoding="utf-8")
    return target
