"""The integrated Skylake mobile platform (Fig. 1(a) + Fig. 3(a)).

``SkylakePlatform`` builds the whole system — power tree, clocks, timers,
memory, MEE, processor, chipset, board — from a
:class:`~repro.config.PlatformConfig` and a
:class:`~repro.core.techniques.TechniqueSet`, and exposes the state
application primitives the flow controller sequences.

Power-accounting convention: all configured component powers are
**battery-side** (what the paper's N6705B analyzer measures), so the
Fig. 1(b) shares fall directly out of the component inventory.  The
power-delivery "tax" of Sec. 8 shows up as the explicit VR-quiescent
components (retention rail, AON rail) that the techniques turn off.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.chipset.pch import Chipset
from repro.config import PlatformConfig, skylake_config
from repro.core.techniques import ContextStore, TechniqueSet
from repro.errors import ConfigError, FlowError
from repro.io.pads import AONIOBank
from repro.io.pml import PMLLink
from repro.memory.controller import MemoryController
from repro.memory.nvm import EMRAMDevice
from repro.memory.region import MemoryRegion
from repro.memory.sram import SRAMDevice
from repro.memory.wear_leveling import RotatingContextAllocator
from repro.obs.tracer import active as _active_tracer
from repro.power.meter import EnergyMeter
from repro.power.tree import PowerTree
from repro.processor.boot import BootSRAM
from repro.processor.core import ComputeDomain
from repro.processor.llc import LastLevelCache
from repro.processor.pmu import ProcessorPMU
from repro.processor.sr_sram import SaveRestoreSRAMs
from repro.processor.system_agent import SystemAgent
from repro.sgx.cache import MEECache
from repro.sgx.mee import MemoryEncryptionEngine
from repro.sgx.integrity_tree import TreeGeometry
from repro.sim.kernel import Kernel
from repro.sim.trace import TraceRecorder
from repro.system.board import Board
from repro.system.states import STATE_CHANNEL, WAKE_CHANNEL, PlatformState
from repro.timers.calibration import (
    fractional_bits_for_precision,
    integer_bits_for_ratio,
)
from repro.units import GIB

#: How the AON IO budget splits across the bank's pads (Sec. 3, Obs. 2).
AON_IO_PAD_SHARES = {
    "clk24_buffers": 0.310,   # differential 24 MHz clock buffers
    "pml_tx": 0.165,          # PML, processor-to-chipset
    "pml_rx": 0.165,          # PML, chipset-to-processor
    "thermal": 0.120,         # EC thermal reporting interface
    "vr_control": 0.095,      # voltage-regulator serial interface
    "reset": 0.070,           # reset circuitry
    "debug": 0.075,           # debug interface
}

#: Default master key for the MEE (stands in for fuse-derived keys).
DEFAULT_MEE_MASTER_KEY = b"skylake-fuse-derived-master-key!"


class SkylakePlatform:
    """A fully wired mobile platform ready for connected-standby runs."""

    def __init__(
        self,
        config: Optional[PlatformConfig] = None,
        techniques: Optional[TechniqueSet] = None,
        mee_cache_sets: int = 64,
        mee_cache_ways: int = 8,
    ) -> None:
        self.config = config if config is not None else skylake_config()
        self.techniques = techniques if techniques is not None else TechniqueSet.baseline()
        budget = self.config.budget

        # --- simulation backbone ------------------------------------------------
        self.kernel = Kernel()
        self.trace = TraceRecorder()
        self.meter = EnergyMeter()
        self.tree = PowerTree(self.kernel, self.meter, self.trace)

        # --- rails and domains ----------------------------------------------------
        rail_aon = self.tree.new_rail("proc_aon", 1.0)
        self.dom_proc_aon = rail_aon.new_domain("proc.aon")
        self.dom_pmu = rail_aon.new_domain("proc.pmu")
        self.dom_aon_io = rail_aon.new_domain("proc.aon_io")
        self.dom_aon_vr = rail_aon.new_domain("proc.aon_vr")

        rail_retention = self.tree.new_rail("sram_retention", 1.0)
        self.dom_sr_sram = rail_retention.new_domain("proc.sr_sram")
        self.dom_retention_vr = rail_retention.new_domain("proc.retention_vr")

        rail_chipset = self.tree.new_rail("chipset_aon", 1.0)
        self.dom_chipset = rail_chipset.new_domain("pch.aon")

        rail_board = self.tree.new_rail("board", 1.0)
        self.dom_board = rail_board.new_domain("board.clocks")
        self.dom_memory = rail_board.new_domain("memory")
        self.dom_flow = rail_board.new_domain("flow")

        self.rail_compute = self.tree.new_rail("compute", 1.0)
        self.dom_compute = self.rail_compute.new_domain("proc.compute")

        # --- board (crystals, memory device, FET, EC) --------------------------------
        self.board = Board(
            self.kernel,
            self.config,
            clock_domain=self.dom_board,
            memory_domain=self.dom_memory,
            context_store=self.techniques.context_store,
        )
        self.dom_aon_io.gate = self.board.aon_io_fet

        # --- fixed AON components --------------------------------------------------------
        self.timer_wake_component = self.dom_proc_aon.new_component(
            "proc.timer_wake", budget.timer_wakeup_monitor_w
        )
        self.cke_component = self.dom_proc_aon.new_component(
            "proc.cke_drive", budget.cke_drive_w
        )
        self.aon_vr_component = self.dom_aon_vr.new_component(
            "proc.aon_vr_quiescent", budget.aon_vr_quiescent_w
        )
        self.retention_vr_component = self.dom_retention_vr.new_component(
            "proc.retention_vr_quiescent", budget.sram_retention_vr_quiescent_w
        )

        # --- AON IO bank ---------------------------------------------------------------------
        self.aon_io_bank = AONIOBank(self.dom_aon_io)
        for pad_name, share in AON_IO_PAD_SHARES.items():
            self.aon_io_bank.add_pad(
                pad_name,
                leakage_watts=budget.aon_io_bank_w * share,
                wake_capable=pad_name in ("thermal", "pml_rx"),
            )

        # --- S/R SRAMs, Boot SRAM, LLC, compute, SA ----------------------------------------------
        self.sr_srams = SaveRestoreSRAMs(
            self.dom_sr_sram, self.config.context, budget.sr_sram_w
        )
        self.boot_sram = BootSRAM(self.dom_pmu)
        self.llc = LastLevelCache(self.config.llc_bytes)
        self.uncore_component = self.dom_compute.new_component("proc.uncore")
        self.compute = ComputeDomain(
            "proc",
            self.dom_compute,
            self.config.active_model,
            frequency_ghz=self.config.min_core_ghz,
            context_bytes=self.config.context.cores_bytes + self.config.context.graphics_bytes,
        )

        # --- memory controller + protected region -----------------------------------------------
        self.memory_controller = MemoryController("proc.mc", self.board.memory)
        self.mee: Optional[MemoryEncryptionEngine] = None
        self.context_region: Optional[MemoryRegion] = None
        self.context_allocator: Optional[RotatingContextAllocator] = None
        if self.techniques.context_store in (ContextStore.DRAM_SGX, ContextStore.PCM):
            region_base = 1 * GIB
            # PCM rewrites the context every cycle on finite-endurance
            # cells, so its protected region holds several rotation slots
            # (Sec. 6.1's endurance concern; see repro.memory.wear_leveling).
            slots = 4 if self.techniques.context_store is ContextStore.PCM else 1
            data_size = self.config.context.total_bytes * slots
            geometry = TreeGeometry.for_data_size(region_base, data_size)
            cache = MEECache(sets=mee_cache_sets, ways=mee_cache_ways)
            self.mee = MemoryEncryptionEngine(
                self.board.memory, geometry, DEFAULT_MEE_MASTER_KEY, cache
            )
            self.context_region = MemoryRegion(
                region_base, geometry.data_blocks * 64
            )
            self.memory_controller.attach_mee(self.mee, self.context_region)
            if slots > 1:
                self.context_allocator = RotatingContextAllocator(
                    self.context_region.size, self.config.context.total_bytes
                )

        # --- alternative context stores --------------------------------------------------------------
        self.chipset_context_sram: Optional[SRAMDevice] = None
        self.emram: Optional[EMRAMDevice] = None
        if self.techniques.context_store is ContextStore.CHIPSET_SRAM:
            per_byte = (
                budget.sr_sram_w
                / self.config.context.total_bytes
                / SRAMDevice.PROCESS_LEAKAGE_RATIO
            )
            self.chipset_context_sram = SRAMDevice(
                "pch.context_sram",
                capacity_bytes=self.config.context.total_bytes,
                leakage_watts_per_byte=per_byte,
                power_component=self.dom_chipset.new_component("pch.context_sram"),
            )
        elif self.techniques.context_store is ContextStore.EMRAM:
            self.emram = EMRAMDevice(
                capacity_bytes=max(256 * 1024, self.config.context.total_bytes),
                power_component=self.dom_pmu.new_component("proc.emram"),
            )

        self.system_agent = SystemAgent(
            self.memory_controller, self.config.context.system_agent_bytes
        )

        # --- PMU -----------------------------------------------------------------------------------------
        self.pmu = ProcessorPMU(
            self.kernel,
            self.board.fast_clock,
            component=self.dom_pmu.new_component("proc.pmu"),
            drips_power_watts=budget.pmu_ungated_w,
            deep_power_watts=budget.pmu_deep_gated_w,
        )

        # --- chipset ------------------------------------------------------------------------------------------
        frac_bits = fractional_bits_for_precision(
            self.config.fast_xtal_hz, self.config.slow_xtal_hz,
            self.config.timer_precision_ppb,
        )
        int_bits = integer_bits_for_ratio(
            self.config.fast_xtal_hz, self.config.slow_xtal_hz
        )
        self.chipset = Chipset(
            self.kernel,
            self.dom_chipset,
            self.board.fast_clock,
            self.board.slow_clock,
            budget,
            timer_frac_bits=frac_bits,
            timer_int_bits=int_bits,
        )
        self.chipset.attach_thermal_line(self.board.ec.thermal_line)
        # The chipset drives the AON-IO FET's gate terminal through its
        # dedicated spare GPIO (Sec. 5.3); without this binding nothing
        # in the model can ever actuate the FET (lint rule M106).
        self.board.aon_io_fet.bind_gpio(self.chipset.fet_gpio)

        # --- PML -----------------------------------------------------------------------------------------------
        # The chipset side pads live in the chipset AON domain; their power
        # is part of the proc-link slice, so the pads carry zero extra.
        pch_pml_pad = AONIOBank(self.dom_chipset).add_pad("pch_pml", 0.0)
        self.pml = PMLLink(
            self.kernel,
            self.board.fast_clock,
            processor_pad=self.aon_io_bank.pad("pml_tx"),
            chipset_pad=pch_pml_pad,
        )

        # --- bookkeeping -------------------------------------------------------------------------------------------
        self.flow_component = self.dom_flow.new_component("flow.transition")
        self.state = PlatformState.BOOT
        self._record_state()
        self._booted = False
        self.wake_log = []

        # --- observability (repro.obs) -------------------------------------------------------------------------------
        # Construction-time opt-in: platforms built while a tracer is
        # installed hand it to the hot seams; otherwise every seam stays
        # at a single `obs is None` attribute check.
        obs = _active_tracer()
        self.obs = obs
        self.kernel.obs = obs
        self.pmu.obs = obs
        self.chipset.wake_hub.obs = obs
        if obs is not None:
            obs.attach_platform(self)

    # ------------------------------------------------------------------ boot

    def boot(self) -> None:
        """One-time platform bring-up.

        Runs the Step calibration when WAKE-UP-OFF is enabled ("carried
        out only once after each reset", Sec. 4.1.3), initializes the
        protected region, and lands in the Active state.
        """
        if self._booted:
            raise FlowError("platform already booted")
        if self.techniques.wake_up_off:
            self.chipset.run_step_calibration()
        if self.mee is not None:
            self.mee.initialize_region()
            self.system_agent.configure_fsms(
                sa_base_addr=self.context_region.base,
                compute_base_addr=self.context_region.base
                + self.config.context.system_agent_bytes,
            )
        if self.techniques.context_store is not ContextStore.DRAM_SGX:
            # non-MEE stores still need FSM base addresses for the SRAM paths
            self.system_agent.configure_fsms(0, self.config.context.system_agent_bytes)
        if self.techniques.context_store is ContextStore.PROCESSOR_SRAM:
            self.boot_sram.sram.power_off()  # baseline has no Boot FSM
        self.apply_active_state()
        self._booted = True

    @property
    def booted(self) -> bool:
        return self._booted

    # ------------------------------------------------------- state application

    def apply_active_state(self) -> None:
        """Set every component to its C0 (display-off) level."""
        self.tree.suspend_updates()
        try:
            self.state = PlatformState.ACTIVE
            if not self.rail_compute.regulator.enabled:
                self.rail_compute.turn_on()
            self.dom_compute.power_on()
            self.uncore_component.set_power(self.config.active_model.uncore_watts)
            self.compute.start()
            self.llc.power_on()
            if self.memory_controller.in_self_refresh:
                self.memory_controller.exit_self_refresh()
            if self.board.is_pcm_main_memory:
                self.board.memory.set_interface_active(True)
            self.pmu.set_mode(ProcessorPMU.MODE_ACTIVE)
            budget = self.config.budget
            self.timer_wake_component.set_power(budget.timer_wakeup_monitor_w)
            self.chipset.monitor_at_fast_clock()
            self.chipset.resume_proc_link()
            # VR quiescents are on while awake in every configuration: the
            # techniques only remove them across the idle window.
            self.aon_vr_component.set_power(budget.aon_vr_quiescent_w)
            self.retention_vr_component.set_power(budget.sram_retention_vr_quiescent_w)
            self.cke_component.set_power(
                0.0 if self.board.is_pcm_main_memory else budget.cke_drive_w
            )
            # The S/R SRAMs are used only across the idle window; while the
            # platform is awake they are power-gated in every configuration,
            # which keeps Active power identical between baseline and CTX
            # modes (their contents have served their purpose by now).
            self.sr_srams.power_off()
            if self.chipset_context_sram is not None:
                self.chipset_context_sram.power_off()
            self.flow_component.set_power(0.0)
        finally:
            self.tree.resume_updates()
        self._record_state()

    def apply_drips_state(self) -> None:
        """Set every component to its DRIPS/ODRIPS level.

        The flows call this once their side effects (context saved, DRAM
        in self-refresh, crystal off, FET open, ...) are done; this method
        only settles the *power levels* that persist through the idle
        residency.
        """
        budget = self.config.budget
        techniques = self.techniques
        self.tree.suspend_updates()
        try:
            self.state = PlatformState.DRIPS
            self.flow_component.set_power(0.0)
            # compute side fully off
            self.compute.stop()
            self.uncore_component.set_power(0.0)
            self.dom_compute.power_off()
            if self.rail_compute.regulator.enabled:
                self.rail_compute.turn_off()
            # PMU gating depth
            if techniques.aon_io_gate:
                self.pmu.set_mode(ProcessorPMU.MODE_DEEP)
            else:
                self.pmu.set_mode(ProcessorPMU.MODE_DRIPS)
            # wake monitoring location
            if techniques.wake_up_off:
                self.timer_wake_component.set_power(0.0)
                self.chipset.monitor_at_slow_clock()
            else:
                self.timer_wake_component.set_power(budget.timer_wakeup_monitor_w)
                self.chipset.monitor_at_fast_clock()
            # chipset processor-facing links
            if techniques.aon_io_gate:
                self.chipset.idle_proc_link()
            else:
                self.chipset.resume_proc_link()
            # CKE drive: needed for DRAM self-refresh, obsolete with PCM
            if self.board.is_pcm_main_memory:
                self.cke_component.set_power(0.0)
                self.board.memory.set_interface_active(False)
            else:
                self.cke_component.set_power(budget.cke_drive_w)
            # AON-rail VR: off only when all three techniques strip the rail
            if techniques.is_full_odrips:
                self.aon_vr_component.set_power(0.0)
            else:
                self.aon_vr_component.set_power(budget.aon_vr_quiescent_w)
            # retention-rail VR: off whenever the context left the S/R SRAMs
            if techniques.ctx_offloaded:
                self.retention_vr_component.set_power(0.0)
            else:
                self.retention_vr_component.set_power(
                    budget.sram_retention_vr_quiescent_w
                )
        finally:
            self.tree.resume_updates()
        self._record_state()

    def set_transition_state(self, state: PlatformState) -> None:
        """Mark the platform as executing a flow (Entry or Exit)."""
        if not state.in_transition:
            raise FlowError(f"{state} is not a transition state")
        self.state = state
        self._record_state()

    def _record_state(self) -> None:
        self.trace.record(self.kernel.now, STATE_CHANNEL, self.state.value)

    def record_wake(self, event) -> None:
        self.wake_log.append(event)
        self.trace.record(self.kernel.now, WAKE_CHANNEL, str(event))

    # ---------------------------------------------------------- flow power helper

    def set_total_power(self, watts: float) -> None:
        """Pin total platform power to ``watts`` using the flow component.

        The flows use this to hold the measured average power levels of
        the Entry/Exit states (Sec. 7) while their side effects execute.
        """
        base = self.tree.platform_power() - self.flow_component.power_watts
        self.flow_component.set_power(max(0.0, watts - base))

    # ---------------------------------------------------- lint introspection

    def fsm_description(self) -> Dict[str, object]:
        """Declared platform-state machine, for the static model verifier."""
        from repro.io.wake import WakeEventType
        from repro.system.states import FSM_ACTIVE, FSM_INITIAL, FSM_TRANSITIONS, FSM_WAKE_RECEPTIVE

        return {
            "states": tuple(PlatformState),
            "initial": FSM_INITIAL,
            "active": FSM_ACTIVE,
            "transitions": FSM_TRANSITIONS,
            "wake_receptive": FSM_WAKE_RECEPTIVE,
            "wake_event_types": tuple(WakeEventType),
        }

    def flow_descriptions(self) -> Dict[str, tuple]:
        """Declared entry/exit flow specs, for the static model verifier."""
        from repro.system.flows import ENTRY_FLOW_SPEC, EXIT_FLOW_SPEC

        return {"entry": ENTRY_FLOW_SPEC, "exit": EXIT_FLOW_SPEC}

    def observability_description(self) -> Dict[str, object]:
        """Declared flow-step span labels, for the span-discipline rule."""
        from repro.system.flows import FLOW_SPAN_TABLE

        return {
            "flow_span_labels": {
                name: tuple(labels) for name, labels in FLOW_SPAN_TABLE.items()
            }
        }

    def safety_description(self) -> Dict[str, object]:
        """Declared safety couplings, for the model checker (repro.check)."""
        from repro.system.states import CLOCK_REQUIREMENTS, WAKE_SOURCE_DOMAINS

        return {
            "clock_requirements": tuple(CLOCK_REQUIREMENTS),
            "wake_sources": tuple(WAKE_SOURCE_DOMAINS),
        }

    def macro_description(self) -> Dict[str, object]:
        """Declared macro-stepping energy-ledger coverage (lint rule M308).

        The macro executor replays compiled cycles per rail channel; a
        rail powered in the model but missing here would silently drop
        energy from compiled segments, so both the runtime balance check
        and the lint rule compare against this declaration.
        """
        from repro.sim.macro import MACRO_LEDGER_RAILS

        return {"ledger_rails": MACRO_LEDGER_RAILS}

    def budget_description(self) -> Dict[str, object]:
        """Declared quantitative budgets, for the priced-timed analysis.

        Wake-latency budgets, residency guarantees, paper break-even
        constants and the per-cycle energy golden for every deep power
        state, assembled by :mod:`repro.system.budget` from the system,
        chipset and power-tree layers.  Consumed by rules C601-C605 of
        ``repro check --budgets``.
        """
        from repro.system.budget import platform_budget_description

        return platform_budget_description(self)

    # ------------------------------------------------------------------ queries

    def platform_power(self) -> float:
        """Instantaneous battery-side platform power in watts."""
        return self.tree.platform_power()

    def power_breakdown(self) -> Dict[str, float]:
        """Per-component battery-side watts (Fig. 1(b) view)."""
        return self.tree.attributed_breakdown()

    def next_timer_target(self, delay_seconds: float) -> int:
        """TSC count ``delay_seconds`` from now (for scheduling wakes)."""
        if delay_seconds <= 0:
            raise ConfigError("wake delay must be positive")
        now_count = self.pmu.tsc.read(self.kernel.now)
        cycles = round(delay_seconds * self.board.fast_clock.effective_hz)
        return now_count + cycles

    def set_core_frequency(self, freq_ghz: float) -> None:
        """Fig. 6(b) lever."""
        self.compute.set_frequency(freq_ghz)

    def set_dram_frequency(self, rate_hz: float) -> None:
        """Fig. 6(c) lever (no-op for PCM main memory)."""
        if hasattr(self.board.memory, "set_frequency"):
            self.board.memory.set_frequency(rate_hz)
