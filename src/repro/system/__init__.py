"""Platform integration: board, Skylake platform builder, DRIPS/ODRIPS flows.

:class:`SkylakePlatform` wires every substrate together according to a
:class:`~repro.config.PlatformConfig` and a
:class:`~repro.core.techniques.TechniqueSet`, reproducing Fig. 1(a) with
the Fig. 3(a) additions.  :class:`FlowController` implements the entry and
exit flows of Sec. 2.2 with the ODRIPS extensions of Secs. 4-6.
"""

from repro.system.states import PlatformState
from repro.system.board import Board
from repro.system.skylake import SkylakePlatform
from repro.system.flows import FlowController

__all__ = ["Board", "FlowController", "PlatformState", "SkylakePlatform"]
