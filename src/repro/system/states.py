"""Platform-level power states of the connected-standby cycle (Fig. 2).

The four states of Equation 1: Active (C0 with display off), Entry,
DRIPS (or ODRIPS), and Exit.  Residency in each is what the average-power
model weighs.
"""

from __future__ import annotations

import enum


class PlatformState(enum.Enum):
    """Where the platform is in the periodic connected-standby cycle."""

    BOOT = "boot"
    ACTIVE = "active"     # C0, display off, kernel maintenance
    ENTRY = "entry"       # executing the DRIPS entry flow
    DRIPS = "drips"       # deepest runtime idle (baseline or ODRIPS)
    EXIT = "exit"         # executing the DRIPS exit flow

    @property
    def is_idle(self) -> bool:
        return self is PlatformState.DRIPS

    @property
    def in_transition(self) -> bool:
        return self in (PlatformState.ENTRY, PlatformState.EXIT)


#: Trace channel names the platform publishes.
STATE_CHANNEL = "state"
POWER_CHANNEL = "platform"
WAKE_CHANNEL = "wake"
FLOW_CHANNEL = "flow"  # step-by-step log of the entry/exit flows
