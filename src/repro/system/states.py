"""Platform-level power states of the connected-standby cycle (Fig. 2).

The four states of Equation 1: Active (C0 with display off), Entry,
DRIPS (or ODRIPS), and Exit.  Residency in each is what the average-power
model weighs.
"""

from __future__ import annotations

import enum

from repro.io.wake import WakeEventType


class PlatformState(enum.Enum):
    """Where the platform is in the periodic connected-standby cycle."""

    BOOT = "boot"
    ACTIVE = "active"     # C0, display off, kernel maintenance
    ENTRY = "entry"       # executing the DRIPS entry flow
    DRIPS = "drips"       # deepest runtime idle (baseline or ODRIPS)
    EXIT = "exit"         # executing the DRIPS exit flow

    @property
    def is_idle(self) -> bool:
        return self is PlatformState.DRIPS

    @property
    def in_transition(self) -> bool:
        return self in (PlatformState.ENTRY, PlatformState.EXIT)


#: Trace channel names the platform publishes.
STATE_CHANNEL = "state"
POWER_CHANNEL = "platform"
WAKE_CHANNEL = "wake"
FLOW_CHANNEL = "flow"  # step-by-step log of the entry/exit flows


# --- declared FSM structure (introspection hook for repro.lint) -------------
#
# The flows below sequence the platform through exactly these edges; the
# static model verifier checks reachability, exit paths and wake-event
# coverage against this declaration, so keep it in sync with
# FlowController when adding states.

#: State the platform boots into.
FSM_INITIAL = PlatformState.BOOT

#: The state every cycle must be able to return to.
FSM_ACTIVE = PlatformState.ACTIVE

#: Legal state transitions of the connected-standby cycle (Fig. 2).
FSM_TRANSITIONS = {
    PlatformState.BOOT: (PlatformState.ACTIVE,),
    PlatformState.ACTIVE: (PlatformState.ENTRY,),
    PlatformState.ENTRY: (PlatformState.DRIPS,),
    PlatformState.DRIPS: (PlatformState.EXIT,),
    PlatformState.EXIT: (PlatformState.ACTIVE,),
}

#: States that must react to wake events, and the event types they
#: handle.  DRIPS is the only wake-receptive state: the PMU (baseline)
#: or the chipset wake hub (ODRIPS) must field every wake-event type, or
#: a wake is silently lost and the platform idles forever.
FSM_WAKE_RECEPTIVE = {
    PlatformState.DRIPS: frozenset(WakeEventType),
}


# --- declared safety couplings (hook for repro.check) ------------------------
#
# The exhaustive model checker composes the FSM with the flow specs and
# verifies these couplings in every reachable state; keep them in sync
# with the platform builder when renaming domains or clocks.

#: Clock source each *live* (powered and un-quiesced) domain depends on.
#: A flow that gates the clock while the domain still executes — or
#: resumes the domain before restoring the clock — is the AgileWatts
#: class of idle-sequencing bug the checker's C201 invariant catches.
CLOCK_REQUIREMENTS = (
    ("proc.compute", "clk-24mhz"),   # cores/uncore execute off the fast clock
    ("pch.aon", "clk-32khz"),        # wake hub + dual timer tick on the RTC
)

#: Domains able to field a wake event while the platform idles.  At
#: least one must stay powered in every idle state, or a wake is lost
#: and the platform never exits DRIPS (C204).
WAKE_SOURCE_DOMAINS = ("proc.pmu", "pch.aon")
