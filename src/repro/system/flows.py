"""DRIPS / ODRIPS entry and exit flows (Sec. 2.2 + Secs. 4-6).

The entry flow executes the paper's six actions — LLC flush, compute-VR
off, context save, DRAM self-refresh, clock shutdown, VR/PMU gating —
with the ODRIPS extensions spliced in at the steps the paper describes:
timer migration before the clock shutdown (Sec. 4.1.2), IO handoff and
FET gating at the end (Sec. 5.2), and the MEE context transfer replacing
the SRAM save (Sec. 6.2).

Flows run as kernel processes; durations that the mechanics determine
(LLC flush bandwidth, 32 kHz edge waits, MEE bulk-transfer latency) come
from the models, while overall Entry/Exit power levels are held at the
measured averages of Sec. 7.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.techniques import ContextStore
from repro.errors import FlowError
from repro.io.pml import PMLMessage
from repro.io.wake import WakeEvent, WakeEventType
from repro.obs.tracer import EDGE_FOLLOWUP, EDGE_TRIGGER, FLOW_TRACK
from repro.sim.process import Process
from repro.system.states import FLOW_CHANNEL, PlatformState


@dataclass(frozen=True)
class FlowStepSpec:
    """Declared shape of one flow step (introspection hook for repro.lint).

    ``requires`` names power domains that must still be delivering when
    the step runs; ``gates_off``/``gates_on`` name domains the step
    power-gates or restores.  The static model verifier checks that every
    named domain exists and that no step runs against a domain an
    earlier step already gated off.

    The remaining fields drive the exhaustive model checker
    (:mod:`repro.check`): ``clocks_off``/``clocks_on`` name clock sources
    the step gates or restores, and ``halts``/``resumes`` name domains
    the step quiesces or brings back to execution.  A domain that is
    powered and not halted is *live*; the checker's clock-coupling
    invariant demands that a live domain's clock source is never gated.
    """

    label: str
    requires: Tuple[str, ...] = ()
    gates_off: Tuple[str, ...] = ()
    gates_on: Tuple[str, ...] = ()
    clocks_off: Tuple[str, ...] = ()
    clocks_on: Tuple[str, ...] = ()
    halts: Tuple[str, ...] = ()
    resumes: Tuple[str, ...] = ()


#: Declarative mirror of :meth:`FlowController._entry_flow` (Sec. 2.2
#: order with the ODRIPS insertions); labels match the ``_step`` calls.
ENTRY_FLOW_SPEC: Tuple[FlowStepSpec, ...] = (
    FlowStepSpec("entry:compute-quiesce", requires=("proc.compute",), halts=("proc.compute",)),
    FlowStepSpec("entry:llc-flush", requires=("memory",)),
    FlowStepSpec("entry:context-save", requires=("memory",)),
    FlowStepSpec("entry:dram-self-refresh", requires=("memory",)),
    FlowStepSpec("entry:clock-shutdown", clocks_off=("clk-24mhz",)),
    FlowStepSpec("entry:io-handoff", requires=("proc.aon_io",), gates_off=("proc.aon_io",)),
    FlowStepSpec("entry:drips", gates_off=("proc.compute",)),
)

#: Declarative mirror of :meth:`FlowController._exit_flow`.
EXIT_FLOW_SPEC: Tuple[FlowStepSpec, ...] = (
    FlowStepSpec("exit:wake"),
    FlowStepSpec("exit:xtal-restart", clocks_on=("clk-24mhz",)),
    FlowStepSpec("exit:io-restore", gates_on=("proc.aon_io",)),
    FlowStepSpec("exit:context-restore", requires=("memory",)),
    FlowStepSpec("exit:vr-ramp", gates_on=("proc.compute",)),
    FlowStepSpec("exit:active", requires=("proc.compute",), resumes=("proc.compute",)),
)

#: Span labels each instrumented flow opens (and closes) through
#: :meth:`FlowController._step`, declared as explicit literals so the
#: span-discipline lint rule (M306) checks them against the flow specs
#: instead of a tautological derivation.
FLOW_SPAN_TABLE: Dict[str, Tuple[str, ...]] = {
    "entry": (
        "entry:compute-quiesce",
        "entry:llc-flush",
        "entry:context-save",
        "entry:dram-self-refresh",
        "entry:clock-shutdown",
        "entry:io-handoff",
        "entry:drips",
    ),
    "exit": (
        "exit:wake",
        "exit:xtal-restart",
        "exit:io-restore",
        "exit:context-restore",
        "exit:vr-ramp",
        "exit:active",
    ),
}


@dataclass
class FlowStats:
    """Measured flow latencies (for the Sec. 6.3 / Sec. 8 latency checks)."""

    entry_latencies_ps: List[int] = field(default_factory=list)
    exit_latencies_ps: List[int] = field(default_factory=list)
    ctx_save_latencies_ps: List[int] = field(default_factory=list)
    ctx_restore_latencies_ps: List[int] = field(default_factory=list)

    def last_entry_us(self) -> float:
        return self.entry_latencies_ps[-1] / 1e6 if self.entry_latencies_ps else 0.0

    def last_exit_us(self) -> float:
        return self.exit_latencies_ps[-1] / 1e6 if self.exit_latencies_ps else 0.0


class FlowController:
    """Sequences the platform through ENTRY -> DRIPS -> EXIT -> ACTIVE."""

    #: On-chip S/R SRAM save/restore time in the baseline flow.
    SRAM_SAVE_PS = 2_000_000        # 2 us
    #: Chipset-SRAM context transfer bandwidth (Sec. 6.1 alternative 2).
    CHIPSET_SRAM_BANDWIDTH = 4.0e9  # bytes/s over the internal link

    def __init__(self, platform) -> None:
        self.platform = platform
        self.stats = FlowStats()
        self._active_callback: Optional[Callable[[WakeEvent], None]] = None
        self._in_flow = False
        self._saved_sa_blob: Optional[bytes] = None
        self._saved_compute_blob: Optional[bytes] = None
        #: Tracer the platform was built under (None = uninstrumented).
        self.obs = getattr(platform, "obs", None)
        self._step_span = None
        self._flow_span = None
        #: Wake event of the current standby cycle (causal root for the
        #: exit flow it triggers and the entry flow that closes the cycle).
        self._last_wake_event: Optional[WakeEvent] = None
        platform.pmu.set_wake_callback(self._on_pmu_timer_wake)
        platform.chipset.wake_hub.set_wake_callback(self._on_hub_wake)

    # --- wiring ---------------------------------------------------------------

    def set_active_callback(self, callback: Callable[[WakeEvent], None]) -> None:
        """``callback(event)`` fires when an exit flow reaches Active."""
        self._active_callback = callback

    def _memory_write_bandwidth(self) -> float:
        """Sequential write bandwidth of the main memory device."""
        memory = self.platform.board.memory
        if hasattr(memory, "bandwidth_bytes_per_s"):
            return memory.bandwidth_bytes_per_s()
        return memory.write_bandwidth_bytes_per_s

    def _step(self, label: str) -> None:
        """Log a flow step on the trace (tests assert the Sec. 2.2 order).

        With a tracer attached, each step closes the previous step's span
        and opens its own — flow steps tile the flow, so one span per
        ``FlowStepSpec`` falls out of the label sequence.
        """
        self.platform.trace.record(self.platform.kernel.now, FLOW_CHANNEL, label)
        obs = self.obs
        if obs is not None:
            now = self.platform.kernel.now
            if self._step_span is not None:
                obs.end(self._step_span, now)
            self._step_span = obs.begin(label, now)

    def _flow_begin(
        self, name: str, cause: Optional[WakeEvent] = None, role: str = EDGE_TRIGGER
    ) -> None:
        """Open the whole-flow span (no-op without a tracer).

        ``cause`` threads the causal edge: the wake event that triggered
        an exit flow (``EDGE_TRIGGER``) or whose standby cycle the next
        entry flow closes (``EDGE_FOLLOWUP``).
        """
        obs = self.obs
        if obs is not None:
            self._flow_span = obs.begin(
                name, self.platform.kernel.now, track=FLOW_TRACK
            )
            if cause is not None:
                obs.flow_rooted(
                    self._flow_span,
                    cause.event_type.value,
                    cause.time_ps,
                    detail=cause.detail,
                    role=role,
                )

    def _flow_end(self) -> None:
        """Close the trailing step span and the whole-flow span."""
        obs = self.obs
        if obs is None:
            return
        now = self.platform.kernel.now
        if self._step_span is not None:
            obs.end(self._step_span, now)
            self._step_span = None
        if self._flow_span is not None:
            obs.end(self._flow_span, now)
            self._flow_span = None

    # --- entry ------------------------------------------------------------------

    def request_drips(self) -> None:
        """Begin the entry flow.  A timer event must be scheduled first."""
        p = self.platform
        if p.state is not PlatformState.ACTIVE:
            raise FlowError(f"entry requested from state {p.state}")
        if p.pmu.wake_target is None:
            raise FlowError("no timer event scheduled; refusing to enter DRIPS")
        if self._in_flow:
            raise FlowError("a flow is already in progress")
        self._in_flow = True
        Process(p.kernel, self._entry_flow(), name="drips-entry")

    def _entry_flow(self):
        p = self.platform
        trans = p.config.transitions
        techniques = p.techniques
        t0 = p.kernel.now
        self._flow_begin("drips-entry", cause=self._last_wake_event, role=EDGE_FOLLOWUP)
        p.set_transition_state(PlatformState.ENTRY)

        # compute domains quiesce first: the cores entered their own idle
        # states before the package flow begins (Sec. 2.2), so the whole
        # entry flow runs at the measured Entry power level
        p.compute.stop()
        p.uncore_component.set_power(0.0)
        p.set_total_power(trans.entry_power_watts)
        self._step("entry:compute-quiesce")

        # (1) flush the LLC into DRAM
        self._step("entry:llc-flush")
        p.llc.mark_typical_dirty()
        flush_ps = p.llc.flush_latency_ps(self._memory_write_bandwidth())
        yield flush_ps
        p.llc.flush()
        p.llc.power_off()

        # (3) save the processor context
        self._step("entry:context-save")
        yield from self._save_context()

        # (4) DRAM into self-refresh via CKE (PCM needs none, Sec. 8.3)
        self._step("entry:dram-self-refresh")
        if not p.board.is_pcm_main_memory:
            p.memory_controller.enter_self_refresh()

        # pad the baseline portion of the flow to the measured entry latency
        p.set_total_power(trans.entry_power_watts)
        elapsed = p.kernel.now - t0
        if elapsed < trans.entry_latency_ps:
            yield trans.entry_latency_ps - elapsed

        # (5) clock shutdown; with WAKE-UP-OFF the timer migrates first
        self._step("entry:clock-shutdown")
        if techniques.wake_up_off:
            yield from self._migrate_timer()

        # (6) IO handoff + FET gating (AON-IO-GATE), then PMU gating
        if techniques.aon_io_gate:
            self._step("entry:io-handoff")
            yield from self._handoff_ios()

        # settle the DRIPS power levels and arm the wake machinery
        wake_target = p.pmu.wake_target
        self._step("entry:drips")
        p.apply_drips_state()
        if techniques.wake_up_off:
            p.chipset.wake_hub.take_ownership(wake_target)
        else:
            p.pmu.arm_baseline_monitor()
        self.stats.entry_latencies_ps.append(p.kernel.now - t0)
        self._in_flow = False
        self._flow_end()
        if self.obs is not None:
            # bounded: entry latencies accrue once per standby cycle, and
            # week-scale macro horizons run millions of cycles (S408)
            self.obs.metrics.histogram("flow.entry_latency_us", bounded=True).observe(
                (p.kernel.now - t0) / 1e6
            )

    def _save_context(self):
        p = self.platform
        trans = p.config.transitions
        store = p.techniques.context_store
        self._saved_sa_blob = p.system_agent.capture_context()
        self._saved_compute_blob = p.compute.capture_context()
        sa_blob, compute_blob = self._saved_sa_blob, self._saved_compute_blob

        if store is ContextStore.PROCESSOR_SRAM:
            p.sr_srams.power_on()
            p.sr_srams.save_sa_context(sa_blob)
            p.sr_srams.save_compute_context(compute_blob)
            yield self.SRAM_SAVE_PS
            p.sr_srams.enter_retention()
            return

        if store in (ContextStore.DRAM_SGX, ContextStore.PCM):
            if p.context_allocator is not None:
                # PCM: rotate the context through the region's slots so no
                # cell takes every cycle's write (wear leveling)
                offset = p.context_allocator.allocate()
                base = p.context_region.base + offset
                p.system_agent.configure_fsms(
                    base, base + p.config.context.system_agent_bytes
                )
            p.set_total_power(trans.ctx_save_power_w)
            t0 = p.kernel.now
            latency = p.system_agent.sa_fsm_flush(sa_blob)
            latency += p.system_agent.llc_fsm_flush(compute_blob)
            yield latency
            self.stats.ctx_save_latencies_ps.append(p.kernel.now - t0)
            # bootstrap state into the Boot SRAM, then kill the engines
            assert p.mee is not None
            mee_state = p.mee.power_off()
            p.boot_sram.store(
                p.pmu.export_state(), p.memory_controller.export_state(), mee_state
            )
            p.memory_controller.power_off()
            p.sr_srams.power_off()
            return

        if store is ContextStore.CHIPSET_SRAM:
            sram = p.chipset_context_sram
            assert sram is not None
            sram.power_on()
            sram.write(0, sa_blob)
            sram.write(len(sa_blob), compute_blob)
            total = len(sa_blob) + len(compute_blob)
            yield round(total / self.CHIPSET_SRAM_BANDWIDTH * 1e12)
            sram.enter_retention()
            p.boot_sram.store(
                p.pmu.export_state(), p.memory_controller.export_state(), None
            )
            p.sr_srams.power_off()
            return

        if store is ContextStore.EMRAM:
            emram = p.emram
            assert emram is not None
            t0 = p.kernel.now
            latency = emram.write(0, sa_blob)
            latency += emram.write(len(sa_blob), compute_blob)
            yield latency
            self.stats.ctx_save_latencies_ps.append(p.kernel.now - t0)
            emram.power_off()  # non-volatile: supply can go away entirely
            p.boot_sram.store(
                p.pmu.export_state(), p.memory_controller.export_state(), None
            )
            p.sr_srams.power_off()
            return

        raise FlowError(f"unhandled context store {store}")

    def _migrate_timer(self):
        """Sec. 4.1.2: copy the main timer to the chipset's fast timer,
        switch to the slow timer on a 32 kHz edge, kill the fast crystal."""
        p = self.platform
        trans = p.config.transitions
        message = PMLMessage("timer-value", payload_words=2)
        compensation = p.pml.to_chipset.transfer_cycles(message)
        value = p.pmu.tsc.freeze(p.kernel.now)
        yield p.pml.to_chipset.transfer_latency_ps(message)
        p.chipset.dual_timer.load_fast(p.kernel.now, value, compensation)
        # wait for the rising edge of the 32 kHz clock (Fig. 3(b))
        p.set_total_power(trans.timer_migration_entry_power_w)
        edge = p.chipset.dual_timer.next_slow_edge(p.kernel.now)
        yield edge - p.kernel.now
        p.chipset.dual_timer.switch_to_slow(p.kernel.now)
        # "At this point, the 24MHz clock can be gated and the crystal
        # oscillator can be turned-off."
        p.board.fast_xtal.disable(p.kernel.now)

    def _handoff_ios(self):
        """Sec. 5.2: quiesce the AON IOs, hand responsibility to the
        chipset, open the on-board FET."""
        p = self.platform
        trans = p.config.transitions
        p.set_total_power(trans.io_handoff_entry_power_w)
        p.aon_io_bank.quiesce()
        yield trans.io_handoff_entry_ps
        p.chipset.arm_thermal_monitor()
        p.chipset.drive_fet(False)
        p.dom_aon_io.power_off()

    # --- shallow idle (C2..C8, no DRIPS machinery) ---------------------------------

    def request_shallow_idle(self, state, wake_delay_s: float) -> None:
        """Enter an intermediate C-state for a short idle period.

        Shallow states keep every AON structure powered and skip the
        DRIPS machinery entirely: no context save, no timer migration, no
        IO gating — just a reduced power level and the state's exit
        latency.  This is what the PMU picks when LTR/TNTE forbid DRIPS
        (Sec. 2.2); the runner uses it for idles below the break-even.
        """
        from repro.processor.cstates import (
            CSTATE_EXIT_LATENCY_PS,
            CSTATE_POWER_WATTS,
            CState,
        )

        p = self.platform
        if p.state is not PlatformState.ACTIVE:
            raise FlowError(f"shallow idle requested from state {p.state}")
        if state in (CState.C0, CState.C10):
            raise FlowError("shallow idle is for intermediate C-states only")
        if wake_delay_s <= 0:
            raise FlowError("wake delay must be positive")
        if self._in_flow:
            raise FlowError("a flow is already in progress")
        self._in_flow = True
        Process(
            p.kernel,
            self._shallow_idle_flow(
                state,
                CSTATE_POWER_WATTS[state],
                CSTATE_EXIT_LATENCY_PS[state],
                wake_delay_s,
            ),
            name=f"shallow-{state.name}",
        )

    def _shallow_idle_flow(self, state, power_watts, exit_latency_ps, wake_delay_s):
        from repro.processor.cstates import CState

        p = self.platform
        self._flow_begin(f"shallow-{state.name}")
        self._step(f"shallow:{state.name}")
        p.set_transition_state(PlatformState.ENTRY)
        p.compute.stop()
        p.uncore_component.set_power(0.0)
        # C6 and deeper opportunistically put DRAM into self-refresh
        if state >= CState.C6 and not p.board.is_pcm_main_memory:
            p.memory_controller.enter_self_refresh()
        # shallow entries are fast: a few microseconds of clock/power gating
        yield 5_000_000
        p.state = PlatformState.DRIPS  # residency-wise it is "idle"
        p._record_state()
        p.set_total_power(power_watts)
        yield round(wake_delay_s * 1e12)
        p.set_transition_state(PlatformState.EXIT)
        p.set_total_power(max(power_watts, 0.3))
        yield exit_latency_ps
        self._step("shallow:active")
        p.apply_active_state()
        self._in_flow = False
        self._flow_end()
        if self._active_callback is not None:
            self._active_callback(
                WakeEvent(WakeEventType.TIMER, p.kernel.now, detail=f"shallow-{state.name}")
            )

    # --- wake handling -----------------------------------------------------------

    def _on_pmu_timer_wake(self, target: int) -> None:
        event = WakeEvent(WakeEventType.TIMER, self.platform.kernel.now, timer_target=target)
        self._begin_exit(event)

    def _on_hub_wake(self, event: WakeEvent) -> None:
        self._begin_exit(event)

    def external_wake(self, event_type: WakeEventType, detail: str = "") -> None:
        """Deliver an external trigger (network packet, user input)."""
        p = self.platform
        if p.state is not PlatformState.DRIPS:
            return  # platform is awake or transitioning; nothing to do
        if p.techniques.wake_up_off:
            p.chipset.wake_hub.external_wake(event_type, detail)
        else:
            p.pmu.disarm_monitor()
            self._begin_exit(WakeEvent(event_type, p.kernel.now, detail=detail))

    def _begin_exit(self, event: WakeEvent) -> None:
        p = self.platform
        if p.state is not PlatformState.DRIPS:
            raise FlowError(f"wake event in state {p.state}")
        if self._in_flow:
            raise FlowError("a flow is already in progress")
        self._in_flow = True
        self._last_wake_event = event
        p.record_wake(event)
        Process(p.kernel, self._exit_flow(event), name="drips-exit")

    def _exit_flow(self, event: WakeEvent):
        p = self.platform
        trans = p.config.transitions
        techniques = p.techniques
        t0 = p.kernel.now
        self._flow_begin("drips-exit", cause=event)
        p.set_transition_state(PlatformState.EXIT)
        self._step("exit:wake")

        # ODRIPS: bring the fast clock back and restore the timer first
        if techniques.wake_up_off:
            self._step("exit:xtal-restart")
            p.board.fast_xtal.enable(p.kernel.now)
            yield p.board.fast_xtal.startup_time_ps
            edge = p.chipset.dual_timer.next_slow_edge(p.kernel.now)
            yield edge - p.kernel.now
            p.chipset.dual_timer.switch_to_fast(p.kernel.now)
            p.set_total_power(trans.timer_restore_exit_power_w)
            yield trans.timer_restore_exit_ps
            message = PMLMessage("timer-value", payload_words=2)
            compensation = p.pml.to_processor.transfer_cycles(message)
            restored = p.chipset.dual_timer.value_for_processor(
                p.kernel.now, compensation
            )
            p.pmu.tsc.thaw(p.kernel.now, restored)

        # ODRIPS: close the FET and re-initialize the AON IO bank
        if techniques.aon_io_gate:
            self._step("exit:io-restore")
            p.chipset.drive_fet(True)
            p.dom_aon_io.power_on()
            p.chipset.disarm_thermal_monitor()
            p.set_total_power(trans.io_restore_exit_power_w)
            yield trans.io_restore_exit_ps

        # context restore; baseline stores count toward the baseline budget
        self._step("exit:context-restore")
        baseline_consumed = yield from self._restore_context(trans)

        # baseline exit flow (VR ramp, SA/core un-gating, ...)
        self._step("exit:vr-ramp")
        p.set_total_power(trans.exit_power_watts)
        if baseline_consumed < trans.exit_latency_ps:
            yield trans.exit_latency_ps - baseline_consumed

        self._step("exit:active")
        p.apply_active_state()
        self.stats.exit_latencies_ps.append(p.kernel.now - t0)
        self._in_flow = False
        self._flow_end()
        if self.obs is not None:
            # the paper's wake-to-active latency (Sec. 6.3 / Sec. 8);
            # bounded: one observation per cycle, unbounded horizons (S408)
            self.obs.metrics.histogram("flow.exit_latency_us", bounded=True).observe(
                (p.kernel.now - t0) / 1e6
            )
        if self._active_callback is not None:
            self._active_callback(event)

    def _restore_context(self, trans):
        p = self.platform
        store = p.techniques.context_store
        sa_len = len(self._saved_sa_blob) if self._saved_sa_blob else 0
        compute_len = len(self._saved_compute_blob) if self._saved_compute_blob else 0
        if not sa_len or not compute_len:
            raise FlowError("exit flow with no saved context")
        baseline_consumed = 0

        if store is ContextStore.PROCESSOR_SRAM:
            p.memory_controller.exit_self_refresh()
            p.sr_srams.exit_retention()
            yield self.SRAM_SAVE_PS
            baseline_consumed = self.SRAM_SAVE_PS
            sa_blob = p.sr_srams.load_sa_context(sa_len)
            compute_blob = p.sr_srams.load_compute_context(compute_len)
        elif store in (ContextStore.DRAM_SGX, ContextStore.PCM):
            # Sec. 6.2 exit: Boot FSM restores PMU, MC, MEE; DRAM leaves
            # self-refresh; then the FSMs read the context back.
            p.set_total_power(trans.ctx_restore_power_w)
            yield trans.boot_fsm_restore_ps
            record = p.boot_sram.load()
            p.pmu.import_state(record["pmu"])
            p.memory_controller.power_on()
            p.memory_controller.import_state(record["controller"])
            assert p.mee is not None
            p.mee.power_on(record["mee"])
            if not p.board.is_pcm_main_memory:
                p.memory_controller.exit_self_refresh()
            t0 = p.kernel.now
            sa_blob, latency = p.system_agent.sa_fsm_restore(sa_len)
            compute_blob, more = p.system_agent.llc_fsm_restore(compute_len)
            yield latency + more
            self.stats.ctx_restore_latencies_ps.append(p.kernel.now - t0)
            p.sr_srams.power_on()
        elif store is ContextStore.CHIPSET_SRAM:
            p.memory_controller.exit_self_refresh()
            sram = p.chipset_context_sram
            assert sram is not None
            sram.exit_retention()
            total = sa_len + compute_len
            yield round(total / self.CHIPSET_SRAM_BANDWIDTH * 1e12)
            sa_blob = sram.read(0, sa_len)
            compute_blob = sram.read(sa_len, compute_len)
            record = p.boot_sram.load()
            p.pmu.import_state(record["pmu"])
            p.sr_srams.power_on()
        elif store is ContextStore.EMRAM:
            p.memory_controller.exit_self_refresh()
            emram = p.emram
            assert emram is not None
            emram.power_on()
            t0 = p.kernel.now
            sa_blob, latency = emram.read(0, sa_len)
            compute_blob, more = emram.read(sa_len, compute_len)
            yield latency + more
            self.stats.ctx_restore_latencies_ps.append(p.kernel.now - t0)
            record = p.boot_sram.load()
            p.pmu.import_state(record["pmu"])
            p.sr_srams.power_on()
        else:
            raise FlowError(f"unhandled context store {store}")

        # the restored context must match what was saved, bit for bit
        p.system_agent.verify_restored(sa_blob)
        p.compute.verify_restored(compute_blob)
        p.llc.power_on()
        return baseline_consumed
