"""Declarative quantitative budgets of the shipped standby platform.

The paper's techniques are only sound under numeric side conditions: a
deep power state pays off only when residency exceeds its break-even
time (Fig. 6(a) quotes 6.6/6.3/7.4/6.5 ms for WAKE-UP-OFF/AON-IO-GATE/
CTX-SGX-DRAM/ODRIPS), and entering it is only permissible when the
worst-case exit path fits the wake-latency budget (Sec. 7 measures the
exit flow at ~300 us).  This module is where the platform *declares*
those budgets; the priced-timed analysis (:mod:`repro.check.budgets`)
*derives* the corresponding numbers from the model — per-step latencies
and energies probed from one standby cycle, worst-case paths over the
compiled transition system — and gates the two against each other
(rules C601-C605).

The declaration is assembled from three layers, mirroring where each
constraint physically lives:

* the **system** layer (here) owns the wake budget, the residency
  guarantee of the default workload, the paper break-even constants and
  the tolerances;
* the **chipset** layer (:meth:`repro.chipset.pch.Chipset.budget_description`)
  owns the worst-case 32.768 kHz edge-wait allowances of the clock
  hand-off steps;
* the **power** layer (:meth:`repro.power.tree.PowerTree.budget_description`)
  owns the trace-channel contract the energy probe integrates over.
"""

from __future__ import annotations

from typing import Any, Dict

#: Wake-latency budget of every deep power state, in picoseconds.  The
#: paper's measured exit flow is ~300 us (Sec. 7); connected standby
#: must service a wake (network packet, RTC expiry) fast enough that the
#: OS treats the platform as "on", for which 500 us leaves the full
#: measured exit plus one worst-case 32 kHz edge wait plus margin.
WAKE_LATENCY_BUDGET_PS = 500_000_000

#: Relative tolerance between a declared break-even constant and the one
#: the priced-timed analysis derives from the model (rule C603).
BREAK_EVEN_TOLERANCE = 0.10

#: Relative tolerance between the statically derived break-even and the
#: dynamic sweep of :mod:`repro.analysis.breakeven` (the differential
#: acceptance test); looser than machine epsilon because the dynamic
#: two-point fit samples different 32 kHz wake phases than the probe.
DIFFERENTIAL_TOLERANCE = 0.05

#: Paper break-even residencies (Fig. 6(a)), keyed by technique label.
#: Configurations the paper does not quote a figure for declare None and
#: are exempt from the C603 drift check.
PAPER_BREAK_EVEN_S = {
    "WAKE-UP-OFF": 6.6e-3,
    "AON-IO-GATE": 6.3e-3,
    "CTX-SGX-DRAM": 7.4e-3,
    "ODRIPS": 6.5e-3,
}

#: Probe workload of the budget analysis: one short connected-standby
#: cycle is enough to read every flow-step latency and every resident
#: power level out of the trace (the flows are workload-independent).
PROBE_IDLE_S = 0.004
PROBE_MAINTENANCE_S = 0.002


def platform_budget_description(platform: Any) -> Dict[str, Any]:
    """The full budget declaration for one built platform.

    Threads the chipset and power-tree sub-declarations together with
    the system-level budgets.  Everything here is declarative — no
    simulation runs; the probe parameters only *describe* the cycle the
    analysis should run when it prices the transition system.
    """
    from repro.config import StandbyWorkloadConfig

    workload = StandbyWorkloadConfig()
    label = platform.techniques.label()
    return {
        "version": 1,
        "technique_label": label,
        "is_baseline": platform.techniques.is_baseline,
        "deep_states": {
            # DRIPS is the only wake-receptive deep state of the FSM
            # (states.FSM_WAKE_RECEPTIVE); the shallow C-state ladder is
            # derived from the processor tables, not declared here.
            "DRIPS": {
                "wake_budget_ps": WAKE_LATENCY_BUDGET_PS,
                "residency_guarantee_s": workload.idle_interval_s,
                "break_even_s": PAPER_BREAK_EVEN_S.get(label),
                "break_even_tolerance": BREAK_EVEN_TOLERANCE,
            },
        },
        "cycle": {
            "idle_interval_s": workload.idle_interval_s,
            "maintenance_mean_s": workload.maintenance_mean_s,
            # the golden figure the per-cycle energy lower bound must
            # stay under (rule C605), resolved from the experiment
            # registry so the bound and the watchdog share one source
            "golden": {
                "experiment": "fig2",
                "key": "average_power_mw",
                "scale": 1e-3,
            },
        },
        "differential_tolerance": DIFFERENTIAL_TOLERANCE,
        "probe": {
            "idle_s": PROBE_IDLE_S,
            "maintenance_s": PROBE_MAINTENANCE_S,
        },
        "chipset": platform.chipset.budget_description(),
        "power": platform.tree.budget_description(),
    }
