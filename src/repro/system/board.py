"""Board-level components: crystals, the AON-IO FET, DRAM/PCM, and the EC.

Everything in Fig. 1(a) that is not inside the processor or chipset dies:
the two crystal oscillators, the external voltage regulators (modeled as
rails in the power tree), the memory devices, the embedded controller,
and — new with ODRIPS — the FET that gates the processor's AON IO rail
(Fig. 3(a)).
"""

from __future__ import annotations

from typing import Optional

from repro.clocks.clock import DerivedClock
from repro.clocks.crystal import CrystalOscillator
from repro.config import PlatformConfig
from repro.core.techniques import ContextStore
from repro.io.ec import EmbeddedController
from repro.memory.dram import DRAMDevice
from repro.memory.nvm import PCMDevice
from repro.power.domain import PowerDomain
from repro.power.gates import BoardFETGate
from repro.sim.kernel import Kernel
from repro.units import GIB


class Board:
    """The motherboard: clock sources, memory device, FET, EC."""

    def __init__(
        self,
        kernel: Kernel,
        config: PlatformConfig,
        clock_domain: PowerDomain,
        memory_domain: PowerDomain,
        context_store: ContextStore,
    ) -> None:
        self.kernel = kernel
        self.config = config
        budget = config.budget

        # --- crystals --------------------------------------------------------
        self.fast_xtal = CrystalOscillator(
            "xtal-24mhz",
            nominal_hz=config.fast_xtal_hz,
            ppm_error=config.fast_xtal_ppm,
            power_watts=budget.fast_xtal_w,
            startup_time_ps=config.transitions.xtal_fast_restart_ps,
            power_component=clock_domain.new_component("board.xtal24"),
        )
        self.slow_xtal = CrystalOscillator(
            "xtal-32khz",
            nominal_hz=config.slow_xtal_hz,
            ppm_error=config.slow_xtal_ppm,
            power_watts=budget.slow_xtal_w,
            power_component=clock_domain.new_component("board.xtal32k"),
        )
        self.fast_clock = DerivedClock("clk-24mhz", self.fast_xtal)
        self.slow_clock = DerivedClock("clk-32khz", self.slow_xtal)

        # --- main memory -------------------------------------------------------
        # ODRIPS-PCM replaces DRAM as main memory (Sec. 8.3); everything
        # else uses DDR3L.  Device power constants are derived from the
        # budget so that self-refresh matches the Fig. 1(b) slice.
        gib = config.dram_capacity_bytes / GIB
        if context_store is ContextStore.PCM:
            self.memory = PCMDevice(
                "pcm-main",
                capacity_bytes=config.dram_capacity_bytes,
                power_component=memory_domain.new_component("memory.main"),
            )
            # As main memory, PCM pays the same interface/controller power
            # as DRAM while the platform is active; non-volatility only
            # removes the standby (self-refresh + CKE) cost (Sec. 8.3).
            self.memory.interface_watts = config.active_model.dram_active_watts_at_1600
            self.is_pcm_main_memory = True
        else:
            self.memory = DRAMDevice(
                "ddr3l",
                capacity_bytes=config.dram_capacity_bytes,
                transfer_rate_hz=config.dram_rate_hz,
                channels=config.dram_channels,
                self_refresh_watts_per_gib=budget.dram_self_refresh_w / gib,
                active_standby_watts_per_gib=(
                    config.active_model.dram_active_watts_at_1600 / gib
                ),
                power_component=memory_domain.new_component("memory.main"),
            )
            self.is_pcm_main_memory = False

        # --- the AON-IO FET (Fig. 3(a), Sec. 5.1) ---------------------------------
        self.aon_io_fet = BoardFETGate("board.aon-io-fet", closed=True)

        # --- embedded controller ----------------------------------------------------
        self.ec = EmbeddedController(kernel)

        # --- misc board (SSD standby, sensors, ...) ----------------------------------
        self.other_component = clock_domain.new_component(
            "board.other", budget.board_other_w
        )
