"""Unit conventions and conversion helpers.

The library uses a small set of canonical units throughout:

* **time**: simulated time is an integer number of **picoseconds**
  (``int``).  Durations exposed to users are floats in **seconds**.
* **power**: floats in **watts**.
* **energy**: floats in **joules**.
* **frequency**: floats in **hertz**.
* **capacity**: integers in **bytes**.
* **voltage**: floats in **volts**.

Integer picoseconds give an exactly representable time base for clock-edge
arithmetic across unsynchronized domains (24 MHz vs 32.768 kHz) without
floating-point drift: one picosecond resolves frequencies up to 1 THz, and a
64-bit integer holds ~106 days of picoseconds, far beyond any connected-
standby interval we simulate.
"""

from __future__ import annotations

# --- time -----------------------------------------------------------------

PICOSECONDS_PER_SECOND: int = 10**12

PS = 1
NS = 10**3
US = 10**6
MS = 10**9
SECOND = PICOSECONDS_PER_SECOND


def seconds_to_ps(seconds: float) -> int:
    """Convert a duration in seconds to integer picoseconds (rounded)."""
    return round(seconds * PICOSECONDS_PER_SECOND)


def ps_to_seconds(ps: int) -> float:
    """Convert integer picoseconds to a float duration in seconds."""
    return ps / PICOSECONDS_PER_SECOND


def ms_to_ps(milliseconds: float) -> int:
    """Convert a duration in milliseconds to integer picoseconds."""
    return round(milliseconds * MS)


def us_to_ps(microseconds: float) -> int:
    """Convert a duration in microseconds to integer picoseconds."""
    return round(microseconds * US)


def ns_to_ps(nanoseconds: float) -> int:
    """Convert a duration in nanoseconds to integer picoseconds."""
    return round(nanoseconds * NS)


def period_ps(frequency_hz: float) -> int:
    """Return the period of ``frequency_hz`` in integer picoseconds.

    Raises :class:`ValueError` for non-positive frequencies.
    """
    if frequency_hz <= 0:
        raise ValueError(f"frequency must be positive, got {frequency_hz!r}")
    return round(PICOSECONDS_PER_SECOND / frequency_hz)


# --- power / energy --------------------------------------------------------

MILLIWATT = 1e-3
MICROWATT = 1e-6

MILLIJOULE = 1e-3
MICROJOULE = 1e-6


def watts_to_milliwatts(watts: float) -> float:
    """Convert watts to milliwatts."""
    return watts / MILLIWATT


def milliwatts(value: float) -> float:
    """Return ``value`` milliwatts expressed in watts."""
    return value * MILLIWATT


def microwatts(value: float) -> float:
    """Return ``value`` microwatts expressed in watts."""
    return value * MICROWATT


def energy_joules(power_watts: float, duration_ps: int) -> float:
    """Energy in joules of ``power_watts`` sustained for ``duration_ps``."""
    return power_watts * (duration_ps / PICOSECONDS_PER_SECOND)


# --- frequency --------------------------------------------------------------

KHZ = 1e3
MHZ = 1e6
GHZ = 1e9

RTC_HZ = 32768.0          # the canonical 32.768 kHz real-time-clock crystal
FAST_XTAL_HZ = 24 * MHZ   # the canonical 24 MHz platform crystal


# --- capacity ----------------------------------------------------------------

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB


def parts_per_million(value: float, ppm: float) -> float:
    """Return ``value`` offset by ``ppm`` parts-per-million."""
    return value * (1.0 + ppm * 1e-6)


def ratio_ppb(measured: float, reference: float) -> float:
    """Relative error of ``measured`` vs ``reference`` in parts-per-billion."""
    if reference == 0:
        raise ValueError("reference must be non-zero")
    return (measured - reference) / reference * 1e9
