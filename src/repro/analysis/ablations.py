"""Ablations of the design choices the paper argues for.

Each function quantifies one "design alternatives" discussion:

* :func:`gate_ablation` — embedded power gate vs on-board FET (Sec. 5.1).
* :func:`timer_location_ablation` — 32 kHz crystal into the processor vs
  timer migration into the chipset (Sec. 4.1.1).
* :func:`context_store_ablation` — processor SRAM vs chipset SRAM vs
  protected DRAM vs eMRAM vs PCM (Secs. 6.1, 8.3).
* :func:`mee_cache_ablation` — MEE metadata-cache size vs tree-walk
  traffic (Sec. 6.2).
* :func:`step_bits_ablation` — Step fractional bits vs worst-case drift
  (Sec. 4.1.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.config import DRIPSPowerBudget, PlatformConfig, skylake_config
from repro.core.odrips import ODRIPSController
from repro.core.techniques import ContextStore, Technique, TechniqueSet
from repro.memory.dram import DRAMDevice
from repro.power.gates import BoardFETGate, EmbeddedPowerGate
from repro.sgx.cache import MEECache
from repro.sgx.integrity_tree import TreeGeometry
from repro.sgx.mee import MemoryEncryptionEngine
from repro.timers.calibration import worst_case_drift_ppb


# ---------------------------------------------------------------------------
# Sec. 5.1: EPG vs FET
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class GateAblationRow:
    gate: str
    off_leakage_mw: float
    on_overhead_mw: float
    needs_processor_pins: bool
    board_component: bool


def gate_ablation(config: Optional[PlatformConfig] = None) -> List[GateAblationRow]:
    """Leakage of the gated AON IO bank under each gate option."""
    cfg = config if config is not None else skylake_config()
    load = cfg.budget.aon_io_bank_w
    rows = []
    for name, gate, pins, board in [
        ("EPG (on-die)", EmbeddedPowerGate("epg", closed=False), True, False),
        ("FET (on-board)", BoardFETGate("fet", closed=False), False, True),
    ]:
        off_leakage = gate.delivered_power(load)
        gate.close()
        on_overhead = gate.delivered_power(load) - load
        rows.append(
            GateAblationRow(
                gate=name,
                off_leakage_mw=off_leakage * 1e3,
                on_overhead_mw=on_overhead * 1e3,
                needs_processor_pins=pins,
                board_component=board,
            )
        )
    return rows


# ---------------------------------------------------------------------------
# Sec. 4.1.1: timer location
# ---------------------------------------------------------------------------

#: Power of one extra always-on IO pin pair (pad + receiver + routing) if
#: the 32 kHz clock were brought into the processor — the cost Sec. 4.1.1
#: cites (pins are "relatively expensive", ITRS [36]).
EXTRA_PIN_POWER_W = 0.35e-3


@dataclass(frozen=True)
class TimerLocationRow:
    design: str
    drips_saving_mw: float
    extra_processor_pins: int
    enables_io_gating: bool


def timer_location_ablation(config: Optional[PlatformConfig] = None) -> List[TimerLocationRow]:
    """Compare the two design alternatives for slow-clock timekeeping.

    Alternative 1 (32 kHz crystal into the processor) still kills the
    24 MHz crystal and the fast toggling, but pays for an extra AON pin
    and — crucially — leaves the processor as the wake hub, so the AON IO
    bank cannot be gated (the Sec. 4.1.1 argument for alternative 2).
    """
    cfg = config if config is not None else skylake_config()
    budget = cfg.budget
    migration_saving = (
        budget.timer_wakeup_monitor_w
        + budget.fast_xtal_w
        + (budget.chipset_wake_monitor_w - budget.chipset_wake_monitor_slow_w)
    )
    alt1_saving = migration_saving - EXTRA_PIN_POWER_W
    return [
        TimerLocationRow(
            design="32 kHz XTAL into processor (alt. 1)",
            drips_saving_mw=alt1_saving * 1e3,
            extra_processor_pins=2,  # differential clock input
            enables_io_gating=False,
        ),
        TimerLocationRow(
            design="timer migrated to chipset (alt. 2, chosen)",
            drips_saving_mw=migration_saving * 1e3,
            extra_processor_pins=0,
            enables_io_gating=True,
        ),
    ]


# ---------------------------------------------------------------------------
# Secs. 6.1 / 8.3: context store comparison
# ---------------------------------------------------------------------------

CONTEXT_STORES: List[Tuple[str, TechniqueSet]] = [
    ("processor SRAM (baseline)", TechniqueSet.baseline()),
    (
        "chipset SRAM (Sec. 6.1 alt. 2)",
        TechniqueSet({Technique.CTX_SGX_DRAM}, ContextStore.CHIPSET_SRAM),
    ),
    ("SGX-protected DRAM (chosen)", TechniqueSet.ctx_sgx_dram_only()),
    (
        "eMRAM (Sec. 8.3)",
        TechniqueSet({Technique.CTX_SGX_DRAM}, ContextStore.EMRAM),
    ),
]


@dataclass(frozen=True)
class ContextStoreRow:
    store: str
    average_power_mw: float
    saving_vs_baseline: float
    exit_latency_us: float


def context_store_ablation(
    config: Optional[PlatformConfig] = None, cycles: int = 1
) -> List[ContextStoreRow]:
    """Average power of each context-store option (CTX technique only)."""
    rows: List[ContextStoreRow] = []
    baseline_mw: Optional[float] = None
    for label, techniques in CONTEXT_STORES:
        measurement = ODRIPSController(techniques, config=config).measure(cycles=cycles)
        watts = measurement.average_power_w
        if baseline_mw is None:
            baseline_mw = watts
        rows.append(
            ContextStoreRow(
                store=label,
                average_power_mw=watts * 1e3,
                saving_vs_baseline=1.0 - watts / baseline_mw,
                exit_latency_us=measurement.exit_latency_us,
            )
        )
    return rows


# ---------------------------------------------------------------------------
# Sec. 6.2: MEE cache size
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MEECacheRow:
    cache_nodes: int
    hit_rate: float
    metadata_accesses_per_read: float


def mee_cache_ablation(
    cache_geometries: Optional[List[Tuple[int, int]]] = None,
    data_size: int = 64 * 1024,
    accesses: int = 400,
    seed: int = 7,
) -> List[MEECacheRow]:
    """Random 64 B protected reads under different MEE cache sizes."""
    import random

    geometries = cache_geometries if cache_geometries is not None else [
        (1, 1),
        (4, 2),
        (16, 4),
        (64, 8),
        (256, 8),
    ]
    rows: List[MEECacheRow] = []
    for sets, ways in geometries:
        device = DRAMDevice("dram", capacity_bytes=256 * (1 << 20))
        geometry = TreeGeometry.for_data_size(1 << 20, data_size)
        cache = MEECache(sets=sets, ways=ways)
        mee = MemoryEncryptionEngine(device, geometry, b"k" * 32, cache)
        mee.initialize_region()
        mee.tree.metadata_accesses = 0
        rng = random.Random(seed)
        blocks = geometry.data_blocks
        for _ in range(accesses):
            mee.read(rng.randrange(blocks) * 64, 64)
        rows.append(
            MEECacheRow(
                cache_nodes=cache.capacity,
                hit_rate=cache.hit_rate(),
                metadata_accesses_per_read=mee.tree.metadata_accesses / accesses,
            )
        )
    return rows


# ---------------------------------------------------------------------------
# Sec. 4.1.3: Step fractional bits
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class StepBitsRow:
    fractional_bits: int
    worst_case_drift_ppb: float
    meets_1ppb: bool
    calibration_seconds: float


def step_bits_ablation(
    bits: Optional[List[int]] = None,
    fast_hz: float = 24e6,
    slow_hz: float = 32768.0,
) -> List[StepBitsRow]:
    """Drift bound and calibration time as f varies (Eq. 3/4 trade)."""
    rows = []
    for f in bits if bits is not None else [8, 12, 16, 20, 21, 24]:
        drift = worst_case_drift_ppb(fast_hz, slow_hz, f)
        rows.append(
            StepBitsRow(
                fractional_bits=f,
                worst_case_drift_ppb=drift,
                meets_1ppb=drift < 1.0,
                calibration_seconds=(1 << f) / slow_hz,
            )
        )
    return rows
