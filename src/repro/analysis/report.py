"""Plain-text table rendering for benches and examples."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render an aligned ASCII table.

    Numbers are shown with sensible precision; everything else with
    ``str``.  Used by every bench to print the paper-style result rows.
    """
    def cell(value: object) -> str:
        if isinstance(value, float):
            magnitude = abs(value)
            if magnitude != 0 and magnitude < 0.01:
                return f"{value:.5f}"
            return f"{value:,.3f}"
        return str(value)

    rendered: List[List[str]] = [[cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for index, text in enumerate(row):
            widths[index] = max(widths[index], len(text))

    def line(parts: Sequence[str]) -> str:
        return "  ".join(text.ljust(widths[i]) for i, text in enumerate(parts)).rstrip()

    out = []
    if title:
        out.append(title)
        out.append("=" * len(title))
    out.append(line(headers))
    out.append(line(["-" * w for w in widths]))
    for row in rendered:
        out.append(line(row))
    return "\n".join(out)
