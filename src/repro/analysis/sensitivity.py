"""Sensitivity of the headline result to the calibration constants.

The 22 % ODRIPS saving rests on measured component powers and workload
parameters.  This analysis perturbs each one (one-at-a-time, ±25 % by
default) through the closed-form model and reports how far the headline
saving moves — a tornado chart in table form.  It answers the referee
question every measured-constants reproduction gets: *which inputs is
the conclusion actually sensitive to?*
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.analysis.validation import predicted_average_power_w
from repro.config import PlatformConfig, skylake_config
from repro.core.techniques import TechniqueSet
from repro.errors import ConfigError


def _with_budget_field(config: PlatformConfig, field_name: str, scale: float) -> PlatformConfig:
    budget = dataclasses.replace(
        config.budget, **{field_name: getattr(config.budget, field_name) * scale}
    )
    return dataclasses.replace(config, budget=budget)


#: The knobs the tornado sweeps: label -> (builder(config, scale) -> config).
BUDGET_KNOBS: Dict[str, str] = {
    "S/R SRAM power (9% slice)": "sr_sram_w",
    "AON IO power (7% slice)": "aon_io_bank_w",
    "24 MHz crystal power": "fast_xtal_w",
    "chipset AON power": "chipset_aon_w",
    "DRAM self-refresh power": "dram_self_refresh_w",
    "rest-of-board power": "board_other_w",
}


@dataclass(frozen=True)
class SensitivityRow:
    """Effect of one knob on the headline saving."""

    parameter: str
    saving_low: float     # saving with the knob scaled down
    saving_nominal: float
    saving_high: float    # saving with the knob scaled up

    @property
    def swing(self) -> float:
        """Total movement of the saving across the knob's range."""
        return abs(self.saving_high - self.saving_low)


def _headline_saving(
    config: PlatformConfig, idle_s: float = 30.0, maintenance_s: float = 0.145
) -> float:
    baseline = predicted_average_power_w(
        TechniqueSet.baseline(), config, idle_s=idle_s, maintenance_s=maintenance_s
    )
    odrips = predicted_average_power_w(
        TechniqueSet.odrips(), config, idle_s=idle_s, maintenance_s=maintenance_s
    )
    return 1.0 - odrips / baseline


def budget_sensitivity(
    config: Optional[PlatformConfig] = None,
    perturbation: float = 0.25,
) -> List[SensitivityRow]:
    """ODRIPS-saving sensitivity to each component-power constant."""
    if not 0 < perturbation < 1:
        raise ConfigError("perturbation must be a fraction in (0, 1)")
    cfg = config if config is not None else skylake_config()
    nominal = _headline_saving(cfg)
    rows = []
    for label, field_name in BUDGET_KNOBS.items():
        low = _headline_saving(_with_budget_field(cfg, field_name, 1 - perturbation))
        high = _headline_saving(_with_budget_field(cfg, field_name, 1 + perturbation))
        rows.append(
            SensitivityRow(
                parameter=label,
                saving_low=low,
                saving_nominal=nominal,
                saving_high=high,
            )
        )
    rows.sort(key=lambda row: row.swing, reverse=True)
    return rows


def workload_sensitivity(
    config: Optional[PlatformConfig] = None,
    idle_values_s: Tuple[float, ...] = (5.0, 15.0, 30.0, 60.0, 120.0),
    maintenance_s: float = 0.145,
) -> List[Tuple[float, float]]:
    """Headline saving as the idle interval varies (Sec. 7's 30 s is one
    point of a curve: longer idles weight DRIPS more, so the saving
    asymptotically approaches the pure-DRIPS ratio)."""
    cfg = config if config is not None else skylake_config()
    return [
        (idle_s, _headline_saving(cfg, idle_s=idle_s, maintenance_s=maintenance_s))
        for idle_s in idle_values_s
    ]
