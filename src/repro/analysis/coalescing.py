"""Interrupt coalescing and the wake-rate economy (Sec. 3, Observation 1).

The paper's first observation leans on platform buffering: "a modern SoC
aggregates multiple interrupts and handles them together at the same
time to reduce the number of wake-ups from the Idle state".  This module
quantifies that economy:

* with Poisson notification arrivals at rate λ and a coalescing window
  W, the platform wakes at rate λ / (1 + λW) (each wake opens a window
  that absorbs the arrivals landing inside it);
* each wake costs one transition round trip plus a handling burst, so
  the connected-standby average power falls monotonically with W — at
  the price of notification latency (bounded by W).

That wake-latency budget is exactly what lets ODRIPS afford its extra
tens-of-µs exit latency "without degrading user experience".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.config import PlatformConfig, skylake_config
from repro.errors import ConfigError


def coalesced_wake_rate(arrival_rate_hz: float, window_s: float) -> float:
    """Wakes per second with Poisson arrivals and a coalescing window.

    Renewal argument: a wake services everything that arrived, then the
    next arrival (mean 1/λ later) starts a window of length W that
    absorbs followers; one wake per (1/λ + W) of expected time.
    """
    if arrival_rate_hz < 0 or window_s < 0:
        raise ConfigError("rate and window must be non-negative")
    if arrival_rate_hz == 0:
        return 0.0
    return 1.0 / (1.0 / arrival_rate_hz + window_s)


@dataclass(frozen=True)
class CoalescingPoint:
    """Average-power outcome at one coalescing-window setting."""

    window_s: float
    wake_rate_hz: float
    average_power_w: float
    worst_case_latency_s: float


#: Energy of one wake round trip: entry + exit transitions plus a short
#: handling burst (~5 ms at Active power).  Derived from the calibrated
#: transition model; see docs/CALIBRATION.md.
def wake_round_trip_energy_j(config: Optional[PlatformConfig] = None) -> float:
    cfg = config if config is not None else skylake_config()
    trans = cfg.transitions
    entry = trans.entry_power_watts * trans.entry_latency_ps / 1e12
    exit_ = trans.exit_power_watts * trans.exit_latency_ps / 1e12
    burst = cfg.active_model.total_watts(cfg.min_core_ghz) * 0.005
    return entry + exit_ + burst


def coalescing_sweep(
    arrival_rate_hz: float = 1.0,
    windows_s: Tuple[float, ...] = (0.0, 0.05, 0.2, 1.0, 5.0, 30.0),
    drips_power_w: float = 0.060,
    config: Optional[PlatformConfig] = None,
) -> List[CoalescingPoint]:
    """Average power vs coalescing window for a notification stream.

    ``arrival_rate_hz`` of 1 Hz is a pathological chatty app; even a
    modest window collapses its wake rate.
    """
    if arrival_rate_hz <= 0:
        raise ConfigError("arrival rate must be positive for a sweep")
    per_wake = wake_round_trip_energy_j(config)
    points = []
    for window_s in windows_s:
        rate = coalesced_wake_rate(arrival_rate_hz, window_s)
        average = drips_power_w + rate * per_wake
        points.append(
            CoalescingPoint(
                window_s=window_s,
                wake_rate_hz=rate,
                average_power_w=average,
                worst_case_latency_s=window_s,
            )
        )
    return points


def window_for_power_budget(
    arrival_rate_hz: float,
    power_budget_w: float,
    drips_power_w: float = 0.060,
    config: Optional[PlatformConfig] = None,
) -> float:
    """Smallest coalescing window that meets an average-power budget.

    Solves ``drips + rate(W) * E_wake <= budget`` for W.  Raises when the
    budget is below the idle floor (unreachable) and returns 0 when no
    coalescing is needed.
    """
    if power_budget_w <= drips_power_w:
        raise ConfigError("budget below the DRIPS floor is unreachable")
    per_wake = wake_round_trip_energy_j(config)
    allowed_rate = (power_budget_w - drips_power_w) / per_wake
    uncoalesced = coalesced_wake_rate(arrival_rate_hz, 0.0)
    if uncoalesced <= allowed_rate:
        return 0.0
    return 1.0 / allowed_rate - 1.0 / arrival_rate_hz
