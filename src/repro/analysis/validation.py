"""Power-model validation (Sec. 7, "Power-model Validation").

The paper built an analytical power model *before* silicon, predicted
the savings of each technique, and validated the model post-silicon to
"approximately 95 %" accuracy.  This module replays that workflow:

* :func:`predicted_drips_power_w` — the closed-form, pre-silicon DRIPS
  power prediction for any technique set, straight from the component
  budget (no simulation).
* :func:`predicted_average_power_w` — Equation 1 on top of it.
* :func:`validate_power_model` — compare the analytical prediction with
  the "post-silicon measurement" (our full simulation) for every
  configuration and report the model accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional

if TYPE_CHECKING:
    from repro.perf.cache import SimulationCache

from repro.analysis.average_power import AveragePowerModel
from repro.config import DRIPSPowerBudget, PlatformConfig, skylake_config
from repro.core.odrips import ODRIPSController
from repro.core.techniques import ContextStore, TechniqueSet
from repro.power.gates import BoardFETGate


def predicted_drips_power_w(
    budget: DRIPSPowerBudget, techniques: TechniqueSet
) -> float:
    """Closed-form platform DRIPS power for a technique set.

    This is the paper's step-4 projection ("estimate the power-level at
    each state when applying each one of the power reduction techniques
    using the power breakdown data", Sec. 7) — pure arithmetic on the
    component budget, no simulator involved.
    """
    total = budget.platform_total_w()
    if techniques.wake_up_off:
        total -= budget.timer_wakeup_monitor_w
        total -= budget.fast_xtal_w
        total -= budget.chipset_wake_monitor_w - budget.chipset_wake_monitor_slow_w
    if techniques.aon_io_gate:
        total -= budget.aon_io_bank_w * (1.0 - BoardFETGate.leakage_fraction)
        total -= budget.pmu_ungated_w - budget.pmu_deep_gated_w
        total -= budget.chipset_proc_link_w
    if techniques.ctx_offloaded:
        total -= budget.sr_sram_w
        total -= budget.sram_retention_vr_quiescent_w
        if techniques.context_store is ContextStore.CHIPSET_SRAM:
            total += budget.sr_sram_w / 5.0  # chipset process leaks 5x less
        else:
            total += 25e-6  # Boot SRAM residue (~1 KB on-chip)
    if techniques.is_full_odrips:
        total -= budget.aon_vr_quiescent_w
    if techniques.context_store is ContextStore.PCM:
        total -= budget.dram_self_refresh_w
        total -= budget.cke_drive_w
    return total


def predicted_average_power_w(
    techniques: TechniqueSet,
    config: Optional[PlatformConfig] = None,
    idle_s: float = 30.0,
    maintenance_s: float = 0.145,
) -> float:
    """Equation 1 over the predicted state powers (no simulation)."""
    cfg = config if config is not None else skylake_config()
    drips = predicted_drips_power_w(cfg.budget, techniques)
    model = AveragePowerModel.for_connected_standby(
        cfg, drips_power_w=drips, idle_s=idle_s, maintenance_s=maintenance_s
    )
    return model.average_power()


@dataclass(frozen=True)
class ValidationRow:
    """Prediction vs measurement for one configuration."""

    label: str
    predicted_mw: float
    measured_mw: float

    @property
    def accuracy(self) -> float:
        """1 - |relative error| (the paper reports ~0.95 overall)."""
        return 1.0 - abs(self.predicted_mw - self.measured_mw) / self.measured_mw


@dataclass(frozen=True)
class ValidationReport:
    rows: List[ValidationRow]

    @property
    def worst_accuracy(self) -> float:
        return min(row.accuracy for row in self.rows)

    @property
    def mean_accuracy(self) -> float:
        return sum(row.accuracy for row in self.rows) / len(self.rows)


def validate_power_model(
    config: Optional[PlatformConfig] = None,
    cycles: int = 1,
    technique_sets: Optional[List[TechniqueSet]] = None,
    cache: Optional["SimulationCache"] = None,
) -> ValidationReport:
    """Analytical prediction vs full simulation for every configuration.

    Mirrors the paper's pre-silicon-model vs post-silicon-measurement
    comparison; the paper found ~95 % accuracy, and the report asserts
    nothing — callers (tests, benches) apply the tolerance.  ``cache``
    memoizes the simulated measurements so runs shared with the figure
    drivers are not recomputed.
    """
    sets = technique_sets if technique_sets is not None else [
        TechniqueSet.baseline(),
        TechniqueSet.wake_up_off_only(),
        TechniqueSet.with_io_gating(),
        TechniqueSet.ctx_sgx_dram_only(),
        TechniqueSet.odrips(),
        TechniqueSet.odrips_pcm(),
    ]
    rows = []
    for techniques in sets:
        predicted = predicted_average_power_w(techniques, config)
        measured = ODRIPSController(techniques, config=config, cache=cache).measure(
            cycles=cycles
        ).average_power_w
        rows.append(
            ValidationRow(
                label=techniques.label(),
                predicted_mw=predicted * 1e3,
                measured_mw=measured * 1e3,
            )
        )
    return ValidationReport(rows=rows)
