"""Process-technology power scaling (Sec. 7, step 2 of the power model).

"To estimate the power consumption of our processor, Skylake, we scale
the measured power consumption of Haswell-ULT (22 nm) to that of Skylake
(14 nm) ... using the characteristics of the new process that determines
the scaling factor" — the methodology of Butts & Sohi [8] for leakage and
Stillmaker & Baas [79] for node-to-node scaling.

First-order model: dynamic power scales with ``capacitance x voltage^2``
(same frequency), leakage power scales with the node's leakage factor
times ``voltage``.
"""

from __future__ import annotations

from typing import Dict

from repro.config import ProcessNode
from repro.errors import ConfigError


def scaling_factor(
    source: ProcessNode, target: ProcessNode, kind: str = "leakage"
) -> float:
    """Power ratio ``target / source`` for the given power ``kind``.

    ``kind`` is ``"leakage"`` (standby power, the DRIPS-relevant term) or
    ``"dynamic"`` (switching power).
    """
    if kind == "leakage":
        ratio = (target.leakage_scale / source.leakage_scale) * (
            target.voltage_scale / source.voltage_scale
        )
    elif kind == "dynamic":
        ratio = (target.capacitance_scale / source.capacitance_scale) * (
            target.voltage_scale / source.voltage_scale
        ) ** 2
    else:
        raise ConfigError(f"unknown power kind {kind!r}")
    if ratio <= 0:
        raise ConfigError("scaling produced a non-positive ratio")
    return ratio


def scale_power(
    power_watts: float,
    source: ProcessNode,
    target: ProcessNode,
    kind: str = "leakage",
) -> float:
    """Scale a measured power from ``source`` node to ``target`` node."""
    if power_watts < 0:
        raise ConfigError("power must be non-negative")
    return power_watts * scaling_factor(source, target, kind)


def scale_budget(
    budget_watts: Dict[str, float],
    source: ProcessNode,
    target: ProcessNode,
    leakage_keys: Dict[str, bool],
) -> Dict[str, float]:
    """Scale a named power budget; ``leakage_keys[name]`` selects the
    scaling kind per component (True = leakage-dominated)."""
    out = {}
    for name, watts in budget_watts.items():
        kind = "leakage" if leakage_keys.get(name, True) else "dynamic"
        out[name] = scale_power(watts, source, target, kind)
    return out


# ---------------------------------------------------------------------------
# temperature sensitivity (the "measured at 30 C" qualifier of Fig. 1(b))
# ---------------------------------------------------------------------------

#: Reference die/board temperature of the paper's measurement (Fig. 1(b)).
REFERENCE_TEMP_C = 30.0

#: Subthreshold leakage roughly doubles every ~22 C in these nodes.
LEAKAGE_DOUBLING_C = 22.0

#: DRAM self-refresh rate (and its power) doubles at the JEDEC extended-
#: temperature boundary; model it as doubling every ~35 C.
SELF_REFRESH_DOUBLING_C = 35.0

#: How much of each DRIPS budget slice is leakage (temperature-sensitive).
#: Clocked components (crystals, monitors toggling) are mostly dynamic.
LEAKAGE_FRACTION_OF_SLICE = {
    "timer_wakeup_monitor_w": 0.2,
    "aon_io_bank_w": 0.8,
    "sr_sram_w": 1.0,
    "pmu_ungated_w": 0.7,
    "cke_drive_w": 0.1,
    "fast_xtal_w": 0.0,
    "slow_xtal_w": 0.0,
    "chipset_aon_w": 0.6,
    "chipset_proc_link_w": 0.5,
    "chipset_wake_monitor_w": 0.1,
    "board_other_w": 0.3,
    "sram_retention_vr_quiescent_w": 0.2,
    "aon_vr_quiescent_w": 0.2,
}


def temperature_leakage_factor(
    temp_c: float,
    reference_c: float = REFERENCE_TEMP_C,
    doubling_c: float = LEAKAGE_DOUBLING_C,
) -> float:
    """Leakage multiplier at ``temp_c`` vs the reference temperature."""
    return 2.0 ** ((temp_c - reference_c) / doubling_c)


def drips_power_at_temperature(budget, temp_c: float) -> float:
    """Platform DRIPS power (watts) at an ambient other than 30 C.

    Each budget slice splits into a temperature-sensitive leakage part
    and a temperature-flat dynamic part; DRAM self-refresh scales on its
    own (refresh-rate) law.  This quantifies why the paper pins its
    Fig. 1(b) measurement at 30 C.
    """
    leak_factor = temperature_leakage_factor(temp_c)
    refresh_factor = temperature_leakage_factor(
        temp_c, doubling_c=SELF_REFRESH_DOUBLING_C
    )
    total = 0.0
    for field_name, leak_fraction in LEAKAGE_FRACTION_OF_SLICE.items():
        watts = getattr(budget, field_name)
        total += watts * (1 - leak_fraction) + watts * leak_fraction * leak_factor
    total += budget.chipset_dual_timer_w
    total += budget.dram_self_refresh_w * refresh_factor
    return total
