"""Break-even analysis (the blue line of Fig. 6(a)).

The paper determines each technique's break-even point by sweeping the
DRIPS residency from 0.6 ms to 1 s and finding the residency where the
technique's connected-standby average power first drops below the
baseline's (Sec. 7).  The sweep here runs the actual simulator with the
periodic (fixed wake grid) schedule, then a bisection narrows the
crossing.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Callable, List, Optional, Tuple

from repro.analysis.sweep import sweep
from repro.config import PlatformConfig, StandbyWorkloadConfig
from repro.core.odrips import ODRIPSController
from repro.core.techniques import TechniqueSet
from repro.errors import ConfigError

#: Default maintenance burst for sweeps (paper: 100-300 ms; we pin the
#: mean so runs are deterministic).
SWEEP_MAINTENANCE_S = 0.145

#: Baseline transition allowance added to the period (entry + exit).
BASE_TRANSITIONS_S = 0.0005


@dataclass(frozen=True)
class BreakEvenResult:
    """Outcome of a break-even search for one technique set."""

    label: str
    break_even_s: float
    sweep_points: Tuple[Tuple[float, float, float], ...]  # (idle_s, base_w, tech_w)

    @property
    def break_even_ms(self) -> float:
        return self.break_even_s * 1e3


def _average_at(
    techniques: TechniqueSet,
    idle_s: float,
    cycles: int,
    config: Optional[PlatformConfig],
    maintenance_s: float,
) -> float:
    period = maintenance_s + BASE_TRANSITIONS_S + idle_s
    controller = ODRIPSController(techniques, config=config)
    measurement = controller.measure(
        cycles=cycles,
        maintenance_s=maintenance_s,
        period_s=period,
        idle_interval_s=idle_s,
    )
    return measurement.average_power_w


def _cycle_energy(
    techniques: TechniqueSet,
    idle_s: float,
    cycles: int,
    config: Optional[PlatformConfig],
    maintenance_s: float,
) -> float:
    """Average joules per connected-standby cycle at ``idle_s`` residency."""
    period = maintenance_s + BASE_TRANSITIONS_S + idle_s
    controller = ODRIPSController(techniques, config=config)
    result = controller.measure_raw_periodic(
        cycles=cycles, maintenance_s=maintenance_s, period_s=period, idle_s=idle_s
    )
    return sum(result.residency.energy_j.values()) / cycles


def find_break_even(
    techniques: TechniqueSet,
    config: Optional[PlatformConfig] = None,
    idle_points_s: Tuple[float, float] = (0.020, 0.060),
    cycles: int = 4,
    maintenance_s: float = SWEEP_MAINTENANCE_S,
    iterations: int = 0,  # kept for API compatibility; unused
) -> BreakEvenResult:
    """Locate the break-even residency via a two-point energy fit.

    Per cycle, the technique changes the energy by
    ``dE_overhead - dP_drips * idle``; measuring the cycle-energy saving
    at two residencies solves for both terms, and the break-even is
    ``dE_overhead / dP_drips`` — far more precise than bisecting the
    noisy average-power crossing, and what the fixed-period sweep of
    Sec. 7 measures in the limit.

    Raises :class:`ConfigError` when the technique set is the baseline
    (there is nothing to compare).
    """
    if techniques.is_baseline:
        raise ConfigError("break-even of the baseline against itself is undefined")
    baseline = TechniqueSet.baseline()
    idle_a, idle_b = idle_points_s
    if idle_b <= idle_a:
        raise ConfigError("idle points must be increasing")
    saving_a = _cycle_energy(baseline, idle_a, cycles, config, maintenance_s) - \
        _cycle_energy(techniques, idle_a, cycles, config, maintenance_s)
    saving_b = _cycle_energy(baseline, idle_b, cycles, config, maintenance_s) - \
        _cycle_energy(techniques, idle_b, cycles, config, maintenance_s)
    drips_saving_w = (saving_b - saving_a) / (idle_b - idle_a)
    if drips_saving_w <= 0:
        raise ConfigError(
            f"{techniques.label()} does not reduce DRIPS power; no break-even"
        )
    overhead_j = drips_saving_w * idle_a - saving_a
    break_even_s = max(0.0, overhead_j / drips_saving_w)
    points = (
        (idle_a, saving_a, drips_saving_w),
        (idle_b, saving_b, overhead_j),
    )
    return BreakEvenResult(
        label=techniques.label(),
        break_even_s=break_even_s,
        sweep_points=points,
    )


def _residency_point(
    idle_s: float,
    techniques: TechniqueSet,
    config: Optional[PlatformConfig],
    cycles: int,
    maintenance_s: float,
) -> Tuple[float, float]:
    """Module-level (picklable) sweep point: baseline and technique watts."""
    base_w = _average_at(TechniqueSet.baseline(), idle_s, cycles, config, maintenance_s)
    tech_w = _average_at(techniques, idle_s, cycles, config, maintenance_s)
    return base_w, tech_w


def residency_sweep(
    techniques: TechniqueSet,
    residencies_s: List[float],
    config: Optional[PlatformConfig] = None,
    cycles: int = 3,
    maintenance_s: float = SWEEP_MAINTENANCE_S,
    parallel: bool = False,
) -> List[Tuple[float, float, float]]:
    """Average power of baseline and technique at each residency.

    Returns ``(residency_s, baseline_w, technique_w)`` tuples — the raw
    data behind the Fig. 6(a) break-even line.  ``parallel=True`` runs
    the residency points in worker processes (each point is a pair of
    independent simulations); results are identical to the serial path.
    """
    points = sweep(
        residencies_s,
        partial(
            _residency_point,
            techniques=techniques,
            config=config,
            cycles=cycles,
            maintenance_s=maintenance_s,
        ),
        parallel=parallel,
    )
    return [(idle_s, base_w, tech_w) for idle_s, (base_w, tech_w) in points]
