"""The analytical average-power model of Equation 1 (Sec. 2.3).

``Average_Power = sum over states of (state power x state residency)``
for the four connected-standby states: C0 (Active), DRIPS, Entry, Exit.

This is the closed-form cross-check of the simulator: tests assert that
the simulated average agrees with the analytical prediction built from
the same configuration constants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional

from repro.config import PlatformConfig, skylake_config
from repro.errors import ConfigError


@dataclass(frozen=True)
class StatePoint:
    """Power level and residency time of one state in the periodic cycle."""

    name: str
    power_watts: float
    duration_s: float

    def __post_init__(self) -> None:
        if self.power_watts < 0 or self.duration_s < 0:
            raise ConfigError(f"state {self.name}: negative power or duration")

    @property
    def energy_j(self) -> float:
        return self.power_watts * self.duration_s


class AveragePowerModel:
    """Equation 1 over an explicit set of states."""

    def __init__(self, states: Iterable[StatePoint]) -> None:
        self.states = list(states)
        if not self.states:
            raise ConfigError("need at least one state")
        self.period_s = sum(state.duration_s for state in self.states)
        if self.period_s <= 0:
            raise ConfigError("cycle period must be positive")

    def residency(self, name: str) -> float:
        """Fraction of the period spent in ``name``."""
        return sum(s.duration_s for s in self.states if s.name == name) / self.period_s

    def average_power(self) -> float:
        """The left-hand side of Equation 1, in watts."""
        return sum(state.energy_j for state in self.states) / self.period_s

    def terms(self) -> Dict[str, float]:
        """Per-state ``power x residency`` contributions, in watts."""
        out: Dict[str, float] = {}
        for state in self.states:
            out[state.name] = out.get(state.name, 0.0) + state.energy_j / self.period_s
        return out

    @classmethod
    def for_connected_standby(
        cls,
        config: Optional[PlatformConfig] = None,
        drips_power_w: Optional[float] = None,
        idle_s: float = 30.0,
        maintenance_s: float = 0.145,
        core_freq_ghz: Optional[float] = None,
    ) -> "AveragePowerModel":
        """Build the four-state model from a platform configuration.

        ``drips_power_w`` overrides the budget total (e.g. to model an
        ODRIPS platform analytically).
        """
        cfg = config if config is not None else skylake_config()
        freq = core_freq_ghz if core_freq_ghz is not None else cfg.min_core_ghz
        drips = (
            drips_power_w if drips_power_w is not None else cfg.budget.platform_total_w()
        )
        active_power = cfg.active_model.total_watts(freq, cfg.dram_rate_hz)
        # fixed work: higher frequency shortens the burst (race-to-sleep)
        active_s = maintenance_s * (cfg.min_core_ghz / freq)
        return cls(
            [
                StatePoint("active", active_power, active_s),
                StatePoint(
                    "entry",
                    cfg.transitions.entry_power_watts,
                    cfg.transitions.entry_latency_ps / 1e12,
                ),
                StatePoint("drips", drips, idle_s),
                StatePoint(
                    "exit",
                    cfg.transitions.exit_power_watts,
                    cfg.transitions.exit_latency_ps / 1e12,
                ),
            ]
        )
