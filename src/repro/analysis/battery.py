"""Battery-life estimation from connected-standby average power.

The paper's motivation is battery life (Sec. 1: devices are "idle the
majority of the time" but must stay connected).  This module turns
average-power measurements into standby-life figures and quantifies how
much life each technique buys on real battery sizes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigError

#: Representative battery capacities (watt-hours) of the device classes
#: the paper targets (Sec. 1: handhelds to laptops).
BATTERY_WH = {
    "handheld-tablet": 25.0,
    "surface-class": 38.0,
    "ultrabook": 50.0,
    "laptop-15in": 68.0,
}


@dataclass(frozen=True)
class BatteryLife:
    """Standby life of one configuration on one battery."""

    battery_wh: float
    average_power_w: float

    def __post_init__(self) -> None:
        if self.battery_wh <= 0:
            raise ConfigError("battery capacity must be positive")
        if self.average_power_w <= 0:
            raise ConfigError("average power must be positive")

    @property
    def hours(self) -> float:
        return self.battery_wh / self.average_power_w

    @property
    def days(self) -> float:
        return self.hours / 24.0

    def extra_days_vs(self, other: "BatteryLife") -> float:
        """Standby days gained over ``other`` (same battery)."""
        # tolerance, not float ==: capacities computed via arithmetic
        # (unit conversions, derating) must still count as "same battery"
        if not math.isclose(self.battery_wh, other.battery_wh, rel_tol=1e-9):
            raise ConfigError("comparing different batteries")
        return self.days - other.days


def standby_life(
    average_power_w: float, battery_wh: float = BATTERY_WH["surface-class"]
) -> BatteryLife:
    """Standby life at ``average_power_w`` on a ``battery_wh`` battery."""
    return BatteryLife(battery_wh=battery_wh, average_power_w=average_power_w)


def life_table(
    measurements: Dict[str, float],
    battery_wh: float = BATTERY_WH["surface-class"],
    baseline_label: Optional[str] = None,
) -> List[Tuple[str, float, float, float]]:
    """``(label, avg_mw, days, extra_days_vs_baseline)`` per configuration.

    ``measurements`` maps labels to average power in watts; the baseline
    is the first entry unless ``baseline_label`` names one.
    """
    if not measurements:
        raise ConfigError("no measurements supplied")
    labels = list(measurements)
    base = baseline_label if baseline_label is not None else labels[0]
    if base not in measurements:
        raise ConfigError(f"unknown baseline label {base!r}")
    base_life = standby_life(measurements[base], battery_wh)
    rows = []
    for label in labels:
        life = standby_life(measurements[label], battery_wh)
        rows.append(
            (
                label,
                measurements[label] * 1e3,
                life.days,
                life.extra_days_vs(base_life),
            )
        )
    return rows


def saving_to_extra_days(
    baseline_power_w: float,
    saving_fraction: float,
    battery_wh: float = BATTERY_WH["surface-class"],
) -> float:
    """Extra standby days bought by a fractional average-power saving."""
    if not 0 <= saving_fraction < 1:
        raise ConfigError("saving must be in [0, 1)")
    before = standby_life(baseline_power_w, battery_wh)
    after = standby_life(baseline_power_w * (1 - saving_fraction), battery_wh)
    return after.extra_days_vs(before)
