"""Analysis: Equation-1 model, break-even sweeps, scaling, reporting.

These are the paper's evaluation-methodology pieces (Sec. 7) that sit on
top of the simulator: the analytical average-power model used for
cross-checking the simulation, the DRIPS-residency sweep that locates
energy break-even points, the Haswell-to-Skylake process-scaling step,
and table renderers for the benches.
"""

from repro.analysis.average_power import AveragePowerModel, StatePoint
from repro.analysis.battery import BatteryLife, life_table, standby_life
from repro.analysis.breakeven import BreakEvenResult, find_break_even, residency_sweep
from repro.analysis.breakdown import drips_breakdown, fig1b_shares
from repro.analysis.coalescing import coalesced_wake_rate, coalescing_sweep
from repro.analysis.scaling import (
    drips_power_at_temperature,
    scale_power,
    scaling_factor,
    temperature_leakage_factor,
)
from repro.analysis.sensitivity import budget_sensitivity, workload_sensitivity
from repro.analysis.sweep import sweep
from repro.analysis.report import format_table
from repro.analysis.validation import validate_power_model

__all__ = [
    "AveragePowerModel",
    "BatteryLife",
    "BreakEvenResult",
    "StatePoint",
    "budget_sensitivity",
    "coalesced_wake_rate",
    "coalescing_sweep",
    "drips_breakdown",
    "drips_power_at_temperature",
    "fig1b_shares",
    "find_break_even",
    "format_table",
    "life_table",
    "residency_sweep",
    "scale_power",
    "scaling_factor",
    "standby_life",
    "sweep",
    "temperature_leakage_factor",
    "validate_power_model",
    "workload_sensitivity",
]
