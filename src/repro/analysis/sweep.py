"""Generic parameter-sweep helper for the figure benches.

Every sweep point is an independent simulation of a deterministic
platform model, so :func:`sweep` can optionally fan the points out over
a :class:`concurrent.futures.ProcessPoolExecutor` — the evaluation style
of Fig. 6(b)/(c), the sensitivity grids, and the residency sweeps.  The
parallel mode returns results in parameter order, identical to the
serial path.

With a telemetry stream installed (:mod:`repro.obs.stream`) the sweep
also emits live progress: the parent folds every completed point into
bounded histograms and a ``sweep`` heartbeat, and parallel workers
mirror their own bounded aggregates to per-worker heartbeat files that
the parent merges after the pool drains.
"""

from __future__ import annotations

import os
from typing import Callable, Iterable, List, Optional, Tuple, TypeVar

from repro.effects import declares_effects
from repro.errors import AnalysisError
from repro.obs.runlog import active_recorder, host_wall_s
from repro.obs.stream import active_stream, record_worker_point

Value = TypeVar("Value")

#: Reference magnitudes at or below this are treated as zero when
#: normalizing sweep results (no exact float equality on measured
#: quantities — the S403 discipline).
ZERO_REFERENCE_TOLERANCE = 1e-12


class _TimedCall:
    """Picklable wrapper timing one sweep point inside a worker process.

    Used while a flight recorder or a telemetry stream is installed: the
    wrapper rides the same pickle channel as ``experiment`` itself, and
    each worker reports ``(result, wall_s, pid)`` so the parent can
    attribute per-point host time and worker fan-out to the run record.
    With ``stream_dir`` set, each worker also folds the point into its
    own bounded histograms and atomically replaces its heartbeat file
    (:func:`repro.obs.stream.record_worker_point`).
    """

    __slots__ = ("experiment", "stream_dir", "points_total")

    def __init__(
        self,
        experiment: Callable[[Value], float],
        stream_dir: Optional[str] = None,
        points_total: int = 0,
    ) -> None:
        self.experiment = experiment
        self.stream_dir = stream_dir
        self.points_total = points_total

    @declares_effects("time", "identity")  # per-point wall time + worker pid
    def __call__(self, value: Value) -> Tuple[float, float, int]:
        start_s = host_wall_s()
        result = self.experiment(value)
        wall_s = host_wall_s() - start_s
        if self.stream_dir is not None:
            record_worker_point(self.stream_dir, result, wall_s, self.points_total)
        return result, wall_s, os.getpid()


@declares_effects("time", "env")  # fan-out timing + cpu_count worker sizing
def sweep(
    parameter_values: Iterable[Value],
    experiment: Callable[[Value], float],
    parallel: bool = False,
    max_workers: Optional[int] = None,
) -> List[Tuple[Value, float]]:
    """Run ``experiment`` at each parameter value; collect the results.

    With ``parallel=True`` the points run concurrently in worker
    processes (each sweep point is an independent simulation), still
    returning ``(value, result)`` pairs in parameter order.  The
    ``experiment`` callable and the parameter values must be picklable —
    a module-level function or a :func:`functools.partial` of one, not a
    lambda or closure.

    On a single-CPU host a ``parallel=True`` request without an explicit
    ``max_workers`` degrades to the serial path — a one-worker process
    pool only adds pickling and fork overhead.  The run record notes the
    degradation as ``backend: "serial-fallback"``; passing ``max_workers``
    explicitly still forces a pool of that size.

    When a flight recorder is installed
    (:func:`repro.obs.runlog.active_recorder`) the sweep contributes its
    fan-out shape — point count, parallelism, backend, per-point wall
    times, and the worker process ids that served them — to the
    enclosing run record.

    When a telemetry stream is installed
    (:func:`repro.obs.stream.active_stream`) the sweep emits live
    progress: bounded ``sweep.point_result``/``sweep.point_wall_s``
    histograms plus a ``sweep`` heartbeat per completed point on the
    parent side, per-worker heartbeat files on the worker side (with the
    stream's ``heartbeat_dir`` set), merged back after the pool drains.
    """
    values = list(parameter_values)
    recorder = active_recorder()
    stream = active_stream()
    observed = recorder is not None or stream is not None
    start_s = host_wall_s() if observed else 0.0
    serial_fallback = (
        parallel
        and len(values) > 1
        and max_workers is None
        and (os.cpu_count() or 1) == 1
    )
    if not parallel or len(values) <= 1 or serial_fallback:
        backend = "serial-fallback" if serial_fallback else "serial"
        if not observed:
            return [(value, experiment(value)) for value in values]
        timed = _TimedCall(experiment)
        outcomes = []
        for done, value in enumerate(values, start=1):
            outcome = timed(value)
            outcomes.append(outcome)
            if stream is not None:
                stream.sweep_point(done, len(values), outcome[0], outcome[1])
        if recorder is not None:
            recorder.sweep(
                points=len(values),
                parallel=False,
                workers=None,
                wall_s=host_wall_s() - start_s,
                point_walls_s=[wall_s for _, wall_s, _ in outcomes],
                worker_pids=[pid for _, _, pid in outcomes],
                backend=backend,
            )
        return [(value, result) for value, (result, _, _) in zip(values, outcomes)]
    from concurrent.futures import ProcessPoolExecutor

    workers = max_workers if max_workers is not None else min(len(values), os.cpu_count() or 1)
    with ProcessPoolExecutor(max_workers=workers) as pool:
        if not observed:
            results = list(pool.map(experiment, values))
            return list(zip(values, results))
        stream_dir = (
            str(stream.heartbeat_dir)
            if stream is not None and stream.heartbeat_dir is not None
            else None
        )
        timed = _TimedCall(experiment, stream_dir=stream_dir, points_total=len(values))
        outcomes = []
        # pool.map yields in submission order as results complete, so the
        # parent-side heartbeat advances while the pool is still draining
        for done, outcome in enumerate(pool.map(timed, values), start=1):
            outcomes.append(outcome)
            if stream is not None:
                stream.sweep_point(done, len(values), outcome[0], outcome[1])
    if stream is not None:
        stream.absorb_worker_heartbeats()
    if recorder is not None:
        recorder.sweep(
            points=len(values),
            parallel=True,
            workers=workers,
            wall_s=host_wall_s() - start_s,
            point_walls_s=[wall_s for _, wall_s, _ in outcomes],
            worker_pids=[pid for _, _, pid in outcomes],
            backend="parallel",
        )
    return [(value, result) for value, (result, _, _) in zip(values, outcomes)]


def relative_to_first(points: List[Tuple[Value, float]]) -> List[Tuple[Value, float]]:
    """Convert absolute results into fractions of the first point.

    Used for the Fig. 6(b)/(c) sweeps, which the paper reports as deltas
    against the leftmost (baseline) configuration.

    Raises :class:`~repro.errors.AnalysisError` when the reference point
    is zero to within :data:`ZERO_REFERENCE_TOLERANCE` — the
    normalization is undefined there.
    """
    if not points:
        return []
    reference = points[0][1]
    if abs(reference) <= ZERO_REFERENCE_TOLERANCE:
        raise AnalysisError(
            f"cannot normalize sweep results: first sweep point is zero "
            f"to within {ZERO_REFERENCE_TOLERANCE:g} (got {reference!r})"
        )
    return [(value, result / reference - 1.0) for value, result in points]
