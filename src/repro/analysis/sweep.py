"""Generic parameter-sweep helper for the figure benches."""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Tuple, TypeVar

Value = TypeVar("Value")


def sweep(
    parameter_values: Iterable[Value],
    experiment: Callable[[Value], float],
) -> List[Tuple[Value, float]]:
    """Run ``experiment`` at each parameter value; collect the results."""
    return [(value, experiment(value)) for value in parameter_values]


def relative_to_first(points: List[Tuple[Value, float]]) -> List[Tuple[Value, float]]:
    """Convert absolute results into fractions of the first point.

    Used for the Fig. 6(b)/(c) sweeps, which the paper reports as deltas
    against the leftmost (baseline) configuration.
    """
    if not points:
        return []
    reference = points[0][1]
    if reference == 0:
        raise ZeroDivisionError("first sweep point is zero")
    return [(value, result / reference - 1.0) for value, result in points]
