"""The Fig. 1(b) DRIPS power breakdown.

Groups the platform's per-component breakdown into the slices the paper
plots: the processor items (timer/wake, AON IOs, S/R SRAMs, PMU, CKE),
the crystals, the chipset, DRAM self-refresh, and the rest of the board.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.techniques import TechniqueSet
from repro.config import PlatformConfig
from repro.core.odrips import ODRIPSController

#: Component-name prefixes mapped to the paper's Fig. 1(b) slices.
FIG1B_GROUPS = {
    "proc.timer_wake": "wakeup_timer_monitor",
    "board.xtal24": "fast_crystal_24mhz",
    "board.xtal32k": "rtc_crystal_32khz",
    "io:": "aon_ios",
    "gate:proc.aon_io": "aon_ios",
    "proc.sr_sram": "sr_srams",
    "proc.boot_sram": "sr_srams",
    "proc.pmu": "pmu",
    "proc.emram": "sr_srams",
    "proc.cke_drive": "cke",
    "proc.aon_vr_quiescent": "power_delivery",
    "proc.retention_vr_quiescent": "power_delivery",
    "pch.": "chipset",
    "memory.": "dram_self_refresh",
    "board.other": "board_other",
    "flow.": "transitions",
}


def group_breakdown(component_watts: Dict[str, float]) -> Dict[str, float]:
    """Fold per-component watts into the Fig. 1(b) slice names."""
    grouped: Dict[str, float] = {}
    for name, watts in component_watts.items():
        slice_name = "other"
        for prefix, target in FIG1B_GROUPS.items():
            if name.startswith(prefix):
                slice_name = target
                break
        grouped[slice_name] = grouped.get(slice_name, 0.0) + watts
    return grouped


def drips_breakdown(
    techniques: Optional[TechniqueSet] = None,
    config: Optional[PlatformConfig] = None,
    cycles: int = 1,
) -> Dict[str, float]:
    """Measured per-slice DRIPS watts from a short simulation."""
    controller = ODRIPSController(
        techniques if techniques is not None else TechniqueSet.baseline(), config=config
    )
    result = controller.measure_raw(cycles=cycles, idle_interval_s=5.0)
    return group_breakdown(result.drips_breakdown_w)


def fig1b_shares(
    techniques: Optional[TechniqueSet] = None,
    config: Optional[PlatformConfig] = None,
) -> Dict[str, float]:
    """Fig. 1(b): per-slice fractions of total platform DRIPS power."""
    grouped = drips_breakdown(techniques, config)
    total = sum(grouped.values())
    if total <= 0:
        return {name: 0.0 for name in grouped}
    return {name: watts / total for name, watts in grouped.items()}
