"""The chipset's wake hub: owns wake events while the processor sleeps.

In ODRIPS the hub holds the timer deadline on the slow-clocked dual
timer, watches external wake lines through 32 kHz GPIO monitors, and —
when anything fires — runs the chipset side of the exit flow: re-enable
the fast crystal, close the FET, and signal the processor over the PML.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.errors import FlowError
from repro.io.wake import WakeEvent, WakeEventType
from repro.sim.kernel import Event, Kernel
from repro.timers.dual_timer import ChipsetDualTimer, TimerMode


class WakeHub:
    """Wake-event ownership and dispatch inside the chipset."""

    def __init__(self, kernel: Kernel, dual_timer: ChipsetDualTimer) -> None:
        self.kernel = kernel
        self.dual_timer = dual_timer
        self._wake_callback: Optional[Callable[[WakeEvent], None]] = None
        self._timer_event: Optional[Event] = None
        self._timer_target: Optional[int] = None
        self._owning = False
        self.history: List[WakeEvent] = []
        #: Optional repro.obs tracer; None keeps dispatch at one attribute check.
        self.obs = None

    # --- ownership -----------------------------------------------------------

    @property
    def owning(self) -> bool:
        """True while the chipset owns wake events (platform in ODRIPS)."""
        return self._owning

    def set_wake_callback(self, callback: Callable[[WakeEvent], None]) -> None:
        self._wake_callback = callback

    def take_ownership(self, timer_target: Optional[int]) -> Optional[int]:
        """Start owning wake events; arm the timer deadline if present.

        The dual timer must already be in slow mode (the entry flow
        completed the handoff).  Returns the absolute wake time for the
        timer deadline, or None when only external wakes are armed.
        """
        if self.dual_timer.mode is not TimerMode.SLOW:
            raise FlowError("wake hub needs the dual timer in slow mode")
        self._owning = True
        self._timer_target = timer_target
        if timer_target is None:
            return None
        wake_ps = self.dual_timer.time_of_count(timer_target, self.kernel.now)
        self._timer_event = self.kernel.schedule_at(
            wake_ps, self._fire_timer, label="wakehub:timer"
        )
        return wake_ps

    def release_ownership(self) -> None:
        """Processor is awake again; cancel pending hub wakes."""
        self._owning = False
        if self._timer_event is not None and self._timer_event.pending:
            self._timer_event.cancel()
        self._timer_event = None

    # --- event sources ------------------------------------------------------------

    def _fire_timer(self) -> None:
        self._timer_event = None
        target = self._timer_target
        self._timer_target = None
        self._dispatch(
            WakeEvent(WakeEventType.TIMER, self.kernel.now, timer_target=target)
        )

    def external_wake(self, event_type: WakeEventType, detail: str = "") -> None:
        """An external source (GPIO monitor, NIC) requests a wake."""
        self._dispatch(WakeEvent(event_type, self.kernel.now, detail=detail))

    def _dispatch(self, event: WakeEvent) -> None:
        if not self._owning:
            return  # stale event; the processor already owns wakes again
        self._owning = False
        if self._timer_event is not None and self._timer_event.pending:
            self._timer_event.cancel()
            self._timer_event = None
        self.history.append(event)
        obs = self.obs
        if obs is not None:
            obs.wake_delivered(
                event.event_type.name.lower(), self.kernel.now, event.detail
            )
        if self._wake_callback is None:
            raise FlowError("wake hub fired with no callback installed")
        self._wake_callback(event)
