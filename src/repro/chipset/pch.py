"""The chipset (PCH) top level.

Aggregates the chipset pieces the paper touches: the always-on domain,
the processor-facing link slice, the wake-event monitor (24 MHz in
baseline, 32.768 kHz in ODRIPS), the new dual timer with its Step
register, the spare-GPIO bank, and the wake hub.
"""

from __future__ import annotations

from typing import Optional

from repro.chipset.wake_hub import WakeHub
from repro.clocks.clock import DerivedClock
from repro.config import DRIPSPowerBudget
from repro.errors import FlowError
from repro.io.gpio import GPIOController, GPIOMonitor
from repro.io.wake import WakeEventType
from repro.power.domain import PowerDomain
from repro.sim.kernel import Kernel
from repro.timers.calibration import StepCalibrator
from repro.timers.dual_timer import ChipsetDualTimer


class Chipset:
    """Sunrise Point-LP model with the ODRIPS additions of Fig. 3(a)."""

    def __init__(
        self,
        kernel: Kernel,
        domain: PowerDomain,
        fast_clock: DerivedClock,
        slow_clock: DerivedClock,
        budget: DRIPSPowerBudget,
        timer_frac_bits: int,
        timer_int_bits: int,
    ) -> None:
        self.kernel = kernel
        self.budget = budget
        # --- power components -------------------------------------------------
        self.aon_component = domain.new_component("pch.aon", budget.chipset_aon_w)
        self.proc_link_component = domain.new_component(
            "pch.proc_link", budget.chipset_proc_link_w
        )
        self.wake_monitor_component = domain.new_component(
            "pch.wake_monitor", budget.chipset_wake_monitor_w
        )
        self.dual_timer_component = domain.new_component(
            "pch.dual_timer", 0.0
        )
        # --- new hardware (dashed blocks of Fig. 3(a)) -------------------------
        self.dual_timer = ChipsetDualTimer(
            "pch.dual_timer", fast_clock, slow_clock, frac_bits=timer_frac_bits
        )
        self.calibrator = StepCalibrator(
            fast_clock.source, slow_clock.source,
            frac_bits=timer_frac_bits, int_bits=timer_int_bits,
        )
        self.gpios = GPIOController("pch.gpio")
        self.wake_hub = WakeHub(kernel, self.dual_timer)
        self.slow_clock = slow_clock
        self.fast_clock = fast_clock
        # GPIO allocations of Sec. 5.3: one for the offloaded thermal
        # event, one for the FET gate control.
        self.thermal_gpio = self.gpios.allocate_spare("ec-thermal-wake")
        self.fet_gpio = self.gpios.allocate_spare("aon-io-fet-gate")
        self._thermal_monitor: Optional[GPIOMonitor] = None
        self._calibrated = False

    # --- calibration (once per reset, Sec. 4.1.3) -------------------------------

    @property
    def calibrated(self) -> bool:
        return self._calibrated

    def run_step_calibration(self) -> None:
        """Count fast edges over 2^f slow cycles and install Step.

        The multi-second window is computed analytically; the platform
        boot sequence calls this once.
        """
        result = self.calibrator.run(self.kernel.now)
        self.dual_timer.set_step(result.step)
        self.dual_timer_component.set_power(self.budget.chipset_dual_timer_w)
        self._calibrated = True

    # --- wake monitoring clock (the WAKE-UP-OFF lever) -----------------------------

    def monitor_at_fast_clock(self) -> None:
        """Baseline: wake sources toggled/monitored at 24 MHz (Sec. 2.2)."""
        self.wake_monitor_component.set_power(self.budget.chipset_wake_monitor_w)

    def monitor_at_slow_clock(self) -> None:
        """ODRIPS: monitoring moves to the 32.768 kHz clock."""
        self.wake_monitor_component.set_power(self.budget.chipset_wake_monitor_slow_w)

    # --- budget introspection -------------------------------------------------------

    def budget_description(self) -> dict:
        """Declared worst-case latency allowances of the chipset clocks.

        Flow steps that synchronize to the 32.768 kHz clock (the timer
        hand-off during entry, the crystal restart during exit) observe a
        *phase-dependent* edge wait: anywhere between zero and one full
        slow-clock period.  The priced-timed analysis
        (:mod:`repro.check.budgets`) adds these allowances on top of the
        probed step latencies so the worst-case exit path covers every
        wake phase, not just the one a single probe cycle happened to see.
        """
        slow_period_ps = self.slow_clock.period_ps
        return {
            "slow_clock_hz": self.slow_clock.effective_hz,
            "step_allowances_ps": {
                "entry:clock-shutdown": slow_period_ps,
                "exit:xtal-restart": slow_period_ps,
            },
        }

    # --- processor-facing link ------------------------------------------------------

    def idle_proc_link(self) -> None:
        """Quiesce the chipset side of the processor links (ODRIPS)."""
        self.proc_link_component.set_power(0.0)

    def resume_proc_link(self) -> None:
        self.proc_link_component.set_power(self.budget.chipset_proc_link_w)

    # --- offloaded thermal wake (Sec. 5.2) ---------------------------------------------

    def attach_thermal_line(self, line) -> None:
        """Route the EC thermal line to the spare GPIO's 32 kHz monitor."""
        def on_thermal() -> None:
            self.wake_hub.external_wake(WakeEventType.THERMAL, detail="ec-gpio")

        self._thermal_monitor = GPIOMonitor(
            self.kernel, self.slow_clock, line, on_thermal, name="pch.thermal-monitor"
        )

    def arm_thermal_monitor(self) -> None:
        if self._thermal_monitor is None:
            raise FlowError("no thermal line attached")
        self._thermal_monitor.arm()

    def disarm_thermal_monitor(self) -> None:
        if self._thermal_monitor is not None:
            self._thermal_monitor.disarm()

    @property
    def thermal_monitor(self) -> Optional[GPIOMonitor]:
        return self._thermal_monitor

    # --- FET control ------------------------------------------------------------------

    def drive_fet(self, conducting: bool) -> None:
        """Drive the AON-IO FET gate through the dedicated spare GPIO."""
        self.gpios.drive(self.fet_gpio, conducting)
