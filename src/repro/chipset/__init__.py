"""Chipset (PCH) models: the AON domain, the wake hub, and the dual timer.

ODRIPS turns the chipset into "the 'hub' for hosting the wake-up events
in DRIPS" (Sec. 3, Observation 2): it gains the fast/slow timer pair of
Sec. 4, monitors the offloaded thermal line on a spare GPIO at 32 kHz,
and drives the FET that gates the processor's AON IO bank.
"""

from repro.chipset.wake_hub import WakeHub
from repro.chipset.pch import Chipset

__all__ = ["Chipset", "WakeHub"]
