"""Processor idle power states (C-states).

"C-states are numbered from 0 to n.  C0 is referred to as the Active
state ... the larger the i, the deeper the power state" (Sec. 1).  C10 is
the DRIPS of the Skylake platform (the Haswell predecessor's C10 exit
latency was ~3 ms, Sec. 3).
"""

from __future__ import annotations

import enum


class CState(enum.IntEnum):
    """Package C-states of the modeled platform (a representative ladder)."""

    C0 = 0    # active
    C2 = 2    # clock-gated cores, caches live
    C6 = 6    # cores power-gated, context in S/R SRAM, LLC live
    C8 = 8    # + LLC flushed and off, compute VRs off
    C10 = 10  # DRIPS: everything off except the AON set (Fig. 1(a))

    @property
    def is_active(self) -> bool:
        return self is CState.C0

    @property
    def is_drips(self) -> bool:
        return self is CState.C10

    @property
    def deeper_than(self):
        """Comparator helper: ``CState.C8.deeper_than(CState.C6)``."""
        def compare(other: "CState") -> bool:
            return int(self) > int(other)
        return compare


#: Representative residency-power ladder used by the PMU's state selection
#: (battery-side watts while resident, display off).  C0 power comes from
#: the ActivePowerModel; these cover the intermediate states.
CSTATE_POWER_WATTS = {
    CState.C2: 0.80,
    CState.C6: 0.30,
    CState.C8: 0.12,
}

#: Exit latencies the PMU weighs against LTR (picoseconds).
CSTATE_EXIT_LATENCY_PS = {
    CState.C0: 0,
    CState.C2: 5_000_000,        # 5 us
    CState.C6: 50_000_000,       # 50 us
    CState.C8: 120_000_000,      # 120 us
    CState.C10: 300_000_000,     # 300 us (DRIPS exit, Sec. 7)
}
