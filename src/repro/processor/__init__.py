"""Processor-side models: compute domains, LLC, system agent, PMU,
save/restore SRAMs and the Boot SRAM/FSM.

The processor die is where all three of the paper's inefficiencies live:
the high-speed wake-up timer in the PMU, the always-on IO bank, and the
high-leakage save/restore SRAMs (Fig. 1, items 4, 5, 7, 8).
"""

from repro.processor.cstates import CState
from repro.processor.core import ComputeDomain
from repro.processor.llc import LastLevelCache
from repro.processor.sr_sram import SaveRestoreSRAMs
from repro.processor.boot import BootSRAM
from repro.processor.system_agent import SystemAgent
from repro.processor.pmu import ProcessorPMU

__all__ = [
    "BootSRAM",
    "CState",
    "ComputeDomain",
    "LastLevelCache",
    "ProcessorPMU",
    "SaveRestoreSRAMs",
    "SystemAgent",
]
