"""The Boot SRAM and Boot FSM (Sec. 6.2).

With the context in DRAM, a chicken-and-egg problem appears at DRIPS
exit: the PMU, memory controller and MEE must run *before* the DRAM can
be read.  "Therefore, approximately 1 KB of the processor context (only
0.5 % of the entire processor context) is still required to be stored
on-chip, in a dedicated small SRAM (Boot_SRAM) using a special FSM
(Boot_FSM)."
"""

from __future__ import annotations

import json
from typing import Dict, Optional

from repro.errors import FlowError, MemoryFault
from repro.memory.sram import SRAMDevice
from repro.power.domain import PowerDomain


class BootSRAM:
    """A ~1 KB always-on SRAM holding the bootstrap context.

    Stores a serialized dict of the states the Boot FSM restores first:
    PMU configuration, memory-controller configuration, and the MEE's
    on-chip trusted state (root counter).  The array's leakage is tiny —
    it is part of the un-gated PMU slice of the budget.
    """

    def __init__(self, domain: PowerDomain, capacity_bytes: int = 1024,
                 leakage_watts: float = 25e-6) -> None:
        self.sram = SRAMDevice(
            "boot_sram",
            capacity_bytes=capacity_bytes,
            leakage_watts_per_byte=leakage_watts / capacity_bytes,
            power_component=domain.new_component("proc.boot_sram"),
        )
        self._length = 0

    def store(self, pmu_state: Dict, controller_state: Dict, mee_state: Optional[bytes]) -> None:
        """Serialize and store the bootstrap context."""
        record = {
            "pmu": pmu_state,
            "controller": controller_state,
            "mee": mee_state.hex() if mee_state is not None else None,
        }
        blob = json.dumps(record, sort_keys=True).encode("utf-8")
        if len(blob) > self.sram.capacity_bytes:
            raise MemoryFault(
                f"boot context {len(blob)} B exceeds Boot SRAM "
                f"{self.sram.capacity_bytes} B"
            )
        self.sram.write(0, blob)
        self._length = len(blob)

    def load(self) -> Dict:
        """Read back the bootstrap context."""
        if self._length == 0:
            raise FlowError("Boot SRAM is empty; nothing was stored")
        blob = self.sram.read(0, self._length)
        record = json.loads(blob.decode("utf-8"))
        if record.get("mee") is not None:
            record["mee"] = bytes.fromhex(record["mee"])
        return record

    @property
    def stored_bytes(self) -> int:
        return self._length

    def clear(self) -> None:
        self._length = 0
