"""The last-level cache and its flush engine.

DRIPS entry step (1) is "flushing the last level cache (LLC) into DRAM"
(Sec. 2.2).  The flush latency depends on how much of the cache is dirty
and on the effective DRAM write bandwidth — which is why lowering the
DRAM frequency (Fig. 6(c)) stretches the entry flow.

The context-flushing FSMs of Sec. 6.2 reuse "a mechanism similar to the
one that is already implemented ... for flushing the LLC into DRAM";
this class is that mechanism.
"""

from __future__ import annotations

from repro.errors import FlowError
from repro.units import PICOSECONDS_PER_SECOND


class LastLevelCache:
    """A capacity/dirtiness model of the L3 cache."""

    def __init__(self, capacity_bytes: int, typical_dirty_fraction: float = 0.25) -> None:
        if capacity_bytes <= 0:
            raise FlowError("LLC capacity must be positive")
        if not 0 <= typical_dirty_fraction <= 1:
            raise FlowError("dirty fraction must be within [0, 1]")
        self.capacity_bytes = capacity_bytes
        self.typical_dirty_fraction = typical_dirty_fraction
        self._dirty_bytes = 0
        self._powered = True
        self.flush_count = 0

    @property
    def powered(self) -> bool:
        return self._powered

    @property
    def dirty_bytes(self) -> int:
        return self._dirty_bytes

    def touch(self, dirty_bytes: int) -> None:
        """Record write activity (accumulates dirty lines, capped)."""
        if dirty_bytes < 0:
            raise FlowError("dirty bytes cannot be negative")
        self._dirty_bytes = min(self.capacity_bytes, self._dirty_bytes + dirty_bytes)

    def mark_typical_dirty(self) -> None:
        """Assume the steady-state dirtiness of an idle-ish system."""
        self._dirty_bytes = round(self.capacity_bytes * self.typical_dirty_fraction)

    def flush_latency_ps(self, dram_bandwidth_bytes_per_s: float) -> int:
        """Time to write all dirty lines back at the given bandwidth."""
        if dram_bandwidth_bytes_per_s <= 0:
            raise FlowError("bandwidth must be positive")
        seconds = self._dirty_bytes / dram_bandwidth_bytes_per_s
        return round(seconds * PICOSECONDS_PER_SECOND)

    def flush(self) -> int:
        """Flush: returns the number of bytes written back."""
        if not self._powered:
            raise FlowError("cannot flush a powered-off LLC")
        written = self._dirty_bytes
        self._dirty_bytes = 0
        self.flush_count += 1
        return written

    def power_off(self) -> None:
        """Turn the array off (legal only when clean)."""
        if self._dirty_bytes:
            raise FlowError(
                f"LLC still has {self._dirty_bytes} dirty bytes; flush before power-off"
            )
        self._powered = False

    def power_on(self) -> None:
        self._powered = True
