"""The processor's power-management unit (PMU).

The PMU owns the main timer (TSC), decides the target idle state from
LTR and TNTE hints (Sec. 2.2), monitors wake events in baseline DRIPS,
and is "partially power-gated" as the last entry step.  With ODRIPS the
wake monitoring moves to the chipset, which lets the PMU gate deeper
(Fig. 3(a) shows the added processor PMU power-gate).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.clocks.clock import DerivedClock
from repro.errors import FlowError, TimerError
from repro.processor.cstates import CSTATE_EXIT_LATENCY_PS, CState
from repro.sim.kernel import Event, Kernel
from repro.timers.tsc import TimeStampCounter


class ProcessorPMU:
    """PMU: TSC ownership, idle-state selection, baseline wake monitoring."""

    #: Gating modes and what they mean for the PMU's own power.
    MODE_ACTIVE = "active"          # folded into uncore power (component at 0)
    MODE_DRIPS = "drips"            # baseline partial gating
    MODE_DEEP = "deep"              # ODRIPS: chipset owns wake events
    MODE_OFF = "off"                # context in Boot SRAM during CTX restore

    def __init__(
        self,
        kernel: Kernel,
        fast_clock: DerivedClock,
        component,
        drips_power_watts: float,
        deep_power_watts: float,
    ) -> None:
        self.kernel = kernel
        self.tsc = TimeStampCounter("main_timer", fast_clock)
        self.component = component
        self.drips_power_watts = drips_power_watts
        self.deep_power_watts = deep_power_watts
        self._mode = self.MODE_ACTIVE
        self._wake_target: Optional[int] = None
        self._wake_event: Optional[Event] = None
        self._wake_callback: Optional[Callable[[int], None]] = None
        #: Firmware scratch registers that must survive DRIPS (restored by
        #: the Boot FSM in CTX mode).
        self.firmware_state: Dict[str, int] = {"patch_rev": 0x2100, "flow_flags": 0}
        #: Optional repro.obs tracer; None keeps set_mode at one attribute check.
        self.obs = None

    # --- gating modes -------------------------------------------------------

    @property
    def mode(self) -> str:
        return self._mode

    def set_mode(self, mode: str) -> None:
        if mode == self.MODE_ACTIVE:
            self.component.set_power(0.0)
        elif mode == self.MODE_DRIPS:
            self.component.set_power(self.drips_power_watts)
        elif mode == self.MODE_DEEP:
            self.component.set_power(self.deep_power_watts)
        elif mode == self.MODE_OFF:
            self.component.set_power(0.0)
        else:
            raise FlowError(f"unknown PMU mode {mode!r}")
        obs = self.obs
        if obs is not None and mode != self._mode:
            obs.pmu_transition(self._mode, mode, self.kernel.now)
        self._mode = mode

    # --- idle-state selection (LTR + TNTE, Sec. 2.2) ---------------------------

    def select_idle_state(self, ltr_ps: int, tnte_ps: int) -> CState:
        """Deepest state whose exit fits LTR and whose transition cost is
        worth the expected idle time (a 2x exit-latency margin on TNTE)."""
        candidates = [CState.C10, CState.C8, CState.C6, CState.C2]
        for state in candidates:
            exit_latency = CSTATE_EXIT_LATENCY_PS[state]
            if exit_latency <= ltr_ps and 2 * exit_latency <= tnte_ps:
                return state
        return CState.C0

    # --- wake scheduling ----------------------------------------------------------

    def schedule_timer_event(self, target_count: int) -> None:
        """Register the next OS/firmware timer event (TSC target)."""
        if target_count < 0:
            raise TimerError("timer target cannot be negative")
        self._wake_target = target_count

    @property
    def wake_target(self) -> Optional[int]:
        return self._wake_target

    def set_wake_callback(self, callback: Callable[[int], None]) -> None:
        """``callback(target)`` fires when the monitored timer expires."""
        self._wake_callback = callback

    def arm_baseline_monitor(self) -> int:
        """Baseline DRIPS: the PMU itself monitors the timer at 24 MHz.

        Returns the absolute wake time.  Raises when no event is pending
        (a platform must never enter DRIPS with nothing to wake it).
        """
        if self._wake_target is None:
            raise FlowError("no timer event scheduled; refusing to sleep forever")
        wake_ps = self.tsc.time_of_count(self._wake_target, self.kernel.now)
        self._wake_event = self.kernel.schedule_at(
            wake_ps, self._fire_wake, label="pmu:timer-wake"
        )
        return wake_ps

    def disarm_monitor(self) -> None:
        """Cancel the pending baseline wake (e.g. external wake came first)."""
        if self._wake_event is not None and self._wake_event.pending:
            self._wake_event.cancel()
        self._wake_event = None

    def _fire_wake(self) -> None:
        self._wake_event = None
        target = self._wake_target
        self._wake_target = None
        if self._wake_callback is not None and target is not None:
            self._wake_callback(target)

    # --- context for the Boot SRAM -----------------------------------------------------

    def export_state(self) -> Dict:
        """The PMU state the Boot FSM must restore in CTX mode."""
        return {
            "firmware_state": dict(self.firmware_state),
            "wake_target": self._wake_target,
        }

    def import_state(self, state: Dict) -> None:
        self.firmware_state = dict(state["firmware_state"])
        self._wake_target = state["wake_target"]
