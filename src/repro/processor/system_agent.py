"""The system agent: memory controller, SA context, and the flush FSMs.

"The system agent houses the traditional Northbridge.  It contains
several functionalities, such as the memory controller and the IO
controllers" (Sec. 2.2, footnote 1).  Its context (configuration/status
registers, firmware persistent data) is what DRIPS entry step (3) stores
into the SA S/R SRAM — or, with CTX-SGX-DRAM, what the SA FSM flushes
into the protected DRAM region (Fig. 4).
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.errors import FlowError
from repro.memory.controller import MemoryController
from repro.processor.core import synthesize_context


class SystemAgent:
    """SA context ownership plus the two context-flushing FSMs.

    The FSM layout follows Fig. 4: the **SA FSM** moves the system-agent
    context; the **LLC FSM** (located near the LLC) moves the cores +
    graphics context.  Both address the protected region through the
    memory controller, which redirects them into the MEE.
    """

    def __init__(
        self,
        controller: MemoryController,
        context_bytes: int,
    ) -> None:
        self.controller = controller
        self.context_bytes = context_bytes
        self._context: Optional[bytes] = None
        self._generation = 0
        #: Base addresses the PMU firmware programs before triggering the
        #: FSMs ("The PMU firmware configures each FSM with the
        #: protected-memory base-address (BaseAddr)", Sec. 6.2).
        self.sa_base_addr: Optional[int] = None
        self.compute_base_addr: Optional[int] = None

    # --- SA context -----------------------------------------------------------

    def capture_context(self) -> bytes:
        """Produce the SA context blob to be saved."""
        self._generation += 1
        self._context = synthesize_context("system_agent", self.context_bytes, self._generation)
        return self._context

    def verify_restored(self, blob: bytes) -> None:
        if self._context is None:
            raise FlowError("system agent: no context was captured")
        if blob != self._context:
            raise FlowError("system agent: restored context does not match")

    @property
    def expected_context(self) -> Optional[bytes]:
        return self._context

    # --- FSM configuration ---------------------------------------------------------

    def configure_fsms(self, sa_base_addr: int, compute_base_addr: int) -> None:
        """Program the protected-region base addresses into both FSMs."""
        if sa_base_addr < 0 or compute_base_addr < 0:
            raise FlowError("FSM base addresses must be non-negative")
        self.sa_base_addr = sa_base_addr
        self.compute_base_addr = compute_base_addr

    def _require_configured(self) -> None:
        if self.sa_base_addr is None or self.compute_base_addr is None:
            raise FlowError("FSM base addresses not configured by PMU firmware")

    # --- flush / restore through the memory controller -------------------------------

    def sa_fsm_flush(self, blob: bytes) -> int:
        """SA FSM: write the SA context to the protected region.

        Returns the transfer latency (through the MEE when the region is
        protected).
        """
        self._require_configured()
        assert self.sa_base_addr is not None
        return self._bulk_write(self.sa_base_addr, blob)

    def sa_fsm_restore(self, length: int) -> Tuple[bytes, int]:
        """SA FSM: read the SA context back; returns ``(blob, latency)``."""
        self._require_configured()
        assert self.sa_base_addr is not None
        return self._bulk_read(self.sa_base_addr, length)

    def llc_fsm_flush(self, blob: bytes) -> int:
        """LLC FSM: write the cores + graphics context."""
        self._require_configured()
        assert self.compute_base_addr is not None
        return self._bulk_write(self.compute_base_addr, blob)

    def llc_fsm_restore(self, length: int) -> Tuple[bytes, int]:
        """LLC FSM: read the cores + graphics context back."""
        self._require_configured()
        assert self.compute_base_addr is not None
        return self._bulk_read(self.compute_base_addr, length)

    def _bulk_write(self, address: int, blob: bytes) -> int:
        rr = self.controller.range_register
        if rr.matches(address, len(blob)) and self.controller.mee is not None:
            region = rr.region
            assert region is not None
            self.controller.stats.writes += 1
            self.controller.stats.bytes_written += len(blob)
            self.controller.stats.protected_writes += 1
            return self.controller.mee.bulk_write(address - region.base, blob)
        return self.controller.write(address, blob)

    def _bulk_read(self, address: int, length: int) -> Tuple[bytes, int]:
        rr = self.controller.range_register
        if rr.matches(address, length) and self.controller.mee is not None:
            region = rr.region
            assert region is not None
            self.controller.stats.reads += 1
            self.controller.stats.bytes_read += length
            self.controller.stats.protected_reads += 1
            return self.controller.mee.bulk_read(address - region.base, length)
        return self.controller.read(address, length)
