"""The processor's save/restore SRAMs (items 7 and 8 of Fig. 1(a)).

Two arrays: one in the system agent for SA context, one near the LLC for
cores + graphics context.  In baseline DRIPS they hold the context at
retention voltage and burn the 9 % slice of Fig. 1(b); with CTX-SGX-DRAM
they are powered off entirely once the context has moved to the protected
DRAM region.
"""

from __future__ import annotations

from typing import Dict

from repro.config import ContextInventory
from repro.errors import MemoryFault
from repro.memory.sram import SRAMDevice, SRAMState
from repro.power.domain import PowerDomain


class SaveRestoreSRAMs:
    """The SA and cores/GFX S/R SRAM pair with a shared retention budget.

    ``retention_budget_watts`` is the battery-side power of both arrays
    at retention voltage (the 9 % slice); it is split between the arrays
    proportionally to capacity, which matches a uniform per-byte leakage.
    """

    def __init__(
        self,
        domain: PowerDomain,
        inventory: ContextInventory,
        retention_budget_watts: float,
    ) -> None:
        self.inventory = inventory
        total_bytes = inventory.total_bytes
        leak_per_byte = retention_budget_watts / total_bytes
        self.sa_sram = SRAMDevice(
            "sr_sram:sa",
            capacity_bytes=inventory.system_agent_bytes,
            leakage_watts_per_byte=leak_per_byte,
            power_component=domain.new_component("proc.sr_sram.sa"),
        )
        self.compute_sram = SRAMDevice(
            "sr_sram:cores_gfx",
            capacity_bytes=inventory.cores_bytes + inventory.graphics_bytes,
            leakage_watts_per_byte=leak_per_byte,
            power_component=domain.new_component("proc.sr_sram.cores_gfx"),
        )

    # --- context operations ----------------------------------------------------

    def save_sa_context(self, blob: bytes) -> None:
        """Store the system-agent context (arrays must be operational)."""
        if len(blob) > self.sa_sram.capacity_bytes:
            raise MemoryFault("SA context exceeds SA S/R SRAM capacity")
        self.sa_sram.write(0, blob)

    def load_sa_context(self, length: int) -> bytes:
        return self.sa_sram.read(0, length)

    def save_compute_context(self, blob: bytes) -> None:
        """Store the cores + graphics context."""
        if len(blob) > self.compute_sram.capacity_bytes:
            raise MemoryFault("compute context exceeds cores/GFX S/R SRAM capacity")
        self.compute_sram.write(0, blob)

    def load_compute_context(self, length: int) -> bytes:
        return self.compute_sram.read(0, length)

    # --- power states --------------------------------------------------------------

    def enter_retention(self) -> None:
        """Drop both arrays to retention voltage (baseline DRIPS)."""
        self.sa_sram.enter_retention()
        self.compute_sram.enter_retention()

    def exit_retention(self) -> None:
        self.sa_sram.exit_retention()
        self.compute_sram.exit_retention()

    def power_off(self) -> None:
        """Turn both arrays off (CTX-SGX-DRAM: context lives in DRAM)."""
        self.sa_sram.power_off()
        self.compute_sram.power_off()

    def power_on(self) -> None:
        self.sa_sram.power_on()
        self.compute_sram.power_on()

    @property
    def retention_power_watts(self) -> float:
        """Combined retention draw of both arrays."""
        return (
            self.sa_sram.retention_power_watts()
            + self.compute_sram.retention_power_watts()
        )

    @property
    def states(self) -> Dict[str, SRAMState]:
        return {
            "sa": self.sa_sram.state,
            "cores_gfx": self.compute_sram.state,
        }
