"""The compute domain: cores and graphics.

Models what the figures need: C0 power from the
:class:`~repro.config.ActivePowerModel` (the Fig. 6(b) frequency lever),
task execution time (fixed cycles / frequency — the race-to-sleep
mechanism), and context save/restore round trips.
"""

from __future__ import annotations

import hashlib
from typing import Optional

from repro.config import ActivePowerModel
from repro.errors import FlowError
from repro.power.domain import Component, PowerDomain
from repro.units import PICOSECONDS_PER_SECOND


def synthesize_context(label: str, length: int, generation: int = 0) -> bytes:
    """Deterministic pseudo-random context bytes (CSRs, patches, fuses).

    Deterministic so tests can verify the save/restore round trip
    bit-for-bit; parameterized by ``generation`` so successive DRIPS
    cycles store *different* context (catching stale-restore bugs).
    """
    out = bytearray()
    counter = 0
    seed = f"{label}:{generation}".encode("utf-8")
    while len(out) < length:
        out.extend(hashlib.sha256(seed + counter.to_bytes(8, "big")).digest())
        counter += 1
    return bytes(out[:length])


class ComputeDomain:
    """Cores + graphics behind the compute voltage regulators."""

    def __init__(
        self,
        name: str,
        domain: PowerDomain,
        active_model: ActivePowerModel,
        frequency_ghz: float,
        context_bytes: int,
    ) -> None:
        self.name = name
        self.active_model = active_model
        self.frequency_ghz = frequency_ghz
        self.context_bytes = context_bytes
        self.component: Component = domain.new_component(f"{name}.compute")
        self.domain = domain
        self._active = False
        self._context: Optional[bytes] = None
        self._generation = 0
        self.tasks_run = 0

    # --- frequency -----------------------------------------------------------

    def set_frequency(self, frequency_ghz: float) -> None:
        """Change the core clock (the Fig. 6(b) sweep lever)."""
        if frequency_ghz <= 0:
            raise FlowError(f"{self.name}: frequency must be positive")
        self.frequency_ghz = frequency_ghz
        if self._active:
            self._apply_active_power()

    @property
    def voltage(self) -> float:
        return self.active_model.voltage(self.frequency_ghz)

    # --- activity ---------------------------------------------------------------

    @property
    def active(self) -> bool:
        return self._active

    def start(self) -> None:
        """Enter C0 (domain must be powered)."""
        if not self.domain.delivering:
            raise FlowError(f"{self.name}: compute rail is off")
        self._active = True
        self._apply_active_power()

    def stop(self) -> None:
        """Leave C0 (clock-gate; power drops to near zero)."""
        self._active = False
        self.component.set_power(0.0)

    def _apply_active_power(self) -> None:
        self.component.set_dynamic(self.active_model.core_dynamic_watts(self.frequency_ghz))

    def task_duration_ps(self, cycles: int) -> int:
        """Execution time of a ``cycles``-long task at the current clock."""
        if cycles < 0:
            raise FlowError("cycles cannot be negative")
        seconds = cycles / (self.frequency_ghz * 1e9)
        return round(seconds * PICOSECONDS_PER_SECOND)

    def run_task(self, cycles: int) -> int:
        """Account one task; returns its duration in picoseconds."""
        if not self._active:
            raise FlowError(f"{self.name}: cannot run a task while idle")
        self.tasks_run += 1
        return self.task_duration_ps(cycles)

    # --- context ---------------------------------------------------------------------

    def capture_context(self) -> bytes:
        """Produce the context blob to save before power-gating."""
        self._generation += 1
        self._context = synthesize_context(self.name, self.context_bytes, self._generation)
        return self._context

    def verify_restored(self, blob: bytes) -> None:
        """Check a restored blob against what was captured."""
        if self._context is None:
            raise FlowError(f"{self.name}: no context was captured")
        if blob != self._context:
            raise FlowError(f"{self.name}: restored context does not match saved context")

    @property
    def expected_context(self) -> Optional[bytes]:
        return self._context
