"""The paper's core contribution: ODRIPS.

* :class:`TechniqueSet` — the three techniques (WAKE-UP-OFF, AON-IO-GATE,
  CTX-SGX-DRAM) as a composable, validated set.
* :class:`ContextStore` — where the processor context lives in deep idle
  (processor SRAM baseline, chipset SRAM, SGX-protected DRAM, eMRAM, PCM).
* :class:`ODRIPSController` — the high-level API tying a platform to a
  technique set and running connected-standby measurements.
* :mod:`repro.core.experiments` — one driver per paper figure/table.
"""

from repro.core.techniques import ContextStore, Technique, TechniqueSet
from repro.core.odrips import ODRIPSController, StandbyMeasurement

__all__ = [
    "ContextStore",
    "ODRIPSController",
    "StandbyMeasurement",
    "Technique",
    "TechniqueSet",
]
