"""The three ODRIPS techniques and the context-store choice.

Sec. 8 evaluates the techniques incrementally:

* **WAKE-UP-OFF** — migrate timer wake-event handling to the chipset and
  toggle it with the 32.768 kHz clock so all processor-side clock sources
  (including the 24 MHz crystal) can be turned off (Sec. 4).
* **AON-IO-GATE** — offload all AON IO functionality to the chipset and
  power-gate the processor's AON IO bank through an on-board FET
  (Sec. 5).  *Requires* WAKE-UP-OFF: "the power gating of AON IOs should
  be applied along with wake-up event handling as the latter facilitates
  the power-gating of AON IOs by migrating the timer to the chipset"
  (Sec. 8, footnote 4).
* **CTX-SGX-DRAM** — store the processor context in a protected DRAM
  region through the MEE instead of in on-chip S/R SRAMs (Sec. 6).
  Independent of the other two.

Sec. 8.3 swaps the context store: eMRAM (ODRIPS-MRAM) and PCM as main
memory (ODRIPS-PCM).
"""

from __future__ import annotations

import enum
from typing import FrozenSet, Iterable

from repro.errors import ConfigError


class Technique(enum.Enum):
    """One of the three ODRIPS power-reduction techniques."""

    WAKE_UP_OFF = "wake-up-off"
    AON_IO_GATE = "aon-io-gate"
    CTX_SGX_DRAM = "ctx-sgx-dram"


class ContextStore(enum.Enum):
    """Where the processor context is held while in deep idle."""

    PROCESSOR_SRAM = "processor-sram"   # baseline: high-leakage S/R SRAMs
    CHIPSET_SRAM = "chipset-sram"       # Sec. 6.1 alternative 2 (5x less leaky)
    DRAM_SGX = "dram-sgx"               # the paper's choice (CTX-SGX-DRAM)
    EMRAM = "emram"                     # Sec. 8.3 ODRIPS-MRAM
    PCM = "pcm"                         # Sec. 8.3 ODRIPS-PCM (replaces DRAM)

    @property
    def off_chip(self) -> bool:
        """True when the context leaves the processor die."""
        return self in (ContextStore.CHIPSET_SRAM, ContextStore.DRAM_SGX, ContextStore.PCM)

    @property
    def non_volatile(self) -> bool:
        """True when the store retains data with its supply removed."""
        return self in (ContextStore.EMRAM, ContextStore.PCM)


class TechniqueSet:
    """A validated combination of techniques plus the context store."""

    def __init__(
        self,
        techniques: Iterable[Technique] = (),
        context_store: ContextStore = ContextStore.PROCESSOR_SRAM,
    ) -> None:
        self.techniques: FrozenSet[Technique] = frozenset(techniques)
        self.context_store = context_store
        self._validate()

    def _validate(self) -> None:
        if Technique.AON_IO_GATE in self.techniques and Technique.WAKE_UP_OFF not in self.techniques:
            raise ConfigError(
                "AON-IO-GATE requires WAKE-UP-OFF: the chipset must own the "
                "wake events before the processor IO bank can be gated "
                "(Sec. 8, footnote 4)"
            )
        context_moved = self.context_store is not ContextStore.PROCESSOR_SRAM
        if context_moved != (Technique.CTX_SGX_DRAM in self.techniques):
            if self.context_store in (ContextStore.DRAM_SGX, ContextStore.CHIPSET_SRAM,
                                      ContextStore.EMRAM, ContextStore.PCM):
                raise ConfigError(
                    f"context store {self.context_store.value} requires the "
                    "CTX-SGX-DRAM technique to be enabled"
                )
            raise ConfigError(
                "CTX-SGX-DRAM enabled but the context store is still the "
                "processor SRAM"
            )

    # --- queries ------------------------------------------------------------

    def __contains__(self, technique: Technique) -> bool:
        return technique in self.techniques

    @property
    def wake_up_off(self) -> bool:
        return Technique.WAKE_UP_OFF in self.techniques

    @property
    def aon_io_gate(self) -> bool:
        return Technique.AON_IO_GATE in self.techniques

    @property
    def ctx_offloaded(self) -> bool:
        return Technique.CTX_SGX_DRAM in self.techniques

    @property
    def is_baseline(self) -> bool:
        return not self.techniques

    @property
    def is_full_odrips(self) -> bool:
        return self.techniques == frozenset(Technique)

    def label(self) -> str:
        """The name the paper uses for this combination in Fig. 6."""
        if self.is_baseline:
            return "Baseline (DRIPS)"
        if self.is_full_odrips:
            if self.context_store is ContextStore.EMRAM:
                return "ODRIPS-MRAM"
            if self.context_store is ContextStore.PCM:
                return "ODRIPS-PCM"
            return "ODRIPS"
        if self.techniques == {Technique.WAKE_UP_OFF}:
            return "WAKE-UP-OFF"
        if self.techniques == {Technique.WAKE_UP_OFF, Technique.AON_IO_GATE}:
            return "AON-IO-GATE"
        if self.techniques == {Technique.CTX_SGX_DRAM}:
            return "CTX-SGX-DRAM"
        return "+".join(sorted(t.value for t in self.techniques))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<TechniqueSet {self.label()} store={self.context_store.value}>"

    # --- canonical sets -------------------------------------------------------

    @classmethod
    def baseline(cls) -> "TechniqueSet":
        """Baseline DRIPS: no techniques, context in processor SRAM."""
        return cls()

    @classmethod
    def wake_up_off_only(cls) -> "TechniqueSet":
        return cls({Technique.WAKE_UP_OFF})

    @classmethod
    def with_io_gating(cls) -> "TechniqueSet":
        """Techniques 1 + 2 (the paper's AON-IO-GATE bar includes 1)."""
        return cls({Technique.WAKE_UP_OFF, Technique.AON_IO_GATE})

    @classmethod
    def ctx_sgx_dram_only(cls) -> "TechniqueSet":
        return cls({Technique.CTX_SGX_DRAM}, ContextStore.DRAM_SGX)

    @classmethod
    def odrips(cls, context_store: ContextStore = ContextStore.DRAM_SGX) -> "TechniqueSet":
        """All three techniques; optionally with an NVM context store."""
        if context_store is ContextStore.PROCESSOR_SRAM:
            raise ConfigError("full ODRIPS moves the context off the processor SRAM")
        return cls(frozenset(Technique), context_store)

    @classmethod
    def odrips_mram(cls) -> "TechniqueSet":
        return cls.odrips(ContextStore.EMRAM)

    @classmethod
    def odrips_pcm(cls) -> "TechniqueSet":
        return cls.odrips(ContextStore.PCM)
