"""The high-level ODRIPS API.

``ODRIPSController`` is the front door of the library: pick a technique
set, get a wired platform, run connected-standby measurements, and
compare against the baseline — the workflow behind every figure of the
evaluation.

Example::

    from repro.core import ODRIPSController, TechniqueSet

    baseline = ODRIPSController(TechniqueSet.baseline()).measure(cycles=2)
    odrips = ODRIPSController(TechniqueSet.odrips()).measure(cycles=2)
    saving = 1 - odrips.average_power_w / baseline.average_power_w
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, Optional

from repro.config import PlatformConfig, StandbyWorkloadConfig, skylake_config
from repro.core.techniques import TechniqueSet
from repro.obs.profile import host_phase
from repro.effects import declares_effects
from repro.obs.runlog import active_recorder, host_wall_s
from repro.obs.stream import active_stream
from repro.system.skylake import SkylakePlatform
from repro.workloads.standby import ConnectedStandbyRunner, StandbyResult

if TYPE_CHECKING:  # import cycle guard: repro.perf is optional plumbing
    from repro.perf.cache import SimulationCache


@dataclass
class StandbyMeasurement:
    """A digested connected-standby measurement."""

    label: str
    average_power_w: float
    drips_power_w: float
    drips_residency: float
    active_power_w: float
    entry_latency_us: float
    exit_latency_us: float
    drips_breakdown_w: Dict[str, float]
    #: Macro-engine statistics of the run (None for exact runs).
    macro: Optional[Dict[str, int]] = field(default=None)

    @classmethod
    def from_result(cls, label: str, result: StandbyResult) -> "StandbyMeasurement":
        entry = result.entry_latencies_ps
        exits = result.exit_latencies_ps
        return cls(
            label=label,
            average_power_w=result.average_power_w,
            drips_power_w=result.drips_power_w,
            drips_residency=result.drips_residency,
            active_power_w=result.active_power_w,
            entry_latency_us=(sum(entry) / len(entry) / 1e6) if entry else 0.0,
            exit_latency_us=(sum(exits) / len(exits) / 1e6) if exits else 0.0,
            drips_breakdown_w=result.drips_breakdown_w,
            macro=result.macro,
        )

    def macro_provenance(self) -> Dict[str, Any]:
        """Backend provenance for the flight recorder and ``repro explain``.

        The explainer refuses to diff a macro-stepped run against an
        exact one, so every record says which backend produced it.
        """
        stats = self.macro or {}
        return {
            "enabled": self.macro is not None,
            "cycles_compiled": int(stats.get("cycles_compiled", 0)),
            "steps": int(stats.get("macro_steps", 0)),
        }

    def saving_vs(self, baseline: "StandbyMeasurement") -> float:
        """Fractional average-power saving against ``baseline``."""
        return 1.0 - self.average_power_w / baseline.average_power_w


class ODRIPSController:
    """Builds a platform for a technique set and runs measurements.

    Each measurement builds a *fresh* platform (the paper's debug switch
    equivalent: flip the configuration, re-run the workload) so runs are
    independent and deterministic.
    """

    def __init__(
        self,
        techniques: Optional[TechniqueSet] = None,
        config: Optional[PlatformConfig] = None,
        workload: Optional[StandbyWorkloadConfig] = None,
        cache: Optional["SimulationCache"] = None,
    ) -> None:
        """``cache`` opts the controller into memoized measurements: a
        :class:`~repro.perf.cache.SimulationCache` keyed by the full
        configuration tree (platform, techniques, workload, measurement
        arguments).  Runs are deterministic, so a shared cache lets
        distinct experiment drivers reuse identical runs — cached
        measurements are shared objects and must not be mutated."""
        self.techniques = techniques if techniques is not None else TechniqueSet.baseline()
        self.config = config if config is not None else skylake_config()
        self.workload = workload if workload is not None else StandbyWorkloadConfig()
        self.cache = cache

    def build_platform(self, **platform_kwargs) -> SkylakePlatform:
        """A freshly wired platform for this technique set."""
        return SkylakePlatform(self.config, self.techniques, **platform_kwargs)

    @declares_effects("time")  # flight-recorder wall time, never in the result
    def measure(
        self,
        cycles: int = 2,
        idle_interval_s: Optional[float] = None,
        maintenance_s: Optional[float] = None,
        core_freq_ghz: Optional[float] = None,
        dram_rate_hz: Optional[float] = None,
        external_wakes: bool = False,
        period_s: Optional[float] = None,
        macro: bool = False,
    ) -> StandbyMeasurement:
        """Run a connected-standby measurement and digest the result.

        ``macro=True`` opts into cycle-compiled macro-stepping
        (:mod:`repro.sim.macro`): bit-for-bit identical results for
        periodic workloads, orders of magnitude faster for long horizons.
        The flag participates in the cache key, so exact and macro runs
        never share cache entries.

        With a :attr:`cache` configured, identical configurations return
        the memoized :class:`StandbyMeasurement` without re-simulating.

        When a flight recorder is installed
        (:func:`repro.obs.runlog.active_recorder`) the measurement's host
        wall time and cache-hit status are contributed to the run record.
        """
        recorder = active_recorder()
        stream = active_stream()
        start_s = (
            host_wall_s() if (recorder is not None or stream is not None) else 0.0
        )
        arguments = {
            "cycles": cycles,
            "idle_interval_s": idle_interval_s,
            "maintenance_s": maintenance_s,
            "core_freq_ghz": core_freq_ghz,
            "dram_rate_hz": dram_rate_hz,
            "external_wakes": external_wakes,
            "period_s": period_s,
            "macro": macro,
        }
        if stream is not None:
            # exemplar labels for the OpenMetrics exposition: which
            # technique set and exact configuration produced the samples
            from repro.perf.fingerprint import fingerprint  # import cycle guard

            stream.set_label("experiment", self.techniques.label())
            stream.set_label(
                "fingerprint",
                fingerprint(
                    "ODRIPSController.measure",
                    self.config,
                    self.techniques,
                    self.workload,
                    arguments,
                ),
            )
        cached = False
        if self.cache is not None:
            key = self.cache.key(
                "ODRIPSController.measure",
                self.config,
                self.techniques,
                self.workload,
                arguments,
            )
            cached = key in self.cache
            result = self.cache.get_or_run(
                key, lambda: self._measure_uncached(**arguments)
            )
        else:
            result = self._measure_uncached(**arguments)
        if recorder is not None:
            recorder.measurement(
                result.label,
                host_wall_s() - start_s,
                cached,
                macro=result.macro_provenance(),
            )
        if stream is not None:
            stream.histogram("measure.average_power_w").observe(
                result.average_power_w
            )
            stream.histogram("measure.wall_s").observe(host_wall_s() - start_s)
        return result

    def _measure_uncached(
        self,
        cycles: int = 2,
        idle_interval_s: Optional[float] = None,
        maintenance_s: Optional[float] = None,
        core_freq_ghz: Optional[float] = None,
        dram_rate_hz: Optional[float] = None,
        external_wakes: bool = False,
        period_s: Optional[float] = None,
        macro: bool = False,
    ) -> StandbyMeasurement:
        with host_phase("build"):
            platform = self.build_platform()
            if core_freq_ghz is not None:
                platform.set_core_frequency(core_freq_ghz)
            if dram_rate_hz is not None:
                platform.set_dram_frequency(dram_rate_hz)
            runner = ConnectedStandbyRunner(
                platform,
                workload=self.workload,
                idle_interval_s=idle_interval_s,
                maintenance_s=maintenance_s,
                external_wakes=external_wakes,
                period_s=period_s,
                macro=macro,
            )
        with host_phase("simulate"):
            result = runner.run(cycles=cycles)
        return StandbyMeasurement.from_result(self.techniques.label(), result)

    def measure_raw(
        self,
        cycles: int = 2,
        idle_interval_s: Optional[float] = None,
        maintenance_s: Optional[float] = None,
        macro: bool = False,
    ) -> StandbyResult:
        """Run a measurement and return the full :class:`StandbyResult`."""
        platform = self.build_platform()
        runner = ConnectedStandbyRunner(
            platform,
            workload=self.workload,
            idle_interval_s=idle_interval_s,
            maintenance_s=maintenance_s,
            macro=macro,
        )
        return runner.run(cycles=cycles)

    def measure_raw_periodic(
        self,
        cycles: int,
        maintenance_s: float,
        period_s: float,
        idle_s: float,
    ) -> StandbyResult:
        """Fixed-period run (the break-even sweep schedule of Sec. 7)."""
        platform = self.build_platform()
        runner = ConnectedStandbyRunner(
            platform,
            workload=self.workload,
            idle_interval_s=idle_s,
            maintenance_s=maintenance_s,
            period_s=period_s,
        )
        return runner.run(cycles=cycles)
