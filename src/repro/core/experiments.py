"""One driver per table/figure of the paper's evaluation.

Each function runs the corresponding experiment on the simulator and
returns a structured result carrying both the measured values and the
paper's published values, so benches and ``EXPERIMENTS.md`` can print
paper-vs-measured side by side.

Index (see DESIGN.md for the full mapping):

* :func:`fig1b_breakdown` — DRIPS power breakdown.
* :func:`fig2_connected_standby` — baseline average power + residency.
* :func:`fig6a_techniques` — per-technique savings (and break-evens).
* :func:`fig6b_core_frequency` — core-frequency sweep.
* :func:`fig6c_dram_frequency` — DRAM-frequency sweep.
* :func:`fig6d_emerging_memories` — ODRIPS-MRAM / ODRIPS-PCM.
* :func:`sec63_context_latency` — 200 KB context save/restore latency.
* :func:`sec413_calibration` — Step register sizing (m=10, f=21).
* :func:`table1_parameters` — system parameters.
"""

from __future__ import annotations

import functools
import inspect
from dataclasses import dataclass, field
from functools import partial
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Tuple

from repro.config import (
    PlatformConfig,
    skylake_config,
    table1_rows,
)
from repro.core.odrips import ODRIPSController, StandbyMeasurement
from repro.core.techniques import TechniqueSet
from repro.analysis.breakdown import fig1b_shares
from repro.analysis.breakeven import find_break_even
from repro.analysis.sweep import sweep
from repro.obs.runlog import active_recorder, host_wall_s
from repro.perf.fingerprint import fingerprint
from repro.timers.calibration import (
    fractional_bits_for_precision,
    integer_bits_for_ratio,
    worst_case_drift_ppb,
)

if TYPE_CHECKING:
    from repro.perf.cache import SimulationCache


# ---------------------------------------------------------------------------
# Experiment registry and golden values
# ---------------------------------------------------------------------------

#: Golden-value comparison kinds understood by :meth:`GoldenValue.evaluate`
#: and the regression watchdog (:mod:`repro.regress`).
GOLDEN_KINDS = ("absolute", "relative", "ceiling", "floor")


@dataclass(frozen=True)
class GoldenValue:
    """One paper-published figure the watchdog holds a driver to.

    ``kind`` selects the tolerance policy:

    * ``absolute`` — ``|measured - paper| <= tolerance``;
    * ``relative`` — ``|measured - paper| <= tolerance * |paper|``;
    * ``ceiling`` — ``measured <= paper + tolerance``;
    * ``floor``   — ``measured >= paper - tolerance``.
    """

    key: str
    paper: float
    tolerance: float
    kind: str = "absolute"

    def within(self, measured: float) -> bool:
        if self.kind == "relative":
            return abs(measured - self.paper) <= self.tolerance * abs(self.paper)
        if self.kind == "ceiling":
            return measured <= self.paper + self.tolerance
        if self.kind == "floor":
            return measured >= self.paper - self.tolerance
        return abs(measured - self.paper) <= self.tolerance

    def evaluate(self, measured: Optional[float]) -> Dict[str, Any]:
        """JSON-able verdict: paper value, delta, and pass/fail."""
        verdict: Dict[str, Any] = {
            "paper": self.paper,
            "tolerance": self.tolerance,
            "kind": self.kind,
            "measured": measured,
        }
        if measured is None:
            verdict["delta"] = None
            verdict["within"] = None
        else:
            verdict["delta"] = measured - self.paper
            verdict["within"] = self.within(measured)
        return verdict


@dataclass(frozen=True)
class ExperimentSpec:
    """Registry entry for one experiment driver.

    ``metric_keys`` is the static declaration of the flat metric names
    the driver's ``metrics`` extractor produces under its *default*
    configuration; lint rule M307 verifies every golden key is declared
    there, so a driver cannot silently opt out of fidelity checking.
    ``golden_exempt`` carries a human-readable reason for the rare driver
    with nothing to compare (static parameter tables).
    """

    name: str
    runner: Callable[..., Any]
    metric_keys: Tuple[str, ...]
    metrics: Callable[[Any], Dict[str, float]]
    goldens: Tuple[GoldenValue, ...] = ()
    golden_exempt: str = ""

    def config_fingerprint(self, *args: Any, **kwargs: Any) -> str:
        """SHA-256 fingerprint of the driver's resolved arguments.

        Cache handles are excluded — a memoized run of a configuration is
        the *same* run — so records made with and without ``--cache``
        share a fingerprint.
        """
        bound = inspect.signature(self.runner).bind(*args, **kwargs)
        bound.apply_defaults()
        arguments = {
            key: value for key, value in bound.arguments.items() if key != "cache"
        }
        return fingerprint(self.name, arguments)

    def evaluate_goldens(self, metrics: Dict[str, float]) -> Dict[str, Dict[str, Any]]:
        return {
            golden.key: golden.evaluate(metrics.get(golden.key))
            for golden in self.goldens
        }


#: Every registered experiment driver, keyed by its CLI/report name.
EXPERIMENTS: Dict[str, ExperimentSpec] = {}


def experiment_driver(
    name: str,
    metric_keys: Tuple[str, ...],
    metrics: Callable[[Any], Dict[str, float]],
    goldens: Tuple[GoldenValue, ...] = (),
    golden_exempt: str = "",
) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
    """Register a driver and wire it to the experiment flight recorder.

    With a :class:`~repro.obs.runlog.RunRecorder` installed, each call
    of the driver contributes one run record — config fingerprint, host
    wall time, extracted metrics, golden-value verdicts, cache stats and
    any pending measurement/sweep sub-events.  With no recorder
    installed the wrapper is a single ``None`` check.
    """

    def wrap(fn: Callable[..., Any]) -> Callable[..., Any]:
        spec = ExperimentSpec(
            name=name,
            runner=fn,
            metric_keys=tuple(metric_keys),
            metrics=metrics,
            goldens=tuple(goldens),
            golden_exempt=golden_exempt,
        )
        EXPERIMENTS[name] = spec

        @functools.wraps(fn)
        def recorded(*args: Any, **kwargs: Any) -> Any:
            recorder = active_recorder()
            if recorder is None:
                return fn(*args, **kwargs)
            started_s = host_wall_s()
            result = fn(*args, **kwargs)
            wall_s = host_wall_s() - started_s
            values = spec.metrics(result)
            cache = kwargs.get("cache")
            cache_stats = None
            if cache is not None:
                cache_stats = {"hits": cache.stats.hits, "misses": cache.stats.misses}
            context = _scalar_context(spec, args, kwargs)
            recorder.experiment(
                name=name,
                fingerprint=spec.config_fingerprint(*args, **kwargs),
                wall_s=wall_s,
                metrics=values,
                goldens=spec.evaluate_goldens(values),
                context=context,
                cache_stats=cache_stats,
            )
            return result

        recorded.spec = spec  # introspection hook (lint, tests)
        return recorded

    return wrap


def _scalar_context(
    spec: ExperimentSpec, args: Tuple[Any, ...], kwargs: Dict[str, Any]
) -> Dict[str, Any]:
    """The scalar driver arguments, for humans reading the run log."""
    try:
        bound = inspect.signature(spec.runner).bind(*args, **kwargs)
    except TypeError:  # the driver itself will raise; record nothing
        return {}
    bound.apply_defaults()
    return {
        key: value
        for key, value in bound.arguments.items()
        if isinstance(value, (bool, int, float, str)) or value is None
    }


# ---------------------------------------------------------------------------
# Fig. 1(b)
# ---------------------------------------------------------------------------

#: Paper's Fig. 1(b) shares (fractions of platform DRIPS power).
FIG1B_PAPER = {
    "wakeup_and_crystal": 0.05,   # timer/monitor + 24 MHz crystal
    "aon_ios": 0.07,
    "sr_srams": 0.09,
    "processor_total": 0.18,
}


@dataclass
class Fig1bResult:
    platform_drips_mw: float
    shares: Dict[str, float]
    paper_shares: Dict[str, float] = field(default_factory=lambda: dict(FIG1B_PAPER))

    @property
    def wakeup_and_crystal(self) -> float:
        return self.shares.get("wakeup_timer_monitor", 0.0) + self.shares.get(
            "fast_crystal_24mhz", 0.0
        )

    @property
    def processor_total(self) -> float:
        return (
            self.shares.get("wakeup_timer_monitor", 0.0)
            + self.shares.get("aon_ios", 0.0)
            + self.shares.get("sr_srams", 0.0)
            + self.shares.get("pmu", 0.0)
            + self.shares.get("cke", 0.0)
        )


def _fig1b_metrics(result: "Fig1bResult") -> Dict[str, float]:
    return {
        "platform_drips_mw": result.platform_drips_mw,
        "wakeup_and_crystal": result.wakeup_and_crystal,
        "aon_ios": result.shares.get("aon_ios", 0.0),
        "sr_srams": result.shares.get("sr_srams", 0.0),
        "processor_total": result.processor_total,
    }


@experiment_driver(
    "fig1b",
    metric_keys=(
        "platform_drips_mw", "wakeup_and_crystal", "aon_ios", "sr_srams",
        "processor_total",
    ),
    metrics=_fig1b_metrics,
    goldens=(
        GoldenValue("platform_drips_mw", 60.0, 1.0),
        GoldenValue("wakeup_and_crystal", 0.05, 0.015),
        GoldenValue("aon_ios", 0.07, 0.015),
        GoldenValue("sr_srams", 0.09, 0.015),
        GoldenValue("processor_total", 0.18, 0.015),
    ),
)
def fig1b_breakdown(config: Optional[PlatformConfig] = None) -> Fig1bResult:
    """Reproduce the DRIPS power breakdown of Fig. 1(b)."""
    cfg = config if config is not None else skylake_config()
    shares = fig1b_shares(TechniqueSet.baseline(), cfg)
    return Fig1bResult(
        platform_drips_mw=cfg.budget.platform_total_w() * 1e3,
        shares=shares,
    )


# ---------------------------------------------------------------------------
# Fig. 2
# ---------------------------------------------------------------------------


@dataclass
class Fig2Result:
    average_power_mw: float
    drips_power_mw: float
    active_power_w: float
    drips_residency: float
    paper_drips_power_mw: float = 60.0
    paper_active_power_w: float = 3.0
    paper_drips_residency: float = 0.995


def _fig2_metrics(result: "Fig2Result") -> Dict[str, float]:
    return {
        "average_power_mw": result.average_power_mw,
        "drips_power_mw": result.drips_power_mw,
        "active_power_w": result.active_power_w,
        "drips_residency": result.drips_residency,
    }


@experiment_driver(
    "fig2",
    metric_keys=(
        "average_power_mw", "drips_power_mw", "active_power_w", "drips_residency",
    ),
    metrics=_fig2_metrics,
    goldens=(
        GoldenValue("drips_power_mw", 60.0, 1.5),
        GoldenValue("active_power_w", 3.0, 0.25),
        GoldenValue("drips_residency", 0.995, 0.003),
        GoldenValue("average_power_mw", 75.0, 5.0),
    ),
)
def fig2_connected_standby(
    config: Optional[PlatformConfig] = None,
    cycles: int = 2,
    cache: Optional["SimulationCache"] = None,
    macro: bool = False,
) -> Fig2Result:
    """Reproduce the connected-standby picture of Fig. 2 (baseline).

    ``cache`` memoizes the baseline standby run so other drivers (fig6a,
    fig6d, validation) sharing the cache reuse it.  ``macro`` enables the
    cycle-compiled macro-stepping engine (bit-for-bit identical results
    for this periodic workload; the flag is part of the cache key).
    """
    measurement = ODRIPSController(
        TechniqueSet.baseline(), config=config, cache=cache
    ).measure(cycles=cycles, macro=macro)
    return Fig2Result(
        average_power_mw=measurement.average_power_w * 1e3,
        drips_power_mw=measurement.drips_power_w * 1e3,
        active_power_w=measurement.active_power_w,
        drips_residency=measurement.drips_residency,
    )


# ---------------------------------------------------------------------------
# Fig. 6(a)
# ---------------------------------------------------------------------------

#: Paper's Fig. 6(a): average-power saving and break-even per bar.
FIG6A_PAPER = {
    "WAKE-UP-OFF": (0.06, 6.6e-3),
    "AON-IO-GATE": (0.13, 6.3e-3),
    "CTX-SGX-DRAM": (0.08, 7.4e-3),
    "ODRIPS": (0.22, 6.5e-3),
}

FIG6A_SETS: List[Tuple[str, TechniqueSet]] = [
    ("WAKE-UP-OFF", TechniqueSet.wake_up_off_only()),
    ("AON-IO-GATE", TechniqueSet.with_io_gating()),
    ("CTX-SGX-DRAM", TechniqueSet.ctx_sgx_dram_only()),
    ("ODRIPS", TechniqueSet.odrips()),
]


@dataclass
class Fig6aRow:
    label: str
    average_power_mw: float
    saving: float
    paper_saving: float
    break_even_ms: Optional[float]
    paper_break_even_ms: float


@dataclass
class Fig6aResult:
    baseline_mw: float
    rows: List[Fig6aRow]


def _fig6a_metrics(result: "Fig6aResult") -> Dict[str, float]:
    values: Dict[str, float] = {"baseline_mw": result.baseline_mw}
    for row in result.rows:
        values[f"saving:{row.label}"] = row.saving
    return values


@experiment_driver(
    "fig6a",
    metric_keys=(
        "baseline_mw", "saving:WAKE-UP-OFF", "saving:AON-IO-GATE",
        "saving:CTX-SGX-DRAM", "saving:ODRIPS",
    ),
    metrics=_fig6a_metrics,
    goldens=(
        GoldenValue("saving:WAKE-UP-OFF", 0.06, 0.02),
        GoldenValue("saving:AON-IO-GATE", 0.13, 0.02),
        GoldenValue("saving:CTX-SGX-DRAM", 0.08, 0.02),
        GoldenValue("saving:ODRIPS", 0.22, 0.02),
    ),
)
def fig6a_techniques(
    config: Optional[PlatformConfig] = None,
    cycles: int = 2,
    with_break_even: bool = False,
    break_even_iterations: int = 10,
    cache: Optional["SimulationCache"] = None,
    macro: bool = False,
) -> Fig6aResult:
    """Reproduce the Fig. 6(a) bars (and, optionally, the blue line).

    ``with_break_even`` runs the residency-sweep bisection per bar; it is
    off by default because it simulates dozens of extra configurations.
    ``cache`` memoizes each per-configuration run (the baseline run is
    shared with fig2/fig6d/validation when they use the same cache).
    """
    baseline = ODRIPSController(
        TechniqueSet.baseline(), config=config, cache=cache
    ).measure(cycles=cycles, macro=macro)
    rows: List[Fig6aRow] = []
    for label, techniques in FIG6A_SETS:
        measurement = ODRIPSController(techniques, config=config, cache=cache).measure(
            cycles=cycles, macro=macro
        )
        paper_saving, paper_be = FIG6A_PAPER[label]
        break_even_ms: Optional[float] = None
        if with_break_even:
            break_even_ms = find_break_even(
                techniques, config=config, iterations=break_even_iterations
            ).break_even_ms
        rows.append(
            Fig6aRow(
                label=label,
                average_power_mw=measurement.average_power_w * 1e3,
                saving=measurement.saving_vs(baseline),
                paper_saving=paper_saving,
                break_even_ms=break_even_ms,
                paper_break_even_ms=paper_be * 1e3,
            )
        )
    return Fig6aResult(baseline_mw=baseline.average_power_w * 1e3, rows=rows)


# ---------------------------------------------------------------------------
# Fig. 6(b) / Fig. 6(c)
# ---------------------------------------------------------------------------


@dataclass
class SweepRow:
    parameter: float
    average_power_mw: float
    delta_vs_reference: float
    paper_delta: Optional[float]


#: Paper's Fig. 6(b): deltas vs the 0.8 GHz ODRIPS reference.
FIG6B_PAPER = {0.8: 0.0, 1.0: -0.014, 1.5: +0.01}

#: Paper's Fig. 6(c): deltas vs the 1.6 GHz DRAM reference.
FIG6C_PAPER = {1.6e9: 0.0, 1.067e9: -0.003, 0.8e9: -0.007}


def _odrips_average_at_core_freq(
    freq_ghz: float, config: Optional[PlatformConfig], cycles: int, macro: bool = False
) -> float:
    """Module-level (picklable) sweep point for Fig. 6(b)."""
    measurement = ODRIPSController(TechniqueSet.odrips(), config=config).measure(
        cycles=cycles, core_freq_ghz=freq_ghz, macro=macro
    )
    return measurement.average_power_w


def _odrips_average_at_dram_rate(
    rate_hz: float, config: Optional[PlatformConfig], cycles: int, macro: bool = False
) -> float:
    """Module-level (picklable) sweep point for Fig. 6(c)."""
    measurement = ODRIPSController(TechniqueSet.odrips(), config=config).measure(
        cycles=cycles, dram_rate_hz=rate_hz, macro=macro
    )
    return measurement.average_power_w


def _sweep_rows(
    points: List[Tuple[float, float]], paper: Dict[float, float]
) -> List[SweepRow]:
    """Digest ``(parameter, watts)`` sweep points into Fig. 6(b)/(c) rows."""
    reference = points[0][1]
    return [
        SweepRow(
            parameter=parameter,
            average_power_mw=watts * 1e3,
            delta_vs_reference=watts / reference - 1.0,
            paper_delta=paper.get(parameter),
        )
        for parameter, watts in points
    ]


def _fig6b_metrics(rows: List["SweepRow"]) -> Dict[str, float]:
    values: Dict[str, float] = {}
    for row in rows:
        values[f"power_mw:{row.parameter:.1f}GHz"] = row.average_power_mw
        values[f"delta:{row.parameter:.1f}GHz"] = row.delta_vs_reference
    return values


@experiment_driver(
    "fig6b",
    metric_keys=(
        "power_mw:0.8GHz", "delta:0.8GHz", "power_mw:1.0GHz", "delta:1.0GHz",
        "power_mw:1.5GHz", "delta:1.5GHz",
    ),
    metrics=_fig6b_metrics,
    goldens=(
        GoldenValue("delta:1.0GHz", -0.014, 0.015),
        GoldenValue("delta:1.5GHz", 0.01, 0.015),
    ),
)
def fig6b_core_frequency(
    config: Optional[PlatformConfig] = None,
    frequencies_ghz: Tuple[float, ...] = (0.8, 1.0, 1.5),
    cycles: int = 2,
    parallel: bool = False,
    macro: bool = False,
) -> List[SweepRow]:
    """Reproduce the core-frequency sweep of Fig. 6(b) (ODRIPS platform).

    ``parallel=True`` fans the sweep points out over worker processes;
    every point is an independent simulation, so the rows are identical
    to the serial ones.  ``macro`` macro-steps each point's run.
    """
    points = sweep(
        frequencies_ghz,
        partial(_odrips_average_at_core_freq, config=config, cycles=cycles, macro=macro),
        parallel=parallel,
    )
    return _sweep_rows(points, FIG6B_PAPER)


def _fig6c_metrics(rows: List["SweepRow"]) -> Dict[str, float]:
    values: Dict[str, float] = {}
    for row in rows:
        values[f"power_mw:{row.parameter / 1e9:.3f}GHz"] = row.average_power_mw
        values[f"delta:{row.parameter / 1e9:.3f}GHz"] = row.delta_vs_reference
    return values


@experiment_driver(
    "fig6c",
    metric_keys=(
        "power_mw:1.600GHz", "delta:1.600GHz", "power_mw:1.067GHz",
        "delta:1.067GHz", "power_mw:0.800GHz", "delta:0.800GHz",
    ),
    metrics=_fig6c_metrics,
    goldens=(
        GoldenValue("delta:1.067GHz", -0.003, 0.008),
        GoldenValue("delta:0.800GHz", -0.007, 0.008),
    ),
)
def fig6c_dram_frequency(
    config: Optional[PlatformConfig] = None,
    rates_hz: Tuple[float, ...] = (1.6e9, 1.067e9, 0.8e9),
    cycles: int = 2,
    parallel: bool = False,
    macro: bool = False,
) -> List[SweepRow]:
    """Reproduce the DRAM-frequency sweep of Fig. 6(c) (ODRIPS platform).

    ``parallel=True`` runs the sweep points in worker processes (see
    :func:`fig6b_core_frequency`).  ``macro`` macro-steps each point.
    """
    points = sweep(
        rates_hz,
        partial(_odrips_average_at_dram_rate, config=config, cycles=cycles, macro=macro),
        parallel=parallel,
    )
    return _sweep_rows(points, FIG6C_PAPER)


# ---------------------------------------------------------------------------
# Fig. 6(d)
# ---------------------------------------------------------------------------

FIG6D_PAPER_SAVINGS = {"ODRIPS": 0.22, "ODRIPS-MRAM": 0.225, "ODRIPS-PCM": 0.37}


@dataclass
class Fig6dRow:
    label: str
    average_power_mw: float
    saving_vs_baseline: float
    paper_saving: float
    break_even_ms: Optional[float]


def _fig6d_metrics(rows: List["Fig6dRow"]) -> Dict[str, float]:
    values: Dict[str, float] = {}
    for row in rows:
        values[f"power_mw:{row.label}"] = row.average_power_mw
        values[f"saving:{row.label}"] = row.saving_vs_baseline
    return values


@experiment_driver(
    "fig6d",
    metric_keys=(
        "power_mw:ODRIPS", "saving:ODRIPS", "power_mw:ODRIPS-MRAM",
        "saving:ODRIPS-MRAM", "power_mw:ODRIPS-PCM", "saving:ODRIPS-PCM",
    ),
    metrics=_fig6d_metrics,
    goldens=(
        GoldenValue("saving:ODRIPS", 0.22, 0.025),
        GoldenValue("saving:ODRIPS-MRAM", 0.225, 0.03),
        GoldenValue("saving:ODRIPS-PCM", 0.37, 0.03),
    ),
)
def fig6d_emerging_memories(
    config: Optional[PlatformConfig] = None,
    cycles: int = 2,
    with_break_even: bool = False,
    cache: Optional["SimulationCache"] = None,
    macro: bool = False,
) -> List[Fig6dRow]:
    """Reproduce Fig. 6(d): context stored in eMRAM / PCM main memory.

    ``cache`` memoizes each run; the baseline and ODRIPS runs are shared
    with fig2/fig6a/validation when they use the same cache.
    """
    baseline = ODRIPSController(
        TechniqueSet.baseline(), config=config, cache=cache
    ).measure(cycles=cycles, macro=macro)
    rows: List[Fig6dRow] = []
    for label, techniques in [
        ("ODRIPS", TechniqueSet.odrips()),
        ("ODRIPS-MRAM", TechniqueSet.odrips_mram()),
        ("ODRIPS-PCM", TechniqueSet.odrips_pcm()),
    ]:
        measurement = ODRIPSController(techniques, config=config, cache=cache).measure(
            cycles=cycles, macro=macro
        )
        break_even_ms: Optional[float] = None
        if with_break_even:
            break_even_ms = find_break_even(techniques, config=config).break_even_ms
        rows.append(
            Fig6dRow(
                label=label,
                average_power_mw=measurement.average_power_w * 1e3,
                saving_vs_baseline=measurement.saving_vs(baseline),
                paper_saving=FIG6D_PAPER_SAVINGS[label],
                break_even_ms=break_even_ms,
            )
        )
    return rows


# ---------------------------------------------------------------------------
# Sec. 6.3: context transfer latency
# ---------------------------------------------------------------------------


@dataclass
class ContextLatencyResult:
    save_us: float
    restore_us: float
    context_bytes: int
    paper_save_us: float = 18.0
    paper_restore_us: float = 13.0
    sgx_region_fraction: float = 0.0


def _latency_metrics(result: "ContextLatencyResult") -> Dict[str, float]:
    return {
        "save_us": result.save_us,
        "restore_us": result.restore_us,
        "context_bytes": float(result.context_bytes),
    }


@experiment_driver(
    "latency",
    metric_keys=("save_us", "restore_us", "context_bytes"),
    metrics=_latency_metrics,
    goldens=(
        GoldenValue("save_us", 18.0, 0.3, kind="relative"),
        GoldenValue("restore_us", 13.0, 0.4, kind="relative"),
    ),
)
def sec63_context_latency(config: Optional[PlatformConfig] = None) -> ContextLatencyResult:
    """Measure the 200 KB context save/restore latency through the MEE."""
    controller = ODRIPSController(TechniqueSet.ctx_sgx_dram_only(), config=config)
    platform = controller.build_platform()
    from repro.workloads.standby import ConnectedStandbyRunner

    runner = ConnectedStandbyRunner(platform, idle_interval_s=1.0, maintenance_s=0.02)
    runner.run(cycles=1)
    stats = runner.flows.stats
    cfg = platform.config
    return ContextLatencyResult(
        save_us=stats.ctx_save_latencies_ps[-1] / 1e6,
        restore_us=stats.ctx_restore_latencies_ps[-1] / 1e6,
        context_bytes=cfg.context.total_bytes,
        sgx_region_fraction=cfg.context.total_bytes / cfg.sgx_region_bytes,
    )


# ---------------------------------------------------------------------------
# Sec. 4.1.3: Step calibration sizing
# ---------------------------------------------------------------------------


@dataclass
class CalibrationSizingResult:
    integer_bits: int
    fractional_bits: int
    worst_case_drift_ppb: float
    paper_integer_bits: int = 10
    paper_fractional_bits: int = 21


def _calibration_metrics(result: "CalibrationSizingResult") -> Dict[str, float]:
    return {
        "integer_bits": float(result.integer_bits),
        "fractional_bits": float(result.fractional_bits),
        "worst_case_drift_ppb": result.worst_case_drift_ppb,
    }


@experiment_driver(
    "calibration",
    metric_keys=("integer_bits", "fractional_bits", "worst_case_drift_ppb"),
    metrics=_calibration_metrics,
    goldens=(
        GoldenValue("integer_bits", 10.0, 0.0),
        GoldenValue("fractional_bits", 21.0, 0.0),
        GoldenValue("worst_case_drift_ppb", 1.0, 0.0, kind="ceiling"),
    ),
)
def sec413_calibration(config: Optional[PlatformConfig] = None) -> CalibrationSizingResult:
    """Equations 2-4: the Step register needs m=10, f=21 for 1 ppb."""
    cfg = config if config is not None else skylake_config()
    m = integer_bits_for_ratio(cfg.fast_xtal_hz, cfg.slow_xtal_hz)
    f = fractional_bits_for_precision(
        cfg.fast_xtal_hz, cfg.slow_xtal_hz, cfg.timer_precision_ppb
    )
    return CalibrationSizingResult(
        integer_bits=m,
        fractional_bits=f,
        worst_case_drift_ppb=worst_case_drift_ppb(cfg.fast_xtal_hz, cfg.slow_xtal_hz, f),
    )


# ---------------------------------------------------------------------------
# Table 1
# ---------------------------------------------------------------------------


def _table1_metrics(result: Dict[str, Tuple[str, str]]) -> Dict[str, float]:
    return {}


@experiment_driver(
    "table1",
    metric_keys=(),
    metrics=_table1_metrics,
    golden_exempt="static configuration table (no measured quantities)",
)
def table1_parameters() -> Dict[str, Tuple[str, str]]:
    """The system parameters of Table 1 (from the configurations)."""
    return table1_rows()
