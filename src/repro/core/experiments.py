"""One driver per table/figure of the paper's evaluation.

Each function runs the corresponding experiment on the simulator and
returns a structured result carrying both the measured values and the
paper's published values, so benches and ``EXPERIMENTS.md`` can print
paper-vs-measured side by side.

Index (see DESIGN.md for the full mapping):

* :func:`fig1b_breakdown` — DRIPS power breakdown.
* :func:`fig2_connected_standby` — baseline average power + residency.
* :func:`fig6a_techniques` — per-technique savings (and break-evens).
* :func:`fig6b_core_frequency` — core-frequency sweep.
* :func:`fig6c_dram_frequency` — DRAM-frequency sweep.
* :func:`fig6d_emerging_memories` — ODRIPS-MRAM / ODRIPS-PCM.
* :func:`sec63_context_latency` — 200 KB context save/restore latency.
* :func:`sec413_calibration` — Step register sizing (m=10, f=21).
* :func:`table1_parameters` — system parameters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.config import (
    PlatformConfig,
    skylake_config,
    table1_rows,
)
from repro.core.odrips import ODRIPSController, StandbyMeasurement
from repro.core.techniques import TechniqueSet
from repro.analysis.breakdown import fig1b_shares
from repro.analysis.breakeven import find_break_even
from repro.analysis.sweep import sweep
from repro.timers.calibration import (
    fractional_bits_for_precision,
    integer_bits_for_ratio,
    worst_case_drift_ppb,
)

if TYPE_CHECKING:
    from repro.perf.cache import SimulationCache


# ---------------------------------------------------------------------------
# Fig. 1(b)
# ---------------------------------------------------------------------------

#: Paper's Fig. 1(b) shares (fractions of platform DRIPS power).
FIG1B_PAPER = {
    "wakeup_and_crystal": 0.05,   # timer/monitor + 24 MHz crystal
    "aon_ios": 0.07,
    "sr_srams": 0.09,
    "processor_total": 0.18,
}


@dataclass
class Fig1bResult:
    platform_drips_mw: float
    shares: Dict[str, float]
    paper_shares: Dict[str, float] = field(default_factory=lambda: dict(FIG1B_PAPER))

    @property
    def wakeup_and_crystal(self) -> float:
        return self.shares.get("wakeup_timer_monitor", 0.0) + self.shares.get(
            "fast_crystal_24mhz", 0.0
        )

    @property
    def processor_total(self) -> float:
        return (
            self.shares.get("wakeup_timer_monitor", 0.0)
            + self.shares.get("aon_ios", 0.0)
            + self.shares.get("sr_srams", 0.0)
            + self.shares.get("pmu", 0.0)
            + self.shares.get("cke", 0.0)
        )


def fig1b_breakdown(config: Optional[PlatformConfig] = None) -> Fig1bResult:
    """Reproduce the DRIPS power breakdown of Fig. 1(b)."""
    cfg = config if config is not None else skylake_config()
    shares = fig1b_shares(TechniqueSet.baseline(), cfg)
    return Fig1bResult(
        platform_drips_mw=cfg.budget.platform_total_w() * 1e3,
        shares=shares,
    )


# ---------------------------------------------------------------------------
# Fig. 2
# ---------------------------------------------------------------------------


@dataclass
class Fig2Result:
    average_power_mw: float
    drips_power_mw: float
    active_power_w: float
    drips_residency: float
    paper_drips_power_mw: float = 60.0
    paper_active_power_w: float = 3.0
    paper_drips_residency: float = 0.995


def fig2_connected_standby(
    config: Optional[PlatformConfig] = None,
    cycles: int = 2,
    cache: Optional["SimulationCache"] = None,
) -> Fig2Result:
    """Reproduce the connected-standby picture of Fig. 2 (baseline).

    ``cache`` memoizes the baseline standby run so other drivers (fig6a,
    fig6d, validation) sharing the cache reuse it.
    """
    measurement = ODRIPSController(
        TechniqueSet.baseline(), config=config, cache=cache
    ).measure(cycles=cycles)
    return Fig2Result(
        average_power_mw=measurement.average_power_w * 1e3,
        drips_power_mw=measurement.drips_power_w * 1e3,
        active_power_w=measurement.active_power_w,
        drips_residency=measurement.drips_residency,
    )


# ---------------------------------------------------------------------------
# Fig. 6(a)
# ---------------------------------------------------------------------------

#: Paper's Fig. 6(a): average-power saving and break-even per bar.
FIG6A_PAPER = {
    "WAKE-UP-OFF": (0.06, 6.6e-3),
    "AON-IO-GATE": (0.13, 6.3e-3),
    "CTX-SGX-DRAM": (0.08, 7.4e-3),
    "ODRIPS": (0.22, 6.5e-3),
}

FIG6A_SETS: List[Tuple[str, TechniqueSet]] = [
    ("WAKE-UP-OFF", TechniqueSet.wake_up_off_only()),
    ("AON-IO-GATE", TechniqueSet.with_io_gating()),
    ("CTX-SGX-DRAM", TechniqueSet.ctx_sgx_dram_only()),
    ("ODRIPS", TechniqueSet.odrips()),
]


@dataclass
class Fig6aRow:
    label: str
    average_power_mw: float
    saving: float
    paper_saving: float
    break_even_ms: Optional[float]
    paper_break_even_ms: float


@dataclass
class Fig6aResult:
    baseline_mw: float
    rows: List[Fig6aRow]


def fig6a_techniques(
    config: Optional[PlatformConfig] = None,
    cycles: int = 2,
    with_break_even: bool = False,
    break_even_iterations: int = 10,
    cache: Optional["SimulationCache"] = None,
) -> Fig6aResult:
    """Reproduce the Fig. 6(a) bars (and, optionally, the blue line).

    ``with_break_even`` runs the residency-sweep bisection per bar; it is
    off by default because it simulates dozens of extra configurations.
    ``cache`` memoizes each per-configuration run (the baseline run is
    shared with fig2/fig6d/validation when they use the same cache).
    """
    baseline = ODRIPSController(
        TechniqueSet.baseline(), config=config, cache=cache
    ).measure(cycles=cycles)
    rows: List[Fig6aRow] = []
    for label, techniques in FIG6A_SETS:
        measurement = ODRIPSController(techniques, config=config, cache=cache).measure(
            cycles=cycles
        )
        paper_saving, paper_be = FIG6A_PAPER[label]
        break_even_ms: Optional[float] = None
        if with_break_even:
            break_even_ms = find_break_even(
                techniques, config=config, iterations=break_even_iterations
            ).break_even_ms
        rows.append(
            Fig6aRow(
                label=label,
                average_power_mw=measurement.average_power_w * 1e3,
                saving=measurement.saving_vs(baseline),
                paper_saving=paper_saving,
                break_even_ms=break_even_ms,
                paper_break_even_ms=paper_be * 1e3,
            )
        )
    return Fig6aResult(baseline_mw=baseline.average_power_w * 1e3, rows=rows)


# ---------------------------------------------------------------------------
# Fig. 6(b) / Fig. 6(c)
# ---------------------------------------------------------------------------


@dataclass
class SweepRow:
    parameter: float
    average_power_mw: float
    delta_vs_reference: float
    paper_delta: Optional[float]


#: Paper's Fig. 6(b): deltas vs the 0.8 GHz ODRIPS reference.
FIG6B_PAPER = {0.8: 0.0, 1.0: -0.014, 1.5: +0.01}

#: Paper's Fig. 6(c): deltas vs the 1.6 GHz DRAM reference.
FIG6C_PAPER = {1.6e9: 0.0, 1.067e9: -0.003, 0.8e9: -0.007}


def _odrips_average_at_core_freq(
    freq_ghz: float, config: Optional[PlatformConfig], cycles: int
) -> float:
    """Module-level (picklable) sweep point for Fig. 6(b)."""
    measurement = ODRIPSController(TechniqueSet.odrips(), config=config).measure(
        cycles=cycles, core_freq_ghz=freq_ghz
    )
    return measurement.average_power_w


def _odrips_average_at_dram_rate(
    rate_hz: float, config: Optional[PlatformConfig], cycles: int
) -> float:
    """Module-level (picklable) sweep point for Fig. 6(c)."""
    measurement = ODRIPSController(TechniqueSet.odrips(), config=config).measure(
        cycles=cycles, dram_rate_hz=rate_hz
    )
    return measurement.average_power_w


def _sweep_rows(
    points: List[Tuple[float, float]], paper: Dict[float, float]
) -> List[SweepRow]:
    """Digest ``(parameter, watts)`` sweep points into Fig. 6(b)/(c) rows."""
    reference = points[0][1]
    return [
        SweepRow(
            parameter=parameter,
            average_power_mw=watts * 1e3,
            delta_vs_reference=watts / reference - 1.0,
            paper_delta=paper.get(parameter),
        )
        for parameter, watts in points
    ]


def fig6b_core_frequency(
    config: Optional[PlatformConfig] = None,
    frequencies_ghz: Tuple[float, ...] = (0.8, 1.0, 1.5),
    cycles: int = 2,
    parallel: bool = False,
) -> List[SweepRow]:
    """Reproduce the core-frequency sweep of Fig. 6(b) (ODRIPS platform).

    ``parallel=True`` fans the sweep points out over worker processes;
    every point is an independent simulation, so the rows are identical
    to the serial ones.
    """
    points = sweep(
        frequencies_ghz,
        partial(_odrips_average_at_core_freq, config=config, cycles=cycles),
        parallel=parallel,
    )
    return _sweep_rows(points, FIG6B_PAPER)


def fig6c_dram_frequency(
    config: Optional[PlatformConfig] = None,
    rates_hz: Tuple[float, ...] = (1.6e9, 1.067e9, 0.8e9),
    cycles: int = 2,
    parallel: bool = False,
) -> List[SweepRow]:
    """Reproduce the DRAM-frequency sweep of Fig. 6(c) (ODRIPS platform).

    ``parallel=True`` runs the sweep points in worker processes (see
    :func:`fig6b_core_frequency`).
    """
    points = sweep(
        rates_hz,
        partial(_odrips_average_at_dram_rate, config=config, cycles=cycles),
        parallel=parallel,
    )
    return _sweep_rows(points, FIG6C_PAPER)


# ---------------------------------------------------------------------------
# Fig. 6(d)
# ---------------------------------------------------------------------------

FIG6D_PAPER_SAVINGS = {"ODRIPS": 0.22, "ODRIPS-MRAM": 0.225, "ODRIPS-PCM": 0.37}


@dataclass
class Fig6dRow:
    label: str
    average_power_mw: float
    saving_vs_baseline: float
    paper_saving: float
    break_even_ms: Optional[float]


def fig6d_emerging_memories(
    config: Optional[PlatformConfig] = None,
    cycles: int = 2,
    with_break_even: bool = False,
    cache: Optional["SimulationCache"] = None,
) -> List[Fig6dRow]:
    """Reproduce Fig. 6(d): context stored in eMRAM / PCM main memory.

    ``cache`` memoizes each run; the baseline and ODRIPS runs are shared
    with fig2/fig6a/validation when they use the same cache.
    """
    baseline = ODRIPSController(
        TechniqueSet.baseline(), config=config, cache=cache
    ).measure(cycles=cycles)
    rows: List[Fig6dRow] = []
    for label, techniques in [
        ("ODRIPS", TechniqueSet.odrips()),
        ("ODRIPS-MRAM", TechniqueSet.odrips_mram()),
        ("ODRIPS-PCM", TechniqueSet.odrips_pcm()),
    ]:
        measurement = ODRIPSController(techniques, config=config, cache=cache).measure(
            cycles=cycles
        )
        break_even_ms: Optional[float] = None
        if with_break_even:
            break_even_ms = find_break_even(techniques, config=config).break_even_ms
        rows.append(
            Fig6dRow(
                label=label,
                average_power_mw=measurement.average_power_w * 1e3,
                saving_vs_baseline=measurement.saving_vs(baseline),
                paper_saving=FIG6D_PAPER_SAVINGS[label],
                break_even_ms=break_even_ms,
            )
        )
    return rows


# ---------------------------------------------------------------------------
# Sec. 6.3: context transfer latency
# ---------------------------------------------------------------------------


@dataclass
class ContextLatencyResult:
    save_us: float
    restore_us: float
    context_bytes: int
    paper_save_us: float = 18.0
    paper_restore_us: float = 13.0
    sgx_region_fraction: float = 0.0


def sec63_context_latency(config: Optional[PlatformConfig] = None) -> ContextLatencyResult:
    """Measure the 200 KB context save/restore latency through the MEE."""
    controller = ODRIPSController(TechniqueSet.ctx_sgx_dram_only(), config=config)
    platform = controller.build_platform()
    from repro.workloads.standby import ConnectedStandbyRunner

    runner = ConnectedStandbyRunner(platform, idle_interval_s=1.0, maintenance_s=0.02)
    runner.run(cycles=1)
    stats = runner.flows.stats
    cfg = platform.config
    return ContextLatencyResult(
        save_us=stats.ctx_save_latencies_ps[-1] / 1e6,
        restore_us=stats.ctx_restore_latencies_ps[-1] / 1e6,
        context_bytes=cfg.context.total_bytes,
        sgx_region_fraction=cfg.context.total_bytes / cfg.sgx_region_bytes,
    )


# ---------------------------------------------------------------------------
# Sec. 4.1.3: Step calibration sizing
# ---------------------------------------------------------------------------


@dataclass
class CalibrationSizingResult:
    integer_bits: int
    fractional_bits: int
    worst_case_drift_ppb: float
    paper_integer_bits: int = 10
    paper_fractional_bits: int = 21


def sec413_calibration(config: Optional[PlatformConfig] = None) -> CalibrationSizingResult:
    """Equations 2-4: the Step register needs m=10, f=21 for 1 ppb."""
    cfg = config if config is not None else skylake_config()
    m = integer_bits_for_ratio(cfg.fast_xtal_hz, cfg.slow_xtal_hz)
    f = fractional_bits_for_precision(
        cfg.fast_xtal_hz, cfg.slow_xtal_hz, cfg.timer_precision_ppb
    )
    return CalibrationSizingResult(
        integer_bits=m,
        fractional_bits=f,
        worst_case_drift_ppb=worst_case_drift_ppb(cfg.fast_xtal_hz, cfg.slow_xtal_hz, f),
    )


# ---------------------------------------------------------------------------
# Table 1
# ---------------------------------------------------------------------------


def table1_parameters() -> Dict[str, Tuple[str, str]]:
    """The system parameters of Table 1 (from the configurations)."""
    return table1_rows()
