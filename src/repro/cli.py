"""Command-line interface: ``python -m repro <experiment>``.

Runs any of the paper's experiments from the shell and prints the same
paper-vs-measured tables the benchmark harness emits.

Examples::

    python -m repro fig1b          # DRIPS power breakdown
    python -m repro fig6a          # technique savings
    python -m repro fig6a --break-even   # + the residency break-even line
    python -m repro all            # every experiment in sequence
    python -m repro battery --battery-wh 50
    python -m repro lint           # static model verifier + source checker
    python -m repro lint --json --select M1 --ignore S405
    python -m repro check          # exhaustive FSM/flow model checker
    python -m repro check --json --max-states 1000 --invariants clock-coupling
    python -m repro trace fig2 --out trace.json   # Perfetto-loadable trace
    python -m repro fig2 --trace   # run instrumented, print the span digest
    python -m repro fig6a --cache  # memoized runs + hit/miss stats
    python -m repro fig2 --profile # host-phase wall time + peak allocations
    python -m repro report --json  # regression watchdog over the run history
    python -m repro metrics --openmetrics     # OpenMetrics text exposition
    python -m repro fig6b --parallel --heartbeat  # live sweep telemetry
    python -m repro dash           # static fleet dashboard (dash.html)

Every experiment run is recorded by the flight recorder to
``.repro/runs/runs.jsonl`` (opt out with ``--no-runlog``); ``report``
replays that history against the paper's golden values and the
``BENCH_perf.json`` policies, exiting nonzero on drift.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Callable, Dict, List, Optional

from repro.analysis.ablations import (
    context_store_ablation,
    gate_ablation,
    mee_cache_ablation,
    step_bits_ablation,
    timer_location_ablation,
)
from repro.analysis.battery import BATTERY_WH, life_table
from repro.analysis.breakeven import find_break_even
from repro.analysis.report import format_table
from repro.core.experiments import (
    FIG6A_SETS,
    fig1b_breakdown,
    fig2_connected_standby,
    fig6a_techniques,
    fig6b_core_frequency,
    fig6c_dram_frequency,
    fig6d_emerging_memories,
    sec413_calibration,
    sec63_context_latency,
    table1_parameters,
)
from repro.core.odrips import ODRIPSController
from repro.core.techniques import TechniqueSet


def cmd_fig1b(args: argparse.Namespace) -> None:
    result = fig1b_breakdown()
    rows = [
        ["platform DRIPS power", f"{result.platform_drips_mw:.1f} mW", "~60 mW"],
        ["wake-up hw (timer + XTAL)", f"{result.wakeup_and_crystal:.1%}", "~5 %"],
        ["AON IOs", f"{result.shares['aon_ios']:.1%}", "7 %"],
        ["S/R SRAMs", f"{result.shares['sr_srams']:.1%}", "9 %"],
        ["processor total", f"{result.processor_total:.1%}", "18 %"],
    ]
    print(format_table(["component", "measured", "paper"], rows,
                       title="Fig. 1(b) - DRIPS power breakdown"))


def _cache_of(args: argparse.Namespace):
    """The run-wide SimulationCache main() created for --cache, if any."""
    return getattr(args, "cache_obj", None)


def _cycles_of(args: argparse.Namespace) -> int:
    """Measured cycles for this run: ``--horizon DAYS`` wins over ``--cycles``.

    A horizon converts through the default workload's cycle period
    (idle interval + mean maintenance); week-scale horizons are only
    practical together with ``--macro``.
    """
    horizon_days = getattr(args, "horizon", None)
    if horizon_days is None:
        return args.cycles
    from repro.config import StandbyWorkloadConfig
    from repro.sim.macro import cycles_for_horizon

    workload = StandbyWorkloadConfig()
    return cycles_for_horizon(
        horizon_days, workload.idle_interval_s, workload.maintenance_mean_s
    )


def cmd_fig2(args: argparse.Namespace) -> None:
    result = fig2_connected_standby(
        cycles=_cycles_of(args), cache=_cache_of(args), macro=args.macro
    )
    rows = [
        ["DRIPS residency", f"{result.drips_residency:.2%}", "99.5 %"],
        ["DRIPS power", f"{result.drips_power_mw:.1f} mW", "~60 mW"],
        ["Active power", f"{result.active_power_w:.2f} W", "~3 W"],
        ["average power", f"{result.average_power_mw:.1f} mW", "~75 mW"],
    ]
    print(format_table(["quantity", "measured", "paper"], rows,
                       title="Fig. 2 - connected standby (baseline)"))


def cmd_fig6a(args: argparse.Namespace) -> None:
    result = fig6a_techniques(
        cycles=_cycles_of(args), cache=_cache_of(args), macro=args.macro
    )
    rows = [["Baseline (DRIPS)", f"{result.baseline_mw:.1f} mW", "-", "-"]]
    for row in result.rows:
        rows.append([row.label, f"{row.average_power_mw:.1f} mW",
                     f"{row.saving:.1%}", f"{row.paper_saving:.0%}"])
    print(format_table(["configuration", "avg power", "saving", "paper"],
                       rows, title="Fig. 6(a) - technique savings"))
    if args.break_even:
        print()
        rows = []
        for label, techniques in FIG6A_SETS:
            be = find_break_even(techniques)
            rows.append([label, f"{be.break_even_ms:.2f} ms"])
        print(format_table(["configuration", "break-even"], rows,
                           title="Fig. 6(a) - break-even points"))


def cmd_fig6b(args: argparse.Namespace) -> None:
    rows = []
    for row in fig6b_core_frequency(
        cycles=_cycles_of(args), macro=args.macro,
        parallel=getattr(args, "parallel", False),
    ):
        paper = "-" if row.paper_delta is None else f"{row.paper_delta:+.1%}"
        rows.append([f"{row.parameter:.1f} GHz", f"{row.average_power_mw:.2f} mW",
                     f"{row.delta_vs_reference:+.2%}", paper])
    print(format_table(["core freq", "avg power", "delta", "paper"], rows,
                       title="Fig. 6(b) - core-frequency scaling (ODRIPS)"))


def cmd_fig6c(args: argparse.Namespace) -> None:
    rows = []
    for row in fig6c_dram_frequency(
        cycles=_cycles_of(args), macro=args.macro,
        parallel=getattr(args, "parallel", False),
    ):
        paper = "-" if row.paper_delta is None else f"{row.paper_delta:+.1%}"
        rows.append([f"{row.parameter / 1e9:.3f} GHz", f"{row.average_power_mw:.2f} mW",
                     f"{row.delta_vs_reference:+.2%}", paper])
    print(format_table(["DRAM rate", "avg power", "delta", "paper"], rows,
                       title="Fig. 6(c) - DRAM-frequency scaling (ODRIPS)"))


def cmd_fig6d(args: argparse.Namespace) -> None:
    rows = []
    for row in fig6d_emerging_memories(
        cycles=_cycles_of(args), cache=_cache_of(args), macro=args.macro
    ):
        rows.append([row.label, f"{row.average_power_mw:.1f} mW",
                     f"{row.saving_vs_baseline:.1%}", f"{row.paper_saving:.1%}"])
    print(format_table(["configuration", "avg power", "saving", "paper"], rows,
                       title="Fig. 6(d) - emerging memories"))


def cmd_table1(args: argparse.Namespace) -> None:
    rows = [[name, value] for name, (value, _note) in table1_parameters().items()]
    print(format_table(["parameter", "value"], rows, title="Table 1"))


def cmd_latency(args: argparse.Namespace) -> None:
    result = sec63_context_latency()
    rows = [
        ["context size", f"{result.context_bytes // 1024} KB", "~200 KB"],
        ["save", f"{result.save_us:.1f} us", "~18 us"],
        ["restore", f"{result.restore_us:.1f} us", "~13 us"],
    ]
    print(format_table(["quantity", "measured", "paper"], rows,
                       title="Sec. 6.3 - context transfer latency"))


def cmd_calibration(args: argparse.Namespace) -> None:
    result = sec413_calibration()
    rows = [
        ["integer bits m", result.integer_bits, 10],
        ["fractional bits f", result.fractional_bits, 21],
        ["worst-case drift", f"{result.worst_case_drift_ppb:.2f} ppb", "<1 ppb"],
    ]
    print(format_table(["quantity", "measured", "paper"], rows,
                       title="Sec. 4.1.3 - Step register sizing"))


def cmd_ablations(args: argparse.Namespace) -> None:
    print(format_table(
        ["gate", "off leakage", "extra pins"],
        [[r.gate, f"{r.off_leakage_mw * 1e3:.1f} uW",
          "yes" if r.needs_processor_pins else "no"] for r in gate_ablation()],
        title="Sec. 5.1 - EPG vs FET",
    ))
    print()
    print(format_table(
        ["design", "DRIPS saving", "enables IO gating"],
        [[r.design, f"{r.drips_saving_mw:.2f} mW",
          "yes" if r.enables_io_gating else "no"]
         for r in timer_location_ablation()],
        title="Sec. 4.1.1 - timer location",
    ))
    print()
    print(format_table(
        ["f bits", "drift", "calibration"],
        [[r.fractional_bits, f"{r.worst_case_drift_ppb:.2f} ppb",
          f"{r.calibration_seconds:.1f} s"] for r in step_bits_ablation()],
        title="Sec. 4.1.3 - Step bits",
    ))
    print()
    print(format_table(
        ["cache nodes", "hit rate", "DRAM accesses/read"],
        [[r.cache_nodes, f"{r.hit_rate:.1%}",
          f"{r.metadata_accesses_per_read:.2f}"] for r in mee_cache_ablation()],
        title="Sec. 6.2 - MEE cache",
    ))
    print()
    print(format_table(
        ["store", "avg power", "saving"],
        [[r.store, f"{r.average_power_mw:.2f} mW",
          f"{r.saving_vs_baseline:.1%}"] for r in context_store_ablation()],
        title="Sec. 6.1 - context store",
    ))


def cmd_sensitivity(args: argparse.Namespace) -> None:
    from repro.analysis.sensitivity import budget_sensitivity, workload_sensitivity

    rows = [
        [row.parameter, f"{row.saving_low:.1%}", f"{row.saving_nominal:.1%}",
         f"{row.saving_high:.1%}"]
        for row in budget_sensitivity()
    ]
    print(format_table(
        ["constant (+/-25%)", "saving @ -25%", "nominal", "saving @ +25%"],
        rows,
        title="Sensitivity of the ODRIPS saving",
    ))
    print()
    rows = [[f"{idle:.0f} s", f"{saving:.1%}"] for idle, saving in workload_sensitivity()]
    print(format_table(["idle interval", "saving"], rows,
                       title="Saving vs idle interval"))


def cmd_temperature(args: argparse.Namespace) -> None:
    from repro.analysis.scaling import drips_power_at_temperature
    from repro.config import skylake_config

    budget = skylake_config().budget
    rows = []
    for temp in (10.0, 20.0, 30.0, 40.0, 50.0, 60.0):
        watts = drips_power_at_temperature(budget, temp)
        rows.append([f"{temp:.0f} C", f"{watts * 1e3:.1f} mW"])
    print(format_table(["temperature", "DRIPS power"], rows,
                       title="DRIPS power vs temperature (Fig. 1(b) is at 30 C)"))


def cmd_battery(args: argparse.Namespace) -> None:
    measurements: Dict[str, float] = {}
    for label, techniques in [
        ("Baseline (DRIPS)", TechniqueSet.baseline()),
        ("ODRIPS", TechniqueSet.odrips()),
        ("ODRIPS-PCM", TechniqueSet.odrips_pcm()),
    ]:
        measurements[label] = ODRIPSController(techniques, cache=_cache_of(args)).measure(
            cycles=_cycles_of(args), macro=args.macro
        ).average_power_w
    rows = [
        [label, f"{mw:.1f} mW", f"{days:.1f} days", f"{extra:+.1f} days"]
        for label, mw, days, extra in life_table(measurements, args.battery_wh)
    ]
    print(format_table(
        ["configuration", "avg power", f"standby on {args.battery_wh:.0f} Wh", "vs baseline"],
        rows,
        title="Connected-standby battery life",
    ))


def cmd_trace(args: argparse.Namespace) -> int:
    """Run one observed experiment and export its trace + energy ledger."""
    from repro import obs
    from repro.errors import ConfigError

    target = args.target or "fig2"
    try:
        session = obs.run_traced(target, cycles=args.cycles)
    except ConfigError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    out = args.out or f"trace-{target}.json"
    path = obs.write_chrome_trace(session.tracer, out, platform=session.platform)
    print(obs.render_summary(session.tracer, ledger=session.ledger,
                             platform=session.platform))
    print()
    print(f"Chrome trace written to {path} - load it in Perfetto "
          "(ui.perfetto.dev) or chrome://tracing")
    if args.jsonl:
        jsonl_path = obs.write_jsonl(session.tracer, args.jsonl)
        print(f"JSONL event log written to {jsonl_path}")
    return 0


def cmd_metrics(args: argparse.Namespace) -> int:
    """Run one observed experiment and expose its live telemetry.

    ``--openmetrics`` renders the OpenMetrics text exposition (tracer
    counters/histograms + streaming aggregates + heartbeats); without it
    the human-readable span/metric digest prints instead.  ``--out``
    writes the exposition to a file; ``--heartbeat [DIR]`` mirrors
    heartbeats to per-source JSON files for concurrent dashboard reads.
    """
    from repro import obs
    from repro.errors import ConfigError
    from repro.obs.openmetrics import render_openmetrics
    from repro.obs.stream import TelemetryStream, streaming

    target = args.target or "fig2"
    stream = TelemetryStream(heartbeat_dir=getattr(args, "heartbeat", None))
    try:
        with streaming(stream):
            session = obs.run_traced(target, cycles=args.cycles)
    except ConfigError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.openmetrics:
        text = render_openmetrics(session.tracer.metrics, stream)
        if args.out:
            from pathlib import Path

            Path(args.out).write_text(text, encoding="utf-8")
            print(f"OpenMetrics exposition written to {args.out}")
        else:
            print(text, end="")
    else:
        print(obs.render_summary(session.tracer, ledger=session.ledger,
                                 platform=session.platform))
    return 0


def cmd_dash(args: argparse.Namespace) -> int:
    """Build the static fleet dashboard: ``python -m repro dash``.

    Joins the flight-recorder history, BENCH_perf.json, live heartbeat
    files (``--heartbeat [DIR]``), and — unless ``--static`` — the
    per-cause energy rollup of a fresh observed fig2 run into one
    self-contained HTML page (default ``dash.html``; override with
    ``--out``).
    """
    from repro.errors import ConfigError, MeasurementError
    from repro.obs.dash import build_dashboard, write_dashboard
    from repro.regress.report import DEFAULT_BENCH_PATH

    causal = None
    if not args.static:
        from repro import obs
        from repro.obs.causal import build_causal_report

        try:
            session = obs.run_traced(args.target or "fig2", cycles=args.cycles)
            causal = build_causal_report(
                session.tracer, session.platform
            ).as_dict()
        except ConfigError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        except MeasurementError as error:
            # the causal section is advisory; the joined stores still render
            print(f"warning: causal section skipped: {error}", file=sys.stderr)
    data = build_dashboard(
        bench_path=args.bench or DEFAULT_BENCH_PATH,
        heartbeat_dir=getattr(args, "heartbeat", None),
        causal=causal,
    )
    path = write_dashboard(args.out or "dash.html", data)
    print(
        f"dashboard written to {path} - {len(data['records'])} run record(s), "
        f"{len(data['heartbeats'])} heartbeat(s), "
        f"{len(data['anomalies'])} anomaly advisories"
    )
    return 0


def cmd_explain(args: argparse.Namespace) -> int:
    """Explain the delta between two runs: ``python -m repro explain``.

    Simulate mode compares two traced configurations (or one against a
    perturbed copy of itself via ``--perturb KEY=FACTOR``) and ranks the
    (domain x state x wake-cause) energy-delta contributors; ``--history``
    compares the two most recent flight-recorder records of an
    experiment instead.  Exit 0 on a ranked verdict, 1 when the runs are
    incompatible (macro vs exact backend), 2 on usage errors.
    """
    import json as json_mod

    from repro.errors import ConfigError, MeasurementError
    from repro.obs.diff import explain_history, explain_simulate, render_explain

    cache = None
    if args.cache:
        from repro.perf.cache import SimulationCache

        cache = SimulationCache()
    target = args.target or "fig2"
    try:
        if args.history:
            payload = explain_history(target)
        else:
            payload = explain_simulate(
                target,
                target2=args.target2,
                perturb=args.perturb,
                cycles=args.cycles,
                cache=cache,
            )
    except ConfigError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except MeasurementError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.json:
        print(json_mod.dumps(payload, indent=1, sort_keys=True))
    else:
        print(render_explain(payload))
    return 0 if payload["compatible"] else 1


def _explain_rule(token: str) -> int:
    """Print one registered rule's identity and an example diagnostic.

    Shared by ``repro lint --explain`` and ``repro check --explain``:
    both commands validate patterns against the same registry, so both
    explain from it too.  Accepts a rule id (``C601``) or name
    (``wake-budget-exceeded``); unknown rules are a usage error.
    """
    from repro import lint as lint_mod
    from repro.lint.diagnostics import Diagnostic, Location

    entry = None
    for candidate in lint_mod.rule_catalog():
        if token in (candidate["rule_id"], candidate["name"]):
            entry = candidate
            break
    if entry is None:
        print(f"error: unknown rule: {token!r}", file=sys.stderr)
        print(
            "hint: pass a rule id (e.g. C601) or name (e.g. "
            "wake-budget-exceeded); see docs/LINT.md and docs/CHECK.md",
            file=sys.stderr,
        )
        return lint_mod.EXIT_USAGE
    print(f"{entry['rule_id']} ({entry['name']}) [{entry['severity'].value}]")
    print(f"  {entry['summary']}")
    example = Diagnostic(
        rule=entry["rule_id"],
        name=entry["name"],
        severity=entry["severity"],
        message=entry["summary"],
        location=Location(obj="<example>"),
    )
    print("example diagnostic:")
    print(f"  {example.render()}")
    return lint_mod.EXIT_CLEAN


def cmd_lint(args: argparse.Namespace) -> int:
    """Run every static-analysis pass; exit non-zero on any finding.

    The model verifier runs on the shipped Skylake platform in its two
    extreme configurations (baseline DRIPS and full ODRIPS, which differ
    in the components they instantiate); the experiment-registry check
    (M307) verifies golden-value coverage; the source checker runs on
    the installed ``repro`` sources unless ``--path`` overrides them.
    """
    from repro import lint as lint_mod
    from repro.errors import ConfigError
    from repro.system.skylake import SkylakePlatform

    if args.explain:
        return _explain_rule(args.explain)
    select = [token for entry in args.select for token in entry.split(",") if token]
    ignore = [token for entry in args.ignore for token in entry.split(",") if token]
    try:
        lint_mod.validate_rule_patterns(select + ignore, lint_mod.all_rules())
    except ConfigError as error:
        print(f"error: {error}", file=sys.stderr)
        return lint_mod.EXIT_USAGE

    diagnostics = []
    for techniques in (TechniqueSet.baseline(), TechniqueSet.odrips()):
        diagnostics.extend(lint_mod.lint_platform(SkylakePlatform(techniques=techniques)))
    diagnostics.extend(lint_mod.lint_experiments())
    paths = args.path or [_default_lint_root()]
    missing = [path for path in paths if not os.path.exists(path)]
    if missing:
        for path in missing:
            print(f"error: no such file or directory: {path}", file=sys.stderr)
        return lint_mod.EXIT_USAGE
    diagnostics.extend(lint_mod.lint_paths(paths))
    diagnostics = lint_mod.filter_diagnostics(
        lint_mod.dedupe_diagnostics(diagnostics), select=select, ignore=ignore
    )
    if args.json:
        print(lint_mod.render_json(diagnostics))
    else:
        print(lint_mod.render_text(diagnostics))
    return lint_mod.exit_code(diagnostics)


def _default_lint_root() -> str:
    from repro.lint.source import default_source_root

    return str(default_source_root())


def _default_heartbeat_dir() -> str:
    from repro.obs.stream import DEFAULT_HEARTBEAT_DIR

    return DEFAULT_HEARTBEAT_DIR


def cmd_check(args: argparse.Namespace) -> int:
    """Exhaustive model check + interprocedural source passes (C-series).

    Explores every reachable composed state of the shipped Skylake
    platform in its two extreme configurations (baseline DRIPS and full
    ODRIPS), checks the power-safety invariants in each state, then runs
    the unit-dataflow (C4xx) and effect/determinism (C5xx) passes over
    the sources — both on one shared parse and call graph, so each file
    is parsed exactly once per invocation.  Exit 0 when clean, 1 on
    findings, 2 on usage errors — the same contract as ``repro lint``.
    """
    import json as json_mod

    from repro import check as check_mod
    from repro import lint as lint_mod
    from repro.check.callgraph import graph_for_paths
    from repro.check.dataflow import analyze_graph
    from repro.check.effects import analyze_effects_graph
    from repro.errors import ConfigError
    from repro.lint.astcache import ModuleCache

    if args.explain:
        return _explain_rule(args.explain)
    select = [token for entry in args.select for token in entry.split(",") if token]
    ignore = [token for entry in args.ignore for token in entry.split(",") if token]
    try:
        lint_mod.validate_rule_patterns(select + ignore, lint_mod.all_rules())
    except ConfigError as error:
        print(f"error: {error}", file=sys.stderr)
        return lint_mod.EXIT_USAGE

    invariant_names = None
    if args.invariants:
        invariant_names = tuple(
            token for entry in args.invariants for token in entry.split(",") if token
        )
    try:
        check_mod.select_invariants(invariant_names)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return lint_mod.EXIT_USAGE
    if args.max_states <= 0:
        print("error: --max-states must be positive", file=sys.stderr)
        return lint_mod.EXIT_USAGE

    run_budgets = getattr(args, "budgets", False)
    diagnostics = []
    state_space: Dict[str, object] = {}
    budgets: Dict[str, object] = {}
    for label, techniques in (
        ("baseline", TechniqueSet.baseline()),
        ("odrips", TechniqueSet.odrips()),
    ):
        report = check_mod.check_standby_model(
            techniques=techniques,
            invariant_names=invariant_names,
            max_states=args.max_states,
            budgets=run_budgets,
        )
        diagnostics.extend(report.diagnostics)
        state_space[label] = report.state_space
        if report.budgets is not None:
            budgets[label] = report.budgets

    paths = args.path or [_default_lint_root()]
    missing = [path for path in paths if not os.path.exists(path)]
    if missing:
        for path in missing:
            print(f"error: no such file or directory: {path}", file=sys.stderr)
        return lint_mod.EXIT_USAGE
    cache = ModuleCache()
    graph = graph_for_paths(paths, cache=cache)
    diagnostics.extend(analyze_graph(graph))
    effects_summary: Optional[Dict[str, object]] = None
    if getattr(args, "effects", True):
        effects_report = analyze_effects_graph(graph)
        diagnostics.extend(effects_report.diagnostics)
        effects_summary = effects_report.summary

    diagnostics = lint_mod.filter_diagnostics(
        lint_mod.dedupe_diagnostics(diagnostics), select=select, ignore=ignore
    )
    if args.json:
        payload = json_mod.loads(lint_mod.render_json(diagnostics))
        payload["state_space"] = state_space
        if effects_summary is not None:
            payload["effects"] = effects_summary
        if run_budgets:
            payload["budgets"] = budgets
        print(json_mod.dumps(payload, indent=2, sort_keys=True))
    else:
        print(lint_mod.render_text(diagnostics))
        for label in sorted(state_space):
            summary = state_space[label]
            print(
                f"state space [{label}]: {summary['states_explored']} state(s), "
                f"{summary['transitions_taken']} transition(s)"
                + (" [truncated]" if summary["truncated"] else "")
            )
        for label in sorted(budgets):
            summary = budgets[label]
            for state, row in sorted(summary.get("deep_states", {}).items()):
                exit_ps = row.get("worst_exit_latency_ps")
                exit_us = "n/a" if exit_ps is None else f"{exit_ps / 1e6:.1f} us"
                budget_ps = row.get("wake_budget_ps")
                budget_us = (
                    "undeclared" if budget_ps is None else f"{budget_ps / 1e6:.1f} us"
                )
                break_even = row.get("break_even_s")
                break_even_ms = (
                    "n/a" if break_even is None else f"{break_even * 1e3:.2f} ms"
                )
                print(
                    f"budgets [{label}]: {state} worst exit {exit_us} "
                    f"(budget {budget_us}), break-even {break_even_ms}"
                    + (
                        f" vs {row['break_even_vs']}"
                        if row.get("break_even_vs")
                        else ""
                    )
                )
            cycle = summary.get("cycle")
            if isinstance(cycle, dict):
                limit = cycle.get("golden_limit_j")
                limit_text = "n/a" if limit is None else f"{limit:.3f} J"
                print(
                    f"budgets [{label}]: cycle energy >= "
                    f"{cycle['energy_lower_bound_j']:.3f} J "
                    f"(golden ceiling {limit_text} over "
                    f"{cycle['period_s']:.3f} s)"
                )
        if effects_summary is not None:
            entries = effects_summary["entry_points"]
            clean = sum(1 for entry in entries if entry["clean"])
            print(
                f"effects: {len(entries)} entry point(s), {clean} clean, "
                f"{len(entries) - clean} with undeclared effects "
                f"({effects_summary['functions']} function(s) analyzed, "
                f"parsed {cache.parse_count} file(s) once)"
            )
    return lint_mod.exit_code(diagnostics)


COMMANDS: Dict[str, Callable[[argparse.Namespace], None]] = {
    "fig1b": cmd_fig1b,
    "fig2": cmd_fig2,
    "fig6a": cmd_fig6a,
    "fig6b": cmd_fig6b,
    "fig6c": cmd_fig6c,
    "fig6d": cmd_fig6d,
    "table1": cmd_table1,
    "latency": cmd_latency,
    "calibration": cmd_calibration,
    "ablations": cmd_ablations,
    "battery": cmd_battery,
    "sensitivity": cmd_sensitivity,
    "temperature": cmd_temperature,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the ODRIPS (HPCA 2020) experiments",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(COMMANDS) + ["all", "check", "dash", "explain", "lint",
                                    "metrics", "report", "trace"],
        help="which paper experiment to run ('lint' for static analysis, "
             "'check' for the exhaustive model checker, 'trace' for an "
             "observed run with Perfetto export, 'explain' for the "
             "differential drift explainer, 'report' for the "
             "golden-number regression watchdog, 'metrics' for the "
             "OpenMetrics exposition, 'dash' for the fleet dashboard)",
    )
    parser.add_argument(
        "target", nargs="?", default=None,
        help="trace/explain: configuration to observe (fig2, baseline, "
             "wake-up-off, aon-io-gate, ctx, odrips, odrips-mram, odrips-pcm; "
             "default fig2)",
    )
    parser.add_argument(
        "target2", nargs="?", default=None,
        help="explain: second configuration to diff the first against",
    )
    parser.add_argument(
        "--cycles", type=int, default=2,
        help="measured connected-standby cycles per configuration (default 2)",
    )
    perf_group = parser.add_argument_group("performance options")
    perf_group.add_argument(
        "--macro", dest="macro", action="store_true", default=False,
        help="macro-step periodic standby cycles (bit-for-bit identical "
             "results, orders of magnitude faster for long horizons)",
    )
    perf_group.add_argument(
        "--no-macro", dest="macro", action="store_false",
        help="force event-by-event simulation (default)",
    )
    perf_group.add_argument(
        "--horizon", type=float, default=None, metavar="DAYS",
        help="simulated horizon in days; overrides --cycles via the default "
             "workload's cycle period (use with --macro for week scales)",
    )
    obs_group = parser.add_argument_group("observability options")
    obs_group.add_argument(
        "--out", metavar="FILE", default=None,
        help="trace: Chrome trace-event JSON output path (default trace-<target>.json)",
    )
    obs_group.add_argument(
        "--jsonl", metavar="FILE", default=None,
        help="trace: also write a flat JSONL event log",
    )
    obs_group.add_argument(
        "--trace", action="store_true",
        help="run the experiment instrumented and print the span/metric digest",
    )
    obs_group.add_argument(
        "--metrics", action="store_true",
        help="run the experiment instrumented and print the metrics tables",
    )
    obs_group.add_argument(
        "--cache", action="store_true",
        help="memoize simulation runs and report cache hit/miss stats",
    )
    obs_group.add_argument(
        "--profile", action="store_true",
        help="attribute host wall time and peak allocations to "
             "build/simulate/measure/analyze phases",
    )
    obs_group.add_argument(
        "--no-runlog", action="store_true",
        help="do not record this run to the .repro/runs flight recorder",
    )
    obs_group.add_argument(
        "--heartbeat", nargs="?", metavar="DIR", default=None,
        const=_default_heartbeat_dir(),
        help="stream live telemetry (bounded histograms + per-source "
             "progress heartbeats) and mirror heartbeats to DIR "
             "(default .repro/heartbeats)",
    )
    obs_group.add_argument(
        "--openmetrics", action="store_true",
        help="metrics: render the OpenMetrics text exposition instead of "
             "the human-readable digest",
    )
    obs_group.add_argument(
        "--static", action="store_true",
        help="dash: skip the fresh observed run (no per-cause energy "
             "section; joins the stores only)",
    )
    perf_group.add_argument(
        "--parallel", action="store_true",
        help="fig6b/fig6c: fan sweep points out over worker processes",
    )
    parser.add_argument(
        "--break-even", action="store_true",
        help="fig6a: also compute the residency break-even points (slower)",
    )
    parser.add_argument(
        "--battery-wh", type=float, default=BATTERY_WH["surface-class"],
        help="battery capacity for the battery command (default 38 Wh)",
    )
    lint_group = parser.add_argument_group("lint options")
    lint_group.add_argument(
        "--json", action="store_true",
        help="lint: emit machine-readable JSON instead of text",
    )
    lint_group.add_argument(
        "--select", action="append", default=[], metavar="RULES",
        help="lint: only report these rules (comma-separated ids/prefixes/names)",
    )
    lint_group.add_argument(
        "--ignore", action="append", default=[], metavar="RULES",
        help="lint: suppress these rules (comma-separated ids/prefixes/names)",
    )
    lint_group.add_argument(
        "--path", action="append", default=[], metavar="PATH",
        help="lint: source files/directories to check (default: the repro package)",
    )
    lint_group.add_argument(
        "--explain", metavar="RULE", default=None,
        help="lint/check: print the registered rule's identity, summary and "
             "an example diagnostic, then exit (rule id or name)",
    )
    check_group = parser.add_argument_group("check options")
    check_group.add_argument(
        "--max-states", type=int, default=100_000, metavar="N",
        help="check: bound on explored composed states (default 100000)",
    )
    check_group.add_argument(
        "--invariants", action="append", default=[], metavar="NAMES",
        help="check: only evaluate these invariants (comma-separated names; "
             "default: all builtins)",
    )
    check_group.add_argument(
        "--effects", dest="effects", action="store_true", default=True,
        help="check: run the C5xx effect/determinism analysis (default)",
    )
    check_group.add_argument(
        "--no-effects", dest="effects", action="store_false",
        help="check: skip the C5xx effect/determinism analysis",
    )
    check_group.add_argument(
        "--budgets", dest="budgets", action="store_true", default=False,
        help="check: run the priced-timed C6xx budget analysis — worst-case "
             "exit latency, break-even residency and per-cycle energy bounds "
             "(probes one standby cycle per configuration)",
    )
    check_group.add_argument(
        "--no-budgets", dest="budgets", action="store_false",
        help="check: skip the C6xx budget analysis (default)",
    )
    explain_group = parser.add_argument_group("explain options")
    explain_group.add_argument(
        "--perturb", metavar="KEY=FACTOR", default=None,
        help="explain: diff the target against a perturbed copy of itself "
             "(dram-self-refresh, external-wake-rate)",
    )
    explain_group.add_argument(
        "--history", action="store_true",
        help="explain: diff the two most recent flight-recorder records of "
             "the target experiment instead of re-simulating",
    )
    report_group = parser.add_argument_group("report options")
    report_group.add_argument(
        "--baseline", metavar="FILE", default=None,
        help="report: JSON file overriding golden values / bench policies",
    )
    report_group.add_argument(
        "--bench", metavar="FILE", default=None,
        help="report: benchmark figures to check (default BENCH_perf.json)",
    )
    report_group.add_argument(
        "--html", metavar="FILE", default=None,
        help="report: also write a static HTML report",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.experiment == "lint":
        return cmd_lint(args)
    if args.experiment == "check":
        return cmd_check(args)
    if args.experiment == "report":
        from repro.regress.report import cmd_report

        return cmd_report(args)
    if args.experiment == "trace":
        return cmd_trace(args)
    if args.experiment == "explain":
        return cmd_explain(args)
    if args.experiment == "metrics":
        return cmd_metrics(args)
    if args.experiment == "dash":
        return cmd_dash(args)

    args.cache_obj = None
    if args.cache:
        from repro.perf.cache import SimulationCache

        args.cache_obj = SimulationCache()

    tracer = None
    if args.trace or args.metrics:
        from repro import obs

        tracer = obs.install()
    profiler = None
    if args.profile:
        from repro.obs.profile import PhaseProfiler, install_profiler

        profiler = install_profiler(PhaseProfiler(track_allocations=True))
    stream = None
    if args.heartbeat is not None:
        from repro.obs.stream import TelemetryStream, install_stream

        stream = install_stream(TelemetryStream(heartbeat_dir=args.heartbeat))
    recorder = None
    if not args.no_runlog:
        from repro.obs.runlog import install_recorder

        recorder = install_recorder()
    try:
        from repro.obs.profile import host_phase

        if args.experiment == "all":
            for name in ["table1", "fig1b", "fig2", "fig6a", "fig6b", "fig6c",
                         "fig6d", "latency", "calibration", "ablations"]:
                with host_phase("analyze"):
                    COMMANDS[name](args)
                print()
        else:
            with host_phase("analyze"):
                COMMANDS[args.experiment](args)
    finally:
        if stream is not None:
            from repro.obs.stream import uninstall_stream

            uninstall_stream()
        if recorder is not None:
            from repro.obs.runlog import uninstall_recorder

            uninstall_recorder()
        if profiler is not None:
            from repro.obs.profile import uninstall_profiler

            uninstall_profiler()
        if tracer is not None:
            from repro import obs

            obs.uninstall()
    if tracer is not None:
        from repro import obs

        print()
        print(obs.render_summary(tracer, include_spans=args.trace,
                                 profiler=profiler,
                                 platform=tracer.platforms[-1]
                                 if tracer.platforms else None))
    elif profiler is not None:
        from repro.obs.export import render_profile

        print()
        print(render_profile(profiler))
    if stream is not None and stream.heartbeats:
        print()
        sources = ", ".join(sorted(stream.heartbeats))
        print(f"heartbeats: {sources} -> {stream.heartbeat_dir} "
              f"({len(stream.histograms)} live histogram(s); "
              f"watch with `python -m repro dash`)")
    if args.cache_obj is not None:
        stats = args.cache_obj.stats
        print()
        print(f"cache: {stats.hits} hit(s), {stats.misses} miss(es), "
              f"{stats.hit_rate:.0%} hit rate over {stats.lookups} lookup(s)")
    if recorder is not None:
        _persist_runlog(recorder, args.experiment)
    return 0


def _persist_runlog(recorder, command: str) -> None:
    """Append this invocation's run records to the flight-recorder store.

    Persistence failures warn instead of failing the run: the experiment
    output already printed, and a read-only checkout must stay usable.
    """
    from repro.obs.runlog import RunLog

    recorder.finish(command)
    if not recorder.records:
        return
    try:
        RunLog().append_all(recorder.records)
    except OSError as error:
        print(f"warning: flight recorder could not append run records: {error}",
              file=sys.stderr)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
