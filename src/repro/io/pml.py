"""The power-management link (PML) between processor and chipset.

Sec. 4.1.2: "The PML has two physical master-slave interfaces (clocked
with the 24 MHz clock).  The processor is the master for the interface
from the processor to the chipset and the chipset is the master for the
interface from the chipset to the processor.  Consequently, the PML is a
*deterministic* channel."

Determinism is the property the timer handoff leans on: a message of a
given size always takes the same number of 24 MHz cycles, so a fixed
compensation constant added to a transferred timer value makes the
transfer lossless in time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional

from repro.clocks.clock import DerivedClock
from repro.errors import IOError_
from repro.io.pads import IOPad
from repro.sim.kernel import Kernel


@dataclass(frozen=True)
class PMLMessage:
    """One message on the link."""

    kind: str
    payload: Any = None
    payload_words: int = 1


class PMLChannel:
    """One direction of the link (single master, deterministic timing)."""

    #: Protocol overhead per message: start, header, CRC, ack (cycles).
    HEADER_CYCLES = 8

    #: Cycles per 32-bit payload word.
    CYCLES_PER_WORD = 4

    def __init__(
        self,
        name: str,
        kernel: Kernel,
        clock: DerivedClock,
        master_pad: IOPad,
        slave_pad: IOPad,
    ) -> None:
        self.name = name
        self.kernel = kernel
        self.clock = clock
        self.master_pad = master_pad
        self.slave_pad = slave_pad
        self._receiver: Optional[Callable[[PMLMessage], None]] = None
        self.messages_sent = 0
        self.log: List[PMLMessage] = []

    def set_receiver(self, receiver: Callable[[PMLMessage], None]) -> None:
        self._receiver = receiver

    def transfer_cycles(self, message: PMLMessage) -> int:
        """Deterministic cycle count of the transfer (always the same for
        the same payload size — the compensation constant comes from here)."""
        return self.HEADER_CYCLES + self.CYCLES_PER_WORD * message.payload_words

    def transfer_latency_ps(self, message: PMLMessage) -> int:
        return self.transfer_cycles(message) * self.clock.period_ps

    def send(self, message: PMLMessage) -> int:
        """Transmit; the receiver callback fires after the deterministic
        latency.  Returns the delivery time in picoseconds.

        Both pads must be powered: a gated PML is exactly why ODRIPS must
        route wake events through the chipset instead.
        """
        self.master_pad.require_usable()
        self.slave_pad.require_usable()
        if not self.clock.available:
            raise IOError_(f"PML {self.name}: 24 MHz clock is off")
        delivery = self.kernel.now + self.transfer_latency_ps(message)
        self.messages_sent += 1
        self.log.append(message)

        def deliver() -> None:
            if self._receiver is not None:
                self._receiver(message)

        self.kernel.schedule_at(delivery, deliver, label=f"pml:{self.name}:{message.kind}")
        return delivery


class PMLLink:
    """The full bidirectional link (two channels, opposite masters)."""

    def __init__(
        self,
        kernel: Kernel,
        clock: DerivedClock,
        processor_pad: IOPad,
        chipset_pad: IOPad,
    ) -> None:
        self.to_chipset = PMLChannel(
            "proc->pch", kernel, clock, master_pad=processor_pad, slave_pad=chipset_pad
        )
        self.to_processor = PMLChannel(
            "pch->proc", kernel, clock, master_pad=chipset_pad, slave_pad=processor_pad
        )

    def timer_compensation_cycles(self, payload_words: int = 2) -> int:
        """The fixed constant added to a transferred timer value
        (Sec. 4.1.2) — the deterministic transfer time in 24 MHz cycles."""
        message = PMLMessage("timer", payload_words=payload_words)
        return self.to_chipset.transfer_cycles(message)
