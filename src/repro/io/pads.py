"""IO pads and the processor's always-on IO bank.

Each pad carries a leakage draw (the pad driver and its level shifters)
plus a toggling term for clocked interfaces.  The bank groups the pads
behind one power boundary: in baseline DRIPS the bank stays on (it *is*
the 7 % AON-IO slice of Fig. 1(b)); in ODRIPS the chipset opens the
on-board FET and the whole bank drops to gate leakage.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import IOError_
from repro.power.domain import Component, PowerDomain


class IOPad:
    """One always-on IO interface of the processor."""

    def __init__(
        self,
        name: str,
        domain: PowerDomain,
        leakage_watts: float,
        toggle_watts: float = 0.0,
        wake_capable: bool = False,
    ) -> None:
        self.name = name
        self.wake_capable = wake_capable
        self.toggle_watts = toggle_watts
        self.component: Component = domain.new_component(f"io:{name}", leakage_watts)
        self._toggling = False

    @property
    def toggling(self) -> bool:
        return self._toggling

    def start_toggling(self) -> None:
        """The interface is actively clocked (adds dynamic power)."""
        self._toggling = True
        self.component.set_dynamic(self.toggle_watts)

    def stop_toggling(self) -> None:
        """The interface is idle (leakage only)."""
        self._toggling = False
        self.component.set_dynamic(0.0)

    @property
    def usable(self) -> bool:
        """True when the pad's domain actually delivers power."""
        return self.component.powered

    def require_usable(self) -> None:
        if not self.usable:
            raise IOError_(f"IO pad {self.name} is power-gated")


class AONIOBank:
    """The processor's AON IO pads behind one gateable power boundary.

    ``domain`` should be gated by the on-board FET
    (:class:`~repro.power.gates.BoardFETGate`) so that opening the gate
    reproduces the AON-IO-GATE technique.
    """

    def __init__(self, domain: PowerDomain) -> None:
        self.domain = domain
        self._pads: Dict[str, IOPad] = {}

    def add_pad(
        self,
        name: str,
        leakage_watts: float,
        toggle_watts: float = 0.0,
        wake_capable: bool = False,
    ) -> IOPad:
        if name in self._pads:
            raise IOError_(f"duplicate AON IO pad {name!r}")
        pad = IOPad(name, self.domain, leakage_watts, toggle_watts, wake_capable)
        self._pads[name] = pad
        return pad

    def pad(self, name: str) -> IOPad:
        try:
            return self._pads[name]
        except KeyError:
            raise IOError_(f"no AON IO pad named {name!r}") from None

    @property
    def pads(self) -> List[IOPad]:
        return list(self._pads.values())

    @property
    def gated(self) -> bool:
        return not self.domain.delivering

    def quiesce(self) -> None:
        """Stop all toggling (pre-gating step of the ODRIPS entry flow)."""
        for pad in self._pads.values():
            pad.stop_toggling()

    def total_power_watts(self) -> float:
        """Nominal demand of the bank (before gate/PD effects)."""
        return self.domain.nominal_load_watts()
