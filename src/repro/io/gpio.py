"""Chipset GPIOs and the slow-clock input monitor.

Sec. 5.3: "The chipset has a number of spare (unused) GPIOs.  We use two
of these spare GPIOs to facilitate IO power-gating" — one to offload the
embedded controller's thermal wake and one to drive the FET gate.  The
thermal input is "monitor[ed] ... with the 32KHz clock signal inside the
chipset's PMU" (Sec. 5.2), so a level change is observed only at the next
32 kHz edge — a deliberate latency-for-power trade the bench can measure.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.clocks.clock import DerivedClock
from repro.errors import IOError_
from repro.sim.kernel import Kernel
from repro.sim.signals import Signal


class GPIOController:
    """A bank of general-purpose IOs with spare-pin bookkeeping."""

    def __init__(self, name: str, total: int = 64, reserved: int = 48) -> None:
        if reserved > total:
            raise IOError_(f"{name}: reserved > total GPIOs")
        self.name = name
        self.total = total
        self._next_spare = reserved
        self._allocations: Dict[int, str] = {}
        self._signals: Dict[int, Signal] = {}

    @property
    def spare_available(self) -> int:
        return self.total - self._next_spare

    def allocate_spare(self, purpose: str) -> int:
        """Claim one spare GPIO; returns its index."""
        if self._next_spare >= self.total:
            raise IOError_(f"{self.name}: no spare GPIOs left")
        index = self._next_spare
        self._next_spare += 1
        self._allocations[index] = purpose
        return index

    def allocation(self, index: int) -> Optional[str]:
        return self._allocations.get(index)

    @property
    def allocations(self) -> Dict[int, str]:
        return dict(self._allocations)

    def signal(self, index: int) -> Signal:
        """The level signal of GPIO ``index`` (created lazily)."""
        if index < 0 or index >= self.total:
            raise IOError_(f"{self.name}: GPIO {index} out of range")
        if index not in self._signals:
            self._signals[index] = Signal(f"{self.name}.gpio{index}", initial=False)
        return self._signals[index]

    def drive(self, index: int, level: bool) -> None:
        """Drive GPIO ``index`` as an output."""
        self.signal(index).set(bool(level))

    def read(self, index: int) -> bool:
        """Sample GPIO ``index`` as an input."""
        return bool(self.signal(index).value)


class GPIOMonitor:
    """Samples an input GPIO on every rising edge of a (slow) clock.

    A level change is reported at the first clock edge at or after it
    occurred — i.e. with up to one slow-clock period (~30.5 us at
    32.768 kHz) of detection latency.
    """

    def __init__(
        self,
        kernel: Kernel,
        clock: DerivedClock,
        line: Signal,
        on_rising: Callable[[], None],
        name: str = "gpio-monitor",
    ) -> None:
        self.kernel = kernel
        self.clock = clock
        self.line = line
        self.on_rising = on_rising
        self.name = name
        self._armed = False
        self._last_sample = bool(line.value)
        self._unsubscribe: Optional[Callable[[], None]] = None
        self.detections = 0
        self.detection_latencies_ps: List[int] = []

    @property
    def armed(self) -> bool:
        return self._armed

    def arm(self) -> None:
        """Start watching the line (entering ODRIPS)."""
        if self._armed:
            return
        self._armed = True
        self._last_sample = bool(self.line.value)
        self._unsubscribe = self.line.watch(self._on_change)

    def disarm(self) -> None:
        """Stop watching (normal operation resumed)."""
        self._armed = False
        if self._unsubscribe is not None:
            self._unsubscribe()
            self._unsubscribe = None

    def _on_change(self, _signal: Signal, old: Any, new: Any) -> None:
        if not self._armed or not new or old:
            return
        changed_at = self.kernel.now
        sample_at = self.clock.next_edge(changed_at)

        def sample() -> None:
            if not self._armed:
                return
            if bool(self.line.value):
                self.detections += 1
                self.detection_latencies_ps.append(self.kernel.now - changed_at)
                self.on_rising()

        self.kernel.schedule_at(sample_at, sample, label=f"{self.name}:sample")
