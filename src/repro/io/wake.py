"""Wake events and their classification.

"The system exits DRIPS and enters the Active state ... upon receiving a
wake-up event from either an internal timer or an external trigger through
one of the inputs/outputs" (Sec. 1).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional


class WakeEventType(enum.Enum):
    """Source classification of a wake-up event."""

    TIMER = "timer"            # TSC reached a scheduled target (TNTE)
    NETWORK = "network"        # packet/notification from the NIC
    USER_INPUT = "user_input"  # lid, button, touch
    THERMAL = "thermal"        # embedded-controller thermal report
    MAINTENANCE = "maintenance"  # OS kernel maintenance timer
    DEBUG = "debug"            # debug/reset interface

    @property
    def needs_cores(self) -> bool:
        """Whether handling requires waking the cores (vs PMU-only)."""
        return self is not WakeEventType.THERMAL


@dataclass(frozen=True)
class WakeEvent:
    """A wake-up request observed by the platform."""

    event_type: WakeEventType
    time_ps: int
    detail: str = ""
    #: For TIMER events: the TSC target count that fired.
    timer_target: Optional[int] = None

    def __str__(self) -> str:
        return f"{self.event_type.value}@{self.time_ps}ps{' ' + self.detail if self.detail else ''}"
