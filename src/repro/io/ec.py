"""The board's embedded controller (EC).

The EC reports thermal events to the processor over a dedicated AON
interface in the baseline ("thermal reporting interface from the board",
Sec. 3 Observation 2).  In ODRIPS that interface is offloaded: the EC line
is re-routed to a spare chipset GPIO monitored at 32 kHz (Sec. 5.2).

The thermal model is a simple exponential-settling skin-temperature model
driven by platform power — enough to generate realistic, rare thermal
wake events during connected standby and frequent ones under load.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.sim.kernel import Kernel
from repro.sim.signals import Signal


class EmbeddedController:
    """Thermal supervisor raising a wake line when a trip point crosses."""

    def __init__(
        self,
        kernel: Kernel,
        ambient_celsius: float = 30.0,
        trip_celsius: float = 45.0,
        celsius_per_watt: float = 8.0,
        time_constant_s: float = 30.0,
    ) -> None:
        self.kernel = kernel
        self.ambient_celsius = ambient_celsius
        self.trip_celsius = trip_celsius
        self.celsius_per_watt = celsius_per_watt
        self.time_constant_s = time_constant_s
        self.thermal_line = Signal("ec.thermal_event", initial=False)
        self._temperature = ambient_celsius
        self._power_watts = 0.0
        self._last_update_ps = 0
        self.trip_count = 0

    @property
    def temperature_celsius(self) -> float:
        return self._temperature

    def observe_power(self, now_ps: int, platform_watts: float) -> None:
        """Advance the thermal state to ``now_ps`` under the old power,
        then switch to the new power level."""
        self._advance(now_ps)
        self._power_watts = platform_watts

    def _advance(self, now_ps: int) -> None:
        elapsed_s = (now_ps - self._last_update_ps) / 1e12
        self._last_update_ps = now_ps
        if elapsed_s <= 0:
            return
        target = self.ambient_celsius + self.celsius_per_watt * self._power_watts
        decay = math.exp(-elapsed_s / self.time_constant_s)
        self._temperature = target + (self._temperature - target) * decay
        self._check_trip()

    def _check_trip(self) -> None:
        if self._temperature >= self.trip_celsius and not self.thermal_line.value:
            self.trip_count += 1
            self.thermal_line.assert_()
        elif self._temperature < self.trip_celsius - 2.0 and self.thermal_line.value:
            self.thermal_line.deassert()  # 2 degree hysteresis

    def force_thermal_event(self) -> None:
        """Test hook: assert the thermal line regardless of temperature."""
        self.trip_count += 1
        self.thermal_line.assert_()

    def clear(self) -> None:
        """Deassert the thermal line (event serviced)."""
        self.thermal_line.deassert()
