"""IO subsystem: AON IO pads, PML, GPIOs, and the embedded controller.

Models the processor's always-on IOs of Observation 2 (Sec. 3): the
differential 24 MHz clock buffers, the two power-management-link (PML)
interfaces, thermal reporting from the embedded controller, and the
voltage-regulator/reset/debug interfaces — plus the chipset-side GPIO
machinery (spare GPIO allocation, 32 kHz input monitoring) that lets the
chipset take these functions over so the processor bank can be
power-gated through the on-board FET (Sec. 5).
"""

from repro.io.pads import AONIOBank, IOPad
from repro.io.pml import PMLChannel, PMLLink, PMLMessage
from repro.io.gpio import GPIOController, GPIOMonitor
from repro.io.ec import EmbeddedController
from repro.io.wake import WakeEvent, WakeEventType

__all__ = [
    "AONIOBank",
    "EmbeddedController",
    "GPIOController",
    "GPIOMonitor",
    "IOPad",
    "PMLChannel",
    "PMLLink",
    "PMLMessage",
    "WakeEvent",
    "WakeEventType",
]
