"""Performance infrastructure: memoized experiments and fingerprints.

The evaluation is sweep-heavy — the figure benches and analyses re-run
the same deterministic simulations (the baseline standby run above all)
with identical configurations.  This package provides:

* :func:`~repro.perf.fingerprint.fingerprint` — a deterministic,
  content-addressed digest of any configuration tree (frozen dataclasses,
  enums, technique sets, plain values);
* :class:`~repro.perf.cache.SimulationCache` — an in-memory memo keyed by
  those fingerprints, threaded through
  :class:`~repro.core.odrips.ODRIPSController` and the experiment
  drivers so repeated configurations simulate once.

Parallel execution of independent sweep points lives in
:func:`repro.analysis.sweep.sweep` (``parallel=True``); see docs/PERF.md
for the design and the microbenchmark harness.
"""

from repro.perf.cache import CacheStats, SimulationCache
from repro.perf.fingerprint import canonical, fingerprint

__all__ = [
    "CacheStats",
    "SimulationCache",
    "canonical",
    "fingerprint",
]
