"""Content-addressed memoization of simulation results.

The platform model is deterministic: a configuration tree fully
determines the measurement it produces.  :class:`SimulationCache` keys
results by the :func:`~repro.perf.fingerprint.fingerprint` of that tree,
so distinct experiment drivers (fig2, fig6a, fig6d, validation, ...) that
re-run the same configuration — the baseline standby run above all —
simulate it once and share the reading.

Cached values are returned by reference and must be treated as
immutable; the digested measurement objects the library caches are never
mutated by their consumers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, TypeVar

from repro.obs.tracer import active as _active_tracer
from repro.perf.fingerprint import fingerprint

Result = TypeVar("Result")


@dataclass(frozen=True)
class CacheStats:
    """Hit/miss counters of one cache instance."""

    hits: int
    misses: int

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups


class SimulationCache:
    """In-memory memo of simulation results keyed by config fingerprints.

    Usage::

        from repro.perf import SimulationCache
        from repro.core import ODRIPSController, TechniqueSet
        from repro.core.experiments import fig2_connected_standby, fig6a_techniques

        cache = SimulationCache()
        fig2 = fig2_connected_standby(cache=cache)
        fig6a = fig6a_techniques(cache=cache)   # baseline run is a cache hit
        assert cache.stats.hits >= 1
    """

    def __init__(self) -> None:
        self._entries: Dict[str, Any] = {}
        self._hits = 0
        self._misses = 0

    def key(self, *parts: Any) -> str:
        """Deterministic cache key for a configuration tree."""
        return fingerprint(*parts)

    def get_or_run(self, key: str, runner: Callable[[], Result]) -> Result:
        """Return the cached result for ``key``, running ``runner`` on miss."""
        try:
            value = self._entries[key]
        except KeyError:
            self._misses += 1
            tracer = _active_tracer()
            if tracer is not None:
                tracer.metrics.counter("cache.miss").inc()
            value = self._entries[key] = runner()
            return value
        self._hits += 1
        tracer = _active_tracer()
        if tracer is not None:
            tracer.metrics.counter("cache.hit").inc()
        return value

    @property
    def stats(self) -> CacheStats:
        return CacheStats(hits=self._hits, misses=self._misses)

    def clear(self) -> None:
        """Drop all entries (counters are kept)."""
        self._entries.clear()

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)
