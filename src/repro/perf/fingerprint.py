"""Deterministic content fingerprints for configuration trees.

A simulation run is fully determined by its configuration: the platform
config (frozen dataclasses), the technique set, the workload config and
the measurement arguments.  :func:`fingerprint` reduces any such tree to
a stable SHA-256 digest by first converting it to a canonical, JSON-able
form (:func:`canonical`) — so two configurations that compare equal by
value always hash identically, regardless of object identity or
construction order.

Floats are serialized through :func:`repr`-exact JSON encoding, so
distinct float values never collide and equal values always agree; sets
and dict keys are ordered by their canonical encoding.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
from typing import Any


def canonical(obj: Any) -> Any:
    """Reduce ``obj`` to a canonical JSON-able structure.

    Handles the building blocks of the configuration model: frozen
    dataclasses, enums, (frozen)sets, mappings, sequences, and plain
    scalars.  Arbitrary objects fall back to their class name plus their
    instance attributes (covers :class:`~repro.core.techniques.TechniqueSet`).
    """
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, enum.Enum):
        return {"__enum__": type(obj).__name__, "value": canonical(obj.value)}
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        encoded = {
            field.name: canonical(getattr(obj, field.name))
            for field in dataclasses.fields(obj)
        }
        encoded["__dataclass__"] = type(obj).__name__
        return encoded
    if isinstance(obj, dict):
        pairs = [[canonical(key), canonical(value)] for key, value in obj.items()]
        pairs.sort(key=_ordering_key)
        return {"__mapping__": pairs}
    if isinstance(obj, (list, tuple)):
        return [canonical(item) for item in obj]
    if isinstance(obj, (set, frozenset)):
        items = [canonical(item) for item in obj]
        items.sort(key=_ordering_key)
        return {"__set__": items}
    if hasattr(obj, "__dict__"):
        encoded = {
            name: canonical(value)
            for name, value in sorted(vars(obj).items())
            if not name.startswith("_")
        }
        encoded["__class__"] = type(obj).__name__
        return encoded
    raise TypeError(f"cannot canonicalize {type(obj).__name__!r} for fingerprinting")


def _ordering_key(encoded: Any) -> str:
    """Total order over canonical structures: their JSON encoding."""
    return json.dumps(encoded, sort_keys=True, separators=(",", ":"))


def fingerprint(*parts: Any) -> str:
    """SHA-256 hex digest of the canonical encoding of ``parts``."""
    payload = json.dumps(
        [canonical(part) for part in parts],
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()
