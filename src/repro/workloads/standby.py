"""The connected-standby workload runner.

Drives a :class:`~repro.system.skylake.SkylakePlatform` through the
periodic cycle of Fig. 2: Active (kernel maintenance) -> Entry -> DRIPS
-> Exit -> Active, for a configurable number of cycles, and measures the
average power and residencies over whole cycles.

The maintenance task is defined in *work* (core cycles at the reference
0.8 GHz clock), so raising the core frequency shortens the Active
residency — the race-to-sleep lever of Fig. 6(b).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from repro.config import StandbyWorkloadConfig
from repro.errors import WorkloadError
from repro.io.wake import WakeEventType
from repro.measure.residency import ResidencyReport, residency_report
from repro.obs.stream import active_stream
from repro.obs.tracer import MEASURE_TRACK
from repro.sim.macro import MacroConfig, MacroEngine, macro_residency_report
from repro.system.flows import FlowController
from repro.system.skylake import SkylakePlatform
from repro.system.states import PlatformState
from repro.units import PICOSECONDS_PER_SECOND, seconds_to_ps

#: Reference frequency at which the maintenance work is defined.
REFERENCE_GHZ = 0.8


@dataclass
class StandbyResult:
    """Outcome of a connected-standby measurement run."""

    cycles: int
    window_start_ps: int
    window_end_ps: int
    average_power_w: float
    residency: ResidencyReport
    entry_latencies_ps: List[int] = field(default_factory=list)
    exit_latencies_ps: List[int] = field(default_factory=list)
    drips_breakdown_w: Dict[str, float] = field(default_factory=dict)
    wake_events: List[str] = field(default_factory=list)
    #: Macro-stepping statistics (None for event-by-event runs).
    macro: Optional[Dict[str, int]] = None

    @property
    def window_s(self) -> float:
        return (self.window_end_ps - self.window_start_ps) / PICOSECONDS_PER_SECOND

    @property
    def drips_residency(self) -> float:
        return self.residency.residency(PlatformState.DRIPS.value)

    @property
    def drips_power_w(self) -> float:
        return self.residency.average_power(PlatformState.DRIPS.value)

    @property
    def active_power_w(self) -> float:
        return self.residency.average_power(PlatformState.ACTIVE.value)


class ConnectedStandbyRunner:
    """Runs N maintenance/idle cycles and measures average power."""

    def __init__(
        self,
        platform: SkylakePlatform,
        workload: Optional[StandbyWorkloadConfig] = None,
        idle_interval_s: Optional[float] = None,
        maintenance_s: Optional[float] = None,
        randomize_maintenance: bool = False,
        external_wakes: bool = False,
        period_s: Optional[float] = None,
        macro: Union[bool, MacroConfig] = False,
    ) -> None:
        """``idle_interval_s`` schedules the wake relative to DRIPS entry
        (free-running mode).  ``period_s`` instead fixes the whole cycle
        period — the wake timer fires at ``cycle_start + period`` no
        matter how long the flows took, so technique transition overheads
        eat into idle residency.  The paper's break-even sweep (Sec. 7)
        holds the period fixed; pass ``period_s`` for that experiment.

        ``macro`` enables cycle-compiled macro-stepping
        (:mod:`repro.sim.macro`): once two consecutive cycles match
        bit-for-bit the remaining periodic cycles are replayed
        analytically instead of simulated, with event-by-event fallback
        at irregular points.  Pass a :class:`MacroConfig` to tune it.
        Randomized maintenance defeats periodicity, so it disables the
        engine.
        """
        self.platform = platform
        self.workload = workload if workload is not None else StandbyWorkloadConfig()
        self.idle_interval_s = (
            idle_interval_s if idle_interval_s is not None else self.workload.idle_interval_s
        )
        self.period_s = period_s
        if self.idle_interval_s <= 0:
            raise WorkloadError("idle interval must be positive")
        if period_s is not None and period_s <= 0:
            raise WorkloadError("period must be positive")
        self._fixed_maintenance_s = maintenance_s
        self.randomize_maintenance = randomize_maintenance
        self.external_wakes = external_wakes
        self._rng = random.Random(self.workload.seed)
        self._stashed_wake_delay_s: Optional[float] = None
        self._macro_engine: Optional[MacroEngine] = None
        if macro and not randomize_maintenance:
            config = macro if isinstance(macro, MacroConfig) else None
            self._macro_engine = MacroEngine(platform, config)
        self.flows = FlowController(platform)
        self.flows.set_active_callback(self._on_active)
        self._cycles_target = 0
        self._cycles_done = 0
        self._warmup = 0
        self._cycle_start_ps = 0
        self._period_anchor_ps: Optional[int] = None
        self._period_index = 0
        self._measure_start_ps: Optional[int] = None
        self._drips_breakdown: Dict[str, float] = {}
        self._finished = False
        # live telemetry stream, captured once per run() (None: disabled)
        self._stream = None

    # --- cycle mechanics ----------------------------------------------------

    def _maintenance_seconds(self) -> float:
        if self._fixed_maintenance_s is not None:
            return self._fixed_maintenance_s
        if self.randomize_maintenance:
            return self._rng.uniform(
                self.workload.maintenance_min_s, self.workload.maintenance_max_s
            )
        return self.workload.maintenance_mean_s

    def _start_cycle(self) -> None:
        p = self.platform
        if self._cycles_done == self._warmup and self._measure_start_ps is None:
            self._measure_start_ps = p.kernel.now
            p.meter.mark("standby-measure", p.kernel.now)
        self._cycle_start_ps = p.kernel.now
        # maintenance work is fixed in cycles at the reference clock
        work_cycles = round(self._maintenance_seconds() * REFERENCE_GHZ * 1e9)
        duration = p.compute.run_task(work_cycles)
        p.kernel.schedule(duration, self._end_maintenance, label="workload:maintenance")

    def _end_maintenance(self) -> None:
        p = self.platform
        if self.period_s is not None:
            # periodic schedule: wakes fire on an absolute grid anchored at
            # the first cycle, so flow overheads eat idle residency instead
            # of stretching the period
            if self._period_anchor_ps is None:
                self._period_anchor_ps = self._cycle_start_ps
            self._period_index += 1
            wake_ps = self._period_anchor_ps + round(
                self._period_index * self.period_s * PICOSECONDS_PER_SECOND
            )
            delay_s = max((wake_ps - p.kernel.now) / PICOSECONDS_PER_SECOND, 1e-6)
            target = p.next_timer_target(delay_s)
        else:
            target = p.next_timer_target(self.idle_interval_s)
        p.pmu.schedule_timer_event(target)
        if self.external_wakes:
            self._maybe_schedule_external_wake()
        self.flows.request_drips()
        # snapshot the DRIPS breakdown once the platform settles there
        p.kernel.schedule(
            seconds_to_ps(min(1.0, self.idle_interval_s / 2)),
            self._snapshot_drips,
            label="workload:breakdown",
        )

    def _snapshot_drips(self) -> None:
        if self.platform.state is PlatformState.DRIPS and not self._drips_breakdown:
            self._drips_breakdown = self.platform.power_breakdown()

    def _next_external_wake_delay(self) -> Optional[float]:
        """Next inter-wake delay draw in seconds (None: wakes disabled).

        One draw per standby cycle, shared between the event-by-event
        path and the macro-stepping executor so both consume the RNG
        stream identically.  A delay stashed by
        :meth:`_stash_external_wake_delay` is returned before drawing.
        """
        rate_per_s = self.workload.external_wake_rate_per_hour / 3600.0
        if rate_per_s <= 0:
            return None
        if self._stashed_wake_delay_s is not None:
            delay_s = self._stashed_wake_delay_s
            self._stashed_wake_delay_s = None
            return delay_s
        return self._rng.expovariate(rate_per_s)

    def _stash_external_wake_delay(self, delay_s: float) -> None:
        """Hold a drawn delay for the next cycle's wake scheduling.

        The macro executor stops skipping just before a cycle whose draw
        would fire; stashing the draw lets the exactly-simulated fallback
        cycle consume it, keeping the RNG stream aligned with an
        event-by-event run.
        """
        self._stashed_wake_delay_s = delay_s

    def _maybe_schedule_external_wake(self) -> None:
        delay_s = self._next_external_wake_delay()
        if delay_s is None:
            return
        if delay_s < self.idle_interval_s * 0.9:
            self.platform.kernel.schedule(
                seconds_to_ps(delay_s),
                lambda: self.flows.external_wake(WakeEventType.NETWORK, "injected"),
                label="workload:external-wake",
            )

    def _on_active(self, _event) -> None:
        self._cycles_done += 1
        stream = self._stream
        if stream is not None:
            # pure observation: one heartbeat + one histogram sample per
            # completed cycle, off the kernel's event queue entirely
            p = self.platform
            stream.heartbeat(
                "runner",
                done=self._cycles_done,
                total=self._cycles_target,
                sim_now_ps=p.kernel.now,
                events=p.kernel.events_fired,
            )
            stream.histogram("cycle.duration_s").observe(
                (p.kernel.now - self._cycle_start_ps) / PICOSECONDS_PER_SECOND
            )
        engine = self._macro_engine
        if engine is not None and self._cycles_done < self._cycles_target + self._warmup:
            self._cycles_done += engine.at_boundary(self)
        if self._cycles_done >= self._cycles_target + self._warmup:
            self._finished = True
            return
        self._start_cycle()

    # --- public API -------------------------------------------------------------

    def run(self, cycles: int = 3, warmup_cycles: int = 0) -> StandbyResult:
        """Execute ``cycles`` measured cycles (plus optional warmup).

        The measurement window runs wake-to-wake: it starts at the wake
        event ending the first (post-warmup) idle period and ends exactly
        ``cycles`` wakes later, so it contains the same number of
        Active/Entry/DRIPS/Exit phases for every configuration — the
        unbiased comparison the break-even sweep needs.
        """
        if cycles <= 0:
            raise WorkloadError("need at least one measured cycle")
        p = self.platform
        if not p.booted:
            p.boot()
        # one extra cycle supplies the closing wake of the window
        self._cycles_target = cycles + warmup_cycles + 1
        self._warmup = 0
        self._cycles_done = 0
        self._finished = False
        self._measure_start_ps = None
        if self._macro_engine is not None:
            # fresh detector state per run; the config carries over
            self._macro_engine = MacroEngine(p, self._macro_engine.config)
        # capture the telemetry stream once per run; disabled cost is one
        # attribute check per cycle in _on_active
        self._stream = active_stream()
        self._start_cycle()
        # generous event budget: each cycle is a handful of events
        p.kernel.run(max_events=self._cycles_target * 10_000 + 100_000)
        if not self._finished:
            raise WorkloadError("standby run did not complete; event budget exhausted")
        if len(p.wake_log) < warmup_cycles + cycles + 1:
            raise WorkloadError(
                f"expected at least {warmup_cycles + cycles + 1} wake events, "
                f"saw {len(p.wake_log)}"
            )
        window_start = p.wake_log[warmup_cycles].time_ps
        window_end = p.wake_log[warmup_cycles + cycles].time_ps
        obs = p.obs
        if obs is not None:
            obs.set_window(window_start, window_end)
            window = obs.begin("measure:window", window_start, track=MEASURE_TRACK)
            obs.end(window, window_end)
        p.meter.advance(p.kernel.now)
        engine = self._macro_engine
        if engine is not None and engine.spans:
            # compiled spans carry summary trace records only; compose the
            # exact per-state split analytically (bit-for-bit vs exact runs)
            report = macro_residency_report(
                p.trace, window_start, window_end, engine.spans
            )
        else:
            report = residency_report(p.trace, window_start, window_end)
        average = report.total_average_power()
        return StandbyResult(
            cycles=cycles,
            window_start_ps=window_start,
            window_end_ps=window_end,
            average_power_w=average,
            residency=report,
            entry_latencies_ps=list(self.flows.stats.entry_latencies_ps),
            exit_latencies_ps=list(self.flows.stats.exit_latencies_ps),
            drips_breakdown_w=dict(self._drips_breakdown),
            wake_events=[str(event) for event in p.wake_log],
            macro=(
                self._macro_engine.stats.as_dict()
                if self._macro_engine is not None
                else None
            ),
        )
