"""Activity traces: record/replay of connected-standby nights.

The paper measures residency on a live Windows machine; an open-source
reproduction wants the equivalent as *data* — a timestamped activity
trace that can be generated, saved, loaded, inspected, and replayed
against any platform configuration.

* :class:`TraceEvent` / :class:`ActivityTrace` — the trace format, with
  CSV round-trip.
* :func:`standard_standby_trace` — the paper's workload: maintenance
  every ~30 s, rare external wakes.
* :func:`chatty_night_trace` — a messaging-heavy night (frequent
  network wakes), the usability scenario of Sec. 1.
* :class:`TraceDrivenRunner` — replays a trace on a platform and
  measures average power, exactly like the periodic runner.
"""

from __future__ import annotations

import csv
import io
import random
from dataclasses import dataclass
from typing import Iterable, List, Optional

from repro.errors import WorkloadError
from repro.io.wake import WakeEventType
from repro.measure.residency import residency_report
from repro.system.flows import FlowController
from repro.system.states import PlatformState
from repro.units import PICOSECONDS_PER_SECOND
from repro.workloads.standby import REFERENCE_GHZ, StandbyResult

#: Event kinds a trace may contain.
KIND_MAINTENANCE = "maintenance"   # param = burst duration in seconds
KIND_NETWORK = "network"           # param unused
KIND_USER = "user"                 # param = interaction duration in seconds


@dataclass(frozen=True)
class TraceEvent:
    """One timestamped activity event."""

    time_s: float
    kind: str
    param: float = 0.0

    def __post_init__(self) -> None:
        if self.time_s < 0:
            raise WorkloadError("event time cannot be negative")
        if self.kind not in (KIND_MAINTENANCE, KIND_NETWORK, KIND_USER):
            raise WorkloadError(f"unknown event kind {self.kind!r}")
        if self.kind in (KIND_MAINTENANCE, KIND_USER) and self.param <= 0:
            raise WorkloadError(f"{self.kind} events need a positive duration")


class ActivityTrace:
    """A sorted sequence of activity events with CSV round-trip."""

    def __init__(self, events: Iterable[TraceEvent], label: str = "trace") -> None:
        self.events: List[TraceEvent] = sorted(events, key=lambda e: e.time_s)
        self.label = label
        if not self.events:
            raise WorkloadError("a trace needs at least one event")

    @property
    def duration_s(self) -> float:
        """Time of the last event (the replay horizon)."""
        return self.events[-1].time_s

    def counts(self) -> dict:
        out: dict = {}
        for event in self.events:
            out[event.kind] = out.get(event.kind, 0) + 1
        return out

    def busy_seconds(self) -> float:
        """Total active (non-idle) seconds the trace demands."""
        return sum(
            event.param
            for event in self.events
            if event.kind in (KIND_MAINTENANCE, KIND_USER)
        )

    def expected_idle_fraction(self) -> float:
        """First-order residency estimate (ignores transition time)."""
        if self.duration_s == 0:
            return 0.0
        return max(0.0, 1.0 - self.busy_seconds() / self.duration_s)

    # --- CSV round-trip ---------------------------------------------------

    def to_csv(self) -> str:
        out = io.StringIO()
        writer = csv.writer(out)
        writer.writerow(["time_s", "kind", "param"])
        for event in self.events:
            writer.writerow([f"{event.time_s:.6f}", event.kind, f"{event.param:.6f}"])
        return out.getvalue()

    @classmethod
    def from_csv(cls, text: str, label: str = "trace") -> "ActivityTrace":
        reader = csv.DictReader(io.StringIO(text))
        events = []
        for row in reader:
            try:
                events.append(
                    TraceEvent(float(row["time_s"]), row["kind"], float(row["param"]))
                )
            except (KeyError, TypeError, ValueError) as error:
                raise WorkloadError(f"malformed trace row {row!r}") from error
        return cls(events, label=label)


def standard_standby_trace(
    duration_s: float = 300.0,
    maintenance_interval_s: float = 30.0,
    maintenance_s: float = 0.145,
    seed: int = 2020,
) -> ActivityTrace:
    """The paper's workload: kernel maintenance every ~30 s (Sec. 7)."""
    rng = random.Random(seed)
    events = []
    t = maintenance_interval_s
    while t < duration_s:
        events.append(TraceEvent(t, KIND_MAINTENANCE, maintenance_s))
        t += maintenance_interval_s * rng.uniform(0.98, 1.02)
    if not events:
        raise WorkloadError("trace horizon shorter than one maintenance interval")
    return ActivityTrace(events, label="standard-standby")


def chatty_night_trace(
    duration_s: float = 300.0,
    maintenance_interval_s: float = 30.0,
    maintenance_s: float = 0.145,
    network_rate_per_minute: float = 2.0,
    seed: int = 7,
) -> ActivityTrace:
    """A messaging-heavy night: frequent network wakes between bursts."""
    rng = random.Random(seed)
    base = standard_standby_trace(
        duration_s, maintenance_interval_s, maintenance_s, seed
    )
    events = list(base.events)
    t = rng.expovariate(network_rate_per_minute / 60.0)
    while t < duration_s:
        events.append(TraceEvent(t, KIND_NETWORK))
        t += rng.expovariate(network_rate_per_minute / 60.0)
    return ActivityTrace(events, label="chatty-night")


class TraceDrivenRunner:
    """Replays an :class:`ActivityTrace` against a platform.

    Maintenance events become timer wakes (the platform sleeps until the
    event's timestamp); network/user events arrive as external wakes.
    After each wake the platform runs the demanded burst and re-enters
    DRIPS aimed at the next trace event.
    """

    def __init__(self, platform, trace: ActivityTrace) -> None:
        self.platform = platform
        self.trace = trace
        self.flows = FlowController(platform)
        self.flows.set_active_callback(self._on_active)
        self._index = 0
        self._finished = False
        self._measure_start_ps: Optional[int] = None

    def _next_event(self) -> Optional[TraceEvent]:
        if self._index < len(self.trace.events):
            return self.trace.events[self._index]
        return None

    def _enter_idle_toward(self, event: TraceEvent) -> None:
        p = self.platform
        now_s = p.kernel.now / PICOSECONDS_PER_SECOND
        delay_s = max(event.time_s - now_s, 0.002)
        p.pmu.schedule_timer_event(p.next_timer_target(delay_s))
        if event.kind == KIND_NETWORK:
            # the packet arrives at the event time regardless of the timer
            p.kernel.schedule(
                round(delay_s * PICOSECONDS_PER_SECOND),
                lambda: self.flows.external_wake(WakeEventType.NETWORK, "trace"),
                label="trace:network",
            )
        self.flows.request_drips()

    def _run_burst(self, event: TraceEvent) -> None:
        p = self.platform
        burst_s = event.param if event.param > 0 else 0.005  # wake handling
        work_cycles = round(burst_s * REFERENCE_GHZ * 1e9)
        duration = p.compute.run_task(work_cycles)
        p.kernel.schedule(duration, self._burst_done, label="trace:burst")

    def _burst_done(self) -> None:
        self._index += 1
        upcoming = self._next_event()
        if upcoming is None:
            self._finished = True
            return
        self._enter_idle_toward(upcoming)

    def _on_active(self, _wake_event) -> None:
        event = self.trace.events[self._index]
        self._run_burst(event)

    def run(self) -> StandbyResult:
        """Replay the whole trace; returns the standard result object."""
        p = self.platform
        if not p.booted:
            p.boot()
        self._measure_start_ps = p.kernel.now
        first = self._next_event()
        assert first is not None
        self._enter_idle_toward(first)
        p.kernel.run(max_events=len(self.trace.events) * 10_000 + 100_000)
        if not self._finished:
            raise WorkloadError("trace replay did not finish; event budget exhausted")
        window_start = self._measure_start_ps
        window_end = p.kernel.now
        p.meter.advance(window_end)
        report = residency_report(p.trace, window_start, window_end)
        return StandbyResult(
            cycles=len(self.trace.events),
            window_start_ps=window_start,
            window_end_ps=window_end,
            average_power_w=report.total_average_power(),
            residency=report,
            entry_latencies_ps=list(self.flows.stats.entry_latencies_ps),
            exit_latencies_ps=list(self.flows.stats.exit_latencies_ps),
            drips_breakdown_w={},
            wake_events=[str(event) for event in p.wake_log],
        )
