"""Workloads: the connected-standby driver and wake-event injection.

The paper's main workload is "an idle platform workload that places the
platform into the connected-standby mode" (Sec. 7): ~30 s idle intervals
punctuated by 100-300 ms kernel-maintenance bursts, with occasional
external wakes.
"""

from repro.workloads.standby import ConnectedStandbyRunner, StandbyResult
from repro.workloads.traces import (
    ActivityTrace,
    TraceDrivenRunner,
    TraceEvent,
    chatty_night_trace,
    standard_standby_trace,
)

__all__ = [
    "ActivityTrace",
    "ConnectedStandbyRunner",
    "StandbyResult",
    "TraceDrivenRunner",
    "TraceEvent",
    "chatty_night_trace",
    "standard_standby_trace",
]
