"""Exception hierarchy for the ODRIPS reproduction library.

Every error raised by :mod:`repro` derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the subsystem that failed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class SimulationError(ReproError):
    """A violation of the discrete-event simulation contract.

    Examples: scheduling an event in the past, running a kernel that has
    already been shut down, or re-entering :meth:`Kernel.run`.
    """


class PowerError(ReproError):
    """An inconsistency in the power-delivery model.

    Examples: enabling a component whose supply rail is off, negative power
    levels, or a regulator asked to supply more than its rated load.
    """


class ClockError(ReproError):
    """A clock-tree misuse, such as reading a gated clock's edge."""


class TimerError(ReproError):
    """A timer-subsystem failure (calibration misuse, handoff ordering)."""


class MemoryFault(ReproError):
    """An illegal access to a memory device or controller.

    Examples: out-of-range addresses, access to DRAM while it is in
    self-refresh, or writing a powered-down SRAM.
    """


class SecurityError(ReproError):
    """An integrity or freshness violation detected by the MEE.

    Raised when a protected-region read fails MAC verification or the
    integrity-tree walk detects a replayed/tampered block.
    """


class FlowError(ReproError):
    """An illegal power-state transition in the DRIPS/ODRIPS flows.

    Examples: requesting DRIPS entry while a compute domain is still
    active, or exiting a state the platform is not in.
    """


class IOError_(ReproError):
    """An IO-subsystem failure (PML protocol, gated pad access).

    Named with a trailing underscore to avoid shadowing the built-in
    :class:`IOError` alias of :class:`OSError`.
    """


class ConfigError(ReproError):
    """An invalid or inconsistent platform configuration."""


class WorkloadError(ReproError):
    """An invalid workload description (negative durations, bad phases)."""


class MacroError(ReproError):
    """A macro-stepping contract violation (:mod:`repro.sim.macro`).

    Examples: a compiled cycle whose per-rail ledger energies do not sum
    to the platform total, or a rail missing from the declared macro
    ledger coverage.
    """


class MeasurementError(ReproError):
    """A misuse of the measurement instruments (analyzer, counters)."""


class AnalysisError(ReproError):
    """An ill-posed analysis request.

    Examples: normalizing a sweep against a (near-)zero reference point,
    or asking for statistics of an empty result set.
    """
