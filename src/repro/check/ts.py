"""Transition-system compilation for the exhaustive model checker.

:func:`compile_transition_system` turns the duck-typed
:class:`~repro.lint.model.ModelView` — the declared platform-state FSM,
the flow step sequences, and the power/clock dependency edges — into an
explicit transition system over *composed states*: the FSM state, the
position inside an executing flow, and the accumulated side effects of
every step taken so far (domains gated off, domains halted, clock
sources gated).

The composition rule mirrors how :class:`~repro.system.flows.FlowController`
really sequences the platform: entering an FSM state that has a flow
attached (matched by name — the ``"entry"`` flow executes in the
``ENTRY`` state) immediately executes the flow's first step; each
micro-transition executes the next step; once the last step ran, the
FSM edges of the hosting state fire.  A step whose ``requires`` names a
domain that an earlier step gated off **blocks**: the edge does not
exist, and if no other edge leaves the state the explorer reports a
C101 deadlock with the blocking step named.

The state space is finite by construction (finitely many FSM states,
flow positions and effect subsets), but :mod:`repro.check.explore`
still bounds the walk with ``max_states`` as a safety valve for
user-authored views.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.lint.diagnostics import Diagnostic
from repro.lint.model import FlowView, ModelView
from repro.check.rules import C105_RULE, C106_RULE


def _state_name(state: object) -> str:
    return getattr(state, "name", str(state))


def _state_flow_key(state: object) -> str:
    """The name a flow must carry to attach to this FSM state.

    Enum states match on their ``value`` (``PlatformState.ENTRY.value``
    is ``"entry"``) falling back to the lowercased member name, so plain
    string FSMs in tests work the same way.
    """
    value = getattr(state, "value", None)
    if isinstance(value, str):
        return value
    return _state_name(state).lower()


class ComposedState:
    """One explored state: FSM position x flow position x side effects.

    Instances are immutable and hash-memoized: the hash over all six
    fields is computed once at construction, so the explorer's visited
    set never re-hashes the frozensets on lookup.
    """

    __slots__ = ("fsm", "flow", "step", "off", "halted", "gated", "_hash")

    def __init__(
        self,
        fsm: str,
        flow: Optional[str],
        step: int,
        off: FrozenSet[str],
        halted: FrozenSet[str],
        gated: FrozenSet[str],
    ) -> None:
        self.fsm = fsm
        self.flow = flow
        self.step = step
        self.off = off
        self.halted = halted
        self.gated = gated
        self._hash = hash((fsm, flow, step, off, halted, gated))

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ComposedState):
            return NotImplemented
        return (
            self._hash == other._hash
            and self.fsm == other.fsm
            and self.flow == other.flow
            and self.step == other.step
            and self.off == other.off
            and self.halted == other.halted
            and self.gated == other.gated
        )

    def describe(self) -> str:
        """Compact human-readable rendering for diagnostics."""
        where = self.fsm
        if self.flow is not None:
            where += f"[{self.flow}#{self.step}]"
        effects = []
        if self.off:
            effects.append("off=" + ",".join(sorted(self.off)))
        if self.halted:
            effects.append("halted=" + ",".join(sorted(self.halted)))
        if self.gated:
            effects.append("gated=" + ",".join(sorted(self.gated)))
        if effects:
            where += " {" + " ".join(effects) + "}"
        return where

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<ComposedState {self.describe()}>"


#: One outgoing edge: the label the explorer records on witness paths.
Edge = Tuple[str, ComposedState]


@dataclass(frozen=True)
class BlockedEdge:
    """An edge that does not exist because a step's requirement failed."""

    label: str
    missing: Tuple[str, ...]

    def describe(self) -> str:
        return (
            f"step {self.label!r} requires power domain(s) "
            f"{', '.join(sorted(self.missing))} already gated off"
        )


@dataclass
class TransitionSystem:
    """The compiled model: everything the explorer and invariants read."""

    initial: ComposedState
    active: str
    state_names: Tuple[str, ...]
    transitions: Dict[str, Tuple[str, ...]]
    flows: Dict[str, FlowView]
    flow_for_state: Dict[str, str]
    idle_states: Tuple[str, ...]
    clock_requirements: Tuple[Tuple[str, str], ...] = ()
    wake_sources: Tuple[str, ...] = ()
    #: Flows that matched no FSM state (never executed; reported C102).
    detached_flows: Tuple[str, ...] = ()
    _step_lists: Dict[str, Tuple[object, ...]] = field(default_factory=dict)

    def steps_of(self, flow_name: str) -> Tuple[object, ...]:
        return self._step_lists[flow_name]

    def successors(self, state: ComposedState) -> Tuple[List[Edge], List[BlockedEdge]]:
        """Outgoing edges of ``state`` plus the edges a requirement blocked."""
        edges: List[Edge] = []
        blocked: List[BlockedEdge] = []
        if state.flow is not None:
            steps = self.steps_of(state.flow)
            next_index = state.step + 1
            if next_index < len(steps):
                self._try_step(state, state.fsm, state.flow, next_index, edges, blocked)
                return edges, blocked
            # flow complete: fall through to the hosting state's FSM edges
        for target in self.transitions.get(state.fsm, ()):
            self._enter(state, target, edges, blocked)
        return edges, blocked

    # --- internals -----------------------------------------------------------

    def _enter(
        self,
        state: ComposedState,
        target: str,
        edges: List[Edge],
        blocked: List[BlockedEdge],
    ) -> None:
        flow_name = self.flow_for_state.get(target)
        if flow_name is not None and self.steps_of(flow_name):
            self._try_step(state, target, flow_name, 0, edges, blocked)
            return
        edges.append(
            (
                f"{state.fsm}->{target}",
                ComposedState(target, None, -1, state.off, state.halted, state.gated),
            )
        )

    def _try_step(
        self,
        state: ComposedState,
        fsm: str,
        flow_name: str,
        index: int,
        edges: List[Edge],
        blocked: List[BlockedEdge],
    ) -> None:
        step = self.steps_of(flow_name)[index]
        label = getattr(step, "label", f"{flow_name}#{index}")
        missing = tuple(
            sorted(name for name in getattr(step, "requires", ()) if name in state.off)
        )
        if missing:
            blocked.append(BlockedEdge(label=label, missing=missing))
            return
        edges.append((label, _apply_step(state, fsm, flow_name, index, step)))


def _apply_step(
    state: ComposedState, fsm: str, flow_name: str, index: int, step: object
) -> ComposedState:
    off = set(state.off)
    halted = set(state.halted)
    gated = set(state.gated)
    off.difference_update(getattr(step, "gates_on", ()))
    off.update(getattr(step, "gates_off", ()))
    halted.difference_update(getattr(step, "resumes", ()))
    halted.update(getattr(step, "halts", ()))
    gated.difference_update(getattr(step, "clocks_on", ()))
    gated.update(getattr(step, "clocks_off", ()))
    return ComposedState(
        fsm, flow_name, index, frozenset(off), frozenset(halted), frozenset(gated)
    )


def _known_clock_names(view: ModelView) -> FrozenSet[str]:
    names = [crystal.name for crystal in view.crystals]
    names += [clock.name for clock in view.clocks]
    names += [clock.name for clock in view.gateable_clocks]
    return frozenset(names)


def compile_transition_system(
    view: ModelView,
) -> Tuple[Optional[TransitionSystem], List[Diagnostic]]:
    """Compile ``view`` into a transition system.

    Returns ``(ts, diagnostics)``.  ``ts`` is None when the view declares
    no FSM (nothing to check); the diagnostics carry the compile-time
    binding errors — flow steps naming unknown clocks (C105) and safety
    declarations naming unknown domains or clocks (C106).
    """
    diagnostics: List[Diagnostic] = []
    fsm = view.fsm
    if fsm is None:
        return None, diagnostics

    state_names = tuple(_state_name(state) for state in fsm.states)
    name_of = {state: _state_name(state) for state in fsm.states}
    transitions = {
        name_of.get(source, _state_name(source)): tuple(
            name_of.get(target, _state_name(target)) for target in targets
        )
        for source, targets in fsm.transitions.items()
    }
    idle_states = tuple(
        name_of.get(state, _state_name(state)) for state in fsm.wake_receptive
    )

    flow_key_of = {_state_flow_key(state): name_of[state] for state in fsm.states}
    flows = {flow.name: flow for flow in view.flows}
    flow_for_state: Dict[str, str] = {}
    detached: List[str] = []
    for flow in view.flows:
        host = flow_key_of.get(flow.name)
        if host is None:
            detached.append(flow.name)
        else:
            flow_for_state[host] = flow.name

    known_clocks = _known_clock_names(view)
    known_domains = view.registered_domain_names()
    for flow in view.flows:
        for step in flow.steps:
            for attr in ("clocks_off", "clocks_on"):
                for clock_name in getattr(step, attr, ()):
                    if known_clocks and clock_name not in known_clocks:
                        diagnostics.append(
                            C105_RULE.diagnostic(
                                f"flow {flow.name!r} step "
                                f"{getattr(step, 'label', '?')!r} references clock "
                                f"{clock_name!r}, which does not exist in the "
                                "clock tree",
                                obj=f"flow {flow.name}:{getattr(step, 'label', '?')}",
                                hint="flow specs must name real clock sources; check for renames",
                            )
                        )
    for domain_name, clock_name in view.clock_requirements:
        if known_domains and domain_name not in known_domains:
            diagnostics.append(
                C106_RULE.diagnostic(
                    f"clock requirement names power domain {domain_name!r}, which "
                    "does not exist in the power tree",
                    obj=f"safety clock-requirement {domain_name}",
                )
            )
        if known_clocks and clock_name not in known_clocks:
            diagnostics.append(
                C106_RULE.diagnostic(
                    f"clock requirement for domain {domain_name!r} names clock "
                    f"{clock_name!r}, which does not exist in the clock tree",
                    obj=f"safety clock-requirement {domain_name}",
                )
            )
    for source_name in view.wake_sources:
        if known_domains and source_name not in known_domains:
            diagnostics.append(
                C106_RULE.diagnostic(
                    f"wake source names power domain {source_name!r}, which does "
                    "not exist in the power tree",
                    obj=f"safety wake-source {source_name}",
                )
            )

    initial = ComposedState(
        name_of.get(fsm.initial, _state_name(fsm.initial)),
        None,
        -1,
        frozenset(),
        frozenset(),
        frozenset(),
    )
    ts = TransitionSystem(
        initial=initial,
        active=name_of.get(fsm.active, _state_name(fsm.active)),
        state_names=state_names,
        transitions=transitions,
        flows=flows,
        flow_for_state=flow_for_state,
        idle_states=idle_states,
        clock_requirements=view.clock_requirements,
        wake_sources=view.wake_sources,
        detached_flows=tuple(detached),
        _step_lists={name: tuple(flow.steps) for name, flow in flows.items()},
    )
    return ts, diagnostics


def iter_flow_steps(ts: TransitionSystem) -> Iterable[Tuple[str, str]]:
    """Every declared ``(flow name, step label)`` pair of the system."""
    for flow_name, flow in sorted(ts.flows.items()):
        for index, step in enumerate(flow.steps):
            yield flow_name, getattr(step, "label", f"{flow_name}#{index}")
