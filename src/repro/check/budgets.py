"""Priced-timed budget analysis of the compiled transition system (C6xx).

The C1xx/C2xx checker answers *qualitative* questions — can the model
deadlock, can a live domain lose its clock.  This module answers the
*quantitative* ones the paper's evaluation hangs on: how long can the
worst-case exit path take (Sec. 7 measures ~300 us), how long must the
platform stay in DRIPS before a technique's transition overhead pays for
itself (Fig. 6(a): 6.3-7.4 ms), and how much energy one connected-standby
cycle must cost at minimum.

It works in two phases:

1. **Pricing.**  One short probe cycle runs the real simulator
   (:func:`probe_standby_cycle`) and reads, from the trace, the latency
   of every entry/exit flow step and the exact energy of every window
   (entry, exit, DRIPS residency, active residency).  All arithmetic
   downstream is exact :class:`~fractions.Fraction` — the derived numbers
   are correctly rounded, never accumulated in floating point.
2. **Analysis.**  :func:`analyze_budgets` prices every edge of the
   compiled :class:`~repro.check.ts.TransitionSystem` with its step
   latency plus the chipset's declared worst-case allowance (a flow step
   that synchronizes to the 32.768 kHz clock can wait up to one full slow
   period beyond what one probe observed), then takes worst-case paths
   over the *reachable* composed state space: longest entry path from the
   active state into each deep state, longest exit path back out.  The
   derived figures are gated against the platform's declaration
   (``budget_description()``) through rules C601-C605.

The derived break-even cross-checks :mod:`repro.analysis.breakeven`: both
model the fixed-period cycle of Sec. 7, so the static number must agree
with the dynamic two-point sweep within the declared differential
tolerance (exercised by the acceptance tests).
"""

from __future__ import annotations

from collections import deque
from fractions import Fraction
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.check.rules import C601_RULE, C602_RULE, C603_RULE, C604_RULE, C605_RULE
from repro.check.ts import ComposedState, TransitionSystem
from repro.lint.diagnostics import Diagnostic
from repro.lint.model import ModelView
from repro.units import PICOSECONDS_PER_SECOND, seconds_to_ps

#: Fallback probe cycle when the declaration is missing or malformed.
_DEFAULT_PROBE_IDLE_S = 0.004
_DEFAULT_PROBE_MAINTENANCE_S = 0.002


# ---------------------------------------------------------------------------
# Phase 1: pricing — probe one standby cycle and read the trace
# ---------------------------------------------------------------------------


def _integrate(trace: Any, channel: str, start_ps: int, end_ps: int) -> Fraction:
    """Exact energy (joules) of ``channel`` over ``[start_ps, end_ps)``.

    The trace's first interval may begin before ``start_ps`` (it reports
    the value that was already current); clip it so the integral covers
    exactly the requested window.
    """
    total = Fraction(0)
    for left, right, value in trace.intervals(channel, end_ps, start_ps):
        left = max(left, start_ps)
        right = min(right, end_ps)
        if right <= left:
            continue
        total += Fraction(value) * Fraction(right - left, PICOSECONDS_PER_SECOND)
    return total


def _mean_power(trace: Any, channel: str, start_ps: int, end_ps: int) -> Fraction:
    if end_ps <= start_ps:
        return Fraction(0)
    return _integrate(trace, channel, start_ps, end_ps) / Fraction(
        end_ps - start_ps, PICOSECONDS_PER_SECOND
    )


def probe_standby_cycle(
    config: Any = None,
    techniques: Any = None,
    idle_s: float = _DEFAULT_PROBE_IDLE_S,
    maintenance_s: float = _DEFAULT_PROBE_MAINTENANCE_S,
) -> Dict[str, Any]:
    """Run one short connected-standby cycle and price its trace.

    Returns the per-step latencies of the first entry/exit flow
    execution, the exact entry/exit transition energies, and the exact
    mean DRIPS and active power levels.  Energies and powers are
    :class:`~fractions.Fraction`; latencies are integer picoseconds.
    The flows are workload-independent, so one short cycle prices them
    the same as a 30 s production cycle would.
    """
    from repro.core.techniques import TechniqueSet
    from repro.power.tree import PowerTree
    from repro.system.skylake import SkylakePlatform
    from repro.system.states import FLOW_CHANNEL
    from repro.workloads.standby import ConnectedStandbyRunner

    techniques = techniques if techniques is not None else TechniqueSet.odrips()
    platform = SkylakePlatform(config=config, techniques=techniques)
    runner = ConnectedStandbyRunner(
        platform, idle_interval_s=idle_s, maintenance_s=maintenance_s
    )
    runner.run(cycles=1)

    trace = platform.trace
    samples = trace.samples(FLOW_CHANNEL)
    power_channel = PowerTree.PLATFORM_CHANNEL

    # Per-step latency: each step's window runs until the next step of
    # the *same flow*; the last step of a flow is an instantaneous marker
    # (its successor interval is residency, not step work).
    steps: Dict[str, Dict[str, int]] = {}
    first_at: Dict[str, int] = {}
    for index, sample in enumerate(samples):
        label = str(sample.value)
        if label in first_at:
            continue  # price the first execution only
        first_at[label] = sample.time_ps
        latency = 0
        if index + 1 < len(samples):
            next_label = str(samples[index + 1].value)
            same_flow = label.split(":", 1)[0] == next_label.split(":", 1)[0]
            if same_flow:
                latency = samples[index + 1].time_ps - sample.time_ps
        steps[label] = {"latency_ps": latency}

    def _at(label: str) -> Optional[int]:
        return first_at.get(label)

    entry_labels = sorted(
        (t, label) for label, t in first_at.items() if label.startswith("entry:")
    )
    exit_labels = sorted(
        (t, label) for label, t in first_at.items() if label.startswith("exit:")
    )
    if not entry_labels or not exit_labels:
        raise RuntimeError("probe cycle executed no entry/exit flow")

    entry_start = entry_labels[0][0]
    drips_start = _at("entry:drips")
    exit_start = exit_labels[0][0]
    exit_end = _at("exit:active")
    if drips_start is None or exit_end is None:
        raise RuntimeError("probe cycle missing entry:drips / exit:active markers")

    # Second entry (the runner executes cycles+1 wakes) bounds the active
    # window after the first exit; fall back to the trace end when the
    # probe ran exactly one flow pair.
    second_entry = sorted(
        sample.time_ps
        for sample in samples
        if str(sample.value).startswith("entry:") and sample.time_ps > exit_end
    )
    active_end = second_entry[0] if second_entry else samples[-1].time_ps

    return {
        "technique_label": techniques.label(),
        "idle_s": idle_s,
        "maintenance_s": maintenance_s,
        "steps": steps,
        "entry_latency_ps": drips_start - entry_start,
        "exit_latency_ps": exit_end - exit_start,
        "entry_energy_j": _integrate(trace, power_channel, entry_start, drips_start),
        "exit_energy_j": _integrate(trace, power_channel, exit_start, exit_end),
        "drips_power_w": _mean_power(trace, power_channel, drips_start, exit_start),
        "active_power_w": _mean_power(trace, power_channel, exit_end, active_end),
    }


# ---------------------------------------------------------------------------
# Phase 2: worst-case paths over the priced transition system
# ---------------------------------------------------------------------------


def _reachable(ts: TransitionSystem) -> List[ComposedState]:
    seen = {ts.initial}
    queue = deque([ts.initial])
    order = [ts.initial]
    while queue:
        state = queue.popleft()
        edges, _blocked = ts.successors(state)
        for _label, target in edges:
            if target not in seen:
                seen.add(target)
                queue.append(target)
                order.append(target)
    return order


def _edge_weight_ps(
    label: str,
    step_latencies: Dict[str, int],
    allowances: Dict[str, int],
) -> int:
    """Worst-case picoseconds attributed to taking one priced edge.

    Flow-step edges (``flow:step`` labels) cost their probed latency plus
    the chipset's declared phase allowance; FSM edges are instantaneous
    state relabelings and cost nothing.
    """
    if ":" not in label:
        return 0
    probed = step_latencies.get(label, 0)
    return probed + allowances.get(label, 0)


def _worst_path(
    ts: TransitionSystem,
    starts: Sequence[ComposedState],
    goal_fsm: str,
    step_latencies: Dict[str, int],
    allowances: Dict[str, int],
) -> Optional[Tuple[int, Tuple[str, ...]]]:
    """Longest priced path from any of ``starts`` to a ``goal_fsm`` state.

    The relevant segments (a flow run plus its terminal FSM hop) are
    acyclic — step indices strictly increase — so a memoized DFS with an
    on-stack cycle guard is exact: a cycle that avoids the goal cannot be
    part of a worst *finite* path (unbounded cycles are C103's business,
    not a latency figure).
    """
    memo: Dict[ComposedState, Optional[Tuple[int, Tuple[str, ...]]]] = {}
    on_stack: set = set()

    def longest_from(state: ComposedState) -> Optional[Tuple[int, Tuple[str, ...]]]:
        if state.fsm == goal_fsm:
            return (0, ())
        if state in memo:
            return memo[state]
        if state in on_stack:
            return None
        on_stack.add(state)
        best: Optional[Tuple[int, Tuple[str, ...]]] = None
        edges, _blocked = ts.successors(state)
        for label, target in edges:
            sub = longest_from(target)
            if sub is None:
                continue
            weight = _edge_weight_ps(label, step_latencies, allowances)
            candidate = (weight + sub[0], (label,) + sub[1])
            if best is None or candidate[0] > best[0]:
                best = candidate
        on_stack.discard(state)
        memo[state] = best
        return best

    overall: Optional[Tuple[int, Tuple[str, ...]]] = None
    for start in starts:
        result = longest_from(start)
        if result is not None and (overall is None or result[0] > overall[0]):
            overall = result
    return overall


# ---------------------------------------------------------------------------
# Declaration parsing
# ---------------------------------------------------------------------------


def _parse_state_entry(name: str, entry: Any) -> Tuple[Optional[Dict[str, Any]], str]:
    """Validate one deep-state budget declaration; return (parsed, error)."""
    if not isinstance(entry, dict):
        return None, f"declaration for {name} is not a mapping"
    budget = entry.get("wake_budget_ps")
    if not isinstance(budget, int) or isinstance(budget, bool) or budget <= 0:
        return None, f"{name}: wake_budget_ps must be a positive integer (ps)"
    guarantee = entry.get("residency_guarantee_s")
    if not isinstance(guarantee, (int, float)) or isinstance(guarantee, bool) or guarantee <= 0:
        return None, f"{name}: residency_guarantee_s must be a positive number"
    declared = entry.get("break_even_s")
    if declared is not None and (
        not isinstance(declared, (int, float)) or isinstance(declared, bool) or declared <= 0
    ):
        return None, f"{name}: break_even_s must be a positive number or None"
    tolerance = entry.get("break_even_tolerance")
    if not isinstance(tolerance, (int, float)) or isinstance(tolerance, bool) or not (
        0 < tolerance < 1
    ):
        return None, f"{name}: break_even_tolerance must be in (0, 1)"
    return {
        "wake_budget_ps": budget,
        "residency_guarantee_s": float(guarantee),
        "break_even_s": None if declared is None else float(declared),
        "break_even_tolerance": float(tolerance),
    }, ""


def _golden_limit_j(golden_spec: Any, period_s: Fraction) -> Tuple[Optional[Fraction], str]:
    """Resolve the per-cycle energy ceiling from the experiment registry.

    The declaration names a registered golden (experiment + metric key);
    a power golden is converted to joules over the declared cycle period.
    Resolved lazily so the checker does not import the experiment drivers
    unless budgets are actually analyzed.
    """
    if not isinstance(golden_spec, dict):
        return None, "cycle.golden must be a mapping"
    experiment = golden_spec.get("experiment")
    key = golden_spec.get("key")
    scale = golden_spec.get("scale", 1.0)
    if not isinstance(experiment, str) or not isinstance(key, str):
        return None, "cycle.golden must name an experiment and a metric key"
    if not isinstance(scale, (int, float)) or isinstance(scale, bool) or scale <= 0:
        return None, "cycle.golden scale must be a positive number"
    from repro.core.experiments import EXPERIMENTS

    spec = EXPERIMENTS.get(experiment)
    if spec is None:
        return None, f"cycle.golden references unknown experiment {experiment!r}"
    for golden in spec.goldens:
        if golden.key == key:
            ceiling_w = Fraction(golden.paper + golden.tolerance) * Fraction(str(scale))
            return ceiling_w * period_s, ""
    return None, f"experiment {experiment!r} declares no golden {key!r}"


# ---------------------------------------------------------------------------
# The analysis
# ---------------------------------------------------------------------------


def _ladder_rows(active_power_w: Fraction) -> Dict[str, Dict[str, float]]:
    """Derived figures for the shallow C-state ladder (C2/C6/C8).

    Each shallow state is priced from the processor tables the PMU uses:
    5 us of entry work at active power, exit at the floor power the flow
    holds (Sec. 2.2's LTR weighing).  Break-even is against the
    next-shallower ladder state (active for C2).
    """
    from repro.processor.cstates import CSTATE_EXIT_LATENCY_PS, CSTATE_POWER_WATTS, CState

    entry_ps = 5_000_000
    rows: Dict[str, Dict[str, float]] = {}
    ladder = [CState.C2, CState.C6, CState.C8]
    for index, state in enumerate(ladder):
        power = Fraction(str(CSTATE_POWER_WATTS[state]))
        exit_ps = CSTATE_EXIT_LATENCY_PS[state]
        exit_power = max(power, Fraction(3, 10))
        overhead_j = (
            active_power_w * Fraction(entry_ps, PICOSECONDS_PER_SECOND)
            + exit_power * Fraction(exit_ps, PICOSECONDS_PER_SECOND)
        )
        shallower_w = (
            active_power_w
            if index == 0
            else Fraction(str(CSTATE_POWER_WATTS[ladder[index - 1]]))
        )
        delta = shallower_w - power
        rows[state.name] = {
            "power_w": float(power),
            "entry_latency_ps": entry_ps,
            "exit_latency_ps": exit_ps,
            "transition_overhead_j": float(overhead_j),
            "break_even_s": float(overhead_j / delta) if delta > 0 else None,
        }
    return rows


def derive_technique_break_even(
    probe_self: Dict[str, Any],
    probe_baseline: Dict[str, Any],
    maintenance_s: Optional[float] = None,
) -> Fraction:
    """Exact break-even residency of a technique set against the baseline.

    Models the fixed-period cycle of the Sec. 7 sweep (period = idle +
    maintenance + ``BASE_TRANSITIONS_S``): relative to the baseline, the
    technique changes the per-cycle energy by its extra transition energy,
    its active-power delta over the maintenance burst (the new AON
    hardware draws in every state), and the residency each configuration
    loses to its own transition time — and saves ``dP_drips`` per second
    of residency.  Setting the saving to zero and solving for the idle
    time gives the crossing — the same quantity
    :func:`repro.analysis.breakeven.find_break_even` measures dynamically
    with a two-point fit.
    """
    from repro.analysis.breakeven import BASE_TRANSITIONS_S, SWEEP_MAINTENANCE_S

    if maintenance_s is None:
        maintenance_s = SWEEP_MAINTENANCE_S
    t0 = Fraction(seconds_to_ps(BASE_TRANSITIONS_S), PICOSECONDS_PER_SECOND)
    p_b = Fraction(probe_baseline["drips_power_w"])
    p_t = Fraction(probe_self["drips_power_w"])
    if p_b <= p_t:
        raise ValueError("technique does not reduce DRIPS power; no break-even")
    e_b = Fraction(probe_baseline["entry_energy_j"]) + Fraction(probe_baseline["exit_energy_j"])
    e_t = Fraction(probe_self["entry_energy_j"]) + Fraction(probe_self["exit_energy_j"])
    t_b = Fraction(
        int(probe_baseline["entry_latency_ps"]) + int(probe_baseline["exit_latency_ps"]),
        PICOSECONDS_PER_SECOND,
    )
    t_t = Fraction(
        int(probe_self["entry_latency_ps"]) + int(probe_self["exit_latency_ps"]),
        PICOSECONDS_PER_SECOND,
    )
    active_delta = Fraction(probe_self["active_power_w"]) - Fraction(
        probe_baseline["active_power_w"]
    )
    overhead = (
        (e_t - e_b)
        + active_delta * Fraction(str(maintenance_s))
        + p_b * (t_b - t0)
        - p_t * (t_t - t0)
    )
    return max(Fraction(0), overhead / (p_b - p_t))


def analyze_budgets(
    view: ModelView,
    ts: TransitionSystem,
    probes: Optional[Dict[str, Dict[str, Any]]] = None,
    config: Any = None,
    techniques: Any = None,
) -> Tuple[Dict[str, Any], List[Diagnostic]]:
    """Verify the platform's declared budgets against derived figures.

    ``probes`` injects pre-computed pricing (``{"self": ..., "baseline":
    ...}``) — the mutation tests use this to perturb one price at a time;
    when omitted, :func:`probe_standby_cycle` runs for the checked
    configuration and (when it is not the baseline) for the baseline.

    Returns the JSON-able budget summary and the C601-C605 diagnostics.
    """
    diagnostics: List[Diagnostic] = []
    declaration = view.budgets if isinstance(view.budgets, dict) else None
    if view.budgets is not None and declaration is None:
        declaration = {}

    deep_decls: Dict[str, Dict[str, Any]] = {}
    raw_states = (declaration or {}).get("deep_states")
    if declaration is not None and not isinstance(raw_states, dict):
        diagnostics.append(
            C604_RULE.diagnostic(
                "budget declaration has no deep_states mapping",
                obj="budget_description",
                hint="budget_description() must declare a deep_states dict "
                "keyed by FSM state name",
            )
        )
        raw_states = {}
    for state_name in ts.idle_states:
        entry = (raw_states or {}).get(state_name) if declaration is not None else None
        if declaration is None:
            diagnostics.append(
                C604_RULE.diagnostic(
                    f"deep state {state_name} reachable but the platform declares "
                    "no budgets (no budget_description() hook)",
                    obj=state_name,
                    hint="declare wake_budget_ps, residency_guarantee_s and "
                    "break-even budgets via budget_description()",
                )
            )
            continue
        if entry is None:
            diagnostics.append(
                C604_RULE.diagnostic(
                    f"deep state {state_name} has no budget declaration",
                    obj=state_name,
                    hint="add the state to deep_states in budget_description()",
                )
            )
            continue
        parsed, error = _parse_state_entry(state_name, entry)
        if parsed is None:
            diagnostics.append(
                C604_RULE.diagnostic(
                    f"unparseable budget declaration: {error}",
                    obj=state_name,
                )
            )
            continue
        deep_decls[state_name] = parsed

    # --- pricing ---------------------------------------------------------
    probe_params = (declaration or {}).get("probe") or {}
    idle_s = probe_params.get("idle_s", _DEFAULT_PROBE_IDLE_S)
    maintenance_s = probe_params.get("maintenance_s", _DEFAULT_PROBE_MAINTENANCE_S)
    if probes is None:
        from repro.core.techniques import TechniqueSet

        techniques = techniques if techniques is not None else TechniqueSet.odrips()
        probes = {
            "self": probe_standby_cycle(config, techniques, idle_s, maintenance_s)
        }
        if not techniques.is_baseline:
            probes["baseline"] = probe_standby_cycle(
                config, TechniqueSet.baseline(), idle_s, maintenance_s
            )
    probe_self = probes["self"]
    probe_baseline = probes.get("baseline")

    step_latencies = {
        label: int(entry["latency_ps"]) for label, entry in probe_self["steps"].items()
    }
    allowances_raw = ((declaration or {}).get("chipset") or {}).get(
        "step_allowances_ps"
    ) or {}
    allowances = {
        str(label): int(value)
        for label, value in allowances_raw.items()
        if isinstance(value, int) and not isinstance(value, bool)
    }

    reachable = _reachable(ts)
    active_resident = [s for s in reachable if s.fsm == ts.active and s.flow is None]
    drips_power_w = Fraction(probe_self["drips_power_w"])
    active_power_w = Fraction(probe_self["active_power_w"])
    entry_energy_j = Fraction(probe_self["entry_energy_j"])
    exit_energy_j = Fraction(probe_self["exit_energy_j"])

    summary: Dict[str, Any] = {
        "version": 1,
        "technique_label": probe_self.get("technique_label"),
        "active_power_w": float(active_power_w),
        "deep_states": {},
        "ladder": _ladder_rows(active_power_w),
        "probe": {"idle_s": idle_s, "maintenance_s": maintenance_s},
    }

    # --- per deep state: worst-case paths and break-even ------------------
    technique_break_even: Optional[Fraction] = None
    if probe_baseline is not None:
        cycle_maintenance = ((declaration or {}).get("cycle") or {}).get(
            "maintenance_mean_s"
        )
        if not isinstance(cycle_maintenance, (int, float)) or isinstance(
            cycle_maintenance, bool
        ):
            cycle_maintenance = None
        try:
            technique_break_even = derive_technique_break_even(
                probe_self, probe_baseline, maintenance_s=cycle_maintenance
            )
        except ValueError:
            technique_break_even = None

    for state_name in ts.idle_states:
        resident = [s for s in reachable if s.fsm == state_name and s.flow is None]
        worst_exit = _worst_path(ts, resident, ts.active, step_latencies, allowances)
        worst_entry = _worst_path(
            ts, active_resident, state_name, step_latencies, allowances
        )

        # Break-even of residing in this deep state: against the baseline
        # configuration of the same state when a technique set is under
        # check, otherwise against the deepest shallow ladder state (C8).
        ladder_c8 = summary["ladder"].get("C8", {})
        if technique_break_even is not None:
            break_even: Optional[Fraction] = technique_break_even
            break_even_vs = "baseline"
        else:
            c8_power = Fraction(str(ladder_c8.get("power_w", 0.0)))
            c8_overhead = Fraction(str(ladder_c8.get("transition_overhead_j", 0.0)))
            delta = c8_power - drips_power_w
            if delta > 0:
                overhead = entry_energy_j + exit_energy_j - c8_overhead
                break_even = max(Fraction(0), overhead / delta)
                break_even_vs = "C8"
            else:
                break_even = None
                break_even_vs = None

        row: Dict[str, Any] = {
            "power_w": float(drips_power_w),
            "entry_energy_j": float(entry_energy_j),
            "exit_energy_j": float(exit_energy_j),
            "worst_entry_latency_ps": None if worst_entry is None else worst_entry[0],
            "worst_entry_path": None if worst_entry is None else list(worst_entry[1]),
            "worst_exit_latency_ps": None if worst_exit is None else worst_exit[0],
            "worst_exit_path": None if worst_exit is None else list(worst_exit[1]),
            "break_even_s": None if break_even is None else float(break_even),
            "break_even_vs": break_even_vs,
        }
        decl = deep_decls.get(state_name)
        if decl is not None:
            row.update(
                {
                    "wake_budget_ps": decl["wake_budget_ps"],
                    "residency_guarantee_s": decl["residency_guarantee_s"],
                    "declared_break_even_s": decl["break_even_s"],
                }
            )
            # C601: worst-case exit latency vs the wake budget.
            if worst_exit is not None and worst_exit[0] > decl["wake_budget_ps"]:
                witness = " -> ".join(worst_exit[1])
                diagnostics.append(
                    C601_RULE.diagnostic(
                        f"worst-case exit from {state_name} takes "
                        f"{worst_exit[0]} ps, over the declared wake budget of "
                        f"{decl['wake_budget_ps']} ps",
                        obj=state_name,
                        hint=f"witness path: {witness}",
                    )
                )
            # C602: guaranteed residency vs derived break-even.
            if break_even is not None and Fraction(
                str(decl["residency_guarantee_s"])
            ) < break_even:
                diagnostics.append(
                    C602_RULE.diagnostic(
                        f"{state_name} is entered with a guaranteed residency of "
                        f"{decl['residency_guarantee_s']} s, below the derived "
                        f"break-even of {float(break_even):.6f} s "
                        f"(vs {break_even_vs})",
                        obj=state_name,
                        hint="entering costs more energy than it saves; raise the "
                        "residency floor or cut the transition overhead",
                    )
                )
            # C603: declared break-even constant vs the derived one.
            declared = decl["break_even_s"]
            if declared is not None and break_even is not None:
                drift = abs(Fraction(str(declared)) - break_even) / Fraction(
                    str(declared)
                )
                if drift > Fraction(str(decl["break_even_tolerance"])):
                    diagnostics.append(
                        C603_RULE.diagnostic(
                            f"{state_name} declares a break-even of {declared} s "
                            f"but the model derives {float(break_even):.6f} s "
                            f"({float(drift) * 100:.1f}% drift, tolerance "
                            f"{decl['break_even_tolerance'] * 100:.0f}%)",
                            obj=state_name,
                            hint="re-derive the paper constant or fix the "
                            "transition prices that moved",
                        )
                    )
        summary["deep_states"][state_name] = row

    # --- per-cycle energy lower bound (C605) ------------------------------
    cycle_decl = (declaration or {}).get("cycle")
    if isinstance(cycle_decl, dict):
        from repro.analysis.breakeven import BASE_TRANSITIONS_S

        idle_interval = cycle_decl.get("idle_interval_s")
        maintenance_mean = cycle_decl.get("maintenance_mean_s")
        if isinstance(idle_interval, (int, float)) and isinstance(
            maintenance_mean, (int, float)
        ):
            period_s = (
                Fraction(str(idle_interval))
                + Fraction(str(maintenance_mean))
                + Fraction(str(BASE_TRANSITIONS_S))
            )
            # Strict lower bound: one entry, one exit, the full idle
            # interval at DRIPS power — the maintenance burst is floored
            # at zero energy, so any real cycle costs at least this much.
            lower_bound_j = (
                entry_energy_j
                + exit_energy_j
                + drips_power_w * Fraction(str(idle_interval))
            )
            limit_j, error = _golden_limit_j(cycle_decl.get("golden"), period_s)
            cycle_summary: Dict[str, Any] = {
                "period_s": float(period_s),
                "energy_lower_bound_j": float(lower_bound_j),
                "golden_limit_j": None if limit_j is None else float(limit_j),
                "golden": cycle_decl.get("golden"),
            }
            summary["cycle"] = cycle_summary
            if limit_j is None:
                diagnostics.append(
                    C604_RULE.diagnostic(
                        f"unparseable budget declaration: {error}",
                        obj="cycle",
                    )
                )
            elif lower_bound_j > limit_j:
                diagnostics.append(
                    C605_RULE.diagnostic(
                        f"per-cycle energy lower bound {float(lower_bound_j):.4f} J "
                        f"exceeds the golden ceiling {float(limit_j):.4f} J over a "
                        f"{float(period_s):.3f} s cycle",
                        obj="cycle",
                        hint="the model cannot possibly meet the paper's "
                        "average-power figure; a price regressed",
                    )
                )
        else:
            diagnostics.append(
                C604_RULE.diagnostic(
                    "unparseable budget declaration: cycle must declare "
                    "idle_interval_s and maintenance_mean_s",
                    obj="cycle",
                )
            )
    elif declaration is not None:
        diagnostics.append(
            C604_RULE.diagnostic(
                "budget declaration has no cycle section",
                obj="cycle",
                hint="declare idle_interval_s, maintenance_mean_s and the "
                "golden figure for the per-cycle energy bound",
            )
        )

    return summary, diagnostics
