"""Interprocedural unit-dataflow analysis (``C4xx``).

The ``S4xx`` source rules check unit discipline one statement at a time;
this pass follows unit *tags* across call boundaries.  A tag is the
canonical unit a name's suffix declares — ``flush_latency_ps`` carries
picoseconds, ``idle_power_watts`` carries watts — and the analysis
propagates tags through the call graph with a fixpoint:

1. every function's return unit starts from its name suffix (or unknown);
2. a function without a suffix inherits the unit its ``return``
   expressions provably carry — which may come from *other* functions'
   returns — and the pass iterates until no return unit changes;
3. with return units settled, every call site, return statement and
   additive expression is checked for definite disagreements.

Findings (all require **two definite, conflicting** tags — an unknown
unit never fires, so conversions like ``latency_ps / 1e12`` that launder
the tag through division stay silent):

* ``C401 call-unit-mismatch`` — an argument carrying unit U flows into a
  parameter declaring unit V (the watts-into-joules class of bug).
* ``C402 return-unit-mismatch`` — a ``*_ps`` function returns a value
  that provably carries seconds (the ps-into-seconds class).
* ``C403 arith-unit-mismatch`` — ``+``/``-`` over two different units.

Deliberate conservatism: multiplication and division *drop* tags (unit
conversions are exactly such expressions), names built around ``_per_``
are rates and carry no tag, and a call target that resolves to multiple
definitions only counts when every definition agrees.  Suppression uses
the same per-line ``lint: allow`` pragma as the source checker, through
the shared :func:`repro.lint.source.allow_map_for` map.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.lint.diagnostics import Diagnostic, sort_diagnostics
from repro.lint.source import (
    PathLike,
    _suppressed,
    allow_map_for,
    default_source_root,
    iter_python_files,
)
from repro.check.rules import C401_RULE, C402_RULE, C403_RULE

#: Name-suffix token -> canonical unit tag.  Distinct tags of the same
#: dimension (ps vs s) still conflict: scale mixups are the bug class.
_UNIT_TOKENS: Dict[str, str] = {
    "ps": "ps",
    "ns": "ns",
    "us": "us",
    "ms": "ms",
    "s": "s",
    "sec": "s",
    "secs": "s",
    "seconds": "s",
    "w": "watts",
    "watts": "watts",
    "mw": "milliwatts",
    "uw": "microwatts",
    "j": "joules",
    "joules": "joules",
    "mj": "millijoules",
    "uj": "microjoules",
    "wh": "watt-hours",
    "hz": "hz",
    "khz": "khz",
    "mhz": "mhz",
    "ghz": "ghz",
}

#: Calls that preserve their (single) argument's unit.
_UNIT_PRESERVING_CALLS = frozenset(
    {"int", "round", "float", "abs", "floor", "ceil", "max", "min", "sum"}
)


def unit_of_name(name: Optional[str]) -> Optional[str]:
    """The unit tag a name's suffix declares, if any.

    Only ``snake_case`` suffixes count (``latency_ps`` yes, a variable
    literally named ``s`` no), and names containing ``_per_`` are rates
    whose trailing token is a denominator, not the value's unit.
    """
    if name is None or "_" not in name:
        return None
    lowered = name.lower()
    if "_per_" in lowered:
        return None
    return _UNIT_TOKENS.get(lowered.rsplit("_", 1)[1])


def _terminal_name(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


@dataclass
class FunctionInfo:
    """One function definition, as the dataflow pass sees it."""

    name: str
    filename: str
    node: ast.AST
    #: Positional parameter names, ``self``/``cls`` stripped.
    params: Tuple[str, ...]
    #: Unit declared by the function's own name suffix, if any.
    declared_return: Optional[str]
    is_generator: bool
    #: Return unit settled by the fixpoint (starts at the declaration).
    return_unit: Optional[str] = None

    def __post_init__(self) -> None:
        self.return_unit = self.declared_return


@dataclass
class _Module:
    filename: str
    tree: ast.Module
    allows: Dict[int, Set[str]] = field(default_factory=dict)


class UnitDataflow:
    """The whole-program analysis: build, solve, then check."""

    def __init__(self) -> None:
        self.modules: List[_Module] = []
        #: Bare callable name -> every definition carrying it.
        self.table: Dict[str, List[FunctionInfo]] = {}

    # --- construction -----------------------------------------------------

    def add_source(self, source: str, filename: str) -> Optional[Diagnostic]:
        try:
            tree = ast.parse(source, filename=filename)
        except SyntaxError:
            return None  # the source checker already reports S400
        module = _Module(filename, tree, allow_map_for(source, tree))
        self.modules.append(module)
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info = _function_info(node, filename)
                self.table.setdefault(info.name, []).append(info)
        return None

    # --- fixpoint ---------------------------------------------------------

    def solve(self, max_rounds: int = 20) -> None:
        """Propagate return units around the call graph to a fixpoint."""
        infos = [info for defs in self.table.values() for info in defs]
        for _ in range(max_rounds):
            changed = False
            for info in infos:
                if info.declared_return is not None or info.is_generator:
                    continue
                units = set()
                definite = True
                for ret in _own_returns(info.node):
                    if ret.value is None:
                        continue
                    unit = self.unit_of(ret.value)
                    if unit is None:
                        definite = False
                        break
                    units.add(unit)
                new = units.pop() if definite and len(units) == 1 else None
                if new != info.return_unit:
                    info.return_unit = new
                    changed = True
            if not changed:
                return

    # --- expression units -------------------------------------------------

    def call_return_unit(self, node: ast.Call) -> Optional[str]:
        name = _terminal_name(node.func)
        if name is None:
            return None
        if name in _UNIT_PRESERVING_CALLS:
            units = {self.unit_of(arg) for arg in node.args}
            if len(units) == 1:
                return units.pop()
            return None
        declared = unit_of_name(name)
        if declared is not None:
            return declared
        defs = self.table.get(name)
        if not defs:
            return None
        units = {info.return_unit for info in defs}
        if len(units) == 1:
            return units.pop()
        return None

    def unit_of(self, node: ast.expr) -> Optional[str]:
        """The unit tag ``node`` provably carries, or None."""
        if isinstance(node, (ast.Name, ast.Attribute)):
            return unit_of_name(_terminal_name(node))
        if isinstance(node, ast.Call):
            return self.call_return_unit(node)
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
            return self.unit_of(node.operand)
        if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Add, ast.Sub)):
            left = self.unit_of(node.left)
            right = self.unit_of(node.right)
            if left is not None and right is not None:
                return left if left == right else None
            return left if left is not None else right
        if isinstance(node, ast.IfExp):
            body = self.unit_of(node.body)
            orelse = self.unit_of(node.orelse)
            return body if body is not None and body == orelse else None
        return None

    # --- checks -----------------------------------------------------------

    def check(self) -> List[Diagnostic]:
        diagnostics: List[Diagnostic] = []
        for module in self.modules:
            found: List[Diagnostic] = []
            for node in ast.walk(module.tree):
                if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Add, ast.Sub)):
                    found.extend(self._check_arith(node, module.filename))
                elif isinstance(node, ast.Call):
                    found.extend(self._check_call(node, module.filename))
                elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    found.extend(self._check_returns(node, module.filename))
            diagnostics.extend(
                diag for diag in found if not _suppressed(diag, module.allows)
            )
        return sort_diagnostics(diagnostics)

    def _check_arith(self, node: ast.BinOp, filename: str) -> Iterable[Diagnostic]:
        left = self.unit_of(node.left)
        right = self.unit_of(node.right)
        if left is not None and right is not None and left != right:
            op = "+" if isinstance(node.op, ast.Add) else "-"
            yield C403_RULE.diagnostic(
                f"{op} mixes {left} ({_describe(node.left)}) with {right} "
                f"({_describe(node.right)})",
                file=filename,
                line=node.lineno,
                hint="convert one side explicitly (repro.units has the helpers)",
            )

    def _check_call(self, node: ast.Call, filename: str) -> Iterable[Diagnostic]:
        name = _terminal_name(node.func)
        if name is None or name in _UNIT_PRESERVING_CALLS:
            return
        param_units = self._merged_param_units(name)
        for index, arg in enumerate(node.args):
            declared = param_units.get(index)
            if declared is None:
                continue
            param_name, unit = declared
            actual = self.unit_of(arg)
            if actual is not None and actual != unit:
                yield C401_RULE.diagnostic(
                    f"{name}() parameter {param_name!r} declares {unit} but the "
                    f"argument ({_describe(arg)}) carries {actual}",
                    file=filename,
                    line=node.lineno,
                    hint="convert at the call site, or rename one of the two",
                )
        for keyword in node.keywords:
            if keyword.arg is None:
                continue
            declared_unit = unit_of_name(keyword.arg)
            if declared_unit is None:
                continue
            actual = self.unit_of(keyword.value)
            if actual is not None and actual != declared_unit:
                yield C401_RULE.diagnostic(
                    f"{name}() keyword {keyword.arg!r} declares {declared_unit} "
                    f"but the argument ({_describe(keyword.value)}) carries {actual}",
                    file=filename,
                    line=node.lineno,
                    hint="convert at the call site, or rename one of the two",
                )

    def _merged_param_units(self, name: str) -> Dict[int, Tuple[str, str]]:
        """Positional index -> (param name, unit), where all defs agree."""
        defs = self.table.get(name)
        if not defs:
            return {}
        merged: Dict[int, Tuple[str, str]] = {}
        width = min(len(info.params) for info in defs)
        for index in range(width):
            names = {info.params[index] for info in defs}
            units = {unit_of_name(info.params[index]) for info in defs}
            if len(units) == 1 and len(names) == 1:
                unit = units.pop()
                if unit is not None:
                    merged[index] = (names.pop(), unit)
        return merged

    def _check_returns(
        self, node: ast.AST, filename: str
    ) -> Iterable[Diagnostic]:
        info = _function_info(node, filename)
        if info.declared_return is None or info.is_generator:
            return
        for ret in _own_returns(node):
            if ret.value is None:
                continue
            actual = self.unit_of(ret.value)
            if actual is not None and actual != info.declared_return:
                yield C402_RULE.diagnostic(
                    f"{info.name}() declares {info.declared_return} but returns "
                    f"a value ({_describe(ret.value)}) carrying {actual}",
                    file=filename,
                    line=ret.lineno,
                    hint="convert before returning, or rename the function",
                )


def _function_info(node: ast.AST, filename: str) -> FunctionInfo:
    args = node.args
    params = tuple(
        arg.arg
        for arg in [*args.posonlyargs, *args.args]
        if arg.arg not in ("self", "cls")
    )
    return FunctionInfo(
        name=node.name,
        filename=filename,
        node=node,
        params=params,
        declared_return=unit_of_name(node.name),
        is_generator=_is_generator(node),
    )


def _own_statements(node: ast.AST) -> Iterable[ast.AST]:
    """Walk a function body without descending into nested functions."""
    stack = list(node.body)
    while stack:
        child = stack.pop()
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        yield child
        stack.extend(ast.iter_child_nodes(child))


def _own_returns(node: ast.AST) -> Iterable[ast.Return]:
    for child in _own_statements(node):
        if isinstance(child, ast.Return):
            yield child


def _is_generator(node: ast.AST) -> bool:
    return any(
        isinstance(child, (ast.Yield, ast.YieldFrom)) for child in _own_statements(node)
    )


def _describe(node: ast.expr) -> str:
    name = _terminal_name(node)
    if name is not None:
        return name
    if isinstance(node, ast.Call):
        callee = _terminal_name(node.func)
        return f"{callee}(...)" if callee else "a call"
    return "an expression"


def analyze_sources(sources: Dict[str, str]) -> List[Diagnostic]:
    """Run the dataflow pass over ``{filename: source}`` in one program."""
    flow = UnitDataflow()
    for filename in sorted(sources):
        flow.add_source(sources[filename], filename)
    flow.solve()
    return flow.check()


def analyze_paths(paths: Sequence[PathLike]) -> List[Diagnostic]:
    """Run the dataflow pass over every ``*.py`` file under ``paths``.

    All files are analyzed as one program, so a unit inferred in one
    module checks call sites in another.
    """
    sources = {
        str(path): path.read_text(encoding="utf-8") for path in iter_python_files(paths)
    }
    return analyze_sources(sources)


def analyze_source_root() -> List[Diagnostic]:
    """Analyze the installed ``repro`` package (what the CLI checks)."""
    return analyze_paths([default_source_root()])
