"""Interprocedural unit-dataflow analysis (``C4xx``).

The ``S4xx`` source rules check unit discipline one statement at a time;
this pass follows unit *tags* across call boundaries.  A tag is the
canonical unit a name's suffix declares — ``flush_latency_ps`` carries
picoseconds, ``idle_power_watts`` carries watts — and the analysis
propagates tags through the call graph with a fixpoint:

1. every function's return unit starts from its name suffix (or unknown);
2. a function without a suffix inherits the unit its ``return``
   expressions provably carry — which may come from *other* functions'
   returns — and the pass iterates until no return unit changes;
3. with return units settled, every call site, return statement and
   additive expression is checked for definite disagreements.

Findings (all require **two definite, conflicting** tags — an unknown
unit never fires, so conversions like ``latency_ps / 1e12`` that launder
the tag through division stay silent):

* ``C401 call-unit-mismatch`` — an argument carrying unit U flows into a
  parameter declaring unit V (the watts-into-joules class of bug).
* ``C402 return-unit-mismatch`` — a ``*_ps`` function returns a value
  that provably carries seconds (the ps-into-seconds class).
* ``C403 arith-unit-mismatch`` — ``+``/``-`` over two different units.

Deliberate conservatism: multiplication and division *drop* tags (unit
conversions are exactly such expressions), names built around ``_per_``
are rates and carry no tag, and a call target that resolves to multiple
definitions only counts when every definition agrees.  Suppression uses
the same per-line ``lint: allow`` pragma as the source checker, through
the shared :attr:`repro.lint.astcache.ParsedModule.allows` map.

The function table, call resolution and the fixpoint driver live in the
shared :mod:`repro.check.callgraph` substrate, which the effect pass
(:mod:`repro.check.effects`) reuses — one parse and one call graph
serve both passes.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.lint.astcache import ModuleCache, ParsedModule, PathLike, default_source_root
from repro.lint.diagnostics import Diagnostic, sort_diagnostics
from repro.lint.source import _suppressed
from repro.check.callgraph import (
    CallGraph,
    FunctionRecord,
    is_generator,
    own_returns,
    terminal_name,
)
from repro.check.rules import C401_RULE, C402_RULE, C403_RULE

#: Name-suffix token -> canonical unit tag.  Distinct tags of the same
#: dimension (ps vs s) still conflict: scale mixups are the bug class.
_UNIT_TOKENS: Dict[str, str] = {
    "ps": "ps",
    "ns": "ns",
    "us": "us",
    "ms": "ms",
    "s": "s",
    "sec": "s",
    "secs": "s",
    "seconds": "s",
    "w": "watts",
    "watts": "watts",
    "mw": "milliwatts",
    "uw": "microwatts",
    "j": "joules",
    "joules": "joules",
    "mj": "millijoules",
    "uj": "microjoules",
    "wh": "watt-hours",
    "hz": "hz",
    "khz": "khz",
    "mhz": "mhz",
    "ghz": "ghz",
}

#: Calls that preserve their (single) argument's unit.
_UNIT_PRESERVING_CALLS = frozenset(
    {"int", "round", "float", "abs", "floor", "ceil", "max", "min", "sum"}
)


def unit_of_name(name: Optional[str]) -> Optional[str]:
    """The unit tag a name's suffix declares, if any.

    Only ``snake_case`` suffixes count (``latency_ps`` yes, a variable
    literally named ``s`` no), and names containing ``_per_`` are rates
    whose trailing token is a denominator, not the value's unit.
    """
    if name is None or "_" not in name:
        return None
    lowered = name.lower()
    if "_per_" in lowered:
        return None
    return _UNIT_TOKENS.get(lowered.rsplit("_", 1)[1])


class UnitDataflow:
    """The whole-program analysis: build, solve, then check.

    Construct with an existing :class:`~repro.check.callgraph.CallGraph`
    to share the function table with other passes, or empty and feed it
    with :meth:`add_source`/:meth:`add_module`.
    """

    def __init__(self, graph: Optional[CallGraph] = None) -> None:
        self.graph = graph if graph is not None else CallGraph()
        self._cache = ModuleCache()
        #: Return unit settled by the fixpoint (starts at the declaration).
        self.return_unit: Dict[FunctionRecord, Optional[str]] = {}
        for record in self.graph.functions:
            self.return_unit[record] = unit_of_name(record.name)

    # --- construction -----------------------------------------------------

    def add_module(self, module: ParsedModule) -> None:
        before = len(self.graph.functions)
        self.graph.add_module(module)
        for record in self.graph.functions[before:]:
            self.return_unit[record] = unit_of_name(record.name)

    def add_source(self, source: str, filename: str) -> None:
        self.add_module(self._cache.module_for_source(source, filename))

    # --- fixpoint ---------------------------------------------------------

    def solve(self, max_rounds: int = 20) -> None:
        """Propagate return units around the call graph to a fixpoint."""

        def update(record: FunctionRecord) -> bool:
            if unit_of_name(record.name) is not None or record.is_generator:
                return False
            units = set()
            definite = True
            for ret in own_returns(record.node):
                if ret.value is None:
                    continue
                unit = self.unit_of(ret.value)
                if unit is None:
                    definite = False
                    break
                units.add(unit)
            new = units.pop() if definite and len(units) == 1 else None
            if new != self.return_unit[record]:
                self.return_unit[record] = new
                return True
            return False

        self.graph.solve(update, max_rounds=max_rounds)

    # --- expression units -------------------------------------------------

    def call_return_unit(self, node: ast.Call) -> Optional[str]:
        name = terminal_name(node.func)
        if name is None:
            return None
        if name in _UNIT_PRESERVING_CALLS:
            units = {self.unit_of(arg) for arg in node.args}
            if len(units) == 1:
                return units.pop()
            return None
        declared = unit_of_name(name)
        if declared is not None:
            return declared
        defs = self.graph.resolve(name)
        if not defs:
            return None
        units = {self.return_unit[record] for record in defs}
        if len(units) == 1:
            return units.pop()
        return None

    def unit_of(self, node: ast.expr) -> Optional[str]:
        """The unit tag ``node`` provably carries, or None."""
        if isinstance(node, (ast.Name, ast.Attribute)):
            return unit_of_name(terminal_name(node))
        if isinstance(node, ast.Call):
            return self.call_return_unit(node)
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
            return self.unit_of(node.operand)
        if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Add, ast.Sub)):
            left = self.unit_of(node.left)
            right = self.unit_of(node.right)
            if left is not None and right is not None:
                return left if left == right else None
            return left if left is not None else right
        if isinstance(node, ast.IfExp):
            body = self.unit_of(node.body)
            orelse = self.unit_of(node.orelse)
            return body if body is not None and body == orelse else None
        return None

    # --- checks -----------------------------------------------------------

    def check(self) -> List[Diagnostic]:
        diagnostics: List[Diagnostic] = []
        for module in self.graph.modules:
            if module.tree is None:
                continue  # the source checker already reports S400
            found: List[Diagnostic] = []
            for node in ast.walk(module.tree):
                if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Add, ast.Sub)):
                    found.extend(self._check_arith(node, module.filename))
                elif isinstance(node, ast.Call):
                    found.extend(self._check_call(node, module.filename))
                elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    found.extend(self._check_returns(node, module.filename))
            diagnostics.extend(
                diag for diag in found if not _suppressed(diag, module.allows)
            )
        return sort_diagnostics(diagnostics)

    def _check_arith(self, node: ast.BinOp, filename: str) -> Iterable[Diagnostic]:
        left = self.unit_of(node.left)
        right = self.unit_of(node.right)
        if left is not None and right is not None and left != right:
            op = "+" if isinstance(node.op, ast.Add) else "-"
            yield C403_RULE.diagnostic(
                f"{op} mixes {left} ({_describe(node.left)}) with {right} "
                f"({_describe(node.right)})",
                file=filename,
                line=node.lineno,
                hint="convert one side explicitly (repro.units has the helpers)",
            )

    def _check_call(self, node: ast.Call, filename: str) -> Iterable[Diagnostic]:
        name = terminal_name(node.func)
        if name is None or name in _UNIT_PRESERVING_CALLS:
            return
        param_units = self._merged_param_units(name)
        for index, arg in enumerate(node.args):
            declared = param_units.get(index)
            if declared is None:
                continue
            param_name, unit = declared
            actual = self.unit_of(arg)
            if actual is not None and actual != unit:
                yield C401_RULE.diagnostic(
                    f"{name}() parameter {param_name!r} declares {unit} but the "
                    f"argument ({_describe(arg)}) carries {actual}",
                    file=filename,
                    line=node.lineno,
                    hint="convert at the call site, or rename one of the two",
                )
        for keyword in node.keywords:
            if keyword.arg is None:
                continue
            declared_unit = unit_of_name(keyword.arg)
            if declared_unit is None:
                continue
            actual = self.unit_of(keyword.value)
            if actual is not None and actual != declared_unit:
                yield C401_RULE.diagnostic(
                    f"{name}() keyword {keyword.arg!r} declares {declared_unit} "
                    f"but the argument ({_describe(keyword.value)}) carries {actual}",
                    file=filename,
                    line=node.lineno,
                    hint="convert at the call site, or rename one of the two",
                )

    def _merged_param_units(self, name: str) -> Dict[int, Tuple[str, str]]:
        """Positional index -> (param name, unit), where all defs agree."""
        defs = self.graph.resolve(name)
        if not defs:
            return {}
        merged: Dict[int, Tuple[str, str]] = {}
        width = min(len(record.params) for record in defs)
        for index in range(width):
            names = {record.params[index] for record in defs}
            units = {unit_of_name(record.params[index]) for record in defs}
            if len(units) == 1 and len(names) == 1:
                unit = units.pop()
                if unit is not None:
                    merged[index] = (names.pop(), unit)
        return merged

    def _check_returns(
        self, node: ast.AST, filename: str
    ) -> Iterable[Diagnostic]:
        declared = unit_of_name(node.name)
        if declared is None or is_generator(node):
            return
        for ret in own_returns(node):
            if ret.value is None:
                continue
            actual = self.unit_of(ret.value)
            if actual is not None and actual != declared:
                yield C402_RULE.diagnostic(
                    f"{node.name}() declares {declared} but returns "
                    f"a value ({_describe(ret.value)}) carrying {actual}",
                    file=filename,
                    line=ret.lineno,
                    hint="convert before returning, or rename the function",
                )


def _describe(node: ast.expr) -> str:
    name = terminal_name(node)
    if name is not None:
        return name
    if isinstance(node, ast.Call):
        callee = terminal_name(node.func)
        return f"{callee}(...)" if callee else "a call"
    return "an expression"


def analyze_graph(graph: CallGraph) -> List[Diagnostic]:
    """Run the dataflow pass over an already-built call graph."""
    flow = UnitDataflow(graph)
    flow.solve()
    return flow.check()


def analyze_sources(sources: Dict[str, str]) -> List[Diagnostic]:
    """Run the dataflow pass over ``{filename: source}`` in one program."""
    flow = UnitDataflow()
    for filename in sorted(sources):
        flow.add_source(sources[filename], filename)
    flow.solve()
    return flow.check()


def analyze_paths(
    paths: Sequence[PathLike], cache: Optional[ModuleCache] = None
) -> List[Diagnostic]:
    """Run the dataflow pass over every ``*.py`` file under ``paths``.

    All files are analyzed as one program, so a unit inferred in one
    module checks call sites in another.  ``cache`` shares the parsed
    trees with the other passes of the same invocation.
    """
    if cache is None:
        cache = ModuleCache()
    return analyze_graph(CallGraph(cache.modules_for_paths(paths)))


def analyze_source_root() -> List[Diagnostic]:
    """Analyze the installed ``repro`` package (what the CLI checks)."""
    return analyze_paths([default_source_root()])
