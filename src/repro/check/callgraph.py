"""Shared call-graph substrate of the interprocedural check passes.

Both whole-program passes of ``repro check`` — the unit dataflow
(:mod:`repro.check.dataflow`, ``C4xx``) and the effect/determinism
analysis (:mod:`repro.check.effects`, ``C5xx``) — need the same three
things: every function definition in the analyzed program, a way to
resolve a call expression to its candidate definitions, and a fixpoint
driver that iterates per-function facts around the call graph until
nothing changes.  This module owns all three, built on the shared
:class:`~repro.lint.astcache.ParsedModule` cache so each source file is
parsed once for every pass.

Resolution is deliberately name-based and conservative: a call to
``x.measure(...)`` resolves to *every* definition named ``measure`` in
the program.  Passes choose how to merge multiple candidates — the
unit dataflow requires all definitions to agree, the effect analysis
unions their effects (an over-approximation is sound for a checker
that proves *absence* of effects).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.lint.astcache import ModuleCache, ParsedModule

FunctionNode = (ast.FunctionDef, ast.AsyncFunctionDef)


def terminal_name(node: ast.expr) -> Optional[str]:
    """The identifier a Name/Attribute expression ends in, if any."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def dotted_name(node: ast.expr) -> Optional[str]:
    """The full dotted path of a Name/Attribute chain (``os.environ.get``).

    Returns ``None`` when the chain bottoms out in anything other than a
    plain name (a call result, a subscript).
    """
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def module_aliases(tree: ast.Module) -> Dict[str, str]:
    """Map local alias -> imported dotted name, for both import forms."""
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                aliases[item.asname or item.name.split(".")[0]] = item.name
        elif isinstance(node, ast.ImportFrom) and node.module:
            for item in node.names:
                aliases[item.asname or item.name] = f"{node.module}.{item.name}"
    return aliases


def own_statements(node: ast.AST) -> Iterable[ast.AST]:
    """Walk a function body without descending into nested functions."""
    stack = list(node.body)
    while stack:
        child = stack.pop()
        if isinstance(child, (*FunctionNode, ast.Lambda, ast.ClassDef)):
            continue
        yield child
        stack.extend(ast.iter_child_nodes(child))


def own_returns(node: ast.AST) -> Iterable[ast.Return]:
    for child in own_statements(node):
        if isinstance(child, ast.Return):
            yield child


def is_generator(node: ast.AST) -> bool:
    return any(
        isinstance(child, (ast.Yield, ast.YieldFrom)) for child in own_statements(node)
    )


def decorator_names(node: ast.AST) -> Tuple[str, ...]:
    """Terminal names of a definition's decorators (``@x.y(...)`` -> ``y``)."""
    names = []
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        name = terminal_name(target)
        if name is not None:
            names.append(name)
    return tuple(names)


@dataclass(eq=False)
class FunctionRecord:
    """One function definition, as the interprocedural passes see it."""

    name: str
    #: Dotted path inside the module (``Class.method``, ``f.<locals>.g``).
    qualname: str
    filename: str
    node: ast.AST
    module: ParsedModule
    #: Positional parameter names, ``self``/``cls`` stripped.
    params: Tuple[str, ...]
    decorators: Tuple[str, ...]
    is_generator: bool
    #: Enclosing function, when this definition is nested inside one.
    parent: Optional["FunctionRecord"] = None
    _callees: Optional[Tuple[str, ...]] = field(default=None, repr=False)

    @property
    def is_nested(self) -> bool:
        return self.parent is not None

    def callees(self) -> Tuple[str, ...]:
        """Bare names this function's own body calls (cached)."""
        if self._callees is None:
            names = set()
            for child in own_statements(self.node):
                if isinstance(child, ast.Call):
                    name = terminal_name(child.func)
                    if name is not None:
                        names.add(name)
            self._callees = tuple(sorted(names))
        return self._callees


def _record_functions(
    module: ParsedModule,
) -> List[FunctionRecord]:
    records: List[FunctionRecord] = []

    def visit(node: ast.AST, prefix: str, parent: Optional[FunctionRecord]) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, FunctionNode):
                args = child.args
                params = tuple(
                    arg.arg
                    for arg in [*args.posonlyargs, *args.args]
                    if arg.arg not in ("self", "cls")
                )
                record = FunctionRecord(
                    name=child.name,
                    qualname=f"{prefix}{child.name}",
                    filename=module.filename,
                    node=child,
                    module=module,
                    params=params,
                    decorators=decorator_names(child),
                    is_generator=is_generator(child),
                    parent=parent,
                )
                records.append(record)
                visit(child, f"{record.qualname}.<locals>.", record)
            elif isinstance(child, ast.ClassDef):
                visit(child, f"{prefix}{child.name}.", parent)
            else:
                visit(child, prefix, parent)

    assert module.tree is not None
    visit(module.tree, "", None)
    return records


class CallGraph:
    """Function table + name-based call resolution over one program."""

    def __init__(self, modules: Sequence[ParsedModule] = ()) -> None:
        self.modules: List[ParsedModule] = []
        self.functions: List[FunctionRecord] = []
        #: Bare callable name -> every definition carrying it.
        self.by_name: Dict[str, List[FunctionRecord]] = {}
        for module in modules:
            self.add_module(module)

    def add_module(self, module: ParsedModule) -> None:
        """Index every function of ``module`` (no-op on syntax errors)."""
        self.modules.append(module)
        if module.tree is None:
            return
        for record in _record_functions(module):
            self.functions.append(record)
            self.by_name.setdefault(record.name, []).append(record)

    def resolve(self, name: str) -> List[FunctionRecord]:
        """Every definition a call to bare ``name`` may reach."""
        return self.by_name.get(name, [])

    def solve(
        self,
        update: Callable[[FunctionRecord], bool],
        max_rounds: int = 50,
    ) -> bool:
        """Iterate ``update`` over every function to a fixpoint.

        ``update`` returns True when it changed the fact it maintains
        for that function; the loop re-runs all functions until a full
        round reports no change (or ``max_rounds`` is hit — monotone
        facts over a finite lattice converge well before that).
        Returns True when a fixpoint was reached.
        """
        for _ in range(max_rounds):
            changed = False
            for record in self.functions:
                if update(record):
                    changed = True
            if not changed:
                return True
        return False


def graph_for_paths(
    paths: Sequence, cache: Optional[ModuleCache] = None
) -> CallGraph:
    """Build a call graph over every ``*.py`` file under ``paths``."""
    if cache is None:
        cache = ModuleCache()
    return CallGraph(cache.modules_for_paths(paths))
