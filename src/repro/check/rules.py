"""Rule catalog of the exhaustive model checker (``C-series``).

Three families, reported through the shared
:class:`~repro.lint.diagnostics.Diagnostic` framework and registered in
the same rule registry the lint CLI validates ``--select`` patterns
against:

* ``C1xx`` — state-space structure: deadlocks, unreachable flow steps,
  livelock cycles that never re-reach the active state, truncated
  exploration, and compile-time binding errors (unknown clocks, safety
  declarations naming unknown objects).
* ``C2xx`` — safety-invariant violations found in a reachable composed
  state (see :mod:`repro.check.invariants` for the invariant catalog).
* ``C4xx`` — interprocedural unit-dataflow findings of
  :mod:`repro.check.dataflow`: unit tags (``_ps``, ``_watts``, ``_mw``,
  ``_joules``, ...) propagated across call boundaries disagree.

Rule ids must never collide with the ``M``/``S`` series; the shared
registry (:func:`repro.lint.all_rules`) asserts uniqueness in the gate
tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.lint.diagnostics import Diagnostic, Location, Severity


@dataclass(frozen=True)
class CheckRule:
    """Identity of one checker rule (the check logic lives elsewhere)."""

    rule_id: str
    name: str
    severity: Severity
    summary: str

    def diagnostic(
        self,
        message: str,
        obj: Optional[str] = None,
        hint: str = "",
        file: Optional[str] = None,
        line: Optional[int] = None,
    ) -> Diagnostic:
        return Diagnostic(
            rule=self.rule_id,
            name=self.name,
            severity=self.severity,
            message=message,
            location=Location(file=file, line=line, obj=obj),
            hint=hint or None,
        )


C101_RULE = CheckRule(
    "C101", "deadlock", Severity.ERROR,
    "reachable composed state with no outgoing transition",
)
C102_RULE = CheckRule(
    "C102", "unreachable-step", Severity.ERROR,
    "declared flow step never executed in the reachable state space",
)
C103_RULE = CheckRule(
    "C103", "livelock", Severity.ERROR,
    "reachable cycle that never re-reaches the active state",
)
C104_RULE = CheckRule(
    "C104", "state-space-truncated", Severity.WARNING,
    "exploration hit the --max-states bound before exhausting the space",
)
C105_RULE = CheckRule(
    "C105", "flow-unknown-clock", Severity.ERROR,
    "flow step references a clock that does not exist",
)
C106_RULE = CheckRule(
    "C106", "unknown-safety-reference", Severity.ERROR,
    "safety declaration references an unknown domain or clock",
)

C201_RULE = CheckRule(
    "C201", "clock-gated-while-live", Severity.ERROR,
    "a live domain's required clock source is gated",
)
C202_RULE = CheckRule(
    "C202", "rails-not-restored", Severity.ERROR,
    "the active state is re-entered with domains still gated off",
)
C203_RULE = CheckRule(
    "C203", "ledger-unbalanced", Severity.ERROR,
    "suspend/resume ledger not conserved across a closed walk",
)
C204_RULE = CheckRule(
    "C204", "wake-source-unarmed", Severity.ERROR,
    "an idle state is reachable with every wake source torn down",
)

C401_RULE = CheckRule(
    "C401", "call-unit-mismatch", Severity.ERROR,
    "argument unit disagrees with the parameter's declared unit",
)
C402_RULE = CheckRule(
    "C402", "return-unit-mismatch", Severity.ERROR,
    "returned unit disagrees with the function's declared unit",
)
C403_RULE = CheckRule(
    "C403", "arith-unit-mismatch", Severity.ERROR,
    "addition/subtraction mixes incompatible units",
)


#: The full checker catalog, in catalog order (registry + docs).
CHECK_RULES: Tuple[CheckRule, ...] = (
    C101_RULE,
    C102_RULE,
    C103_RULE,
    C104_RULE,
    C105_RULE,
    C106_RULE,
    C201_RULE,
    C202_RULE,
    C203_RULE,
    C204_RULE,
    C401_RULE,
    C402_RULE,
    C403_RULE,
)

#: Rule lookup by id (used by the invariant catalog).
CHECK_RULES_BY_ID: Dict[str, CheckRule] = {rule.rule_id: rule for rule in CHECK_RULES}
