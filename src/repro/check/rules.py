"""Rule catalog of the exhaustive model checker (``C-series``).

Three families, reported through the shared
:class:`~repro.lint.diagnostics.Diagnostic` framework and registered in
the same rule registry the lint CLI validates ``--select`` patterns
against:

* ``C1xx`` — state-space structure: deadlocks, unreachable flow steps,
  livelock cycles that never re-reach the active state, truncated
  exploration, and compile-time binding errors (unknown clocks, safety
  declarations naming unknown objects).
* ``C2xx`` — safety-invariant violations found in a reachable composed
  state (see :mod:`repro.check.invariants` for the invariant catalog).
* ``C4xx`` — interprocedural unit-dataflow findings of
  :mod:`repro.check.dataflow`: unit tags (``_ps``, ``_watts``, ``_mw``,
  ``_joules``, ...) propagated across call boundaries disagree.
* ``C5xx`` — interprocedural effect/determinism findings of
  :mod:`repro.check.effects`, in three contract families: ``C501-C509``
  cache soundness (an effect reaches a fingerprint-cached result that
  the fingerprint does not capture), ``C511-C514`` parallel-sweep
  safety, and ``C521+`` determinism hygiene (iteration-order escapes).
* ``C6xx`` — quantitative budget findings of
  :mod:`repro.check.budgets`: the priced-timed analysis annotates the
  compiled transition system with per-step latencies and per-state
  powers, then verifies the declared wake-latency budgets, break-even
  residencies, and per-cycle energy bounds (``budget_description()``).

Rule ids must never collide with the ``M``/``S`` series; the shared
registry (:func:`repro.lint.all_rules`) asserts uniqueness in the gate
tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.lint.diagnostics import Diagnostic, Location, Severity


@dataclass(frozen=True)
class CheckRule:
    """Identity of one checker rule (the check logic lives elsewhere)."""

    rule_id: str
    name: str
    severity: Severity
    summary: str

    def diagnostic(
        self,
        message: str,
        obj: Optional[str] = None,
        hint: str = "",
        file: Optional[str] = None,
        line: Optional[int] = None,
    ) -> Diagnostic:
        return Diagnostic(
            rule=self.rule_id,
            name=self.name,
            severity=self.severity,
            message=message,
            location=Location(file=file, line=line, obj=obj),
            hint=hint or None,
        )


C101_RULE = CheckRule(
    "C101", "deadlock", Severity.ERROR,
    "reachable composed state with no outgoing transition",
)
C102_RULE = CheckRule(
    "C102", "unreachable-step", Severity.ERROR,
    "declared flow step never executed in the reachable state space",
)
C103_RULE = CheckRule(
    "C103", "livelock", Severity.ERROR,
    "reachable cycle that never re-reaches the active state",
)
C104_RULE = CheckRule(
    "C104", "state-space-truncated", Severity.WARNING,
    "exploration hit the --max-states bound before exhausting the space",
)
C105_RULE = CheckRule(
    "C105", "flow-unknown-clock", Severity.ERROR,
    "flow step references a clock that does not exist",
)
C106_RULE = CheckRule(
    "C106", "unknown-safety-reference", Severity.ERROR,
    "safety declaration references an unknown domain or clock",
)

C201_RULE = CheckRule(
    "C201", "clock-gated-while-live", Severity.ERROR,
    "a live domain's required clock source is gated",
)
C202_RULE = CheckRule(
    "C202", "rails-not-restored", Severity.ERROR,
    "the active state is re-entered with domains still gated off",
)
C203_RULE = CheckRule(
    "C203", "ledger-unbalanced", Severity.ERROR,
    "suspend/resume ledger not conserved across a closed walk",
)
C204_RULE = CheckRule(
    "C204", "wake-source-unarmed", Severity.ERROR,
    "an idle state is reachable with every wake source torn down",
)

C401_RULE = CheckRule(
    "C401", "call-unit-mismatch", Severity.ERROR,
    "argument unit disagrees with the parameter's declared unit",
)
C402_RULE = CheckRule(
    "C402", "return-unit-mismatch", Severity.ERROR,
    "returned unit disagrees with the function's declared unit",
)
C403_RULE = CheckRule(
    "C403", "arith-unit-mismatch", Severity.ERROR,
    "addition/subtraction mixes incompatible units",
)

# --- C5xx: effect & determinism contracts (repro.check.effects) ---------------
# C501-C509 cache soundness: an undeclared effect reaches a result that
# is memoized under a config fingerprint, so the cache key no longer
# determines the value.  C508/C509 are reserved for future effect kinds.

C501_RULE = CheckRule(
    "C501", "cache-wallclock-read", Severity.ERROR,
    "host clock read reaches a fingerprint-cached result",
)
C502_RULE = CheckRule(
    "C502", "cache-unseeded-rng", Severity.ERROR,
    "process-global/unseeded RNG reaches a fingerprint-cached result",
)
C503_RULE = CheckRule(
    "C503", "cache-env-read", Severity.ERROR,
    "environment read reaches a fingerprint-cached result",
)
C504_RULE = CheckRule(
    "C504", "cache-fs-access", Severity.ERROR,
    "filesystem access reaches a fingerprint-cached result",
)
C505_RULE = CheckRule(
    "C505", "cache-net-access", Severity.ERROR,
    "network access reaches a fingerprint-cached result",
)
C506_RULE = CheckRule(
    "C506", "cache-module-state", Severity.ERROR,
    "module-level or closure state mutated under a cached entry point",
)
C507_RULE = CheckRule(
    "C507", "cache-identity-dependence", Severity.ERROR,
    "id()/hash()/pid dependence reaches a fingerprint-cached result",
)

# C511-C514 parallel-sweep safety: a ProcessPoolExecutor worker whose
# behavior depends on (or mutates) state that does not travel across
# the process boundary.

C511_RULE = CheckRule(
    "C511", "parallel-shared-mutation", Severity.ERROR,
    "sweep worker mutates module-level state invisible across processes",
)
C512_RULE = CheckRule(
    "C512", "parallel-unpicklable-capture", Severity.ERROR,
    "lambda or nested closure handed to a process-parallel sweep",
)
C513_RULE = CheckRule(
    "C513", "parallel-accumulator-write", Severity.ERROR,
    "sweep worker accumulates into a module-level container",
)
C514_RULE = CheckRule(
    "C514", "parallel-unseeded-rng", Severity.ERROR,
    "sweep worker draws from the process-global RNG (fork-correlated streams)",
)

# C521+ determinism hygiene: result assembly whose value can differ
# between runs or backends with identical configuration.

C521_RULE = CheckRule(
    "C521", "order-dependent-result", Severity.ERROR,
    "set iteration order escapes into a result",
)
C522_RULE = CheckRule(
    "C522", "order-dependent-accumulation", Severity.ERROR,
    "float accumulation over an unordered collection",
)

# --- C6xx: quantitative budgets (repro.check.budgets) -------------------------
# The priced-timed analysis prices every transition-system edge with its
# flow-step latency and every resident state with its power-tree power,
# then checks the numbers the platform declares via budget_description().

C601_RULE = CheckRule(
    "C601", "wake-budget-exceeded", Severity.ERROR,
    "worst-case exit-latency path exceeds the declared wake budget",
)
C602_RULE = CheckRule(
    "C602", "residency-below-break-even", Severity.ERROR,
    "power state reachable with guaranteed residency below its break-even time",
)
C603_RULE = CheckRule(
    "C603", "break-even-drift", Severity.ERROR,
    "declared break-even constant disagrees with the derived one beyond tolerance",
)
C604_RULE = CheckRule(
    "C604", "missing-budget-declaration", Severity.ERROR,
    "deep power state has no parseable budget declaration",
)
C605_RULE = CheckRule(
    "C605", "cycle-energy-above-golden", Severity.ERROR,
    "per-cycle energy lower bound exceeds the golden figure value",
)


#: The full checker catalog, in catalog order (registry + docs).
CHECK_RULES: Tuple[CheckRule, ...] = (
    C101_RULE,
    C102_RULE,
    C103_RULE,
    C104_RULE,
    C105_RULE,
    C106_RULE,
    C201_RULE,
    C202_RULE,
    C203_RULE,
    C204_RULE,
    C401_RULE,
    C402_RULE,
    C403_RULE,
    C501_RULE,
    C502_RULE,
    C503_RULE,
    C504_RULE,
    C505_RULE,
    C506_RULE,
    C507_RULE,
    C511_RULE,
    C512_RULE,
    C513_RULE,
    C514_RULE,
    C521_RULE,
    C522_RULE,
    C601_RULE,
    C602_RULE,
    C603_RULE,
    C604_RULE,
    C605_RULE,
)

#: Rule lookup by id (used by the invariant catalog).
CHECK_RULES_BY_ID: Dict[str, CheckRule] = {rule.rule_id: rule for rule in CHECK_RULES}
