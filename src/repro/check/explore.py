"""Exhaustive BFS over the composed state space.

:func:`explore` walks every composed state reachable from the initial
state of a compiled :class:`~repro.check.ts.TransitionSystem`, with a
memoized visited set (states hash-cache their identity, so revisits cost
one set probe).  The walk produces:

* **C101 deadlock** — a reachable state with no outgoing edge.  When a
  flow step's ``requires`` blocked the only edge, the diagnostic names
  the step and the already-gated domains it needed.
* **C102 unreachable-step** — a declared flow step no explored edge ever
  executed (dead spec), and flows attached to no FSM state at all.
* **C103 livelock** — reachable states from which no path ever
  re-reaches the active state: the platform cycles but never wakes.
* **C2xx invariant violations** — each enabled
  :class:`~repro.check.invariants.Invariant` is evaluated in every
  visited state; the first witness of each distinct violation is
  reported with the path that produced it.
* **C104 truncation** — the ``max_states`` bound stopped the walk early.
  Absence-style findings (C102/C103) are suppressed on a truncated walk:
  they can only be trusted after an exhaustive one.

The space is finite (FSM states x flow positions x effect subsets), so
on declared platforms the walk exhausts in well under a thousand states;
``max_states`` is a safety valve for pathological user-authored views.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.lint.diagnostics import Diagnostic, sort_diagnostics
from repro.check.invariants import BUILTIN_INVARIANTS, Invariant
from repro.check.rules import C101_RULE, C102_RULE, C103_RULE, C104_RULE
from repro.check.ts import ComposedState, TransitionSystem, iter_flow_steps

#: Default exploration bound (the real platform needs a few dozen states).
DEFAULT_MAX_STATES = 100_000

#: Longest witness path rendered in a diagnostic before eliding the middle.
_MAX_WITNESS_LABELS = 12


@dataclass
class ExploreResult:
    """Everything one exhaustive walk learned about the state space."""

    diagnostics: List[Diagnostic] = field(default_factory=list)
    states_explored: int = 0
    transitions_taken: int = 0
    truncated: bool = False
    executed_steps: Set[Tuple[str, str]] = field(default_factory=set)
    invariants_checked: Tuple[str, ...] = ()

    def summary(self) -> Dict[str, object]:
        """JSON-ready state-space summary (the CI artifact payload)."""
        return {
            "states_explored": self.states_explored,
            "transitions_taken": self.transitions_taken,
            "truncated": self.truncated,
            "steps_executed": sorted(
                f"{flow}:{label}" if not label.startswith(f"{flow}:") else label
                for flow, label in self.executed_steps
            ),
            "invariants_checked": list(self.invariants_checked),
            "diagnostics": len(self.diagnostics),
        }


Parent = Optional[Tuple[ComposedState, str]]


def _witness_path(
    state: ComposedState, parents: Dict[ComposedState, Parent]
) -> str:
    """Render the label sequence that reached ``state`` from the initial."""
    labels: List[str] = []
    cursor: Optional[ComposedState] = state
    while cursor is not None:
        parent = parents[cursor]
        if parent is None:
            break
        cursor, label = parent
        labels.append(label)
    labels.reverse()
    if len(labels) > _MAX_WITNESS_LABELS:
        keep = _MAX_WITNESS_LABELS // 2
        labels = labels[:keep] + ["..."] + labels[-keep:]
    return " -> ".join(labels) if labels else "<initial>"


def explore(
    ts: TransitionSystem,
    invariants: Tuple[Invariant, ...] = BUILTIN_INVARIANTS,
    max_states: int = DEFAULT_MAX_STATES,
) -> ExploreResult:
    """Exhaustively explore ``ts`` and report every structural finding."""
    result = ExploreResult(
        invariants_checked=tuple(inv.name for inv in invariants)
    )
    parents: Dict[ComposedState, Parent] = {ts.initial: None}
    reverse: Dict[ComposedState, List[ComposedState]] = {}
    successors_of: Dict[ComposedState, int] = {}
    queue: deque = deque([ts.initial])
    seen_violations: Set[Tuple[str, str]] = set()
    diagnostics = result.diagnostics

    while queue:
        if len(successors_of) >= max_states:
            result.truncated = True
            break
        state = queue.popleft()
        if state in successors_of:
            continue

        for invariant in invariants:
            violation = invariant.check(ts, state)
            if violation is None:
                continue
            key = (invariant.rule.rule_id, violation)
            if key in seen_violations:
                continue
            seen_violations.add(key)
            diagnostics.append(
                invariant.rule.diagnostic(
                    f"{violation} (in state {state.describe()})",
                    obj=f"invariant {invariant.name}",
                    hint=f"witness: {_witness_path(state, parents)}",
                )
            )

        edges, blocked = ts.successors(state)
        successors_of[state] = len(edges)
        if not edges:
            detail = "; ".join(edge.describe() for edge in blocked)
            diagnostics.append(
                C101_RULE.diagnostic(
                    f"state {state.describe()} has no outgoing transition"
                    + (f": {detail}" if detail else ""),
                    obj=f"state {state.fsm}",
                    hint=f"witness: {_witness_path(state, parents)}",
                )
            )
            continue
        for label, target in edges:
            result.transitions_taken += 1
            reverse.setdefault(target, []).append(state)
            if target.flow is not None and target.step >= 0:
                result.executed_steps.add((target.flow, label))
            if target not in parents:
                parents[target] = (state, label)
                queue.append(target)

    result.states_explored = len(successors_of)

    if not result.truncated:
        _report_unreachable_steps(ts, result)
        _report_livelocks(ts, result, parents, reverse, successors_of)
    else:
        diagnostics.append(
            C104_RULE.diagnostic(
                f"exploration stopped at the {max_states}-state bound with "
                "unexplored states remaining; unreachable-step and livelock "
                "analysis skipped",
                obj="explorer",
                hint="raise --max-states for an exhaustive walk",
            )
        )

    result.diagnostics = sort_diagnostics(diagnostics)
    return result


def _report_unreachable_steps(ts: TransitionSystem, result: ExploreResult) -> None:
    detached = set(ts.detached_flows)
    for flow_name in sorted(detached):
        result.diagnostics.append(
            C102_RULE.diagnostic(
                f"flow {flow_name!r} is attached to no FSM state; none of its "
                "steps can ever execute",
                obj=f"flow {flow_name}",
                hint="flow names must match an FSM state (e.g. 'entry' for ENTRY)",
            )
        )
    for flow_name, label in iter_flow_steps(ts):
        if flow_name in detached:
            continue  # already reported wholesale
        if (flow_name, label) not in result.executed_steps:
            result.diagnostics.append(
                C102_RULE.diagnostic(
                    f"flow {flow_name!r} step {label!r} never executed in the "
                    "reachable state space",
                    obj=f"flow {flow_name}:{label}",
                    hint="an earlier deadlock or blocked requirement may cut the flow short",
                )
            )


def _report_livelocks(
    ts: TransitionSystem,
    result: ExploreResult,
    parents: Dict[ComposedState, Parent],
    reverse: Dict[ComposedState, List[ComposedState]],
    successors_of: Dict[ComposedState, int],
) -> None:
    """Reachable cycles from which the active state is unreachable (C103).

    States that merely feed a downstream deadlock are already explained
    by that deadlock's C101, so a livelock is only reported when the
    stuck region actually contains a cycle — the platform spins forever
    without ever re-reaching the active state.
    """
    can_return: Set[ComposedState] = set()
    stack = [state for state in successors_of if state.fsm == ts.active]
    can_return.update(stack)
    while stack:
        state = stack.pop()
        for predecessor in reverse.get(state, ()):
            if predecessor not in can_return:
                can_return.add(predecessor)
                stack.append(predecessor)
    stuck = {
        state
        for state in successors_of
        if state not in can_return and successors_of[state] > 0
    }
    cycle_state = _find_cycle_state(ts, stuck)
    if cycle_state is None:
        return
    result.diagnostics.append(
        C103_RULE.diagnostic(
            f"{len(stuck)} reachable state(s) cycle without ever returning to "
            f"the active state {ts.active!r}; e.g. {cycle_state.describe()}",
            obj=f"state {cycle_state.fsm}",
            hint=f"witness: {_witness_path(cycle_state, parents)}",
        )
    )


def _find_cycle_state(
    ts: TransitionSystem, stuck: Set[ComposedState]
) -> Optional[ComposedState]:
    """A state on some cycle inside the stuck region, if one exists."""
    WHITE, GREY, BLACK = 0, 1, 2
    color: Dict[ComposedState, int] = {state: WHITE for state in stuck}
    for root in stuck:
        if color[root] != WHITE:
            continue
        stack: List[ComposedState] = [root]
        color[root] = GREY
        while stack:
            state = stack[-1]
            advanced = False
            edges, _blocked = ts.successors(state)
            for _label, target in edges:
                if target not in stuck:
                    continue
                if color[target] == GREY:
                    return target
                if color[target] == WHITE:
                    color[target] = GREY
                    stack.append(target)
                    advanced = True
                    break
            if not advanced:
                color[state] = BLACK
                stack.pop()
    return None
