"""Structural validator for the ``repro check --json`` payload.

CI pipelines and the regression watchdog parse the checker's JSON
output; a silently reshaped payload (a renamed key, a list where an
object used to be) breaks them long after the commit that did it.  This
module pins the shape as executable documentation: a hand-rolled
structural schema (the container ships no ``jsonschema`` dependency,
and the stdlib is enough for the shapes we need) that yields one
human-readable problem string per violation.

The top-level payload is the lint report envelope (``version``,
``counts``, ``diagnostics``) extended with the checker's own sections:
``state_space`` (per-configuration exploration summaries), unless
``--no-effects`` was passed, ``effects`` (the per-entry-point summary of
:mod:`repro.check.effects`), and, when ``--budgets`` was passed,
``budgets`` (the per-configuration priced-timed summaries of
:mod:`repro.check.budgets`).

Usage::

    problems = validate_check_payload(json.loads(output))
    assert not problems, "\\n".join(problems)
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.lint.diagnostics import JSON_SCHEMA_VERSION, Severity
from repro.check.effects import EFFECTS_SCHEMA_VERSION

_SEVERITIES = tuple(severity.value for severity in Severity)
_ENTRY_KINDS = ("driver", "cache", "sweep-worker")


def _expect(
    value: Any, kinds: Tuple[type, ...], where: str
) -> Iterator[str]:
    if not isinstance(value, kinds) or isinstance(value, bool) and bool not in kinds:
        names = "/".join(kind.__name__ for kind in kinds)
        yield f"{where}: expected {names}, got {type(value).__name__}"


def _check_diagnostic(diag: Any, where: str) -> Iterator[str]:
    yield from _expect(diag, (dict,), where)
    if not isinstance(diag, dict):
        return
    for key in ("rule", "name", "severity", "message", "location"):
        if key not in diag:
            yield f"{where}: missing key {key!r}"
    if isinstance(diag.get("rule"), str) is False:
        yield f"{where}.rule: expected str"
    if diag.get("severity") not in _SEVERITIES:
        yield f"{where}.severity: expected one of {_SEVERITIES}"
    location = diag.get("location")
    if isinstance(location, dict):
        for key in ("file", "line", "object"):
            if key not in location:
                yield f"{where}.location: missing key {key!r}"
        line = location.get("line")
        if line is not None:
            yield from _expect(line, (int,), f"{where}.location.line")
    elif location is not None:
        yield f"{where}.location: expected object"


def _check_state_space(space: Any) -> Iterator[str]:
    yield from _expect(space, (dict,), "state_space")
    if not isinstance(space, dict):
        return
    for label, summary in space.items():
        where = f"state_space[{label!r}]"
        yield from _expect(summary, (dict,), where)
        if not isinstance(summary, dict):
            continue
        for key in ("states_explored", "transitions_taken", "truncated"):
            if key not in summary:
                yield f"{where}: missing key {key!r}"
        for key in ("states_explored", "transitions_taken"):
            if key in summary:
                yield from _expect(summary[key], (int,), f"{where}.{key}")
        if "truncated" in summary:
            yield from _expect(summary["truncated"], (bool,), f"{where}.truncated")


def _check_effect(effect: Any, where: str) -> Iterator[str]:
    yield from _expect(effect, (dict,), where)
    if not isinstance(effect, dict):
        return
    for key in ("kind", "category", "rule", "detail", "witness_file",
                "witness_line", "path"):
        if key not in effect:
            yield f"{where}: missing key {key!r}"
    for key in ("kind", "category", "detail", "witness_file"):
        if key in effect:
            yield from _expect(effect[key], (str,), f"{where}.{key}")
    if "witness_line" in effect:
        yield from _expect(effect["witness_line"], (int,), f"{where}.witness_line")
    if "rule" in effect and effect["rule"] is not None:
        yield from _expect(effect["rule"], (str,), f"{where}.rule")
    path = effect.get("path")
    if path is not None:
        yield from _expect(path, (list,), f"{where}.path")
        if isinstance(path, list):
            for index, hop in enumerate(path):
                yield from _expect(hop, (str,), f"{where}.path[{index}]")


def _check_effects(effects: Any) -> Iterator[str]:
    yield from _expect(effects, (dict,), "effects")
    if not isinstance(effects, dict):
        return
    if effects.get("version") != EFFECTS_SCHEMA_VERSION:
        yield (
            f"effects.version: expected {EFFECTS_SCHEMA_VERSION}, "
            f"got {effects.get('version')!r}"
        )
    for key in ("functions", "converged", "entry_points", "declared"):
        if key not in effects:
            yield f"effects: missing key {key!r}"
    if "functions" in effects:
        yield from _expect(effects["functions"], (int,), "effects.functions")
    if "converged" in effects:
        yield from _expect(effects["converged"], (bool,), "effects.converged")
    entries = effects.get("entry_points")
    if isinstance(entries, list):
        for index, entry in enumerate(entries):
            where = f"effects.entry_points[{index}]"
            yield from _expect(entry, (dict,), where)
            if not isinstance(entry, dict):
                continue
            for key in ("qualname", "kind", "file", "line", "clean", "effects"):
                if key not in entry:
                    yield f"{where}: missing key {key!r}"
            if entry.get("kind") not in _ENTRY_KINDS:
                yield f"{where}.kind: expected one of {_ENTRY_KINDS}"
            if "line" in entry:
                yield from _expect(entry["line"], (int,), f"{where}.line")
            if "clean" in entry:
                yield from _expect(entry["clean"], (bool,), f"{where}.clean")
            found = entry.get("effects")
            if isinstance(found, list):
                if entry.get("clean") is True and found:
                    yield f"{where}: clean entry carries effects"
                if entry.get("clean") is False and not found:
                    yield f"{where}: unclean entry carries no effects"
                for effect_index, effect in enumerate(found):
                    yield from _check_effect(
                        effect, f"{where}.effects[{effect_index}]"
                    )
            elif found is not None:
                yield f"{where}.effects: expected list"
    elif entries is not None:
        yield "effects.entry_points: expected list"
    declared = effects.get("declared")
    if isinstance(declared, list):
        for index, entry in enumerate(declared):
            where = f"effects.declared[{index}]"
            yield from _expect(entry, (dict,), where)
            if not isinstance(entry, dict):
                continue
            for key in ("qualname", "file", "line", "effects"):
                if key not in entry:
                    yield f"{where}: missing key {key!r}"
    elif declared is not None:
        yield "effects.declared: expected list"


def _check_budget_state(row: Any, where: str) -> Iterator[str]:
    yield from _expect(row, (dict,), where)
    if not isinstance(row, dict):
        return
    for key in ("power_w", "entry_energy_j", "exit_energy_j",
                "worst_entry_latency_ps", "worst_exit_latency_ps",
                "worst_exit_path", "break_even_s"):
        if key not in row:
            yield f"{where}: missing key {key!r}"
    for key in ("power_w", "entry_energy_j", "exit_energy_j"):
        if key in row:
            yield from _expect(row[key], (int, float), f"{where}.{key}")
    for key in ("worst_entry_latency_ps", "worst_exit_latency_ps"):
        if row.get(key) is not None and key in row:
            yield from _expect(row[key], (int,), f"{where}.{key}")
    path = row.get("worst_exit_path")
    if path is not None:
        yield from _expect(path, (list,), f"{where}.worst_exit_path")
        if isinstance(path, list):
            for index, hop in enumerate(path):
                yield from _expect(hop, (str,), f"{where}.worst_exit_path[{index}]")
    if row.get("break_even_s") is not None and "break_even_s" in row:
        yield from _expect(row["break_even_s"], (int, float), f"{where}.break_even_s")


def _check_budgets(budgets: Any) -> Iterator[str]:
    yield from _expect(budgets, (dict,), "budgets")
    if not isinstance(budgets, dict):
        return
    for label, summary in budgets.items():
        where = f"budgets[{label!r}]"
        yield from _expect(summary, (dict,), where)
        if not isinstance(summary, dict):
            continue
        for key in ("version", "technique_label", "active_power_w",
                    "deep_states", "ladder", "probe"):
            if key not in summary:
                yield f"{where}: missing key {key!r}"
        if "version" in summary:
            yield from _expect(summary["version"], (int,), f"{where}.version")
        if "active_power_w" in summary:
            yield from _expect(
                summary["active_power_w"], (int, float), f"{where}.active_power_w"
            )
        deep = summary.get("deep_states")
        if isinstance(deep, dict):
            for state, row in deep.items():
                yield from _check_budget_state(row, f"{where}.deep_states[{state!r}]")
        elif deep is not None:
            yield f"{where}.deep_states: expected object"
        ladder = summary.get("ladder")
        if isinstance(ladder, dict):
            for state, row in ladder.items():
                inner = f"{where}.ladder[{state!r}]"
                yield from _expect(row, (dict,), inner)
                if isinstance(row, dict):
                    for key in ("power_w", "exit_latency_ps", "break_even_s"):
                        if key not in row:
                            yield f"{inner}: missing key {key!r}"
        elif ladder is not None:
            yield f"{where}.ladder: expected object"
        cycle = summary.get("cycle")
        if cycle is not None:
            yield from _expect(cycle, (dict,), f"{where}.cycle")
            if isinstance(cycle, dict):
                for key in ("period_s", "energy_lower_bound_j", "golden_limit_j"):
                    if key not in cycle:
                        yield f"{where}.cycle: missing key {key!r}"
                for key in ("period_s", "energy_lower_bound_j"):
                    if key in cycle:
                        yield from _expect(
                            cycle[key], (int, float), f"{where}.cycle.{key}"
                        )


def validate_check_payload(
    payload: Any,
    expect_effects: Optional[bool] = None,
    expect_budgets: Optional[bool] = None,
) -> List[str]:
    """Every structural problem in a ``repro check --json`` payload.

    Returns an empty list when the payload conforms.  ``expect_effects``
    pins whether the ``effects`` section must (True) or must not (False)
    be present; ``None`` validates it only when present.
    ``expect_budgets`` does the same for the ``budgets`` section
    (present only when the check ran with ``--budgets``).
    """
    problems: List[str] = []
    if not isinstance(payload, dict):
        return [f"payload: expected object, got {type(payload).__name__}"]
    if payload.get("version") != JSON_SCHEMA_VERSION:
        problems.append(
            f"version: expected {JSON_SCHEMA_VERSION}, got {payload.get('version')!r}"
        )
    counts = payload.get("counts")
    if not isinstance(counts, dict):
        problems.append("counts: expected object")
    else:
        for severity in _SEVERITIES:
            if not isinstance(counts.get(severity), int):
                problems.append(f"counts.{severity}: expected int")
    diagnostics = payload.get("diagnostics")
    if not isinstance(diagnostics, list):
        problems.append("diagnostics: expected list")
    else:
        for index, diag in enumerate(diagnostics):
            problems.extend(_check_diagnostic(diag, f"diagnostics[{index}]"))
        if isinstance(counts, dict):
            total = sum(
                count for count in counts.values() if isinstance(count, int)
            )
            if total != len(diagnostics):
                problems.append(
                    f"counts: severities sum to {total} but "
                    f"{len(diagnostics)} diagnostic(s) listed"
                )
    if "state_space" not in payload:
        problems.append("payload: missing key 'state_space'")
    else:
        problems.extend(_check_state_space(payload["state_space"]))
    if expect_effects is True and "effects" not in payload:
        problems.append("payload: missing key 'effects'")
    if expect_effects is False and "effects" in payload:
        problems.append("payload: unexpected key 'effects' (ran with --no-effects)")
    if "effects" in payload:
        problems.extend(_check_effects(payload["effects"]))
    if expect_budgets is True and "budgets" not in payload:
        problems.append("payload: missing key 'budgets'")
    if expect_budgets is False and "budgets" in payload:
        problems.append("payload: unexpected key 'budgets' (ran without --budgets)")
    if "budgets" in payload:
        problems.extend(_check_budgets(payload["budgets"]))
    return problems
