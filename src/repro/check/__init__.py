"""Exhaustive model checking for the ODRIPS reproduction: ``repro.check``.

Where :mod:`repro.lint` verifies the platform's *wiring* one declaration
at a time, this package verifies its *behavior*: it compiles the
declared platform-state FSM, the entry/exit flow specs and the
power/clock couplings into an explicit transition system
(:mod:`repro.check.ts`), exhaustively explores every reachable composed
state (:mod:`repro.check.explore`), and checks declarative power-safety
invariants in each one (:mod:`repro.check.invariants`).  Findings are
``C1xx`` (structure: deadlock, unreachable step, livelock) and ``C2xx``
(invariant violation) diagnostics through the shared
:class:`~repro.lint.diagnostics.Diagnostic` framework.

A second, independent pass (:mod:`repro.check.dataflow`) runs an
interprocedural unit-dataflow analysis over the sources (``C4xx``),
following ``_ps``/``_watts``/``_joules`` unit tags across call
boundaries with a call-graph fixpoint.

An opt-in priced-timed pass (:mod:`repro.check.budgets`, ``--budgets``)
annotates the compiled transition system with per-step latencies and
per-state powers probed from one standby cycle, then verifies the
platform's declared wake-latency budgets, break-even residencies and
per-cycle energy bounds (``C6xx``).

Explored state spaces are memoized in a process-wide
:class:`~repro.perf.cache.SimulationCache` keyed by the
:func:`~repro.perf.fingerprint.fingerprint` of the platform
configuration, so repeat checks of an unchanged model are O(1).

Run it from the shell with ``python -m repro check`` (see docs/CHECK.md),
or call it directly::

    from repro.check import check_standby_model

    report = check_standby_model()
    assert not report.diagnostics
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.lint.diagnostics import Diagnostic, sort_diagnostics
from repro.lint.model import ModelView, walk_model
from repro.check.budgets import (
    analyze_budgets,
    derive_technique_break_even,
    probe_standby_cycle,
)
from repro.check.dataflow import analyze_paths, analyze_source_root, analyze_sources
from repro.check.effects import (
    EFFECTS_SCHEMA_VERSION,
    EffectAnalysis,
    EffectsReport,
    analyze_effects_paths,
    analyze_effects_source_root,
    analyze_effects_sources,
)
from repro.check.explore import DEFAULT_MAX_STATES, ExploreResult, explore
from repro.check.invariants import BUILTIN_INVARIANTS, Invariant, select_invariants
from repro.check.rules import CHECK_RULES, CheckRule
from repro.check.schema import validate_check_payload
from repro.check.ts import ComposedState, TransitionSystem, compile_transition_system

#: Bump when the report layout or rule semantics change incompatibly.
CHECK_SCHEMA_VERSION = 1


@dataclass
class CheckReport:
    """Everything one model check produced."""

    diagnostics: List[Diagnostic]
    #: JSON-ready state-space summary (the ``--json`` CI artifact payload).
    state_space: Dict[str, object]
    #: JSON-ready budget summary of the priced-timed analysis, present
    #: only when the check ran with ``budgets=True`` (``--budgets``).
    budgets: Optional[Dict[str, object]] = None


def check_model_view(
    view: ModelView,
    invariant_names: Optional[Tuple[str, ...]] = None,
    max_states: int = DEFAULT_MAX_STATES,
    budgets: bool = False,
    budget_probes: Optional[Dict[str, Dict[str, Any]]] = None,
    config: Any = None,
    techniques: Any = None,
) -> CheckReport:
    """Compile and exhaustively check an already-extracted model view.

    ``budgets=True`` additionally runs the priced-timed budget analysis
    (C6xx) over the compiled transition system; ``budget_probes`` injects
    pre-computed pricing (see :func:`repro.check.budgets.analyze_budgets`),
    and ``config``/``techniques`` parameterize the probe cycle when the
    prices are not injected.
    """
    invariants = select_invariants(invariant_names)
    ts, diagnostics = compile_transition_system(view)
    if ts is None:
        return CheckReport(
            diagnostics=sort_diagnostics(diagnostics),
            state_space={
                "states_explored": 0,
                "transitions_taken": 0,
                "truncated": False,
                "steps_executed": [],
                "invariants_checked": [inv.name for inv in invariants],
                "diagnostics": len(diagnostics),
            },
        )
    result = explore(ts, invariants, max_states=max_states)
    combined = diagnostics + result.diagnostics
    budget_summary: Optional[Dict[str, object]] = None
    if budgets:
        budget_summary, budget_diagnostics = analyze_budgets(
            view, ts, probes=budget_probes, config=config, techniques=techniques
        )
        combined = combined + budget_diagnostics
    combined = sort_diagnostics(combined)
    summary = result.summary()
    summary["diagnostics"] = len(combined)
    return CheckReport(
        diagnostics=combined, state_space=summary, budgets=budget_summary
    )


def check_platform(
    platform: Any,
    invariant_names: Optional[Tuple[str, ...]] = None,
    max_states: int = DEFAULT_MAX_STATES,
    budgets: bool = False,
    budget_probes: Optional[Dict[str, Dict[str, Any]]] = None,
) -> CheckReport:
    """Extract the model view from ``platform`` and exhaustively check it."""
    return check_model_view(
        walk_model(platform),
        invariant_names=invariant_names,
        max_states=max_states,
        budgets=budgets,
        budget_probes=budget_probes,
        config=getattr(platform, "config", None),
        techniques=getattr(platform, "techniques", None),
    )


#: Process-wide memo of explored state spaces (see :func:`check_standby_model`).
_STATE_SPACE_CACHE = None


def state_space_cache():
    """The process-wide cache, created on first use."""
    global _STATE_SPACE_CACHE
    if _STATE_SPACE_CACHE is None:
        from repro.perf.cache import SimulationCache

        _STATE_SPACE_CACHE = SimulationCache()
    return _STATE_SPACE_CACHE


def check_standby_model(
    techniques: Any = None,
    invariant_names: Optional[Tuple[str, ...]] = None,
    max_states: int = DEFAULT_MAX_STATES,
    cache: Any = None,
    budgets: bool = False,
) -> CheckReport:
    """Check the shipped Skylake platform, memoized by config fingerprint.

    The cache key is the fingerprint of the full platform configuration
    plus the technique set and the checker arguments, so any change to
    the model invalidates the entry and an unchanged model re-checks in
    O(1).  Pass an explicit ``cache`` to control sharing (the default is
    one process-wide cache).
    """
    from repro.config import skylake_config
    from repro.core.techniques import TechniqueSet
    from repro.system.skylake import SkylakePlatform

    if techniques is None:
        techniques = TechniqueSet.odrips()
    if cache is None:
        cache = state_space_cache()
    key = cache.key(
        "repro.check",
        CHECK_SCHEMA_VERSION,
        skylake_config(),
        techniques,
        tuple(invariant_names) if invariant_names is not None else None,
        max_states,
        budgets,
    )
    return cache.get_or_run(
        key,
        lambda: check_platform(
            SkylakePlatform(techniques=techniques),
            invariant_names=invariant_names,
            max_states=max_states,
            budgets=budgets,
        ),
    )


__all__ = [
    "BUILTIN_INVARIANTS",
    "CHECK_RULES",
    "CHECK_SCHEMA_VERSION",
    "CheckReport",
    "CheckRule",
    "ComposedState",
    "DEFAULT_MAX_STATES",
    "EFFECTS_SCHEMA_VERSION",
    "EffectAnalysis",
    "EffectsReport",
    "ExploreResult",
    "Invariant",
    "TransitionSystem",
    "analyze_budgets",
    "analyze_effects_paths",
    "analyze_effects_source_root",
    "analyze_effects_sources",
    "analyze_paths",
    "analyze_source_root",
    "analyze_sources",
    "check_model_view",
    "check_platform",
    "check_standby_model",
    "compile_transition_system",
    "derive_technique_break_even",
    "explore",
    "probe_standby_cycle",
    "select_invariants",
    "state_space_cache",
    "validate_check_payload",
    "walk_model",
]
