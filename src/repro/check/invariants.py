"""Declarative power-safety invariants checked in every reachable state.

Each :class:`Invariant` is a named predicate over one
:class:`~repro.check.ts.ComposedState`; the explorer evaluates every
enabled invariant in every state it visits and reports the first witness
of each distinct violation as a ``C2xx`` diagnostic.

The builtin catalog encodes the sequencing contracts the paper's
hardware enforced physically:

* ``clock-coupling`` (C201) — a *live* domain (powered and not halted)
  never runs with its declared clock source gated.  The entry flow may
  gate ``clk-24mhz`` while ``proc.compute`` is still powered, but only
  because an earlier step already quiesced it; delete that quiesce (or
  the exit flow's clock restart) and this invariant fires.
* ``rails-restored`` (C202) — re-entering the active state means every
  power rail the entry flow gated off has been restored: the flow's
  exit path undoes everything its entry path did.
* ``ledger-balanced`` (C203) — the suspend/resume ledger is conserved
  across any closed walk: back in the active state, no clock is still
  gated and no domain is still halted.  This is the static analogue of
  the energy-ledger conservation check the runtime attributor performs.
* ``wake-armed`` (C204) — every idle (wake-receptive) state keeps at
  least one declared wake-source domain powered; otherwise a wake event
  is lost and the platform never exits DRIPS.

Invariants only constrain what the platform *declared* (the
``safety_description()`` hook): a model with no clock requirements
trivially satisfies ``clock-coupling``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.check.rules import C201_RULE, C202_RULE, C203_RULE, C204_RULE, CheckRule
from repro.check.ts import ComposedState, TransitionSystem


@dataclass(frozen=True)
class Invariant:
    """One safety predicate, evaluated in every reachable composed state.

    ``check(ts, state)`` returns ``None`` when the state satisfies the
    invariant, or a human-readable description of the violation.  The
    explorer attaches the witness path and reports it under ``rule``.
    """

    name: str
    rule: CheckRule
    description: str
    check: Callable[[TransitionSystem, ComposedState], Optional[str]]


def _is_live(state: ComposedState, domain: str) -> bool:
    return domain not in state.off and domain not in state.halted


def _check_clock_coupling(ts: TransitionSystem, state: ComposedState) -> Optional[str]:
    for domain, clock in ts.clock_requirements:
        if clock in state.gated and _is_live(state, domain):
            return (
                f"domain {domain!r} is live (powered, not halted) but its "
                f"required clock {clock!r} is gated"
            )
    return None


def _check_rails_restored(ts: TransitionSystem, state: ComposedState) -> Optional[str]:
    if state.fsm != ts.active or not state.off:
        return None
    return (
        f"active state {ts.active!r} re-entered with power domain(s) "
        f"{', '.join(sorted(state.off))} still gated off"
    )


def _check_ledger_balanced(ts: TransitionSystem, state: ComposedState) -> Optional[str]:
    if state.fsm != ts.active:
        return None
    leftovers = []
    if state.gated:
        leftovers.append("clock(s) " + ", ".join(sorted(state.gated)) + " still gated")
    if state.halted:
        leftovers.append("domain(s) " + ", ".join(sorted(state.halted)) + " still halted")
    if not leftovers:
        return None
    return (
        f"suspend/resume ledger unbalanced back in {ts.active!r}: "
        + "; ".join(leftovers)
    )


def _check_wake_armed(ts: TransitionSystem, state: ComposedState) -> Optional[str]:
    if not ts.wake_sources or state.fsm not in ts.idle_states:
        return None
    if any(source not in state.off for source in ts.wake_sources):
        return None
    return (
        f"idle state {state.fsm!r} reached with every wake source "
        f"({', '.join(sorted(ts.wake_sources))}) gated off; a wake event "
        "would be lost"
    )


#: The builtin invariant catalog, in rule-id order.
BUILTIN_INVARIANTS: Tuple[Invariant, ...] = (
    Invariant(
        name="clock-coupling",
        rule=C201_RULE,
        description="a live domain's required clock source is never gated",
        check=_check_clock_coupling,
    ),
    Invariant(
        name="rails-restored",
        rule=C202_RULE,
        description="flow exit restores every rail its entry gated off",
        check=_check_rails_restored,
    ),
    Invariant(
        name="ledger-balanced",
        rule=C203_RULE,
        description="suspend/resume ledger conserved across a closed walk",
        check=_check_ledger_balanced,
    ),
    Invariant(
        name="wake-armed",
        rule=C204_RULE,
        description="every idle state keeps at least one wake source powered",
        check=_check_wake_armed,
    ),
)

INVARIANTS_BY_NAME: Dict[str, Invariant] = {inv.name: inv for inv in BUILTIN_INVARIANTS}


def select_invariants(names: Optional[Tuple[str, ...]] = None) -> Tuple[Invariant, ...]:
    """Resolve ``--invariants`` names to catalog entries (all by default)."""
    if names is None:
        return BUILTIN_INVARIANTS
    unknown = [name for name in names if name not in INVARIANTS_BY_NAME]
    if unknown:
        known = ", ".join(sorted(INVARIANTS_BY_NAME))
        raise ValueError(
            f"unknown invariant(s): {', '.join(sorted(unknown))} (known: {known})"
        )
    return tuple(INVARIANTS_BY_NAME[name] for name in names)
