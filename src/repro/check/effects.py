"""Interprocedural effect & determinism analysis (``C5xx``).

The perf layer memoizes simulations under a config fingerprint
(:mod:`repro.perf.cache`), and the sweep helper fans points out over a
``ProcessPoolExecutor`` (:mod:`repro.analysis.sweep`).  Both bets only
pay off if the code under them is a *pure, deterministic function of its
configuration* — a cached result poisoned by ``time.time()`` is silently
wrong forever, and a worker that mutates module state mutates a copy
the parent never sees.  This pass proves the absence of such effects,
statically, over the whole program:

1. **Local detection** — every function's own statements are scanned
   for effect witnesses: host-clock reads, unseeded/global RNG draws,
   environment and filesystem and network access, mutation of
   module-level or closure-captured state, ``id()``/``hash()``/pid
   dependence, and set-iteration order escaping into results.
2. **Propagation** — a fixpoint over the shared
   :class:`~repro.check.callgraph.CallGraph` unions callee effects into
   callers (name-based resolution over-approximates, which is sound for
   an absence proof), recording the call path to the witness.
3. **Entry points** — functions decorated ``@experiment_driver``,
   runners handed to ``SimulationCache.get_or_run``, and workers handed
   to ``sweep(...)`` / ``pool.map(...)`` are the contract boundaries;
   any effect that reaches one becomes a ``C5xx`` diagnostic at the
   entry's ``def`` line.

Intentional impurity is declared at the boundary that owns it with
:func:`repro.effects.declares_effects` — the declaration absorbs the
named kinds there (neither reported on the function nor propagated to
callers) while every other kind still flows.  The per-line ``allow``
pragma (on the entry's ``def``, naming the C5xx rule id) works too, but
the decorator is the canonical spelling: it survives refactors and
documents the claim.

Rule families (catalog in :mod:`repro.check.rules`):

* ``C501``–``C507`` cache soundness — the effect reaches a
  fingerprint-cached result the fingerprint does not capture.
* ``C511``–``C514`` parallel safety — the effect breaks the
  process-boundary contract of a sweep worker.
* ``C521``–``C522`` determinism hygiene — unordered iteration escapes
  into a result.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.effects import EFFECT_KINDS
from repro.lint.astcache import ModuleCache, ParsedModule, PathLike, default_source_root
from repro.lint.diagnostics import Diagnostic, sort_diagnostics
from repro.lint.source import _suppressed
from repro.check.callgraph import (
    CallGraph,
    FunctionNode,
    FunctionRecord,
    dotted_name,
    module_aliases,
    own_statements,
    terminal_name,
)
from repro.check.rules import (
    C501_RULE,
    C502_RULE,
    C503_RULE,
    C504_RULE,
    C505_RULE,
    C506_RULE,
    C507_RULE,
    C511_RULE,
    C512_RULE,
    C513_RULE,
    C514_RULE,
    C521_RULE,
    C522_RULE,
    CheckRule,
)

#: Schema version of the JSON effects summary.
EFFECTS_SCHEMA_VERSION = 1

# --- what counts as an effect -------------------------------------------------

_TIME_MODULE_ATTRS = frozenset(
    {"time", "time_ns", "monotonic", "monotonic_ns", "perf_counter", "perf_counter_ns"}
)
_TIME_DATETIME_ATTRS = frozenset({"now", "utcnow", "today"})

#: Module-level :mod:`random` functions that draw from the process-global
#: (or process-inherited, under fork) RNG.  ``random.Random(seed)`` and
#: methods on an explicit instance are seeded by construction and do not
#: appear here.
_GLOBAL_RNG_ATTRS = frozenset(
    {
        "random", "randint", "randrange", "uniform", "choice", "choices",
        "shuffle", "sample", "seed", "getrandbits", "gauss", "normalvariate",
        "expovariate", "betavariate", "triangular", "lognormvariate",
        "vonmisesvariate", "paretovariate", "weibullvariate",
    }
)

_ENV_CALLS = frozenset(
    {
        "os.getenv", "os.cpu_count", "os.uname", "os.getlogin",
        "platform.node", "platform.platform", "platform.machine",
        "socket.gethostname",
    }
)

_FS_OS_CALLS = frozenset(
    {
        "os.listdir", "os.scandir", "os.walk", "os.stat", "os.lstat",
        "os.makedirs", "os.mkdir", "os.rmdir", "os.remove", "os.unlink",
        "os.rename", "os.replace", "os.getcwd", "os.chdir", "os.symlink",
        "os.link", "os.chmod", "os.utime",
    }
)

#: Path-object method names distinctive enough to attribute to the
#: filesystem without type information.
_FS_PATH_METHODS = frozenset(
    {
        "read_text", "write_text", "read_bytes", "write_bytes",
        "iterdir", "rglob", "touch", "mkdir", "unlink",
    }
)

_NET_PREFIXES = ("socket.", "urllib.", "requests.", "http.client.")

_IDENTITY_CALLS = frozenset(
    {"id", "hash", "os.getpid", "os.getppid", "threading.get_ident"}
)

#: Container methods that mutate their receiver in place.
_MUTATOR_METHODS = frozenset(
    {
        "append", "extend", "insert", "add", "update", "setdefault",
        "pop", "popitem", "remove", "discard", "clear",
    }
)

#: Call consumers for which the iteration order of their argument cannot
#: escape into the value (``sum`` is the exception: the *value* is order
#: sensitive under float rounding, tracked as its own category).
_ORDER_SAFE_CONSUMERS = frozenset(
    {"sorted", "min", "max", "len", "any", "all", "set", "frozenset", "fsum"}
)


@dataclass(frozen=True)
class EffectWitness:
    """Where one effect was observed, and the call path that reaches it."""

    kind: str
    category: str
    file: str
    line: int
    detail: str
    #: Qualnames from the function owning this witness set down to the
    #: function containing the witness itself (empty for local effects).
    path: Tuple[str, ...] = ()

    def via(self, callee: "FunctionRecord") -> "EffectWitness":
        """The same witness, seen through a call to ``callee``."""
        return EffectWitness(
            kind=self.kind,
            category=self.category,
            file=self.file,
            line=self.line,
            detail=self.detail,
            path=(callee.qualname, *self.path),
        )


#: (effect kind, category) — the key the fixpoint is monotone over.
EffectKey = Tuple[str, str]


@dataclass(frozen=True)
class EntryPoint:
    """One contract boundary the analysis gates."""

    record: FunctionRecord
    #: ``driver`` | ``cache`` | ``sweep-worker``.
    kind: str
    #: Where the entry was discovered (call site for cache runners and
    #: sweep workers, the ``def`` itself for drivers).
    origin_file: str
    origin_line: int


def declared_effect_kinds(node: ast.AST) -> Tuple[str, ...]:
    """Effect kinds a ``@declares_effects(...)`` decorator names.

    Read syntactically — the checker never imports analyzed code — so
    only string literals count.  Unknown kind names are ignored here;
    the runtime decorator rejects them at import time.
    """
    kinds: List[str] = []
    for decorator in getattr(node, "decorator_list", []):
        if not isinstance(decorator, ast.Call):
            continue
        if terminal_name(decorator.func) != "declares_effects":
            continue
        for arg in decorator.args:
            if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                if arg.value in EFFECT_KINDS and arg.value not in kinds:
                    kinds.append(arg.value)
    return tuple(kinds)


def _is_set_expr(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        return terminal_name(node.func) in ("set", "frozenset")
    return False


class EffectAnalysis:
    """The whole-program pass: detect, propagate, then gate entries."""

    def __init__(self, graph: CallGraph) -> None:
        self.graph = graph
        #: Per-function effect witnesses, grown monotonically by the
        #: fixpoint (local detection seeds it).
        self.effects: Dict[FunctionRecord, Dict[EffectKey, EffectWitness]] = {}
        #: Effect kinds each function declares at its boundary.
        self.declared: Dict[FunctionRecord, Tuple[str, ...]] = {}
        self.converged = True
        # ParsedModule/FunctionRecord are eq=False dataclasses, so they
        # hash by identity — no id() needed (the checker flags id()).
        self._module_level_names: Dict[ParsedModule, Set[str]] = {}
        self._aliases: Dict[ParsedModule, Dict[str, str]] = {}
        for record in self.graph.functions:
            self.declared[record] = declared_effect_kinds(record.node)
            self.effects[record] = self._local_effects(record)
        self.entries, self._capture_diagnostics = self._discover_entries()

    # --- module context ---------------------------------------------------

    def _aliases_of(self, module: ParsedModule) -> Dict[str, str]:
        if module not in self._aliases:
            assert module.tree is not None
            self._aliases[module] = module_aliases(module.tree)
        return self._aliases[module]

    def _module_names(self, module: ParsedModule) -> Set[str]:
        """Names bound by module-level statements (the shared state)."""
        if module in self._module_level_names:
            return self._module_level_names[module]
        names: Set[str] = set()

        def collect(statements: Sequence[ast.stmt]) -> None:
            for statement in statements:
                if isinstance(statement, (*FunctionNode, ast.ClassDef)):
                    continue
                targets: List[ast.expr] = []
                if isinstance(statement, ast.Assign):
                    targets = list(statement.targets)
                elif isinstance(statement, (ast.AnnAssign, ast.AugAssign)):
                    targets = [statement.target]
                for target in targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
                    elif isinstance(target, (ast.Tuple, ast.List)):
                        names.update(
                            element.id
                            for element in target.elts
                            if isinstance(element, ast.Name)
                        )
                for block in ("body", "orelse", "finalbody"):
                    nested = getattr(statement, block, None)
                    if nested:
                        collect(nested)

        assert module.tree is not None
        collect(module.tree.body)
        self._module_level_names[module] = names
        return names

    # --- local detection --------------------------------------------------

    def _local_effects(self, record: FunctionRecord) -> Dict[EffectKey, EffectWitness]:
        found: Dict[EffectKey, EffectWitness] = {}
        if record.module.tree is None:
            return found
        aliases = self._aliases_of(record.module)
        module_names = self._module_names(record.module)
        scoped_globals: Set[str] = set()
        parents: Dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(record.node):
            for child in ast.iter_child_nodes(parent):
                parents[child] = parent

        def witness(kind: str, category: str, line: int, detail: str) -> None:
            found.setdefault(
                (kind, category),
                EffectWitness(kind, category, record.filename, line, detail),
            )

        statements = list(own_statements(record.node))
        for node in statements:
            if isinstance(node, (ast.Global, ast.Nonlocal)):
                scoped_globals.update(node.names)
        for node in statements:
            if isinstance(node, ast.Call):
                self._classify_call(node, aliases, module_names, witness)
            elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                self._classify_assign(node, module_names, scoped_globals, witness)
            elif isinstance(node, ast.Subscript):
                dotted = dotted_name(node.value)
                if dotted is not None:
                    root = aliases.get(dotted.split(".")[0], dotted.split(".")[0])
                    full = ".".join([root, *dotted.split(".")[1:]])
                    if full.startswith("os.environ"):
                        witness("env", "read", node.lineno, "os.environ read")
            elif isinstance(node, ast.For):
                if _is_set_expr(node.iter):
                    witness(
                        "order", "iterate", node.iter.lineno,
                        "for-loop over a set (unordered)",
                    )
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
                self._classify_comprehension(node, parents, witness)
        return found

    def _classify_call(
        self,
        node: ast.Call,
        aliases: Dict[str, str],
        module_names: Set[str],
        witness,
    ) -> None:
        dotted = dotted_name(node.func)
        attr = terminal_name(node.func)
        line = node.lineno
        if dotted is not None:
            parts = dotted.split(".")
            root = aliases.get(parts[0], parts[0])
            full = ".".join([root, *parts[1:]])
            if full == "open":
                witness("fs", "access", line, "open()")
            elif full in _IDENTITY_CALLS:
                witness("identity", "read", line, f"{full}()")
            elif full.split(".", 1)[0] == "time" and parts[-1] in _TIME_MODULE_ATTRS:
                witness("time", "read", line, f"time.{parts[-1]}()")
            elif full.startswith("datetime.") and parts[-1] in _TIME_DATETIME_ATTRS:
                witness("time", "read", line, f"datetime.{parts[-1]}()")
            elif full.split(".", 1)[0] == "random" and parts[-1] in _GLOBAL_RNG_ATTRS:
                witness("rng", "draw", line, f"random.{parts[-1]}() (global RNG)")
            elif full.startswith("numpy.random.") or full.startswith("np.random."):
                witness("rng", "draw", line, f"{full}() (global RNG)")
            elif full in _ENV_CALLS or full.startswith("os.environ"):
                witness("env", "read", line, f"{full}()")
            elif full in _FS_OS_CALLS or full.startswith(("shutil.", "tempfile.")):
                witness("fs", "access", line, f"{full}()")
            elif full.startswith("os.path."):
                witness("fs", "access", line, f"{full}()")
            elif full.startswith("subprocess."):
                witness("fs", "access", line, f"{full}() (process spawn)")
            elif full.startswith(_NET_PREFIXES) or parts[-1] == "urlopen":
                witness("net", "access", line, f"{full}()")
        if (
            attr in _MUTATOR_METHODS
            and isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id in module_names
        ):
            witness(
                "module-state", "accumulate", line,
                f"{node.func.value.id}.{attr}() mutates module-level state",
            )
        if attr == "sum" or dotted == "sum":
            if node.args and _is_set_expr(node.args[0]):
                witness(
                    "order", "accumulate", line,
                    "sum() over a set (float accumulation order)",
                )

    def _classify_assign(
        self,
        node: ast.stmt,
        module_names: Set[str],
        scoped_globals: Set[str],
        witness,
    ) -> None:
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        else:
            targets = [node.target]
        for target in targets:
            if isinstance(target, ast.Name) and target.id in scoped_globals:
                witness(
                    "module-state", "assign", node.lineno,
                    f"assignment to global/nonlocal {target.id!r}",
                )
            elif (
                isinstance(target, ast.Subscript)
                and isinstance(target.value, ast.Name)
                and target.value.id in module_names
            ):
                witness(
                    "module-state", "accumulate", node.lineno,
                    f"item assignment into module-level {target.value.id!r}",
                )

    def _classify_comprehension(
        self,
        node: ast.expr,
        parents: Dict[ast.AST, ast.AST],
        witness,
    ) -> None:
        if not any(_is_set_expr(gen.iter) for gen in node.generators):
            return
        consumer = parents.get(node)
        if isinstance(consumer, ast.Call) and node in consumer.args:
            name = terminal_name(consumer.func)
            if name in _ORDER_SAFE_CONSUMERS:
                return
            if name == "sum":
                witness(
                    "order", "accumulate", node.lineno,
                    "sum() over a set (float accumulation order)",
                )
                return
        witness(
            "order", "iterate", node.lineno,
            "comprehension over a set (unordered)",
        )

    # --- propagation ------------------------------------------------------

    def exported_effects(self, record: FunctionRecord) -> Dict[EffectKey, EffectWitness]:
        """Effects ``record`` exposes to callers (declared kinds absorbed)."""
        declared = self.declared.get(record, ())
        return {
            key: witness
            for key, witness in self.effects[record].items()
            if key[0] not in declared
        }

    def solve(self, max_rounds: int = 50) -> None:
        """Union callee effects into callers until nothing changes."""

        def propagate(record: FunctionRecord) -> bool:
            changed = False
            mine = self.effects[record]
            params = set(record.params)
            for name in record.callees():
                if name in params:
                    # A call through a parameter is dynamically bound;
                    # resolving it to same-named definitions elsewhere
                    # in the program is coincidence, not reachability.
                    continue
                for callee in self.graph.resolve(name):
                    if callee is record:
                        continue
                    for key, witness in self.exported_effects(callee).items():
                        if key not in mine:
                            mine[key] = witness.via(callee)
                            changed = True
            return changed

        self.converged = self.graph.solve(propagate, max_rounds=max_rounds)

    # --- entry discovery --------------------------------------------------

    def _discover_entries(self) -> Tuple[List[EntryPoint], List[Diagnostic]]:
        entries: List[EntryPoint] = []
        diagnostics: List[Diagnostic] = []
        seen: Set[Tuple[FunctionRecord, str]] = set()

        def register(record: FunctionRecord, kind: str, file: str, line: int) -> None:
            if (record, kind) not in seen:
                seen.add((record, kind))
                entries.append(EntryPoint(record, kind, file, line))

        for record in self.graph.functions:
            if "experiment_driver" in record.decorators:
                register(record, "driver", record.filename, record.node.lineno)
        # Scan call sites scope by scope, so a callable that is merely a
        # *parameter* of the enclosing function (``sweep`` forwarding its
        # ``experiment`` argument) is never resolved to a same-named
        # definition elsewhere in the program.
        scopes: List[Tuple[ParsedModule, ast.AST, Set[str]]] = [
            (record.module, record.node, set(record.params))
            for record in self.graph.functions
        ]
        scopes.extend(
            (module, module.tree, set())
            for module in self.graph.modules
            if module.tree is not None
        )
        for module, scope, dynamic in scopes:
            for node in own_statements(scope):
                if not isinstance(node, ast.Call):
                    continue
                attr = terminal_name(node.func)
                if attr == "get_or_run" and len(node.args) >= 2:
                    for record in self._resolve_callable(node.args[1], dynamic):
                        register(record, "cache", module.filename, node.lineno)
                elif attr == "sweep" and len(node.args) >= 2:
                    diagnostics.extend(
                        self._gate_worker(
                            node.args[1], module, node.lineno, dynamic, register
                        )
                    )
                elif attr in ("map", "submit") and isinstance(node.func, ast.Attribute):
                    owner = terminal_name(node.func.value)
                    if owner is not None and node.args and (
                        "pool" in owner.lower() or "executor" in owner.lower()
                    ):
                        diagnostics.extend(
                            self._gate_worker(
                                node.args[0], module, node.lineno, dynamic, register
                            )
                        )
        entries.sort(key=lambda e: (e.record.filename, e.record.node.lineno, e.kind))
        return entries, diagnostics

    def _resolve_callable(
        self, node: ast.expr, dynamic: Set[str]
    ) -> List[FunctionRecord]:
        """Function records a callable expression may stand for.

        ``dynamic`` holds names bound by the enclosing scope's
        parameters — calls through those are unresolvable, not
        same-named definitions elsewhere.
        """
        if isinstance(node, ast.Call):
            name = terminal_name(node.func)
            if name == "partial" and node.args:
                return self._resolve_callable(node.args[0], dynamic)
            if name is not None and name not in dynamic:
                # ``Wrapper(fn)``: a class instance used as a callable —
                # gate the class's ``__call__`` if we can see one.
                return [
                    record
                    for record in self.graph.resolve("__call__")
                    if record.qualname.startswith(f"{name}.")
                ]
            return []
        if isinstance(node, ast.Lambda):
            records: List[FunctionRecord] = []
            lambda_params = dynamic | {arg.arg for arg in node.args.args}
            for child in ast.walk(node.body):
                if isinstance(child, ast.Call):
                    name = terminal_name(child.func)
                    if name is not None and name not in lambda_params:
                        records.extend(self.graph.resolve(name))
            return records
        name = terminal_name(node)
        if name is None or name in dynamic:
            return []
        return self.graph.resolve(name)

    def _gate_worker(
        self,
        node: ast.expr,
        module: ParsedModule,
        line: int,
        dynamic: Set[str],
        register,
    ) -> Iterator[Diagnostic]:
        """Register a sweep/map worker; C512 on unpicklable callables."""
        if isinstance(node, ast.Lambda):
            diag = C512_RULE.diagnostic(
                "lambda handed to a process-parallel sweep cannot cross the "
                "pickle boundary",
                file=module.filename,
                line=line,
                hint="use a module-level function or functools.partial of one",
            )
            if not _suppressed(diag, module.allows):
                yield diag
            return
        for record in self._resolve_callable(node, dynamic):
            if record.is_nested:
                diag = C512_RULE.diagnostic(
                    f"nested function {record.qualname}() handed to a "
                    "process-parallel sweep cannot cross the pickle boundary",
                    file=module.filename,
                    line=line,
                    hint="hoist the worker to module level",
                )
                if not _suppressed(diag, module.allows):
                    yield diag
            else:
                register(record, "sweep-worker", module.filename, line)

    # --- gating -----------------------------------------------------------

    def _rule_for(self, entry_kind: str, key: EffectKey) -> Optional[CheckRule]:
        kind, category = key
        if kind == "order":
            return C521_RULE if category == "iterate" else C522_RULE
        if entry_kind == "sweep-worker":
            if kind == "module-state":
                return C511_RULE if category == "assign" else C513_RULE
            if kind == "rng":
                return C514_RULE
        return {
            "time": C501_RULE,
            "rng": C502_RULE,
            "env": C503_RULE,
            "fs": C504_RULE,
            "net": C505_RULE,
            "module-state": C506_RULE,
            "identity": C507_RULE,
        }.get(kind)

    def entry_effects(self, entry: EntryPoint) -> Dict[EffectKey, EffectWitness]:
        """Effects that escape ``entry`` (its own declaration absorbs)."""
        return self.exported_effects(entry.record)

    def check(self) -> List[Diagnostic]:
        diagnostics = list(self._capture_diagnostics)
        for entry in self.entries:
            record = entry.record
            for key, witness in sorted(self.entry_effects(entry).items()):
                rule = self._rule_for(entry.kind, key)
                if rule is None:
                    continue
                via = ""
                if witness.path:
                    via = f" via {' -> '.join(witness.path)}"
                diag = rule.diagnostic(
                    f"{entry.kind} entry {record.qualname}() reaches "
                    f"{witness.detail} at {witness.file}:{witness.line}{via}",
                    obj=record.qualname,
                    file=record.filename,
                    line=record.node.lineno,
                    hint=(
                        "declare the boundary that owns the effect with "
                        f"@declares_effects({key[0]!r}) if it never reaches "
                        "the result"
                    ),
                )
                if not _suppressed(diag, record.module.allows):
                    diagnostics.append(diag)
        return sort_diagnostics(diagnostics)

    # --- reporting --------------------------------------------------------

    def summary(self) -> Dict[str, object]:
        """JSON-able per-entry-point effect summary."""
        entry_payload = []
        for entry in self.entries:
            effects = []
            for key, witness in sorted(self.entry_effects(entry).items()):
                rule = self._rule_for(entry.kind, key)
                effects.append(
                    {
                        "kind": witness.kind,
                        "category": witness.category,
                        "rule": rule.rule_id if rule is not None else None,
                        "detail": witness.detail,
                        "witness_file": witness.file,
                        "witness_line": witness.line,
                        "path": list(witness.path),
                    }
                )
            entry_payload.append(
                {
                    "qualname": entry.record.qualname,
                    "kind": entry.kind,
                    "file": entry.record.filename,
                    "line": entry.record.node.lineno,
                    "clean": not effects,
                    "effects": effects,
                }
            )
        declared_payload = [
            {
                "qualname": record.qualname,
                "file": record.filename,
                "line": record.node.lineno,
                "effects": list(self.declared[record]),
            }
            for record in self.graph.functions
            if self.declared.get(record)
        ]
        return {
            "version": EFFECTS_SCHEMA_VERSION,
            "functions": len(self.graph.functions),
            "converged": self.converged,
            "entry_points": entry_payload,
            "declared": declared_payload,
        }


@dataclass
class EffectsReport:
    """Everything one effects run produced."""

    diagnostics: List[Diagnostic]
    summary: Dict[str, object]
    entries: List[EntryPoint] = field(default_factory=list)


def analyze_effects_graph(graph: CallGraph) -> EffectsReport:
    """Run the effect pass over an already-built call graph."""
    analysis = EffectAnalysis(graph)
    analysis.solve()
    return EffectsReport(
        diagnostics=analysis.check(),
        summary=analysis.summary(),
        entries=analysis.entries,
    )


def analyze_effects_sources(sources: Dict[str, str]) -> EffectsReport:
    """Run the effect pass over ``{filename: source}`` as one program."""
    cache = ModuleCache()
    modules = [
        cache.module_for_source(sources[filename], filename)
        for filename in sorted(sources)
    ]
    return analyze_effects_graph(CallGraph(modules))


def analyze_effects_paths(
    paths: Sequence[PathLike], cache: Optional[ModuleCache] = None
) -> EffectsReport:
    """Run the effect pass over every ``*.py`` file under ``paths``."""
    if cache is None:
        cache = ModuleCache()
    return analyze_effects_graph(CallGraph(cache.modules_for_paths(paths)))


def analyze_effects_source_root() -> EffectsReport:
    """Analyze the installed ``repro`` package (what the CLI checks)."""
    return analyze_effects_paths([default_source_root()])
