"""The discrete-event simulation kernel.

A :class:`Kernel` owns simulated time (integer picoseconds) and a priority
queue of :class:`Event` objects.  Events scheduled for the same timestamp
run in FIFO order of scheduling, which makes flows deterministic.

The kernel keeps an O(1) count of pending events (maintained on
schedule/cancel/fire) and resolves the next event time by peeking at the
heap head, lazily discarding cancelled entries it finds there — so the
hot-path queries the workload runner and fast-forward paths lean on never
scan or sort the queue.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple

from repro.errors import SimulationError

Callback = Callable[[], None]


class Event:
    """A scheduled callback that can be cancelled before it fires.

    Events are created through :meth:`Kernel.schedule` /
    :meth:`Kernel.schedule_at`; user code should not instantiate them
    directly.
    """

    __slots__ = ("time_ps", "seq", "callback", "cancelled", "fired", "label", "_kernel")

    def __init__(
        self,
        time_ps: int,
        seq: int,
        callback: Callback,
        label: str = "",
        kernel: Optional["Kernel"] = None,
    ) -> None:
        self.time_ps = time_ps
        self.seq = seq
        self.callback: Optional[Callback] = callback
        self.cancelled = False
        self.fired = False
        self.label = label
        self._kernel = kernel

    def cancel(self) -> None:
        """Prevent the event from firing.  Cancelling a fired event is a no-op."""
        if self.pending and self._kernel is not None:
            self._kernel._note_cancelled()
        self.cancelled = True
        self.callback = None  # break reference cycles early

    @property
    def pending(self) -> bool:
        """True while the event is scheduled and not yet fired or cancelled."""
        return not self.cancelled and not self.fired

    def __lt__(self, other: "Event") -> bool:
        return (self.time_ps, self.seq) < (other.time_ps, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else ("fired" if self.fired else "pending")
        return f"<Event t={self.time_ps}ps {self.label or 'anon'} {state}>"


class Kernel:
    """Event loop owning simulated time.

    Usage::

        kernel = Kernel()
        kernel.schedule(units.us_to_ps(5), lambda: print("5us later"))
        kernel.run(until_ps=units.ms_to_ps(1))
    """

    def __init__(self) -> None:
        self._now_ps = 0
        self._queue: List[Event] = []
        self._seq = 0
        self._running = False
        self._stopped = False
        self._pending = 0
        self.events_fired = 0
        #: Optional repro.obs tracer; None keeps dispatch at one attribute check.
        self.obs = None

    # --- time -------------------------------------------------------------

    @property
    def now(self) -> int:
        """Current simulated time in picoseconds."""
        return self._now_ps

    @property
    def now_seconds(self) -> float:
        """Current simulated time in seconds (float convenience view)."""
        return self._now_ps / 10**12

    # --- scheduling ---------------------------------------------------------

    def schedule(self, delay_ps: int, callback: Callback, label: str = "") -> Event:
        """Schedule ``callback`` to run ``delay_ps`` picoseconds from now."""
        if delay_ps < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay_ps}ps)")
        return self.schedule_at(self._now_ps + delay_ps, callback, label)

    def schedule_at(self, time_ps: int, callback: Callback, label: str = "") -> Event:
        """Schedule ``callback`` at absolute time ``time_ps``."""
        if time_ps < self._now_ps:
            raise SimulationError(
                f"cannot schedule at t={time_ps}ps, now is t={self._now_ps}ps"
            )
        event = Event(time_ps, self._seq, callback, label, kernel=self)
        self._seq += 1
        heapq.heappush(self._queue, event)
        self._pending += 1
        return event

    def call_soon(self, callback: Callback, label: str = "") -> Event:
        """Schedule ``callback`` at the current time, after pending same-time events."""
        return self.schedule_at(self._now_ps, callback, label)

    def _note_cancelled(self) -> None:
        """Bookkeeping hook called by :meth:`Event.cancel` (once per event)."""
        self._pending -= 1

    # --- execution ----------------------------------------------------------

    def step(self) -> bool:
        """Fire the next pending event.  Returns False if the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now_ps = event.time_ps
            event.fired = True
            callback = event.callback
            event.callback = None
            self.events_fired += 1
            self._pending -= 1
            obs = self.obs
            if obs is not None:
                obs.kernel_event(event.label, event.time_ps)
            assert callback is not None
            callback()
            return True
        return False

    def run(self, until_ps: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Run events until the queue drains, ``until_ps`` is reached, or
        ``max_events`` have fired.

        Returns the number of events fired by this call.  When ``until_ps``
        is given, simulated time is advanced to exactly ``until_ps`` even if
        the final events fire earlier, so that power integration windows are
        exact.
        """
        if self._running:
            raise SimulationError("kernel.run() is not re-entrant")
        self._running = True
        self._stopped = False
        fired = 0
        try:
            while self._queue and not self._stopped:
                if max_events is not None and fired >= max_events:
                    break
                head = self._queue[0]
                if head.cancelled:
                    heapq.heappop(self._queue)
                    continue
                if until_ps is not None and head.time_ps > until_ps:
                    break
                if self.step():
                    fired += 1
        finally:
            self._running = False
        if until_ps is not None and not self._stopped and self._now_ps < until_ps:
            self._now_ps = until_ps
        return fired

    def stop(self) -> None:
        """Request :meth:`run` to return after the current event."""
        self._stopped = True

    def advance_to(self, time_ps: int) -> None:
        """Advance idle time to ``time_ps`` without firing events.

        Only legal when no pending event precedes ``time_ps``; used by
        analytical fast-forward paths.
        """
        if time_ps < self._now_ps:
            raise SimulationError("cannot advance time backwards")
        head_ps = self.next_event_time()
        if head_ps is not None and head_ps < time_ps:
            head = self._queue[0]
            raise SimulationError(
                "advance_to would skip a pending event at "
                f"t={head.time_ps}ps ({head.label or 'anon'})"
            )
        self._now_ps = time_ps

    def warp(self, delta_ps: int) -> None:
        """Shift simulated time and every queued event forward by ``delta_ps``.

        The macro-stepping primitive (:mod:`repro.sim.macro`): skipping k
        compiled standby cycles is one uniform shift of the clock and the
        queue.  A uniform shift preserves both the heap invariant and the
        relative firing order (time, then scheduling sequence), so the
        pending events fire with exactly the delays they were scheduled
        with — only k periods later on the absolute timeline.  Cancelled
        entries still in the heap are shifted too, keeping the heap
        totally consistent.
        """
        if delta_ps < 0:
            raise SimulationError(f"cannot warp time backwards ({delta_ps}ps)")
        if delta_ps == 0:
            return
        self._now_ps += delta_ps
        for event in self._queue:
            event.time_ps += delta_ps

    def pending_signature(self) -> Tuple[Tuple[int, str], ...]:
        """``(delay_ps, label)`` of every pending event, in firing order.

        The macro-stepping cycle detector compares this signature across
        cycle boundaries: two boundaries with equal signatures carry the
        same future obligations, so a time warp between them cannot
        reorder or drop work.
        """
        events = sorted(
            (event for event in self._queue if event.pending),
            key=lambda event: (event.time_ps, event.seq),
        )
        return tuple((event.time_ps - self._now_ps, event.label) for event in events)

    @property
    def pending_events(self) -> int:
        """Number of events currently scheduled (excluding cancelled ones)."""
        return self._pending

    def next_event_time(self) -> Optional[int]:
        """Timestamp of the earliest pending event, or None if idle.

        Cancelled entries found at the heap head are discarded on the way,
        so repeated calls stay O(1) amortized even under cancellation storms.
        """
        queue = self._queue
        while queue and queue[0].cancelled:
            heapq.heappop(queue)
        return queue[0].time_ps if queue else None
