"""Cycle-compiled macro-stepping for periodic connected-standby runs.

Connected standby is overwhelmingly periodic: after boot transients die
out, every cycle of the Fig. 2 workload — Active maintenance, entry
flow, DRIPS residency, exit flow — repeats bit-for-bit on a fixed
period.  Simulating week-long horizons event by event therefore redoes
identical work tens of thousands of times.

This module exploits that steady state in three stages:

* **Detect** — at every wake-to-active boundary the
  :class:`MacroEngine` fingerprints the cycle that just completed: the
  trace samples it appended (as channel/offset/value tuples relative to
  the cycle start, with the ``wake`` channel normalized because its
  value embeds the absolute wake time), its duration, its wake event,
  its entry/exit flow latencies, the meter channel set, and the kernel's
  pending-event signature at both boundaries.  Two consecutive cycles
  with equal fingerprints prove periodic steady state.
* **Compile** — the matched cycle becomes a :class:`CompiledCycle`: its
  duration, wake-event template, flow latencies, per-meter-channel
  energy deltas, per-rail energies, and the cycle's merged
  state-power *segment list* — the closed-form residency vector one
  period contributes.  Compilation also proves the ledger balanced: the
  per-rail trace energies of the cycle must sum to the platform-channel
  energy within :attr:`MacroConfig.ledger_tolerance`, and every rail
  channel must appear in the platform's declared macro ledger coverage
  (lint rule M308 checks the same declaration statically).
* **Execute** — instead of re-simulating, the engine advances N cycles
  per macro-step in O(1) *simulation* work: it warps the kernel clock
  (:meth:`~repro.sim.kernel.Kernel.warp`) past the skipped span, credits
  the meter the compiled energy deltas
  (:meth:`~repro.power.meter.EnergyMeter.inject`), extends the wake log
  and flow statistics, and appends one *summary interval* per power
  channel to the trace — the cycle-average power held across the span,
  restored to the boundary value at span end — so naive trace consumers
  (the analyzer, the obs energy ledger, Perfetto exports) integrate the
  span to the right energy without per-cycle samples.  The state channel
  carries the :data:`MACRO_STATE` marker across the span.

The measured results stay **bit-for-bit identical** to an event-by-event
run for pure-periodic workloads: :func:`macro_residency_report` composes
the per-state energies from the exactly-simulated regions plus
N-weighted per-cycle segment sums using exact rational arithmetic
(:class:`fractions.Fraction`), while the event-by-event path sums the
same segment multiset with :func:`math.fsum` — both are correctly
rounded, so they agree to the last bit.  Dwell times are integer
picoseconds and compose exactly.

Irregular points fall back to event-by-event execution: with external
wakes enabled the engine consumes one inter-wake RNG draw per skipped
cycle — exactly as the event-by-event run would — and stops the
macro-step just before a cycle whose draw would fire, stashing the draw
for the exactly-simulated fallback cycle.  A cycle whose fingerprint
mismatches (external wake, parameter change, randomized maintenance)
de-compiles the steady state; macro mode re-engages once two
consecutive cycles match again.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import MacroError, MeasurementError
from repro.io.wake import WakeEvent, WakeEventType
from repro.measure.residency import ResidencyReport, merge_state_power
from repro.sim.trace import TraceBlock, TraceRecorder
from repro.system.states import POWER_CHANNEL, STATE_CHANNEL, WAKE_CHANNEL
from repro.units import PICOSECONDS_PER_SECOND

#: Trace-channel prefix of the per-rail power channels (mirrors
#: :data:`repro.obs.ledger.RAIL_CHANNEL_PREFIX` without importing obs).
_RAIL_PREFIX = "rail:"

#: Value the ``state`` trace channel carries across a compiled span.  A
#: naive residency walk over a macro trace reports this pseudo-state for
#: the skipped cycles instead of silently misattributing them; the
#: macro-aware :func:`macro_residency_report` replaces it with the exact
#: per-state split.
MACRO_STATE = "macro:compiled"

#: Rails whose ``rail:<name>`` channels a compiled cycle accounts for —
#: the macro executor's declared energy-ledger coverage.  The platform
#: exposes this through ``macro_description()`` and lint rule M308
#: cross-checks it against the live power tree, so a rail added to the
#: model without extending this declaration fails ``repro lint`` instead
#: of silently dropping energy from compiled segments.
MACRO_LEDGER_RAILS: Tuple[str, ...] = (
    "board",
    "chipset_aon",
    "compute",
    "proc_aon",
    "sram_retention",
)


@dataclass(frozen=True)
class MacroConfig:
    """Tuning knobs of the macro-stepping executor."""

    #: Completed cycles before a macro-step may engage.  Detection needs
    #: two consecutive bit-for-bit cycles regardless, so the earliest
    #: possible skip is at the end of cycle ``max(warmup_cycles, 1) + 2``.
    warmup_cycles: int = 1
    #: Upper bound on cycles skipped per macro-step (None: no bound).
    max_skip: Optional[int] = None
    #: Relative slack for the compiled-segment ledger balance proof.
    ledger_tolerance: float = 1e-9


@dataclass
class MacroStats:
    """Counters describing what the engine did during one run."""

    cycles_compiled: int = 0
    macro_steps: int = 0
    fallbacks: int = 0
    fingerprint_mismatches: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "cycles_compiled": self.cycles_compiled,
            "macro_steps": self.macro_steps,
            "fallbacks": self.fallbacks,
            "fingerprint_mismatches": self.fingerprint_mismatches,
        }


@dataclass(frozen=True)
class _Boundary:
    """Everything snapshotted at one wake-to-active cycle boundary."""

    time_ps: int
    trace_index: int
    wake_index: int
    entry_len: int
    exit_len: int
    meter_energy_j: Dict[str, float]
    pending: Tuple[Tuple[int, str], ...]


@dataclass(frozen=True)
class CompiledCycle:
    """One steady-state cycle, compiled for analytic replay."""

    duration_ps: int
    wake_offset_ps: int
    wake_type: WakeEventType
    wake_detail: str
    entry_latencies_ps: Tuple[int, ...]
    exit_latencies_ps: Tuple[int, ...]
    #: Exact per-meter-channel joules of one cycle.
    meter_delta_j: Dict[str, float]
    #: Battery-side joules of one cycle (ledger-balance audit trail).
    platform_energy_j: float
    #: Joules of one cycle per ``rail:<name>`` channel.
    rail_energy_j: Dict[str, float]
    #: Merged state-power segments of one cycle, offsets relative to the
    #: cycle start: ``(lo_off, hi_off, state, watts)`` — the residency
    #: vector :func:`macro_residency_report` replays.
    segments: Tuple[Tuple[int, int, str, float], ...]
    #: Per-state dwell picoseconds of one cycle (segments summed).
    state_dwell_ps: Dict[str, int]
    #: Per-state exact rational energy of one cycle: the sum of the very
    #: float products the event-by-event walk would feed ``fsum``.
    state_energy: Dict[str, Fraction]
    #: Each summarized power channel's value at the cycle boundary,
    #: restored at span end so post-span intervals read correctly.
    boundary_values: Dict[str, Any]
    #: The platform state at the cycle boundary (restored at span end).
    boundary_state: Any


@dataclass(frozen=True)
class MacroSpan:
    """One executed macro-step: ``cycles`` compiled cycles from ``start_ps``."""

    start_ps: int
    cycles: int
    compiled: CompiledCycle

    @property
    def end_ps(self) -> int:
        return self.start_ps + self.cycles * self.compiled.duration_ps


def _integrate_joules(
    trace: TraceRecorder, channel: str, start_ps: int, end_ps: int
) -> float:
    """Exact integral of a piecewise-constant power channel, in joules."""
    total = 0.0
    for lo, hi, watts in trace.intervals(channel, end_ps, start_ps=start_ps):
        lo = max(lo, start_ps)
        hi = min(hi, end_ps)
        if hi > lo:
            total += watts * ((hi - lo) / PICOSECONDS_PER_SECOND)
    return total


def cycles_for_horizon(
    horizon_days: float,
    idle_interval_s: float,
    maintenance_s: float,
) -> int:
    """Standby cycles covering ``horizon_days`` of simulated time.

    The CLI's ``--horizon`` helper: one cycle is roughly one idle
    interval plus one maintenance burst (flow latencies are microseconds
    and do not move the count).
    """
    if horizon_days <= 0:
        raise MacroError(f"horizon must be positive (got {horizon_days} days)")
    period_s = idle_interval_s + maintenance_s
    return max(1, round(horizon_days * 86400.0 / period_s))


def macro_residency_report(
    trace: TraceRecorder,
    start_ps: int,
    end_ps: int,
    spans: List[MacroSpan],
) -> ResidencyReport:
    """A :class:`ResidencyReport` over a window containing macro spans.

    Walks the exactly-simulated regions of the trace and composes the
    compiled spans analytically: whole skipped cycles contribute
    ``N x`` the compiled per-state segment sums, and a window edge that
    lands inside a span clips the compiled segment list at the same
    offsets the event-by-event walk would clip its intervals.  Per-state
    energies accumulate as exact rationals and round once at the end, so
    they equal the event-by-event :func:`math.fsum` result bit-for-bit.
    """
    if end_ps <= start_ps:
        raise MeasurementError("empty measurement window")
    dwell: Dict[str, int] = {}
    energy: Dict[str, Fraction] = {}

    def add(state: str, duration_ps: int, watts: float) -> None:
        dwell[state] = dwell.get(state, 0) + duration_ps
        energy[state] = energy.get(state, Fraction()) + Fraction(
            watts * (duration_ps / PICOSECONDS_PER_SECOND)
        )

    def add_exact(lo: int, hi: int) -> None:
        for seg_lo, seg_hi, state, watts in merge_state_power(trace, lo, hi):
            add(state, seg_hi - seg_lo, watts)

    def add_partial(compiled: CompiledCycle, lo_off: int, hi_off: int) -> None:
        for seg_lo, seg_hi, state, watts in compiled.segments:
            lo = max(seg_lo, lo_off)
            hi = min(seg_hi, hi_off)
            if hi > lo:
                add(state, hi - lo, watts)

    cursor = start_ps
    for span in sorted(spans, key=lambda s: s.start_ps):
        lo = max(span.start_ps, start_ps)
        hi = min(span.end_ps, end_ps)
        if hi <= lo:
            continue
        if lo > cursor:
            add_exact(cursor, lo)
        compiled = span.compiled
        period = compiled.duration_ps
        first_cycle, head_off = divmod(lo - span.start_ps, period)
        last_cycle, tail_off = divmod(hi - span.start_ps, period)
        if first_cycle == last_cycle:
            add_partial(compiled, head_off, tail_off)
        else:
            if head_off:
                add_partial(compiled, head_off, period)
            full = last_cycle - first_cycle - (1 if head_off else 0)
            if full:
                for state, cycle_dwell in compiled.state_dwell_ps.items():
                    dwell[state] = dwell.get(state, 0) + full * cycle_dwell
                for state, frac in compiled.state_energy.items():
                    energy[state] = energy.get(state, Fraction()) + full * frac
            if tail_off:
                add_partial(compiled, 0, tail_off)
        cursor = hi
    if cursor < end_ps:
        add_exact(cursor, end_ps)
    if not dwell:
        raise MeasurementError("trace has no samples inside the window")
    return ResidencyReport(
        window_ps=end_ps - start_ps,
        dwell_ps=dwell,
        energy_j={state: float(frac) for state, frac in energy.items()},
    )


class MacroEngine:
    """Steady-state detector + cycle compiler + macro-stepping executor.

    Owned by :class:`~repro.workloads.standby.ConnectedStandbyRunner`
    when macro mode is requested; driven from the runner's wake-to-active
    callback via :meth:`at_boundary`.
    """

    def __init__(self, platform, config: Optional[MacroConfig] = None) -> None:
        self.platform = platform
        self.config = config if config is not None else MacroConfig()
        self.stats = MacroStats()
        #: Executed macro-steps, in time order — the spans
        #: :func:`macro_residency_report` replays analytically.
        self.spans: List[MacroSpan] = []
        self._prev_boundary: Optional[_Boundary] = None
        self._prev_fingerprint: Optional[Tuple] = None
        self._compiled: Optional[CompiledCycle] = None

    # --- the boundary hook ------------------------------------------------

    def at_boundary(self, runner) -> int:
        """Called at each wake-to-active boundary; returns cycles skipped.

        The runner has just counted one completed cycle.  The engine
        captures it, compares it against the previous cycle, and — once
        two consecutive cycles match bit-for-bit — compiles the cycle
        and advances through as many of the remaining cycles as the
        irregularity sources allow.
        """
        if runner.randomize_maintenance:
            return 0  # per-cycle RNG maintenance: never periodic, never skip
        now = self.platform.kernel.now
        boundary = self._snapshot(runner, now)
        prev = self._prev_boundary
        self._prev_boundary = boundary
        if prev is None:
            return 0
        captured = self._capture_cycle(runner, prev, boundary)
        if captured is None:
            self._note_break()
            self._prev_fingerprint = None
            return 0
        fingerprint, wake = captured
        if fingerprint != self._prev_fingerprint:
            if self._prev_fingerprint is not None:
                self._note_break()
            self._prev_fingerprint = fingerprint
            return 0
        # periodic steady state: two consecutive bit-for-bit cycles
        if runner._cycles_done < max(self.config.warmup_cycles, 1) + 2:
            return 0
        remaining = runner._cycles_target - runner._cycles_done
        if remaining <= 0:
            return 0
        if self._compiled is None:
            self._compiled = self._compile(prev, boundary, fingerprint, wake)
        skipped = self._execute_skip(runner, self._compiled, boundary, remaining)
        if skipped:
            # the post-skip boundary is a replica of this one, k periods on
            self._prev_boundary = self._snapshot(
                runner, self.platform.kernel.now
            )
        return skipped

    # --- detection --------------------------------------------------------

    def _snapshot(self, runner, now: int) -> _Boundary:
        p = self.platform
        p.meter.advance(now)
        return _Boundary(
            time_ps=now,
            trace_index=len(p.trace),
            wake_index=len(p.wake_log),
            entry_len=len(runner.flows.stats.entry_latencies_ps),
            exit_len=len(runner.flows.stats.exit_latencies_ps),
            meter_energy_j={name: p.meter.energy(name) for name in p.meter.channels()},
            pending=p.kernel.pending_signature(),
        )

    def _capture_cycle(
        self, runner, prev: _Boundary, boundary: _Boundary
    ) -> Optional[Tuple[Tuple, WakeEvent]]:
        """Fingerprint the cycle between two boundaries (None: uncompilable)."""
        p = self.platform
        duration = boundary.time_ps - prev.time_ps
        if duration <= 0:
            return None
        wakes = p.wake_log[prev.wake_index : boundary.wake_index]
        if len(wakes) != 1 or "@" in wakes[0].detail:
            return None  # multi-wake cycles / time-bearing details stay exact
        wake = wakes[0]
        block: TraceBlock = p.trace.block_since(prev.trace_index, prev.time_ps)
        normalized: List[Tuple[str, int, Any]] = []
        wake_entries = 0
        for channel, offset, value in block.entries:
            if channel == WAKE_CHANNEL:
                wake_entries += 1
                # the wake value embeds the absolute wake time; compare
                # the time-free template instead
                normalized.append(
                    (channel, offset, (wake.event_type.value, wake.detail))
                )
            else:
                normalized.append((channel, offset, value))
        if wake_entries != 1:
            return None
        fingerprint = (
            duration,
            tuple(normalized),
            (wake.event_type, wake.time_ps - prev.time_ps, wake.detail),
            prev.pending,
            boundary.pending,
            tuple(
                runner.flows.stats.entry_latencies_ps[prev.entry_len : boundary.entry_len]
            ),
            tuple(
                runner.flows.stats.exit_latencies_ps[prev.exit_len : boundary.exit_len]
            ),
            frozenset(boundary.meter_energy_j),
        )
        return fingerprint, wake

    def _note_break(self) -> None:
        self.stats.fingerprint_mismatches += 1
        if self._compiled is not None:
            self.stats.fallbacks += 1
            self._compiled = None

    # --- compilation ------------------------------------------------------

    def _compile(
        self,
        prev: _Boundary,
        boundary: _Boundary,
        fingerprint: Tuple,
        wake: WakeEvent,
    ) -> CompiledCycle:
        p = self.platform
        duration = boundary.time_ps - prev.time_ps
        platform_energy, rail_energy = self._check_ledger_balance(
            prev.time_ps, boundary.time_ps
        )
        wake_offset = wake.time_ps - prev.time_ps
        segments = tuple(
            (lo - prev.time_ps, hi - prev.time_ps, state, watts)
            for lo, hi, state, watts in merge_state_power(
                p.trace, prev.time_ps, boundary.time_ps
            )
        )
        state_dwell: Dict[str, int] = {}
        state_energy: Dict[str, Fraction] = {}
        for lo, hi, state, watts in segments:
            state_dwell[state] = state_dwell.get(state, 0) + (hi - lo)
            state_energy[state] = state_energy.get(state, Fraction()) + Fraction(
                watts * ((hi - lo) / PICOSECONDS_PER_SECOND)
            )
        boundary_values = {
            POWER_CHANNEL: p.trace.value_at(POWER_CHANNEL, boundary.time_ps),
        }
        for name in sorted(rail_energy):
            channel = _RAIL_PREFIX + name
            boundary_values[channel] = p.trace.value_at(channel, boundary.time_ps)
        meter_delta = {
            name: boundary.meter_energy_j[name] - prev.meter_energy_j.get(name, 0.0)
            for name in boundary.meter_energy_j
        }
        return CompiledCycle(
            duration_ps=duration,
            wake_offset_ps=wake_offset,
            wake_type=wake.event_type,
            wake_detail=wake.detail,
            entry_latencies_ps=fingerprint[5],
            exit_latencies_ps=fingerprint[6],
            meter_delta_j=meter_delta,
            platform_energy_j=platform_energy,
            rail_energy_j=rail_energy,
            segments=segments,
            state_dwell_ps=state_dwell,
            state_energy=state_energy,
            boundary_values=boundary_values,
            boundary_state=p.trace.value_at(STATE_CHANNEL, boundary.time_ps),
        )

    def _check_ledger_balance(
        self, start_ps: int, end_ps: int
    ) -> Tuple[float, Dict[str, float]]:
        """Prove one compiled segment keeps the energy ledger balanced.

        Every rail channel the run recorded must be declared in the
        platform's macro ledger coverage, and the per-rail energies of
        the segment must sum to the battery-side platform energy.
        Returns the platform energy and the per-rail energies of the
        segment.
        """
        p = self.platform
        trace = p.trace
        rails = {
            name[len(_RAIL_PREFIX) :]
            for name in trace.channels()
            if name.startswith(_RAIL_PREFIX)
        }
        describe = getattr(p, "macro_description", None)
        if describe is not None:
            declared = set(describe().get("ledger_rails", ()))
            undeclared = sorted(rails - declared)
            if undeclared:
                raise MacroError(
                    "rail(s) outside the declared macro ledger coverage: "
                    + ", ".join(undeclared)
                    + "; a compiled cycle would drop their energy from the ledger"
                )
        rail_energy = {
            rail: _integrate_joules(trace, _RAIL_PREFIX + rail, start_ps, end_ps)
            for rail in sorted(rails)
        }
        rail_total = sum(rail_energy.values())
        platform_total = _integrate_joules(trace, POWER_CHANNEL, start_ps, end_ps)
        slack = self.config.ledger_tolerance * max(abs(platform_total), 1e-12)
        if abs(rail_total - platform_total) > slack:
            raise MacroError(
                f"compiled segment ledger unbalanced: rails sum to {rail_total!r} J "
                f"but the platform channel carries {platform_total!r} J"
            )
        return platform_total, rail_energy

    # --- execution --------------------------------------------------------

    def _execute_skip(
        self, runner, compiled: CompiledCycle, boundary: _Boundary, remaining: int
    ) -> int:
        p = self.platform
        # never skip the final cycle: the run's closing wake then comes from
        # exactly-simulated trace, so the standard wake-to-wake measurement
        # window only ever crosses *whole* compiled spans — which keeps naive
        # trace consumers (the obs energy ledger, the analyzer) exact instead
        # of cycle-average-approximate at the window edge
        cap = remaining - 1
        if self.config.max_skip is not None:
            cap = min(cap, self.config.max_skip)
        skip = cap
        if runner.external_wakes:
            # consume one inter-wake draw per skipped cycle, exactly as the
            # event-by-event run would; a draw that would fire ends the
            # macro-step and is stashed for the exact fallback cycle
            skip = 0
            for _ in range(cap):
                delay_s = runner._next_external_wake_delay()
                if delay_s is not None and delay_s < runner.idle_interval_s * 0.9:
                    runner._stash_external_wake_delay(delay_s)
                    break
                skip += 1
        if skip <= 0:
            return 0
        start_ps = boundary.time_ps
        period = compiled.duration_ps
        end_ps = start_ps + skip * period
        wake_log = p.wake_log
        for j in range(skip):
            wake_log.append(
                WakeEvent(
                    compiled.wake_type,
                    start_ps + j * period + compiled.wake_offset_ps,
                    detail=compiled.wake_detail,
                )
            )
        stats = runner.flows.stats
        stats.entry_latencies_ps.extend(list(compiled.entry_latencies_ps) * skip)
        stats.exit_latencies_ps.extend(list(compiled.exit_latencies_ps) * skip)
        # bulk interval append: one summary interval per power channel —
        # the cycle-average level held across the span, restored to the
        # boundary value at span end — keeps naive trace consumers (the
        # analyzer, the obs ledger) integrating the span to the right
        # energy without per-cycle samples
        period_s = period / PICOSECONDS_PER_SECOND
        trace = p.trace
        trace.record(start_ps, STATE_CHANNEL, MACRO_STATE)
        trace.record(start_ps, POWER_CHANNEL, compiled.platform_energy_j / period_s)
        for rail, joules in compiled.rail_energy_j.items():
            trace.record(start_ps, _RAIL_PREFIX + rail, joules / period_s)
        trace.record(end_ps, STATE_CHANNEL, compiled.boundary_state)
        for channel, value in compiled.boundary_values.items():
            trace.record(end_ps, channel, value)
        self.spans.append(MacroSpan(start_ps, skip, compiled))
        if runner.period_s is not None:
            runner._period_index += skip
        p.kernel.warp(skip * period)
        p.meter.inject(
            end_ps,
            {name: joules * skip for name, joules in compiled.meter_delta_j.items()},
        )
        self.stats.cycles_compiled += skip
        self.stats.macro_steps += 1
        obs = p.obs
        if obs is not None:
            from repro.obs.tracer import EDGE_COMPILED, MACRO_TRACK

            # per-cycle attribution rides on the summary span, so causal
            # consumers (repro.obs.causal, `repro explain`) can expand the
            # span into N wake-rooted cycles without per-cycle records
            span = obs.begin(
                f"macro:compiled x{skip}",
                start_ps,
                track=MACRO_TRACK,
                args={
                    "cycles": skip,
                    "period_ps": period,
                    "wake_type": compiled.wake_type.value,
                    "wake_detail": compiled.wake_detail,
                    "cycle_state_dwell_ps": dict(compiled.state_dwell_ps),
                    "cycle_state_energy_j": {
                        state: float(frac)
                        for state, frac in compiled.state_energy.items()
                    },
                    "cycle_rail_energy_j": dict(compiled.rail_energy_j),
                },
            )
            obs.end(span, end_ps)
            obs.flow_rooted(
                span,
                compiled.wake_type.value,
                start_ps + compiled.wake_offset_ps,
                detail=compiled.wake_detail,
                role=EDGE_COMPILED,
            )
            obs.metrics.counter("macro.cycles_compiled").inc(skip)
            obs.metrics.counter("macro.steps").inc()
        stream = getattr(runner, "_stream", None)
        if stream is not None:
            # live progress from inside the macro loop: one heartbeat +
            # one skip-size sample per macro-step, so week-scale horizons
            # report ETA without per-cycle records
            stream.heartbeat(
                "macro",
                done=runner._cycles_done + skip,
                total=runner._cycles_target,
                sim_now_ps=p.kernel.now,
                events=p.kernel.events_fired,
            )
            stream.histogram("macro.step_cycles").observe(skip)
        return skip
