"""Generator-based simulation processes.

A :class:`Process` wraps a generator.  The generator yields either

* an ``int`` — a delay in picoseconds after which the process resumes, or
* a :class:`WaitSignal` — the process resumes when the named signal next
  changes to a matching value.

Processes are how multi-step flows (DRIPS entry, calibration, PML
transactions) are written without hand-rolled continuation callbacks.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.errors import SimulationError
from repro.sim.kernel import Kernel
from repro.sim.signals import Signal

ProcessBody = Generator[Any, None, None]


class WaitSignal:
    """Yielded by a process to block until ``signal`` takes ``value``.

    If ``value`` is ``None`` the process resumes on *any* change.  If the
    signal already equals ``value`` the process resumes immediately (on the
    next kernel dispatch at the current time).
    """

    __slots__ = ("signal", "value")

    def __init__(self, signal: Signal, value: Any = None) -> None:
        self.signal = signal
        self.value = value

    def satisfied_now(self) -> bool:
        """True when the wait condition already holds."""
        return self.value is not None and self.signal.value == self.value


class Process:
    """Drives a generator through the kernel until it finishes.

    The process starts immediately upon construction (its first segment runs
    at the current simulation time when the kernel next dispatches).
    """

    def __init__(self, kernel: Kernel, body: ProcessBody, name: str = "process") -> None:
        self.kernel = kernel
        self.name = name
        self._body = body
        self.finished = False
        self.result: Optional[Any] = None
        self._unsubscribe = None
        kernel.call_soon(self._advance, label=f"{name}:start")

    def _advance(self) -> None:
        if self.finished:
            return
        try:
            yielded = next(self._body)
        except StopIteration as stop:
            self.finished = True
            self.result = getattr(stop, "value", None)
            return
        self._handle(yielded)

    def _handle(self, yielded: Any) -> None:
        if isinstance(yielded, int):
            if yielded < 0:
                raise SimulationError(f"{self.name} yielded negative delay {yielded}")
            self.kernel.schedule(yielded, self._advance, label=f"{self.name}:delay")
        elif isinstance(yielded, WaitSignal):
            if yielded.satisfied_now():
                self.kernel.call_soon(self._advance, label=f"{self.name}:wait-done")
                return
            self._wait_for(yielded)
        else:
            raise SimulationError(
                f"{self.name} yielded unsupported value {yielded!r}; "
                "expected int delay or WaitSignal"
            )

    def _wait_for(self, wait: WaitSignal) -> None:
        def watcher(_signal: Signal, _old: Any, new: Any) -> None:
            if wait.value is None or new == wait.value:
                assert self._unsubscribe is not None
                self._unsubscribe()
                self._unsubscribe = None
                self.kernel.call_soon(self._advance, label=f"{self.name}:signal")

        self._unsubscribe = wait.signal.watch(watcher)

    def abort(self) -> None:
        """Terminate the process without running further segments."""
        self.finished = True
        if self._unsubscribe is not None:
            self._unsubscribe()
            self._unsubscribe = None
        self._body.close()
