"""Discrete-event simulation kernel.

The kernel keeps simulated time as an integer number of picoseconds and
executes scheduled events in timestamp order.  Components never "tick":
clock edges, timer expirations and state-machine steps are *computed* and
scheduled, so simulating 30 seconds of platform idle costs a handful of
events rather than millions of cycles.

Public API
----------

:class:`Kernel`
    The event loop: :meth:`~Kernel.schedule`, :meth:`~Kernel.run`,
    :attr:`~Kernel.now`.
:class:`Event`
    A cancellable scheduled callback.
:class:`Signal`
    A named value holder that wakes waiters on change.
:class:`Process`
    A generator-based coroutine driven by the kernel.
:class:`TraceRecorder`
    Records ``(time, channel, value)`` samples for analysis.
"""

from repro.sim.kernel import Event, Kernel
from repro.sim.process import Process, WaitSignal
from repro.sim.signals import Signal
from repro.sim.trace import TraceRecorder, TraceSample

__all__ = [
    "Event",
    "Kernel",
    "Process",
    "Signal",
    "TraceRecorder",
    "TraceSample",
    "WaitSignal",
]
