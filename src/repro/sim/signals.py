"""Signals: named value holders that notify watchers on change.

Signals model wires and control lines (for example the ``Switch_to_32KHz``
line of Fig. 3, or the chipset's FET control GPIO).  Watchers are plain
callbacks invoked synchronously when the value changes; generator-based
:class:`~repro.sim.process.Process` objects can block on a signal via
:class:`~repro.sim.process.WaitSignal`.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Tuple

Watcher = Callable[["Signal", Any, Any], None]


class Signal:
    """A named value with change notification.

    ``Signal`` is deliberately synchronous: setting a value invokes all
    watchers before returning, which mirrors how a level change propagates
    combinationally through control logic.
    """

    def __init__(self, name: str, initial: Any = 0) -> None:
        self.name = name
        self._value = initial
        self._watchers: List[Watcher] = []
        self.change_count = 0

    @property
    def value(self) -> Any:
        """Current value of the signal."""
        return self._value

    def set(self, value: Any) -> None:
        """Drive the signal.  Watchers fire only on an actual change."""
        if value == self._value:
            return
        old = self._value
        self._value = value
        self.change_count += 1
        for watcher in list(self._watchers):
            watcher(self, old, value)

    def assert_(self) -> None:
        """Drive the signal high (boolean convenience)."""
        self.set(True)

    def deassert(self) -> None:
        """Drive the signal low (boolean convenience)."""
        self.set(False)

    def watch(self, watcher: Watcher) -> Callable[[], None]:
        """Register ``watcher(signal, old, new)``; returns an unsubscribe."""
        self._watchers.append(watcher)

        def unsubscribe() -> None:
            if watcher in self._watchers:
                self._watchers.remove(watcher)

        return unsubscribe

    def __bool__(self) -> bool:
        return bool(self._value)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Signal {self.name}={self._value!r}>"


class EdgeDetector:
    """Watches a boolean signal and records rising/falling edge counts."""

    def __init__(self, signal: Signal) -> None:
        self.signal = signal
        self.rising = 0
        self.falling = 0
        self._unsubscribe = signal.watch(self._on_change)

    def _on_change(self, _signal: Signal, old: Any, new: Any) -> None:
        if not old and new:
            self.rising += 1
        elif old and not new:
            self.falling += 1

    def detach(self) -> None:
        """Stop watching the signal."""
        self._unsubscribe()


def latch_on_rising(signal: Signal, action: Callable[[], None]) -> Callable[[], None]:
    """Run ``action`` on every rising edge of a boolean ``signal``.

    Returns an unsubscribe callable.
    """

    def watcher(_signal: Signal, old: Any, new: Any) -> None:
        if not old and new:
            action()

    return signal.watch(watcher)
