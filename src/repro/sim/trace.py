"""Trace recording for simulations.

A :class:`TraceRecorder` accumulates ``(time_ps, channel, value)`` samples.
It is the substrate for the simulated power analyzer and for the state
residency counters, and is handy in tests for asserting flow ordering.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple


@dataclass(frozen=True)
class TraceSample:
    """One recorded sample."""

    time_ps: int
    channel: str
    value: Any


class TraceRecorder:
    """Append-only store of timestamped samples, indexed by channel."""

    def __init__(self) -> None:
        self._samples: List[TraceSample] = []
        self._by_channel: Dict[str, List[TraceSample]] = {}

    def record(self, time_ps: int, channel: str, value: Any) -> None:
        """Append a sample.  Timestamps must be monotonically non-decreasing
        within a channel (events at the same time are allowed)."""
        channel_samples = self._by_channel.setdefault(channel, [])
        if channel_samples and time_ps < channel_samples[-1].time_ps:
            raise ValueError(
                f"trace channel {channel!r} went backwards: "
                f"{time_ps} < {channel_samples[-1].time_ps}"
            )
        sample = TraceSample(time_ps, channel, value)
        self._samples.append(sample)
        channel_samples.append(sample)

    # --- queries --------------------------------------------------------

    def channels(self) -> List[str]:
        """Sorted list of channel names seen so far."""
        return sorted(self._by_channel)

    def samples(self, channel: Optional[str] = None) -> List[TraceSample]:
        """All samples, or the samples of one channel, in time order."""
        if channel is None:
            return list(self._samples)
        return list(self._by_channel.get(channel, []))

    def last(self, channel: str) -> Optional[TraceSample]:
        """Most recent sample of ``channel``, or None."""
        channel_samples = self._by_channel.get(channel)
        return channel_samples[-1] if channel_samples else None

    def value_at(self, channel: str, time_ps: int) -> Any:
        """Value of ``channel`` as of ``time_ps`` (step interpolation)."""
        result: Any = None
        for sample in self._by_channel.get(channel, []):
            if sample.time_ps > time_ps:
                break
            result = sample.value
        return result

    def intervals(self, channel: str, end_ps: int) -> Iterator[Tuple[int, int, Any]]:
        """Yield ``(start_ps, stop_ps, value)`` step intervals up to ``end_ps``."""
        channel_samples = self._by_channel.get(channel, [])
        for current, following in zip(channel_samples, channel_samples[1:]):
            stop = min(following.time_ps, end_ps)
            if stop > current.time_ps:
                yield current.time_ps, stop, current.value
        if channel_samples and channel_samples[-1].time_ps < end_ps:
            yield channel_samples[-1].time_ps, end_ps, channel_samples[-1].value

    def dwell_times(self, channel: str, end_ps: int) -> Dict[Any, int]:
        """Total picoseconds spent at each value of ``channel`` up to ``end_ps``."""
        totals: Dict[Any, int] = {}
        for start, stop, value in self.intervals(channel, end_ps):
            totals[value] = totals.get(value, 0) + (stop - start)
        return totals

    def transitions(self, channel: str) -> List[Tuple[int, Any, Any]]:
        """List of ``(time_ps, old_value, new_value)`` changes of ``channel``."""
        channel_samples = self._by_channel.get(channel, [])
        return [
            (after.time_ps, before.value, after.value)
            for before, after in zip(channel_samples, channel_samples[1:])
            if before.value != after.value
        ]

    def ordering(self, channels: Iterable[str]) -> List[str]:
        """Channel names ordered by the time of their first sample.

        Useful for asserting the entry-flow step order in tests.
        """
        firsts = []
        for channel in channels:
            channel_samples = self._by_channel.get(channel)
            if channel_samples:
                firsts.append((channel_samples[0].time_ps, channel_samples[0].channel))
        return [name for _time, name in sorted(firsts)]

    def __len__(self) -> int:
        return len(self._samples)
