"""Trace recording for simulations.

A :class:`TraceRecorder` accumulates ``(time_ps, channel, value)`` samples.
It is the substrate for the simulated power analyzer and for the state
residency counters, and is handy in tests for asserting flow ordering.

Storage is column-oriented: each channel holds two parallel lists
(timestamps and values), so appends are O(1) and never allocate a sample
object, and the point/range queries (:meth:`TraceRecorder.value_at`,
:meth:`TraceRecorder.intervals`) locate their starting index with
``bisect`` on the timestamp column instead of scanning the full channel
history.  :class:`TraceSample` objects are materialized only when a
caller asks for them.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple


@dataclass(frozen=True)
class TraceSample:
    """One recorded sample."""

    time_ps: int
    channel: str
    value: Any


class _Channel:
    """Column storage for one channel: parallel timestamp/value lists."""

    __slots__ = ("name", "times", "values")

    def __init__(self, name: str) -> None:
        self.name = name
        self.times: List[int] = []
        self.values: List[Any] = []


class TraceBlock:
    """A time-rebased bundle of samples captured from a recorder window.

    Entries are ``(channel, offset_ps, value)`` in global append order,
    with timestamps rebased to offsets from a caller-chosen origin, so
    blocks captured at different absolute times compare equal when their
    contents match — the fingerprint substrate of the cycle-compiled
    macro-stepping detector (:mod:`repro.sim.macro`).
    """

    __slots__ = ("entries",)

    def __init__(self, entries: List[Tuple[str, int, Any]]) -> None:
        self.entries = entries

    def __len__(self) -> int:
        return len(self.entries)


class TraceRecorder:
    """Append-only store of timestamped samples, indexed by channel."""

    def __init__(self) -> None:
        self._channels: Dict[str, _Channel] = {}
        #: Global append order as (channel, index-within-channel) pairs.
        self._order: List[Tuple[_Channel, int]] = []

    def record(self, time_ps: int, channel: str, value: Any) -> None:
        """Append a sample.  Timestamps must be monotonically non-decreasing
        within a channel (events at the same time are allowed)."""
        column = self._channels.get(channel)
        if column is None:
            column = self._channels[channel] = _Channel(channel)
        times = column.times
        if times and time_ps < times[-1]:
            raise ValueError(
                f"trace channel {channel!r} went backwards: "
                f"{time_ps} < {times[-1]}"
            )
        self._order.append((column, len(times)))
        times.append(time_ps)
        column.values.append(value)

    def block_since(self, index: int, base_ps: int) -> TraceBlock:
        """Bundle every sample appended at global index >= ``index``.

        Timestamps become offsets from ``base_ps``; entries keep their
        global append order.  Callers snapshot ``len(recorder)`` at one
        boundary and pass it here at the next, so capturing one standby
        cycle is O(samples in the cycle), not O(recorder history).
        """
        entries = [
            (column.name, column.times[i] - base_ps, column.values[i])
            for column, i in self._order[index:]
        ]
        return TraceBlock(entries)

    # --- queries --------------------------------------------------------

    def channels(self) -> List[str]:
        """Sorted list of channel names seen so far."""
        return sorted(self._channels)

    def samples(self, channel: Optional[str] = None) -> List[TraceSample]:
        """All samples, or the samples of one channel, in time order."""
        if channel is None:
            return [
                TraceSample(column.times[index], column.name, column.values[index])
                for column, index in self._order
            ]
        column = self._channels.get(channel)
        if column is None:
            return []
        return [
            TraceSample(time_ps, column.name, value)
            for time_ps, value in zip(column.times, column.values)
        ]

    def last(self, channel: str) -> Optional[TraceSample]:
        """Most recent sample of ``channel``, or None."""
        column = self._channels.get(channel)
        if column is None or not column.times:
            return None
        return TraceSample(column.times[-1], column.name, column.values[-1])

    def value_at(self, channel: str, time_ps: int) -> Any:
        """Value of ``channel`` as of ``time_ps`` (step interpolation)."""
        column = self._channels.get(channel)
        if column is None:
            return None
        index = bisect_right(column.times, time_ps)
        if index == 0:
            return None
        return column.values[index - 1]

    def intervals(
        self, channel: str, end_ps: int, start_ps: Optional[int] = None
    ) -> Iterator[Tuple[int, int, Any]]:
        """Yield ``(start_ps, stop_ps, value)`` step intervals up to ``end_ps``.

        ``start_ps`` is an optional lower bound: intervals ending at or
        before it are skipped (located by bisection, not a scan).  The
        first yielded interval may still begin before ``start_ps``; callers
        that need exact clipping clip it themselves.
        """
        column = self._channels.get(channel)
        if column is None:
            return
        times, values = column.times, column.values
        count = len(times)
        first = 0
        if start_ps is not None:
            first = bisect_right(times, start_ps) - 1
            if first < 0:
                first = 0
        # Pairs of consecutive samples; stop once times reach end_ps.
        stop_index = bisect_left(times, end_ps, first)
        for index in range(first, min(stop_index, count - 1)):
            lo = times[index]
            stop = min(times[index + 1], end_ps)
            if stop > lo:
                yield lo, stop, values[index]
        if count and times[-1] < end_ps:
            yield times[-1], end_ps, values[-1]

    def dwell_times(self, channel: str, end_ps: int) -> Dict[Any, int]:
        """Total picoseconds spent at each value of ``channel`` up to ``end_ps``."""
        totals: Dict[Any, int] = {}
        for start, stop, value in self.intervals(channel, end_ps):
            totals[value] = totals.get(value, 0) + (stop - start)
        return totals

    def transitions(self, channel: str) -> List[Tuple[int, Any, Any]]:
        """List of ``(time_ps, old_value, new_value)`` changes of ``channel``."""
        column = self._channels.get(channel)
        if column is None:
            return []
        times, values = column.times, column.values
        return [
            (times[index], values[index - 1], values[index])
            for index in range(1, len(times))
            if values[index - 1] != values[index]
        ]

    def ordering(self, channels: Iterable[str]) -> List[str]:
        """Channel names ordered by the time of their first sample.

        Useful for asserting the entry-flow step order in tests.
        """
        firsts = []
        for channel in channels:
            column = self._channels.get(channel)
            if column is not None and column.times:
                firsts.append((column.times[0], column.name))
        return [name for _time, name in sorted(firsts)]

    def __len__(self) -> int:
        return len(self._order)
