"""Platform configuration and calibration constants.

Every absolute power/latency constant of the model lives here, with the
paper-sourced value it was calibrated against.  The shape of the results
(who wins, by what factor, where break-evens fall) comes from the model
structure; these constants pin the absolute scale to the paper's
measurements:

* platform DRIPS power ~60 mW at 30 C with 8 GB DDR3L-1600 (Fig. 1(b));
* processor share of DRIPS power 18 %, with wake-up hardware ~5 %
  (1 % on-die timer/monitor + 4 % crystal), AON IOs 7 %, S/R SRAMs 9 %
  (Fig. 1(b) and the Sec. 8 decomposition);
* power-delivery efficiency 74 % in DRIPS (Sec. 8 footnote 5);
* C0 display-off power ~3 W; idle interval ~30 s; maintenance bursts
  100-300 ms; entry ~200 us; exit ~300 us (Sec. 7);
* context save ~18 us / restore ~13 us for ~200 KB over DDR3-1600
  (Sec. 6.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.errors import ConfigError
from repro.units import GIB, KIB, MHZ, MILLIWATT


# ---------------------------------------------------------------------------
# process technology
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ProcessNode:
    """A fabrication process node with first-order scaling attributes.

    ``capacitance_scale``, ``voltage_scale`` and ``leakage_scale`` are
    relative to the 22 nm baseline and feed the Haswell-to-Skylake power
    scaling of Sec. 7 (methodology of Stillmaker & Baas [79]).
    """

    name: str
    feature_nm: int
    capacitance_scale: float
    voltage_scale: float
    leakage_scale: float


PROCESS_22NM = ProcessNode("22nm", 22, 1.0, 1.0, 1.0)
PROCESS_14NM = ProcessNode("14nm", 14, 0.72, 0.93, 0.82)


# ---------------------------------------------------------------------------
# DRIPS power budget
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DRIPSPowerBudget:
    """Battery-side component slices of platform DRIPS power, in watts.

    The slices reproduce Fig. 1(b): with ``total ~= 60 mW``, the
    processor-side slices sum to ~18 %, the wake-up hardware (on-die
    monitor + 24 MHz crystal) to ~5 %, AON IOs to 7 %, and S/R SRAMs to
    9 %.  Nominal (silicon-side) powers are derived by multiplying by the
    DRIPS power-delivery efficiency where the component sits behind a
    regulator.
    """

    # --- processor slices (18 % of 60 mW total) ---
    timer_wakeup_monitor_w: float = 0.72e-3      # 1.2 %: timer toggle + wake monitor
    aon_io_bank_w: float = 4.20e-3               # 7.0 %: AON IO pads + clock buffers
    sr_sram_w: float = 5.40e-3                   # 9.0 %: SA + cores/GFX S/R SRAMs
    pmu_ungated_w: float = 0.42e-3               # 0.7 %: un-gated PMU slice
    pmu_deep_gated_w: float = 0.12e-3            # PMU residue with the ODRIPS
    #   deep gate closed (chipset owns wake events, Fig. 3(a)).
    cke_drive_w: float = 0.18e-3                 # 0.3 %: CKE self-refresh drive

    # --- board clock sources ---
    fast_xtal_w: float = 2.40e-3                 # 4.0 %: 24 MHz crystal oscillator
    slow_xtal_w: float = 0.06e-3                 # 0.1 %: 32.768 kHz RTC crystal

    # --- chipset ---
    chipset_aon_w: float = 14.60e-3              # 24.3 %: chipset AON domains
    chipset_proc_link_w: float = 1.00e-3         # 1.7 %: chipset side of the
    #   processor-facing links (PML endpoint, clock drivers); idles once the
    #   processor IO bank is gated in ODRIPS.
    chipset_wake_monitor_w: float = 1.38e-3      # 2.3 %: 24 MHz wake monitoring
    chipset_wake_monitor_slow_w: float = 0.07e-3  # same monitor toggled at
    #   32.768 kHz in ODRIPS (~730x less switched capacitance per second).
    chipset_dual_timer_w: float = 0.0006e-3      # <0.001 % of chipset (Sec. 4.2)

    # --- memory & rest of board ---
    dram_self_refresh_w: float = 10.92e-3        # 18.2 %: 8 GiB DDR3L self-refresh
    board_other_w: float = 17.62e-3              # 29.4 %: SSD standby, sensors,
    #   battery electronics and the remaining board draws; sized so the
    #   platform total lands on the measured ~60 mW.

    # --- delivery ---
    sram_retention_vr_quiescent_w: float = 0.60e-3  # dedicated retention-rail VR
    aon_vr_quiescent_w: float = 0.50e-3          # processor AON-rail VR quiescent;
    #   turns off only when all three techniques strip the rail down to the
    #   Boot SRAM (the "power delivery" slice of the 22 % in Sec. 8).

    def processor_total_w(self) -> float:
        """Processor-side DRIPS draw (should be ~18 % of the platform)."""
        return (
            self.timer_wakeup_monitor_w
            + self.aon_io_bank_w
            + self.sr_sram_w
            + self.pmu_ungated_w
            + self.cke_drive_w
        )

    def platform_total_w(self) -> float:
        """Battery-side platform DRIPS power (~60 mW)."""
        return (
            self.processor_total_w()
            + self.fast_xtal_w
            + self.slow_xtal_w
            + self.chipset_aon_w
            + self.chipset_proc_link_w
            + self.chipset_wake_monitor_w
            + self.chipset_dual_timer_w
            + self.dram_self_refresh_w
            + self.board_other_w
            + self.sram_retention_vr_quiescent_w
            + self.aon_vr_quiescent_w
        )


# ---------------------------------------------------------------------------
# active-state power model
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ActivePowerModel:
    """C0 (display-off) power model: ``P = uncore + C * V(f)^2 * f``.

    Calibrated so that P(0.8 GHz) ~= 3 W (Sec. 7) and the frequency sweep
    of Fig. 6(b) reproduces: a small saving at 1.0 GHz (voltage rides the
    Vmin floor, so energy-per-cycle is flat while static energy shrinks)
    and a small loss at 1.5 GHz (voltage must rise).
    """

    uncore_watts: float = 0.70                 # SA + fabric + misc while active
    dram_active_watts_at_1600: float = 0.30    # DRAM active slice (Fig. 6(c) lever)
    dynamic_cv2f_coeff: float = 5.10           # effective C in W / (V^2 * GHz)
    vmin_volts: float = 0.70                   # voltage floor
    vmin_ceiling_ghz: float = 1.00             # highest frequency at Vmin
    volts_per_ghz_above_vmin: float = 0.20     # V/f slope above the floor

    def voltage(self, freq_ghz: float) -> float:
        """Operating voltage at ``freq_ghz``."""
        if freq_ghz <= 0:
            raise ConfigError(f"frequency must be positive: {freq_ghz}")
        if freq_ghz <= self.vmin_ceiling_ghz:
            return self.vmin_volts
        return self.vmin_volts + (freq_ghz - self.vmin_ceiling_ghz) * self.volts_per_ghz_above_vmin

    def core_dynamic_watts(self, freq_ghz: float) -> float:
        """Compute-domain dynamic power at ``freq_ghz``."""
        volts = self.voltage(freq_ghz)
        return self.dynamic_cv2f_coeff * volts * volts * freq_ghz

    def dram_active_watts(self, dram_rate_hz: float) -> float:
        """DRAM active power, interface share scaling with frequency."""
        scale = 0.4 + 0.6 * (dram_rate_hz / 1.6e9)
        return self.dram_active_watts_at_1600 * scale

    def total_watts(self, freq_ghz: float, dram_rate_hz: float = 1.6e9) -> float:
        """Full-platform C0 power, display off."""
        return (
            self.uncore_watts
            + self.core_dynamic_watts(freq_ghz)
            + self.dram_active_watts(dram_rate_hz)
        )


# ---------------------------------------------------------------------------
# transition (entry/exit) model
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TransitionModel:
    """Latency and power of the DRIPS entry/exit flows.

    Baseline numbers come from Sec. 7 (entry ~200 us, exit ~300 us).  The
    per-technique extra steps are (duration, power) pairs whose energies
    were calibrated so the simulated break-even residencies land on the
    measured values of Fig. 6(a): 6.6 / 6.3 / 7.4 / 6.5 ms for
    WAKE-UP-OFF / AON-IO-GATE / CTX-SGX-DRAM / ODRIPS.  Durations that the
    mechanics determine (32 kHz edge waits, MEE bulk-transfer latency) are
    taken from the simulation; only the step power levels are calibration
    constants.
    """

    # Baseline DRIPS flow
    entry_latency_ps: int = 200_000_000        # 200 us
    exit_latency_ps: int = 300_000_000         # 300 us
    entry_power_watts: float = 0.90            # avg power during entry flow
    exit_power_watts: float = 1.20             # avg power during exit flow (VR ramp)

    # Technique 1 (WAKE-UP-OFF): timer migration.  Entry waits for a
    # 32 kHz rising edge (0..30.5 us, mean ~15.3 us) with the platform
    # almost fully quiesced (near-DRIPS power, so the phase-dependent
    # wait length barely moves the energy); exit re-enables the fast
    # crystal (fast restart: the oscillator stays biased) and restores
    # the timer over the PML during the VR ramp.
    timer_migration_entry_power_w: float = 0.15
    xtal_fast_restart_ps: int = 20_000_000     # 20 us biased-crystal restart
    timer_restore_exit_ps: int = 22_000_000    # 22 us PML copy back + reload
    timer_restore_exit_power_w: float = 1.20

    # Technique 2 (AON-IO-GATE): IO handoff to the chipset + FET switch.
    io_handoff_entry_ps: int = 12_000_000      # 12 us quiesce + handoff + FET open
    io_handoff_entry_power_w: float = 0.90
    io_restore_exit_ps: int = 21_000_000       # 21 us FET close + IO re-init
    io_restore_exit_power_w: float = 1.20

    # Technique 3 (CTX-SGX-DRAM): context flush/restore through the MEE.
    # Durations come from the MEE bulk-transfer model (~18 us / ~13 us at
    # DDR3-1600 for ~200 KB, Sec. 6.3) and stretch when DRAM slows down.
    ctx_save_power_w: float = 1.40
    ctx_restore_power_w: float = 1.10
    boot_fsm_restore_ps: int = 2_000_000       # 2 us Boot FSM (PMU+MC+MEE)


# ---------------------------------------------------------------------------
# context inventory
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ContextInventory:
    """Sizes of the processor context saved in DRIPS (Sec. 6: "at most
    200 KB", of which ~1 KB / 0.5 % must stay on-chip in the Boot SRAM)."""

    system_agent_bytes: int = 64 * KIB
    cores_bytes: int = 96 * KIB
    graphics_bytes: int = 40 * KIB
    boot_bytes: int = 1 * KIB

    @property
    def total_bytes(self) -> int:
        return self.system_agent_bytes + self.cores_bytes + self.graphics_bytes

    @property
    def offloadable_bytes(self) -> int:
        """Context that can leave the chip (everything but the boot blob)."""
        return self.total_bytes


# ---------------------------------------------------------------------------
# full platform configurations (Table 1)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PlatformConfig:
    """One row of Table 1 plus every derived calibration block."""

    name: str
    processor: str
    chipset: str
    process: ProcessNode
    tdp_watts: float = 15.0
    min_core_ghz: float = 0.8
    max_core_ghz: float = 2.4
    llc_bytes: int = 3 * 1024 * KIB
    dram_capacity_bytes: int = 8 * GIB
    dram_rate_hz: float = 1.6e9
    dram_channels: int = 2
    fast_xtal_hz: float = 24.0 * MHZ
    slow_xtal_hz: float = 32768.0
    fast_xtal_ppm: float = 10.0
    slow_xtal_ppm: float = -5.0
    drips_efficiency: float = 0.74             # power delivery in DRIPS (Sec. 8)
    active_efficiency: float = 0.87            # power delivery near the design point
    budget: DRIPSPowerBudget = field(default_factory=DRIPSPowerBudget)
    active_model: ActivePowerModel = field(default_factory=ActivePowerModel)
    transitions: TransitionModel = field(default_factory=TransitionModel)
    context: ContextInventory = field(default_factory=ContextInventory)
    sgx_region_bytes: int = 64 * 1024 * KIB    # 64 MB protected capacity (Sec. 6.3)
    timer_precision_ppb: float = 1.0

    def __post_init__(self) -> None:
        if not 0 < self.drips_efficiency <= 1:
            raise ConfigError(f"{self.name}: bad DRIPS efficiency")
        if not 0 < self.active_efficiency <= 1:
            raise ConfigError(f"{self.name}: bad active efficiency")
        if self.min_core_ghz <= 0 or self.max_core_ghz < self.min_core_ghz:
            raise ConfigError(f"{self.name}: bad core frequency range")


def skylake_config() -> PlatformConfig:
    """The target system of Table 1: i5-6300U + Sunrise Point-LP."""
    return PlatformConfig(
        name="skylake-mobile",
        processor="Intel i5-6300U (Skylake, 14nm)",
        chipset="Sunrise Point-LP",
        process=PROCESS_14NM,
    )


def haswell_config() -> PlatformConfig:
    """The measurement baseline of Table 1: i5-4300U + Lynx Point-LP.

    Component powers are the Skylake budget scaled *back* to 22 nm, since
    the paper measured Haswell and scaled forward; the round trip is what
    :mod:`repro.analysis.scaling` validates.
    """
    skylake = skylake_config()
    inverse = 1.0 / PROCESS_14NM.leakage_scale
    budget = DRIPSPowerBudget(
        timer_wakeup_monitor_w=skylake.budget.timer_wakeup_monitor_w * inverse,
        aon_io_bank_w=skylake.budget.aon_io_bank_w * inverse,
        sr_sram_w=skylake.budget.sr_sram_w * inverse,
        pmu_ungated_w=skylake.budget.pmu_ungated_w * inverse,
        cke_drive_w=skylake.budget.cke_drive_w,
        fast_xtal_w=skylake.budget.fast_xtal_w,
        slow_xtal_w=skylake.budget.slow_xtal_w,
        chipset_aon_w=skylake.budget.chipset_aon_w * inverse,
        chipset_proc_link_w=skylake.budget.chipset_proc_link_w * inverse,
        chipset_wake_monitor_w=skylake.budget.chipset_wake_monitor_w * inverse,
        chipset_dual_timer_w=skylake.budget.chipset_dual_timer_w,
        dram_self_refresh_w=skylake.budget.dram_self_refresh_w,
        board_other_w=skylake.budget.board_other_w,
        sram_retention_vr_quiescent_w=skylake.budget.sram_retention_vr_quiescent_w,
        aon_vr_quiescent_w=skylake.budget.aon_vr_quiescent_w,
    )
    return PlatformConfig(
        name="haswell-ult",
        processor="Intel i5-4300U (Haswell, 22nm)",
        chipset="Lynx Point-LP",
        process=PROCESS_22NM,
        budget=budget,
        transitions=TransitionModel(
            entry_latency_ps=250_000_000,
            exit_latency_ps=3_000_000_000,  # Haswell C10 exit ~3 ms (Sec. 3)
        ),
    )


# ---------------------------------------------------------------------------
# workload defaults (Sec. 7 "Workloads")
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class StandbyWorkloadConfig:
    """Connected-standby phasing measured on the baseline platform:
    ~30 s idle, 100-300 ms of kernel maintenance, 99.5 % DRIPS residency."""

    idle_interval_s: float = 30.0
    maintenance_min_s: float = 0.100
    maintenance_max_s: float = 0.300
    maintenance_mean_s: float = 0.145
    external_wake_rate_per_hour: float = 4.0
    seed: int = 2020


def table1_rows() -> Dict[str, Tuple[str, str]]:
    """Table 1 as printable rows (used by the table bench)."""
    baseline = haswell_config()
    target = skylake_config()
    return {
        "Processor (baseline)": (baseline.processor, f"{baseline.process.feature_nm} nm"),
        "Processor (target)": (target.processor, f"{target.process.feature_nm} nm"),
        "Frequencies": (f"{target.min_core_ghz}-{target.max_core_ghz} GHz", ""),
        "L3 cache (LLC)": (f"{target.llc_bytes // (1024 * KIB)} MB", ""),
        "TDP": (f"{target.tdp_watts:.0f} W", ""),
        "Chipset (baseline)": (baseline.chipset, ""),
        "Chipset (target)": (target.chipset, ""),
        "Memory": (
            f"DDR3L-{target.dram_rate_hz / 1e6:.0f}, non-ECC, "
            f"{target.dram_channels}-channel, {target.dram_capacity_bytes // GIB} GB",
            "",
        ),
    }
