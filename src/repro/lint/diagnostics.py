"""Shared diagnostics framework for the static model/source checkers.

Every lint pass — the model verifier (:mod:`repro.lint.model`) and the
AST source checker (:mod:`repro.lint.source`) — reports findings as
:class:`Diagnostic` values: a stable rule id, a severity, a location
(either ``file:line`` for source findings or a model-object path for
model findings), a message, and an optional fix hint.  This module also
owns the two renderers (human text and JSON) and the rule
selection/ignoring logic shared by the CLI and the test gate.

The JSON output is a stable schema (``JSON_SCHEMA_VERSION``) so CI
tooling can parse it::

    {
      "version": 1,
      "counts": {"error": 2, "warning": 0},
      "diagnostics": [
        {
          "rule": "M106",
          "name": "undriveable-gate",
          "severity": "error",
          "message": "...",
          "location": {"file": null, "line": null, "object": "gate board.aon-io-fet"},
          "hint": "..."
        }
      ]
    }
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.errors import ConfigError

#: Version of the ``--json`` output schema; bump on incompatible changes.
JSON_SCHEMA_VERSION = 1

#: Process exit codes of ``python -m repro lint``.
EXIT_CLEAN = 0
EXIT_DIAGNOSTICS = 1
EXIT_USAGE = 2


class Severity(enum.Enum):
    """How bad a finding is.  Errors and warnings both fail the gate."""

    WARNING = "warning"
    ERROR = "error"


@dataclass(frozen=True)
class Location:
    """Where a diagnostic points.

    Source findings carry ``file`` and ``line``; model findings carry
    ``obj``, a human-readable path into the platform model (for example
    ``"rail compute / domain proc.compute"``).
    """

    file: Optional[str] = None
    line: Optional[int] = None
    obj: Optional[str] = None

    def render(self) -> str:
        if self.file is not None:
            if self.line is not None:
                return f"{self.file}:{self.line}"
            return self.file
        return self.obj if self.obj is not None else "<unknown>"


@dataclass(frozen=True)
class Diagnostic:
    """One finding of a lint rule."""

    rule: str
    name: str
    severity: Severity
    message: str
    location: Location
    hint: Optional[str] = None

    def render(self) -> str:
        """One human-readable line (plus an indented hint, if any)."""
        text = f"{self.location.render()}: {self.severity.value} {self.rule} ({self.name}): {self.message}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text

    def to_json(self) -> dict:
        return {
            "rule": self.rule,
            "name": self.name,
            "severity": self.severity.value,
            "message": self.message,
            "location": {
                "file": self.location.file,
                "line": self.location.line,
                "object": self.location.obj,
            },
            "hint": self.hint,
        }


def _sort_key(diag: Diagnostic) -> Tuple[str, int, str, str]:
    return (
        diag.location.file or diag.location.obj or "",
        diag.location.line or 0,
        diag.rule,
        diag.message,
    )


def sort_diagnostics(diagnostics: Iterable[Diagnostic]) -> List[Diagnostic]:
    """Deterministic order: by location, then rule id, then message."""
    return sorted(diagnostics, key=_sort_key)


def dedupe_diagnostics(diagnostics: Iterable[Diagnostic]) -> List[Diagnostic]:
    """Drop exact repeats (the CLI lints several platform variants)."""
    seen = set()
    unique: List[Diagnostic] = []
    for diag in diagnostics:
        key = (diag.rule, diag.message, diag.location)
        if key not in seen:
            seen.add(key)
            unique.append(diag)
    return unique


# --- rule selection ----------------------------------------------------------


def _matches(diag: Diagnostic, patterns: Sequence[str]) -> bool:
    """A pattern matches on rule-id prefix (``M1``, ``S403``) or rule name."""
    for pattern in patterns:
        if diag.rule.startswith(pattern) or diag.name == pattern:
            return True
    return False


def validate_rule_patterns(patterns: Sequence[str], known_rules: Sequence[Tuple[str, str]]) -> None:
    """Reject selection patterns that can never match a known rule.

    ``known_rules`` is a sequence of ``(rule_id, rule_name)`` pairs.
    Raises :class:`~repro.errors.ConfigError` on unknown patterns so the
    CLI can exit with a usage error instead of silently selecting nothing.
    Every unknown pattern is reported in one error — a user fixing a
    typoed ``--select M31,Z999`` list should see all the bad tokens at
    once, not one per invocation.
    """
    unknown = [
        pattern
        for pattern in patterns
        if not any(
            rule_id.startswith(pattern) or name == pattern for rule_id, name in known_rules
        )
    ]
    if len(unknown) == 1:
        raise ConfigError(f"unknown lint rule or prefix: {unknown[0]!r}")
    if unknown:
        listing = ", ".join(repr(pattern) for pattern in unknown)
        raise ConfigError(f"unknown lint rules or prefixes: {listing}")


def filter_diagnostics(
    diagnostics: Iterable[Diagnostic],
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
) -> List[Diagnostic]:
    """Keep diagnostics matching ``select`` (all if None) minus ``ignore``."""
    kept = list(diagnostics)
    if select:
        kept = [diag for diag in kept if _matches(diag, select)]
    if ignore:
        kept = [diag for diag in kept if not _matches(diag, ignore)]
    return kept


# --- renderers ---------------------------------------------------------------


def count_by_severity(diagnostics: Sequence[Diagnostic]) -> dict:
    counts = {severity.value: 0 for severity in Severity}
    for diag in diagnostics:
        counts[diag.severity.value] += 1
    return counts


def render_text(diagnostics: Sequence[Diagnostic]) -> str:
    """Human-readable report: one line per finding plus a summary."""
    ordered = sort_diagnostics(diagnostics)
    lines = [diag.render() for diag in ordered]
    counts = count_by_severity(ordered)
    if ordered:
        lines.append(
            f"found {len(ordered)} problem(s) "
            f"({counts['error']} error(s), {counts['warning']} warning(s))"
        )
    else:
        lines.append("no problems found")
    return "\n".join(lines)


def render_json(diagnostics: Sequence[Diagnostic]) -> str:
    """Machine-readable report (schema version ``JSON_SCHEMA_VERSION``)."""
    ordered = sort_diagnostics(diagnostics)
    payload = {
        "version": JSON_SCHEMA_VERSION,
        "counts": count_by_severity(ordered),
        "diagnostics": [diag.to_json() for diag in ordered],
    }
    return json.dumps(payload, indent=2, sort_keys=False)


def exit_code(diagnostics: Sequence[Diagnostic]) -> int:
    """CI exit code: non-zero whenever any diagnostic survived filtering."""
    return EXIT_DIAGNOSTICS if diagnostics else EXIT_CLEAN
