"""AST-based unit-discipline checker over the ``repro`` sources.

Parses each Python file with the stdlib :mod:`ast` module and runs the
``S4xx`` rule catalog of :mod:`repro.lint.rules_source` over it.  No code
is imported or executed; the checker is safe to run on broken trees and
reports syntax errors as diagnostics instead of raising.

A finding can be suppressed at its line with an explicit pragma naming
the rule::

    t0 = time.perf_counter()  # lint: allow(S401) host-phase profiler

The pragma is deliberately per-line and per-rule: a file cannot opt out
of a rule wholesale, and an unrelated finding on the same line still
fires.  The canonical use is host-side instrumentation (the
:mod:`repro.obs.profile` phase profiler, the :mod:`repro.obs.runlog`
flight recorder), which measures *host* wall time by design — exactly
what S401 exists to keep out of simulation code.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterable, List, Optional, Set

from repro.lint.astcache import (  # noqa: F401  (re-exported legacy names)
    ModuleCache,
    ParsedModule,
    PathLike,
    default_source_root,
    iter_python_files,
)
from repro.lint.diagnostics import Diagnostic, Location, Severity, sort_diagnostics

#: Identity of the pragma-hygiene rule (registered alongside S401-S406).
S407_RULE = "S407"
S407_NAME = "unknown-pragma-rule"


def _syntax_diagnostic(filename: str, error: SyntaxError) -> Diagnostic:
    return Diagnostic(
        rule="S400",
        name="syntax-error",
        severity=Severity.ERROR,
        message=f"cannot parse: {error.msg}",
        location=Location(file=filename, line=error.lineno or 1),
        hint=None,
    )


#: ``# lint: allow(S401)`` / ``# lint: allow(S401, S403)`` pragma.
_ALLOW_PRAGMA = re.compile(r"#\s*lint:\s*allow\(([A-Za-z0-9_,\s-]+)\)")


def _allow_pragmas(source: str) -> Dict[int, Set[str]]:
    """Per-line rule-id suppressions declared with the allow pragma."""
    allows: Dict[int, Set[str]] = {}
    for line_no, line in enumerate(source.splitlines(), start=1):
        match = _ALLOW_PRAGMA.search(line)
        if match is not None:
            allows[line_no] = {
                token.strip() for token in match.group(1).split(",") if token.strip()
            }
    return allows


def _expand_over_statements(
    tree: ast.AST, allows: Dict[int, Set[str]]
) -> Dict[int, Set[str]]:
    """Spread pragmas across the physical lines of multi-line statements.

    A pragma on a continuation line of a simple statement (a wrapped
    call, a parenthesized assignment) suppresses findings anywhere in
    that statement — rules report at the statement or sub-expression
    line, which need not be the line carrying the comment.  Compound
    statements (defs, loops, ``if``) do **not** spread a body pragma:
    a pragma inside a function body must never blanket the whole
    function.  A ``def``/``class`` *header* does spread, though — the
    decorator lines, the signature lines and the ``def`` line are one
    span, so a pragma on a decorated ``def`` covers findings reported
    at its decorators (and vice versa) without touching the body.
    """
    expanded = {line: set(rules) for line, rules in allows.items()}
    if not allows:
        return expanded

    def spread(first_line: int, last_line: int) -> None:
        span_rules: Set[str] = set()
        for line in range(first_line, last_line + 1):
            span_rules |= allows.get(line, set())
        if span_rules:
            for line in range(first_line, last_line + 1):
                expanded.setdefault(line, set()).update(span_rules)

    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            start = min(
                [node.lineno] + [dec.lineno for dec in node.decorator_list]
            )
            spread(start, node.body[0].lineno - 1)
            continue
        if not isinstance(node, ast.stmt) or hasattr(node, "body"):
            continue
        end = getattr(node, "end_lineno", None) or node.lineno
        if end == node.lineno:
            continue
        spread(node.lineno, end)
    return expanded


def allow_map_for(source: str, tree: ast.AST) -> Dict[int, Set[str]]:
    """The effective line -> allowed-rule-ids map for one parsed module.

    Shared by the source checker and the unit-dataflow pass of
    :mod:`repro.check.dataflow`, so ``repro lint`` and ``repro check``
    honor exactly the same pragma.
    """
    return _expand_over_statements(tree, _allow_pragmas(source))


def _known_rule_ids() -> Set[str]:
    from repro.lint import all_rules

    return {rule_id for rule_id, _name in all_rules()}


def _unknown_pragma_diagnostics(
    allows: Dict[int, Set[str]], filename: str
) -> List[Diagnostic]:
    """S407: a pragma naming a rule id that exists in no catalog.

    A typoed id silently disables nothing — the finding it meant to
    suppress still fires — so the bad pragma itself is reported.
    """
    known = _known_rule_ids()
    diagnostics = []
    for line_no in sorted(allows):
        for rule_id in sorted(allows[line_no] - known):
            diagnostics.append(
                Diagnostic(
                    rule=S407_RULE,
                    name=S407_NAME,
                    severity=Severity.WARNING,
                    message=f"allow pragma names unknown rule {rule_id!r}",
                    location=Location(file=filename, line=line_no),
                    hint="see docs/LINT.md and docs/CHECK.md for the rule catalogs",
                )
            )
    return diagnostics


def _suppressed(diag: Diagnostic, allows: Dict[int, Set[str]]) -> bool:
    line = diag.location.line
    return line is not None and diag.rule in allows.get(line, ())


def lint_module(module: ParsedModule) -> List[Diagnostic]:
    """Run every source rule over one already-parsed module.

    Findings on lines carrying a matching ``# lint: allow(<rule-id>)``
    pragma are suppressed; the pragma names exact rule ids, never
    prefixes.  Passing the same :class:`ParsedModule` the interprocedural
    check passes consume means the file is parsed once for all of them.
    """
    from repro.lint.rules_source import SOURCE_RULES

    if module.tree is None:
        assert module.syntax_error is not None
        return [_syntax_diagnostic(module.filename, module.syntax_error)]
    allows = module.allows
    diagnostics: List[Diagnostic] = []
    for rule in SOURCE_RULES:
        diagnostics.extend(
            diag
            for diag in rule.check(module.tree, module.filename)
            if not _suppressed(diag, allows)
        )
    diagnostics.extend(
        diag
        for diag in _unknown_pragma_diagnostics(
            _allow_pragmas(module.source), module.filename
        )
        if not _suppressed(diag, allows)
    )
    return sort_diagnostics(diagnostics)


def lint_source_text(source: str, filename: str = "<string>") -> List[Diagnostic]:
    """Run every source rule over one module's text."""
    return lint_module(ModuleCache().module_for_source(source, filename))


def lint_file(path: PathLike, cache: Optional[ModuleCache] = None) -> List[Diagnostic]:
    """Lint one Python file (parsed through ``cache`` when given)."""
    if cache is None:
        cache = ModuleCache()
    return lint_module(cache.module_for_path(path))


def lint_paths(
    paths: Iterable[PathLike], cache: Optional[ModuleCache] = None
) -> List[Diagnostic]:
    """Lint every Python file under ``paths`` (files or directories).

    ``cache`` shares parsed trees with other passes of the same
    invocation (the CLI passes one :class:`ModuleCache` to the source
    rules, the unit dataflow and the effect analysis).
    """
    if cache is None:
        cache = ModuleCache()
    diagnostics: List[Diagnostic] = []
    for module in cache.modules_for_paths(paths):
        diagnostics.extend(lint_module(module))
    return sort_diagnostics(diagnostics)
