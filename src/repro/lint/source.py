"""AST-based unit-discipline checker over the ``repro`` sources.

Parses each Python file with the stdlib :mod:`ast` module and runs the
``S4xx`` rule catalog of :mod:`repro.lint.rules_source` over it.  No code
is imported or executed; the checker is safe to run on broken trees and
reports syntax errors as diagnostics instead of raising.

A finding can be suppressed at its line with an explicit pragma naming
the rule::

    t0 = time.perf_counter()  # lint: allow(S401) host-phase profiler

The pragma is deliberately per-line and per-rule: a file cannot opt out
of a rule wholesale, and an unrelated finding on the same line still
fires.  The canonical use is host-side instrumentation (the
:mod:`repro.obs.profile` phase profiler, the :mod:`repro.obs.runlog`
flight recorder), which measures *host* wall time by design — exactly
what S401 exists to keep out of simulation code.
"""

from __future__ import annotations

import ast
import os
import re
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Set, Union

from repro.lint.diagnostics import Diagnostic, Location, Severity, sort_diagnostics

PathLike = Union[str, os.PathLike]


def default_source_root() -> Path:
    """The installed ``repro`` package directory (what the CLI lints)."""
    import repro

    return Path(repro.__file__).resolve().parent


def iter_python_files(paths: Iterable[PathLike]) -> Iterator[Path]:
    """Expand files/directories into a sorted stream of ``*.py`` files."""
    for entry in paths:
        path = Path(entry)
        if path.is_dir():
            yield from sorted(
                candidate
                for candidate in path.rglob("*.py")
                if "__pycache__" not in candidate.parts
            )
        else:
            yield path


def _syntax_diagnostic(filename: str, error: SyntaxError) -> Diagnostic:
    return Diagnostic(
        rule="S400",
        name="syntax-error",
        severity=Severity.ERROR,
        message=f"cannot parse: {error.msg}",
        location=Location(file=filename, line=error.lineno or 1),
        hint=None,
    )


#: ``# lint: allow(S401)`` / ``# lint: allow(S401, S403)`` pragma.
_ALLOW_PRAGMA = re.compile(r"#\s*lint:\s*allow\(([A-Za-z0-9_,\s-]+)\)")


def _allow_pragmas(source: str) -> Dict[int, Set[str]]:
    """Per-line rule-id suppressions declared with the allow pragma."""
    allows: Dict[int, Set[str]] = {}
    for line_no, line in enumerate(source.splitlines(), start=1):
        match = _ALLOW_PRAGMA.search(line)
        if match is not None:
            allows[line_no] = {
                token.strip() for token in match.group(1).split(",") if token.strip()
            }
    return allows


def _suppressed(diag: Diagnostic, allows: Dict[int, Set[str]]) -> bool:
    line = diag.location.line
    return line is not None and diag.rule in allows.get(line, ())


def lint_source_text(source: str, filename: str = "<string>") -> List[Diagnostic]:
    """Run every source rule over one module's text.

    Findings on lines carrying a matching ``# lint: allow(<rule-id>)``
    pragma are suppressed; the pragma names exact rule ids, never
    prefixes.
    """
    from repro.lint.rules_source import SOURCE_RULES

    try:
        tree = ast.parse(source, filename=filename)
    except SyntaxError as error:
        return [_syntax_diagnostic(filename, error)]
    allows = _allow_pragmas(source)
    diagnostics: List[Diagnostic] = []
    for rule in SOURCE_RULES:
        diagnostics.extend(
            diag for diag in rule.check(tree, filename) if not _suppressed(diag, allows)
        )
    return sort_diagnostics(diagnostics)


def lint_file(path: PathLike) -> List[Diagnostic]:
    """Lint one Python file."""
    file_path = Path(path)
    return lint_source_text(
        file_path.read_text(encoding="utf-8"), filename=str(file_path)
    )


def lint_paths(paths: Iterable[PathLike]) -> List[Diagnostic]:
    """Lint every Python file under ``paths`` (files or directories)."""
    diagnostics: List[Diagnostic] = []
    for file_path in iter_python_files(paths):
        diagnostics.extend(lint_file(file_path))
    return sort_diagnostics(diagnostics)
