"""AST-based unit-discipline checker over the ``repro`` sources.

Parses each Python file with the stdlib :mod:`ast` module and runs the
``S4xx`` rule catalog of :mod:`repro.lint.rules_source` over it.  No code
is imported or executed; the checker is safe to run on broken trees and
reports syntax errors as diagnostics instead of raising.
"""

from __future__ import annotations

import ast
import os
from pathlib import Path
from typing import Iterable, Iterator, List, Union

from repro.lint.diagnostics import Diagnostic, Location, Severity, sort_diagnostics

PathLike = Union[str, os.PathLike]


def default_source_root() -> Path:
    """The installed ``repro`` package directory (what the CLI lints)."""
    import repro

    return Path(repro.__file__).resolve().parent


def iter_python_files(paths: Iterable[PathLike]) -> Iterator[Path]:
    """Expand files/directories into a sorted stream of ``*.py`` files."""
    for entry in paths:
        path = Path(entry)
        if path.is_dir():
            yield from sorted(
                candidate
                for candidate in path.rglob("*.py")
                if "__pycache__" not in candidate.parts
            )
        else:
            yield path


def _syntax_diagnostic(filename: str, error: SyntaxError) -> Diagnostic:
    return Diagnostic(
        rule="S400",
        name="syntax-error",
        severity=Severity.ERROR,
        message=f"cannot parse: {error.msg}",
        location=Location(file=filename, line=error.lineno or 1),
        hint=None,
    )


def lint_source_text(source: str, filename: str = "<string>") -> List[Diagnostic]:
    """Run every source rule over one module's text."""
    from repro.lint.rules_source import SOURCE_RULES

    try:
        tree = ast.parse(source, filename=filename)
    except SyntaxError as error:
        return [_syntax_diagnostic(filename, error)]
    diagnostics: List[Diagnostic] = []
    for rule in SOURCE_RULES:
        diagnostics.extend(rule.check(tree, filename))
    return sort_diagnostics(diagnostics)


def lint_file(path: PathLike) -> List[Diagnostic]:
    """Lint one Python file."""
    file_path = Path(path)
    return lint_source_text(
        file_path.read_text(encoding="utf-8"), filename=str(file_path)
    )


def lint_paths(paths: Iterable[PathLike]) -> List[Diagnostic]:
    """Lint every Python file under ``paths`` (files or directories)."""
    diagnostics: List[Diagnostic] = []
    for file_path in iter_python_files(paths):
        diagnostics.extend(lint_file(file_path))
    return sort_diagnostics(diagnostics)
