"""Static analysis for the ODRIPS reproduction: ``repro.lint``.

Two passes guard the two invariants the paper's hardware enforced
physically and the simulator only enforces by convention:

* the **model verifier** (:func:`lint_platform`) statically walks a
  constructed platform — power tree, clock sources, platform-state FSM
  and entry/exit flow specs — and reports wiring bugs (``M1xx``/``M2xx``/
  ``M3xx`` rules) before a single cycle is simulated;
* the **source checker** (:func:`lint_paths`) parses the library sources
  with the stdlib ``ast`` module and enforces the canonical-unit
  discipline of :mod:`repro.units` (``S4xx`` rules).

A third, narrow pass (:func:`lint_experiments`, rule ``M307``) checks
the experiment-driver registry: every driver must declare the golden
values the regression watchdog compares, so new experiments cannot
silently opt out of fidelity checking.

Run both from the shell with ``python -m repro lint`` (see docs/LINT.md
for the rule catalog), or call them directly::

    from repro.lint import lint_platform, lint_paths, render_text
    from repro.system.skylake import SkylakePlatform

    diagnostics = lint_platform(SkylakePlatform())
    print(render_text(diagnostics))
"""

from repro.lint.diagnostics import (
    EXIT_CLEAN,
    EXIT_DIAGNOSTICS,
    EXIT_USAGE,
    JSON_SCHEMA_VERSION,
    Diagnostic,
    Location,
    Severity,
    dedupe_diagnostics,
    exit_code,
    filter_diagnostics,
    render_json,
    render_text,
    sort_diagnostics,
    validate_rule_patterns,
)
from repro.lint.model import ModelView, lint_model_view, lint_platform, walk_model
from repro.lint.rules_experiments import M307_NAME, M307_RULE, lint_experiments
from repro.lint.source import lint_file, lint_paths, lint_source_text


def all_rules():
    """Every known rule as ``(rule_id, name)`` pairs, catalog order.

    This is the single registry: the ``M``/``S`` series of the lint
    passes, the pragma-hygiene rule (S407), and the ``C`` series of the
    exhaustive model checker (:mod:`repro.check`).  Both ``repro lint``
    and ``repro check`` validate ``--select``/``--ignore`` patterns
    against it, and the gate tests assert the ids are unique.
    """
    from repro.check.rules import CHECK_RULES
    from repro.lint.rules_model import MODEL_RULES
    from repro.lint.rules_source import SOURCE_RULES
    from repro.lint.source import S407_NAME, S407_RULE

    pairs = [(rule.rule_id, rule.name) for rule in MODEL_RULES]
    pairs.append((M307_RULE, M307_NAME))
    pairs.extend((rule.rule_id, rule.name) for rule in SOURCE_RULES)
    pairs.append((S407_RULE, S407_NAME))
    pairs.extend((rule.rule_id, rule.name) for rule in CHECK_RULES)
    return pairs


def rule_catalog():
    """Every known rule with its full identity, catalog order.

    Each entry is a dict with ``rule_id``, ``name``, ``severity``
    (:class:`Severity`) and ``summary``.  This is the registry behind
    ``repro lint --explain RULE`` / ``repro check --explain RULE``; it
    covers the same rules as :func:`all_rules`, in the same order.
    """
    from repro.check.rules import CHECK_RULES
    from repro.lint.rules_model import MODEL_RULES
    from repro.lint.rules_source import SOURCE_RULES
    from repro.lint.source import S407_NAME, S407_RULE

    entries = [
        {
            "rule_id": rule.rule_id,
            "name": rule.name,
            "severity": rule.severity,
            "summary": rule.summary,
        }
        for rule in MODEL_RULES
    ]
    # M307 and S407 are standalone passes without a *Rule dataclass;
    # their identity lives here so the explain registry stays complete.
    entries.append(
        {
            "rule_id": M307_RULE,
            "name": M307_NAME,
            "severity": Severity.ERROR,
            "summary": "experiment driver declares no golden-value coverage",
        }
    )
    entries.extend(
        {
            "rule_id": rule.rule_id,
            "name": rule.name,
            "severity": rule.severity,
            "summary": rule.summary,
        }
        for rule in SOURCE_RULES
    )
    entries.append(
        {
            "rule_id": S407_RULE,
            "name": S407_NAME,
            "severity": Severity.WARNING,
            "summary": "allow pragma names a rule id that exists in no catalog",
        }
    )
    entries.extend(
        {
            "rule_id": rule.rule_id,
            "name": rule.name,
            "severity": rule.severity,
            "summary": rule.summary,
        }
        for rule in CHECK_RULES
    )
    return entries


__all__ = [
    "EXIT_CLEAN",
    "EXIT_DIAGNOSTICS",
    "EXIT_USAGE",
    "JSON_SCHEMA_VERSION",
    "Diagnostic",
    "Location",
    "ModelView",
    "Severity",
    "all_rules",
    "dedupe_diagnostics",
    "exit_code",
    "filter_diagnostics",
    "lint_experiments",
    "lint_file",
    "lint_model_view",
    "lint_paths",
    "lint_platform",
    "lint_source_text",
    "render_json",
    "render_text",
    "rule_catalog",
    "sort_diagnostics",
    "validate_rule_patterns",
    "walk_model",
]
