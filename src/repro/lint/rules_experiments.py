"""M307: every experiment driver must declare its golden values.

The regression watchdog (:mod:`repro.regress`) can only guard what the
drivers declare: a driver registered in
:data:`repro.core.experiments.EXPERIMENTS` without
:class:`~repro.core.experiments.GoldenValue` entries silently opts out
of fidelity checking, and a public driver function that never registered
at all is invisible to both the flight recorder and the watchdog.  M307
closes that gap statically:

* every public driver in :mod:`repro.core.experiments` whose name
  matches the paper-artifact patterns (``fig*``, ``sec*``, ``table*``)
  must be registered through ``@experiment_driver``;
* every registered driver must declare at least one golden value or an
  explicit ``golden_exempt`` reason;
* golden keys must be unique, drawn from the driver's ``metric_keys``,
  carry non-negative tolerances, and use a known comparison kind.
"""

from __future__ import annotations

import re
from typing import List

from repro.lint.diagnostics import Diagnostic, Location, Severity, sort_diagnostics

#: Rule identity (reported like the model rules; catalog in docs/LINT.md).
M307_RULE = "M307"
M307_NAME = "experiment-golden-coverage"

#: Public functions in core.experiments matching these are paper
#: artifacts and must be registered drivers.
_DRIVER_NAME = re.compile(r"^(fig|sec|table)")


def _diagnostic(message: str, obj: str, hint: str = "") -> Diagnostic:
    return Diagnostic(
        rule=M307_RULE,
        name=M307_NAME,
        severity=Severity.ERROR,
        message=message,
        location=Location(obj=obj),
        hint=hint or None,
    )


def lint_experiments() -> List[Diagnostic]:
    """Check the experiment registry's golden-value coverage (M307)."""
    from repro.core import experiments as experiments_module
    from repro.core.experiments import EXPERIMENTS, GOLDEN_KINDS

    diagnostics: List[Diagnostic] = []

    registered = {spec.runner for spec in EXPERIMENTS.values()}
    for name in dir(experiments_module):
        if name.startswith("_") or not _DRIVER_NAME.match(name):
            continue
        value = getattr(experiments_module, name)
        if not callable(value):
            continue
        if getattr(value, "__module__", None) != experiments_module.__name__:
            continue  # helper imported from another module, not a driver
        wrapped = getattr(value, "__wrapped__", None)
        if getattr(value, "spec", None) is None and wrapped not in registered:
            diagnostics.append(
                _diagnostic(
                    f"public driver {name!r} in core.experiments is not "
                    "registered with @experiment_driver, so its runs are "
                    "never recorded or fidelity-checked",
                    obj=f"experiment {name}",
                    hint="decorate it with @experiment_driver(...) declaring "
                         "metric_keys and goldens (or a golden_exempt reason)",
                )
            )

    for name, spec in sorted(EXPERIMENTS.items()):
        obj = f"experiment {name}"
        if not spec.goldens and not spec.golden_exempt:
            diagnostics.append(
                _diagnostic(
                    f"driver {name!r} declares no golden values and no "
                    "golden_exempt reason, silently opting out of the "
                    "regression watchdog",
                    obj=obj,
                    hint="declare GoldenValue entries for the paper's figures, "
                         "or set golden_exempt to say why none apply",
                )
            )
        if spec.goldens and spec.golden_exempt:
            diagnostics.append(
                _diagnostic(
                    f"driver {name!r} declares both golden values and a "
                    "golden_exempt reason; pick one",
                    obj=obj,
                )
            )
        seen = set()
        for golden in spec.goldens:
            if golden.key in seen:
                diagnostics.append(
                    _diagnostic(
                        f"driver {name!r} declares golden key {golden.key!r} "
                        "more than once",
                        obj=obj,
                    )
                )
            seen.add(golden.key)
            if golden.key not in spec.metric_keys:
                diagnostics.append(
                    _diagnostic(
                        f"driver {name!r} golden key {golden.key!r} is not in "
                        "its metric_keys, so the watchdog can never find the "
                        "measured value",
                        obj=obj,
                        hint="add the key to metric_keys and emit it from the "
                             "metrics extractor",
                    )
                )
            if golden.tolerance < 0:
                diagnostics.append(
                    _diagnostic(
                        f"driver {name!r} golden {golden.key!r} has a negative "
                        f"tolerance ({golden.tolerance!r})",
                        obj=obj,
                    )
                )
            if golden.kind not in GOLDEN_KINDS:
                diagnostics.append(
                    _diagnostic(
                        f"driver {name!r} golden {golden.key!r} has unknown "
                        f"kind {golden.kind!r}; allowed: {', '.join(GOLDEN_KINDS)}",
                        obj=obj,
                    )
                )
    return sort_diagnostics(diagnostics)
