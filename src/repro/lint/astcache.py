"""One-parse-per-file AST cache shared by every static pass.

``python -m repro check`` runs two interprocedural passes (unit
dataflow and the effect analysis) and ``python -m repro lint`` runs the
source rules — all over the same files.  Parsing is the dominant host
cost of those passes, so the CLI builds one :class:`ModuleCache` and
hands the same :class:`ParsedModule` values to every pass: each source
file is read and parsed exactly once per invocation, however many
passes consume it (the check bench records the parse-count win).

A :class:`ParsedModule` also owns the module's effective pragma map
(:func:`repro.lint.source.allow_map_for`), computed lazily, so the
suppression semantics stay identical across passes by construction.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Set, Union

PathLike = Union[str, os.PathLike]


def default_source_root() -> Path:
    """The installed ``repro`` package directory (what the CLI checks)."""
    import repro

    return Path(repro.__file__).resolve().parent


def iter_python_files(paths: Iterable[PathLike]) -> Iterator[Path]:
    """Expand files/directories into a sorted stream of ``*.py`` files."""
    for entry in paths:
        path = Path(entry)
        if path.is_dir():
            yield from sorted(
                candidate
                for candidate in path.rglob("*.py")
                if "__pycache__" not in candidate.parts
            )
        else:
            yield path


@dataclass(eq=False)
class ParsedModule:
    """One source file, parsed once and shared between passes."""

    filename: str
    source: str
    #: ``None`` when the source does not parse (see :attr:`syntax_error`).
    tree: Optional[ast.Module]
    syntax_error: Optional[SyntaxError] = None
    _allows: Optional[Dict[int, Set[str]]] = field(default=None, repr=False)

    @property
    def allows(self) -> Dict[int, Set[str]]:
        """Effective line -> allowed-rule-ids pragma map (lazy, cached)."""
        if self._allows is None:
            if self.tree is None:
                self._allows = {}
            else:
                from repro.lint.source import allow_map_for

                self._allows = allow_map_for(self.source, self.tree)
        return self._allows


class ModuleCache:
    """Parse each source file once; hand the same tree to every pass.

    Keyed by filename; re-adding the same filename with different text
    (tests synthesizing modules) re-parses and replaces the entry.
    :attr:`parse_count` counts actual ``ast.parse`` calls, so the bench
    suite can assert the sharing holds (N files -> N parses, however
    many passes run).
    """

    def __init__(self) -> None:
        self._modules: Dict[str, ParsedModule] = {}
        self.parse_count = 0

    def __len__(self) -> int:
        return len(self._modules)

    def module_for_source(self, source: str, filename: str) -> ParsedModule:
        """The parsed module for ``source``, parsing at most once."""
        cached = self._modules.get(filename)
        if cached is not None and cached.source == source:
            return cached
        self.parse_count += 1
        try:
            tree: Optional[ast.Module] = ast.parse(source, filename=filename)
            error: Optional[SyntaxError] = None
        except SyntaxError as exc:
            tree, error = None, exc
        module = ParsedModule(filename=filename, source=source,
                              tree=tree, syntax_error=error)
        self._modules[filename] = module
        return module

    def module_for_path(self, path: PathLike) -> ParsedModule:
        """Read and parse one file, memoized by its path."""
        file_path = Path(path)
        filename = str(file_path)
        cached = self._modules.get(filename)
        if cached is not None:
            return cached
        return self.module_for_source(
            file_path.read_text(encoding="utf-8"), filename
        )

    def modules_for_paths(self, paths: Iterable[PathLike]) -> List[ParsedModule]:
        """Parsed modules for every ``*.py`` file under ``paths``, sorted."""
        return [self.module_for_path(path) for path in iter_python_files(paths)]
