"""Static model verifier: walks a constructed platform before it runs.

The paper's hardware enforced the power/clock/FSM wiring physically; the
simulator only enforces it by convention, so a mis-wired model produces
plausible-but-wrong energy numbers.  :func:`lint_platform` takes a built
platform (for example ``SkylakePlatform()``), extracts a
:class:`ModelView` — every rail, domain, component, gate, crystal and
derived clock reachable from the platform object, plus the declared
platform-state FSM and entry/exit flow specs — and runs the rule catalog
of :mod:`repro.lint.rules_model` over it.

The walk is attribute-based: it recurses through ``__dict__``, lists,
tuples and dict values of the platform object graph, classifying what it
finds by type.  That means anything the platform holds a reference to is
checked, including objects a builder forgot to register with the
:class:`~repro.power.tree.PowerTree` — which is exactly the class of bug
the orphan rules exist for.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from repro.clocks.clock import DerivedClock, GateableClock
from repro.clocks.crystal import CrystalOscillator
from repro.clocks.tree import ClockBuffer
from repro.effects import declares_effects
from repro.lint.diagnostics import Diagnostic, sort_diagnostics
from repro.power.domain import Component, PowerDomain, Rail
from repro.power.gates import PowerGate
from repro.power.tree import PowerTree

#: Recursion depth limit of the object-graph walk; the deepest real chain
#: (platform -> board -> device -> component) is well inside this.
_MAX_WALK_DEPTH = 8


@dataclass(frozen=True)
class FSMView:
    """Declared platform-state machine, as the verifier sees it.

    ``transitions`` maps each state to the states it may move to;
    ``wake_receptive`` maps the states that must handle wake events to
    the event types they declare handling for; ``wake_event_types`` is
    the full universe of wake-event types the platform can observe.
    """

    states: Tuple[Any, ...]
    initial: Any
    active: Any
    transitions: Dict[Any, Tuple[Any, ...]]
    wake_receptive: Dict[Any, frozenset]
    wake_event_types: Tuple[Any, ...]


@dataclass(frozen=True)
class FlowView:
    """One declared flow: an ordered list of step specs.

    Each step is a :class:`~repro.system.flows.FlowStepSpec`-like object
    with ``label``, ``requires``, ``gates_off`` and ``gates_on`` domain
    name tuples.
    """

    name: str
    steps: Tuple[Any, ...]


@dataclass
class ModelView:
    """Everything the model rules inspect, decoupled from the builder."""

    tree: Optional[PowerTree] = None
    rails: List[Rail] = field(default_factory=list)
    domains: List[PowerDomain] = field(default_factory=list)
    components: List[Component] = field(default_factory=list)
    gates: List[PowerGate] = field(default_factory=list)
    crystals: List[CrystalOscillator] = field(default_factory=list)
    clocks: List[DerivedClock] = field(default_factory=list)
    gateable_clocks: List[GateableClock] = field(default_factory=list)
    buffers: List[ClockBuffer] = field(default_factory=list)
    fsm: Optional[FSMView] = None
    flows: List[FlowView] = field(default_factory=list)
    #: Declared flow-step span labels (flow name -> ordered label tuple),
    #: from the platform's ``observability_description()`` hook.  None
    #: means the model is uninstrumented (no ``obs`` seam at all); an
    #: empty dict means the platform is instrumented but declared nothing,
    #: which the span-discipline rule flags.
    obs_spans: Optional[Dict[str, Tuple[str, ...]]] = None
    #: Declared (domain, clock) couplings from ``safety_description()``:
    #: the clock each live domain depends on.  Consumed by the exhaustive
    #: model checker (:mod:`repro.check`), not by the lint rules.
    clock_requirements: Tuple[Tuple[str, str], ...] = ()
    #: Domains declared able to field a wake event while the platform
    #: idles (``safety_description()`` hook).
    wake_sources: Tuple[str, ...] = ()
    #: Rails the macro-stepping executor declares it replays energy for
    #: (``macro_description()`` hook).  None means the platform does not
    #: support macro-stepping and owes no declaration; a tuple is checked
    #: for full coverage of the live power tree by rule M308.
    macro_ledger_rails: Optional[Tuple[str, ...]] = None
    #: Declared quantitative budgets (``budget_description()`` hook):
    #: wake-latency budgets, residency guarantees and tolerances per deep
    #: power state, plus the chipset/power sub-declarations the
    #: priced-timed analysis (:mod:`repro.check.budgets`) consumes.  None
    #: means the platform declares no budgets; rule C604 then fires for
    #: every reachable deep state.
    budgets: Optional[Dict[str, Any]] = None

    # --- derived views used by several rules -----------------------------

    def tree_rails(self) -> List[Rail]:
        return list(self.tree.rails) if self.tree is not None else []

    def registered_domains(self) -> List[PowerDomain]:
        """Domains reachable through the power tree's rails."""
        return [domain for rail in self.tree_rails() for domain in rail.domains]

    def registered_domain_names(self) -> Set[str]:
        return {domain.name for domain in self.registered_domains()}


def _classify(obj: Any, view: ModelView, seen: Set[int]) -> None:
    """File ``obj`` under the matching ModelView bucket (at most one)."""
    if isinstance(obj, PowerTree) and view.tree is None:
        view.tree = obj
    elif isinstance(obj, Rail):
        view.rails.append(obj)
    elif isinstance(obj, PowerDomain):
        view.domains.append(obj)
    elif isinstance(obj, Component):
        view.components.append(obj)
    elif isinstance(obj, PowerGate):
        view.gates.append(obj)
    elif isinstance(obj, CrystalOscillator):
        view.crystals.append(obj)
    elif isinstance(obj, GateableClock):
        view.gateable_clocks.append(obj)
    elif isinstance(obj, DerivedClock):
        view.clocks.append(obj)
    elif isinstance(obj, ClockBuffer):
        view.buffers.append(obj)


def _children(obj: Any) -> Iterable[Any]:
    """Sub-objects worth walking into."""
    if isinstance(obj, dict):
        return list(obj.values())
    if isinstance(obj, (list, tuple, set, frozenset)):
        return list(obj)
    if hasattr(obj, "__dict__"):
        return list(vars(obj).values())
    return ()


def _walkable(obj: Any) -> bool:
    if obj is None or isinstance(obj, (str, bytes, bytearray, int, float, bool, complex)):
        return False
    return True


@declares_effects("identity")  # id() keys the visited set; buckets are sorted
def walk_model(root: Any) -> ModelView:
    """Collect a :class:`ModelView` from an arbitrary platform object."""
    view = ModelView()
    seen: Set[int] = set()
    stack: List[Tuple[Any, int]] = [(root, 0)]
    while stack:
        obj, depth = stack.pop()
        if not _walkable(obj) or id(obj) in seen or depth > _MAX_WALK_DEPTH:
            continue
        seen.add(id(obj))
        _classify(obj, view, seen)
        for child in _children(obj):
            stack.append((child, depth + 1))
    # Model objects the walk found only through containers still count;
    # order the buckets deterministically for stable diagnostics.
    view.rails.sort(key=lambda rail: rail.name)
    view.domains.sort(key=lambda domain: domain.name)
    view.components.sort(key=lambda component: component.name)
    view.gates.sort(key=lambda gate: gate.name)
    view.crystals.sort(key=lambda crystal: crystal.name)
    view.clocks.sort(key=lambda clock: clock.name)
    view.gateable_clocks.sort(key=lambda clock: clock.name)
    view.buffers.sort(key=lambda buffer: buffer.name)
    view.fsm = _fsm_view_of(root)
    view.flows = _flow_views_of(root)
    view.obs_spans = _obs_spans_of(root)
    view.clock_requirements, view.wake_sources = _safety_of(root)
    view.macro_ledger_rails = _macro_of(root)
    view.budgets = _budgets_of(root)
    return view


def _fsm_view_of(root: Any) -> Optional[FSMView]:
    """Read the platform's declared FSM through its introspection hook."""
    describe = getattr(root, "fsm_description", None)
    if describe is None:
        return None
    spec = describe()
    return FSMView(
        states=tuple(spec["states"]),
        initial=spec["initial"],
        active=spec["active"],
        transitions={state: tuple(targets) for state, targets in spec["transitions"].items()},
        wake_receptive={
            state: frozenset(types) for state, types in spec["wake_receptive"].items()
        },
        wake_event_types=tuple(spec["wake_event_types"]),
    )


def _flow_views_of(root: Any) -> List[FlowView]:
    describe = getattr(root, "flow_descriptions", None)
    if describe is None:
        return []
    return [FlowView(name=name, steps=tuple(steps)) for name, steps in describe().items()]


def _obs_spans_of(root: Any) -> Optional[Dict[str, Tuple[str, ...]]]:
    """Read the platform's declared flow-span labels (observability hook).

    Platforms without an ``obs`` attribute are uninstrumented models
    (e.g. bare test fixtures) and owe no declaration: they map to None.
    """
    describe = getattr(root, "observability_description", None)
    if describe is None:
        return {} if hasattr(root, "obs") else None
    spec = describe()
    return {
        name: tuple(labels)
        for name, labels in spec.get("flow_span_labels", {}).items()
    }


def _safety_of(root: Any) -> Tuple[Tuple[Tuple[str, str], ...], Tuple[str, ...]]:
    """Read the platform's declared safety couplings (repro.check hook)."""
    describe = getattr(root, "safety_description", None)
    if describe is None:
        return (), ()
    spec = describe()
    requirements = tuple(
        (str(domain), str(clock))
        for domain, clock in spec.get("clock_requirements", ())
    )
    return requirements, tuple(str(name) for name in spec.get("wake_sources", ()))


def _macro_of(root: Any) -> Optional[Tuple[str, ...]]:
    """Read the platform's declared macro ledger coverage (macro hook).

    Platforms without a ``macro_description`` hook do not participate in
    macro-stepping and map to None (rule M308 skips them).
    """
    describe = getattr(root, "macro_description", None)
    if describe is None:
        return None
    spec = describe()
    return tuple(str(name) for name in spec.get("ledger_rails", ()))


def _budgets_of(root: Any) -> Optional[Dict[str, Any]]:
    """Read the platform's declared quantitative budgets (budget hook).

    Platforms without a ``budget_description`` hook declare no budgets
    and map to None; the priced-timed analysis then reports C604 for
    every reachable deep power state.  The declaration is returned as-is
    (a plain dict tree): parsing and validation live with the consumer,
    :mod:`repro.check.budgets`, so a malformed declaration surfaces as a
    diagnostic rather than an exception inside the walk.
    """
    describe = getattr(root, "budget_description", None)
    if describe is None:
        return None
    spec = describe()
    return dict(spec) if isinstance(spec, dict) else {"malformed": spec}


def lint_model_view(view: ModelView) -> List[Diagnostic]:
    """Run every model rule over an already-extracted view."""
    from repro.lint.rules_model import MODEL_RULES

    diagnostics: List[Diagnostic] = []
    for rule in MODEL_RULES:
        diagnostics.extend(rule.check(view))
    return sort_diagnostics(diagnostics)


def lint_platform(platform: Any) -> List[Diagnostic]:
    """Extract a :class:`ModelView` from ``platform`` and verify it."""
    return lint_model_view(walk_model(platform))
