"""Rule catalog of the static model verifier.

Three rule families, mirroring the three graphs a platform model must
keep consistent (see docs/LINT.md for the full catalog with examples):

* ``M1xx`` — power tree: orphan components/domains, rails without
  regulators, ownership cycles, gates nothing can drive, negative power
  anomalies, duplicate component names.
* ``M2xx`` — clock tree: undriven clocks, frequencies the integer
  picosecond grid cannot realize, negative per-hertz power.
* ``M3xx`` — platform-state FSM and flows: unreachable states, states
  with no path back to Active, wake-event types left unhandled, flow
  steps referencing unknown or already-gated-off power domains.

Every rule is a pure function over a :class:`~repro.lint.model.ModelView`
yielding :class:`~repro.lint.diagnostics.Diagnostic` values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Set, Tuple

from repro.lint.diagnostics import Diagnostic, Location, Severity
from repro.lint.model import FlowView, ModelView
from repro.units import parts_per_million

#: Grid-rounding tolerance of M202: above this, the integer-picosecond
#: period visibly distorts the crystal's declared frequency.
FREQUENCY_GRID_TOLERANCE_PPM = 50.0


@dataclass(frozen=True)
class ModelRule:
    """One verifier rule: identity plus its check function."""

    rule_id: str
    name: str
    severity: Severity
    summary: str
    check_fn: Callable[["ModelRule", ModelView], Iterator[Diagnostic]]

    def check(self, view: ModelView) -> Iterator[Diagnostic]:
        return self.check_fn(self, view)

    def diagnostic(self, message: str, obj: str, hint: str = "") -> Diagnostic:
        return Diagnostic(
            rule=self.rule_id,
            name=self.name,
            severity=self.severity,
            message=message,
            location=Location(obj=obj),
            hint=hint or None,
        )


# --- M1xx: power tree --------------------------------------------------------


def _check_orphan_component(rule: ModelRule, view: ModelView) -> Iterator[Diagnostic]:
    for component in view.components:
        domain = component.domain
        if domain is None:
            yield rule.diagnostic(
                f"component {component.name!r} is not attached to any power domain, "
                "so its power is invisible to the platform total",
                obj=f"component {component.name}",
                hint="attach it with PowerDomain.add()/new_component()",
            )
        elif not any(owned is component for owned in domain.components):
            yield rule.diagnostic(
                f"component {component.name!r} points at domain {domain.name!r} "
                "but the domain does not list it (cross-wired attach)",
                obj=f"component {component.name}",
                hint="always attach through PowerDomain.add(); never set _domain directly",
            )
        # a consistent component inside an unregistered domain is the
        # domain's problem: M102 flags it once, without per-component noise


def _check_orphan_domain(rule: ModelRule, view: ModelView) -> Iterator[Diagnostic]:
    if view.tree is None:
        return
    registered = {id(domain) for domain in view.registered_domains()}
    for domain in view.domains:
        if id(domain) not in registered:
            yield rule.diagnostic(
                f"power domain {domain.name!r} is not owned by any rail of the power "
                "tree; its components draw no battery-side power",
                obj=f"domain {domain.name}",
                hint="create domains with Rail.new_domain() or register via Rail.add_domain()",
            )


def _check_rail_regulator(rule: ModelRule, view: ModelView) -> Iterator[Diagnostic]:
    for rail in view.rails:
        if getattr(rail, "regulator", None) is None:
            yield rule.diagnostic(
                f"rail {rail.name!r} has no regulator; battery-side power of its load "
                "is undefined",
                obj=f"rail {rail.name}",
                hint="construct rails through PowerTree.new_rail()",
            )


def _check_multiply_owned(rule: ModelRule, view: ModelView) -> Iterator[Diagnostic]:
    owners: Dict[int, List[str]] = {}
    names: Dict[int, str] = {}
    for rail in view.tree_rails():
        for domain in rail.domains:
            owners.setdefault(id(domain), []).append(rail.name)
            names[id(domain)] = domain.name
    for key, rail_names in owners.items():
        if len(rail_names) > 1:
            yield rule.diagnostic(
                f"power domain {names[key]!r} is owned by {len(rail_names)} rails "
                f"({', '.join(sorted(rail_names))}); its load is double-counted",
                obj=f"domain {names[key]}",
                hint="a domain must hang off exactly one rail",
            )


def _ownership_children(node: object) -> Tuple[object, ...]:
    for attr in ("rails", "domains", "components"):
        children = getattr(node, attr, None)
        if isinstance(children, (list, tuple)):
            return tuple(children)
    return ()


def _check_cycle(rule: ModelRule, view: ModelView) -> Iterator[Diagnostic]:
    if view.tree is None:
        return
    path: List[str] = []
    on_path: Set[int] = set()
    done: Set[int] = set()
    found: List[Tuple[str, ...]] = []

    def visit(node: object) -> None:
        key = id(node)
        if key in on_path:
            found.append(tuple(path + [getattr(node, "name", type(node).__name__)]))
            return
        if key in done:
            return
        on_path.add(key)
        path.append(getattr(node, "name", type(node).__name__))
        for child in _ownership_children(node):
            visit(child)
        path.pop()
        on_path.remove(key)
        done.add(key)

    visit(view.tree)
    for cycle in found:
        yield rule.diagnostic(
            f"ownership cycle in the power graph: {' -> '.join(cycle)}",
            obj=f"power tree ({cycle[-1]})",
            hint="the rail/domain/component graph must be a tree",
        )


def _check_undriveable_gate(rule: ModelRule, view: ModelView) -> Iterator[Diagnostic]:
    for gate in view.gates:
        if hasattr(gate, "control_gpio") and gate.control_gpio is None:
            yield rule.diagnostic(
                f"gate {gate.name!r} has no control GPIO bound; nothing in the model "
                "can ever drive it open or closed",
                obj=f"gate {gate.name}",
                hint="bind the driving pin with BoardFETGate.bind_gpio(chipset.fet_gpio)",
            )


def _check_negative_power(rule: ModelRule, view: ModelView) -> Iterator[Diagnostic]:
    for component in view.components:
        if component.leakage_watts < 0 or component.dynamic_watts < 0:
            yield rule.diagnostic(
                f"component {component.name!r} carries negative power "
                f"(leakage={component.leakage_watts!r} W, dynamic={component.dynamic_watts!r} W)",
                obj=f"component {component.name}",
            )
    for gate in view.gates:
        leak = getattr(gate, "leakage_fraction", 0.0)
        loss = getattr(gate, "conduction_loss_fraction", 0.0)
        if not 0.0 <= leak < 1.0 or loss < 0.0:
            yield rule.diagnostic(
                f"gate {gate.name!r} has an impossible loss model "
                f"(leakage_fraction={leak!r}, conduction_loss_fraction={loss!r})",
                obj=f"gate {gate.name}",
                hint="leakage_fraction must be in [0, 1); loss fractions must be >= 0",
            )
    for rail in view.rails:
        regulator = getattr(rail, "regulator", None)
        if regulator is not None and getattr(regulator, "quiescent_watts", 0.0) < 0:
            yield rule.diagnostic(
                f"regulator {regulator.name!r} has negative quiescent power "
                f"({regulator.quiescent_watts!r} W)",
                obj=f"rail {rail.name}",
            )
    for crystal in view.crystals:
        if crystal.power_watts < 0:
            yield rule.diagnostic(
                f"crystal {crystal.name!r} has negative power ({crystal.power_watts!r} W)",
                obj=f"crystal {crystal.name}",
            )


def _check_duplicate_names(rule: ModelRule, view: ModelView) -> Iterator[Diagnostic]:
    seen: Dict[str, int] = {}
    for domain in view.registered_domains():
        for component in domain.components:
            seen[component.name] = seen.get(component.name, 0) + 1
    for name, count in seen.items():
        if count > 1:
            yield rule.diagnostic(
                f"{count} components share the name {name!r}; the attributed power "
                "breakdown merges them into one indistinguishable entry",
                obj=f"component {name}",
                hint="give every component a unique dotted name",
            )


# --- M2xx: clock tree --------------------------------------------------------


def _check_undriven_clock(rule: ModelRule, view: ModelView) -> Iterator[Diagnostic]:
    crystal_ids = {id(crystal) for crystal in view.crystals}
    clock_ids = {id(clock) for clock in view.clocks}
    for clock in view.clocks:
        source = getattr(clock, "source", None)
        if source is None or id(source) not in crystal_ids | clock_ids:
            yield rule.diagnostic(
                f"derived clock {clock.name!r} is not driven by any crystal of the "
                "platform (dangling source)",
                obj=f"clock {clock.name}",
                hint="derive clocks from a crystal the platform owns",
            )
    for clock in view.gateable_clocks:
        source = getattr(clock, "source", None)
        if source is None or id(source) not in clock_ids:
            yield rule.diagnostic(
                f"gateable clock {clock.name!r} is not fed by any derived clock of "
                "the platform",
                obj=f"clock {clock.name}",
            )
    for buffer in view.buffers:
        source = getattr(buffer, "source", None)
        if source is None or id(source) not in crystal_ids:
            yield rule.diagnostic(
                f"clock buffer {buffer.name!r} is not fed by any crystal of the platform",
                obj=f"clkbuf {buffer.name}",
            )


def _check_frequency_grid(rule: ModelRule, view: ModelView) -> Iterator[Diagnostic]:
    for crystal in view.crystals:
        intended_hz = parts_per_million(crystal.nominal_hz, crystal.ppm_error)
        error_ppm = abs(crystal.effective_hz - intended_hz) / intended_hz * 1e6
        if error_ppm > FREQUENCY_GRID_TOLERANCE_PPM:
            yield rule.diagnostic(
                f"crystal {crystal.name!r}: the integer-picosecond grid distorts its "
                f"frequency by {error_ppm:.1f} ppm "
                f"(declared {intended_hz:.0f} Hz, realizable {crystal.effective_hz:.0f} Hz)",
                obj=f"crystal {crystal.name}",
                hint="frequencies above ~100 MHz need a sub-picosecond time base",
            )
    for clock in view.clocks:
        if getattr(clock, "divider", 1) < 1 or clock.period_ps <= 0:
            yield rule.diagnostic(
                f"derived clock {clock.name!r} cannot produce its declared frequency "
                f"(divider={getattr(clock, 'divider', None)!r}, period={clock.period_ps!r} ps)",
                obj=f"clock {clock.name}",
            )


def _check_clock_power(rule: ModelRule, view: ModelView) -> Iterator[Diagnostic]:
    for buffer in view.buffers:
        if buffer.watts_per_hz < 0 or buffer.static_watts < 0:
            yield rule.diagnostic(
                f"clock buffer {buffer.name!r} has negative power coefficients "
                f"(watts_per_hz={buffer.watts_per_hz!r}, static={buffer.static_watts!r} W)",
                obj=f"clkbuf {buffer.name}",
            )
    for clock in view.gateable_clocks:
        if clock.watts_per_hz < 0:
            yield rule.diagnostic(
                f"gateable clock {clock.name!r} has a negative power coefficient "
                f"(watts_per_hz={clock.watts_per_hz!r})",
                obj=f"clock {clock.name}",
            )


# --- M3xx: FSM and flows -----------------------------------------------------


def _reachable(start: object, transitions: Dict[object, Tuple[object, ...]]) -> Set[object]:
    seen = {start}
    frontier = [start]
    while frontier:
        state = frontier.pop()
        for target in transitions.get(state, ()):
            if target not in seen:
                seen.add(target)
                frontier.append(target)
    return seen


def _state_name(state: object) -> str:
    return getattr(state, "name", str(state))


def _check_unreachable_state(rule: ModelRule, view: ModelView) -> Iterator[Diagnostic]:
    fsm = view.fsm
    if fsm is None:
        return
    reachable = _reachable(fsm.initial, fsm.transitions)
    for state in fsm.states:
        if state not in reachable:
            yield rule.diagnostic(
                f"platform state {_state_name(state)} is unreachable from "
                f"{_state_name(fsm.initial)}",
                obj=f"fsm state {_state_name(state)}",
                hint="add the missing transition or delete the dead state",
            )


def _check_no_exit_path(rule: ModelRule, view: ModelView) -> Iterator[Diagnostic]:
    fsm = view.fsm
    if fsm is None:
        return
    reachable_from_initial = _reachable(fsm.initial, fsm.transitions)
    for state in fsm.states:
        if state not in reachable_from_initial or state is fsm.active:
            continue
        if fsm.active not in _reachable(state, fsm.transitions):
            yield rule.diagnostic(
                f"platform state {_state_name(state)} has no path back to "
                f"{_state_name(fsm.active)}; the platform would idle forever",
                obj=f"fsm state {_state_name(state)}",
                hint="every idle/transition state needs an exit flow to Active",
            )


def _check_unhandled_wake(rule: ModelRule, view: ModelView) -> Iterator[Diagnostic]:
    fsm = view.fsm
    if fsm is None:
        return
    for state, handled in fsm.wake_receptive.items():
        missing = [t for t in fsm.wake_event_types if t not in handled]
        if missing:
            names = ", ".join(sorted(_state_name(t) for t in missing))
            yield rule.diagnostic(
                f"state {_state_name(state)} declares wake handling but does not "
                f"handle wake event type(s): {names}",
                obj=f"fsm state {_state_name(state)}",
                hint="an unhandled wake type is a lost wake: the platform never exits idle",
            )


def _flow_domain_names(flow: FlowView) -> Iterator[Tuple[object, str]]:
    for step in flow.steps:
        for attr in ("requires", "gates_off", "gates_on"):
            for name in getattr(step, attr, ()):
                yield step, name


def _check_flow_unknown_domain(rule: ModelRule, view: ModelView) -> Iterator[Diagnostic]:
    if view.tree is None:
        return
    known = view.registered_domain_names()
    for flow in view.flows:
        for step, name in _flow_domain_names(flow):
            if name not in known:
                yield rule.diagnostic(
                    f"flow {flow.name!r} step {step.label!r} references power domain "
                    f"{name!r}, which does not exist in the power tree",
                    obj=f"flow {flow.name}:{step.label}",
                    hint="flow specs must name real domains; check for renames",
                )


def _check_flow_span_discipline(rule: ModelRule, view: ModelView) -> Iterator[Diagnostic]:
    """Every instrumented flow step must open and close exactly one span.

    The flow controller tiles a flow with step spans keyed by the
    ``_step`` labels; the platform declares that tiling through
    ``observability_description()``.  A declaration missing a step (or
    naming one the flow never reaches) means an instrumented span is
    opened without ever being closed — a leak the exporters would carry
    forever — so the declared labels must match the declared flow steps
    exactly, in order, with no duplicates.
    """
    if not view.flows:
        return
    declared = view.obs_spans
    if declared is None:
        return  # uninstrumented model: no span contract to verify
    if not declared:
        yield rule.diagnostic(
            "instrumented platform declares entry/exit flows but no observability "
            "description; its flow-step spans cannot be verified against the flow specs",
            obj="platform",
            hint="implement observability_description() returning 'flow_span_labels'",
        )
        return
    for flow in view.flows:
        labels = declared.get(flow.name)
        step_labels = tuple(step.label for step in flow.steps)
        if labels is None:
            yield rule.diagnostic(
                f"flow {flow.name!r} declares no span labels; its instrumented "
                "steps would open spans no declaration accounts for",
                obj=f"flow {flow.name}",
                hint="add the flow to the platform's flow_span_labels declaration",
            )
            continue
        duplicates = sorted({label for label in labels if labels.count(label) > 1})
        for label in duplicates:
            yield rule.diagnostic(
                f"flow {flow.name!r} declares span label {label!r} more than once; "
                "a repeated label would close the wrong step's span",
                obj=f"flow {flow.name}:{label}",
            )
        if labels != step_labels:
            yield rule.diagnostic(
                f"flow {flow.name!r} span labels do not match its declared steps "
                f"(spans {list(labels)!r} vs steps {list(step_labels)!r}); a "
                "mismatched step opens a span that is never closed",
                obj=f"flow {flow.name}",
                hint="every instrumented flow step must open and close its own span",
            )


def _check_flow_gated_domain(rule: ModelRule, view: ModelView) -> Iterator[Diagnostic]:
    for flow in view.flows:
        gated: Dict[str, str] = {}  # domain name -> label of the step that gated it
        for step in flow.steps:
            for name in getattr(step, "requires", ()):
                if name in gated:
                    yield rule.diagnostic(
                        f"flow {flow.name!r} step {step.label!r} requires power domain "
                        f"{name!r}, but step {gated[name]!r} already gated it off",
                        obj=f"flow {flow.name}:{step.label}",
                        hint="reorder the flow or re-enable the domain first",
                    )
            for name in getattr(step, "gates_off", ()):
                gated.setdefault(name, step.label)
            for name in getattr(step, "gates_on", ()):
                gated.pop(name, None)


def _check_macro_ledger_coverage(rule: ModelRule, view: ModelView) -> Iterator[Diagnostic]:
    declared = view.macro_ledger_rails
    if declared is None:
        return  # platform does not support macro-stepping; nothing to cover
    declared_set = set(declared)
    live = {rail.name for rail in view.tree_rails()}
    for name in sorted(live - declared_set):
        yield rule.diagnostic(
            f"rail {name!r} exists in the power tree but is missing from the "
            "macro ledger declaration, so a compiled standby cycle would drop "
            "its energy from the per-segment ledger balance",
            obj=f"rail {name}",
            hint="add it to the ledger_rails of macro_description()",
        )
    for name in sorted(declared_set - live):
        yield rule.diagnostic(
            f"macro ledger declares rail {name!r} but no such rail exists in "
            "the power tree (stale declaration)",
            obj=f"rail {name}",
            hint="remove it from the ledger_rails of macro_description()",
        )


def _rule(
    rule_id: str,
    name: str,
    summary: str,
    check_fn: Callable[[ModelRule, ModelView], Iterator[Diagnostic]],
    severity: Severity = Severity.ERROR,
) -> ModelRule:
    return ModelRule(rule_id, name, severity, summary, check_fn)


#: The model-verifier rule catalog, in catalog order.
MODEL_RULES: Tuple[ModelRule, ...] = (
    _rule("M101", "orphan-component", "component not attached to a powered domain",
          _check_orphan_component),
    _rule("M102", "domain-without-rail", "power domain not owned by any rail",
          _check_orphan_domain),
    _rule("M103", "rail-missing-regulator", "rail with no regulator",
          _check_rail_regulator),
    _rule("M104", "domain-multiply-owned", "domain owned by more than one rail",
          _check_multiply_owned),
    _rule("M105", "power-graph-cycle", "ownership cycle in the power graph",
          _check_cycle),
    _rule("M106", "undriveable-gate", "power gate with no bound driver",
          _check_undriveable_gate),
    _rule("M107", "negative-power", "negative power or impossible loss model",
          _check_negative_power),
    _rule("M108", "duplicate-component-name", "two components share a breakdown name",
          _check_duplicate_names),
    _rule("M201", "undriven-clock", "clock with no crystal driving it",
          _check_undriven_clock),
    _rule("M202", "unrealizable-frequency", "picosecond grid cannot express the frequency",
          _check_frequency_grid),
    _rule("M203", "negative-clock-power", "negative clock power coefficient",
          _check_clock_power),
    _rule("M301", "unreachable-state", "FSM state unreachable from the initial state",
          _check_unreachable_state),
    _rule("M302", "no-exit-path", "FSM state with no path back to Active",
          _check_no_exit_path),
    _rule("M303", "unhandled-wake", "wake event type unhandled in a receptive state",
          _check_unhandled_wake),
    _rule("M304", "flow-unknown-domain", "flow step references a non-existent domain",
          _check_flow_unknown_domain),
    _rule("M305", "flow-gated-domain", "flow step requires a domain gated off earlier",
          _check_flow_gated_domain),
    _rule("M306", "flow-span-discipline", "instrumented flow step must open and close its span",
          _check_flow_span_discipline),
    _rule("M308", "macro-ledger-coverage", "macro ledger declaration must cover every powered rail",
          _check_macro_ledger_coverage),
)
