"""Rule catalog of the AST unit-discipline checker (``S4xx``).

The canonical units of :mod:`repro.units` — integer picoseconds for
simulated time, float watts for power — only hold if every assignment
and call site respects them.  These rules encode the discipline:

* ``S401 wallclock-in-sim`` — ``time.time()`` / ``datetime.now()`` and
  friends inside simulation code (simulated time comes from the kernel).
* ``S402 float-into-ps`` — a float-producing expression (float literal
  or true division) flowing into a ``*_ps`` variable or keyword argument
  without an ``int()``/``round()`` sanitizer.
* ``S403 float-eq-power`` — ``==``/``!=`` on power/energy values
  (``*_watts``, ``*_w``, ``*_joules``, ...); float equality on measured
  quantities is a latent bug.
* ``S404 mutable-default-arg`` — list/dict/set default arguments.
* ``S405 unit-suffix`` — public signatures using non-canonical unit
  suffixes (``_ms``, ``_us``, ``_mw``, ...) instead of ``_ps``/``_s``/
  ``_watts``.
* ``S406 ps-annotation`` — ``*_ps`` parameters or returns annotated
  ``float`` (and ``*_watts`` annotated ``int``).
* ``S408 exact-histogram-in-hot-path`` — ``.histogram(...)`` calls
  without ``bounded=True`` inside the per-cycle hot paths (flows, macro
  engine, sweep, standby runner): the exact
  :class:`~repro.obs.metrics.Histogram` keeps every sample, which is
  unbounded memory over week-scale macro horizons.

Every rule is a pure function over a parsed module yielding
:class:`~repro.lint.diagnostics.Diagnostic` values.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, Optional, Tuple

from repro.lint.diagnostics import Diagnostic, Location, Severity

#: Calls that read the host's wall clock; simulation code must use
#: ``kernel.now`` instead.
_WALLCLOCK_TIME_ATTRS = frozenset(
    {"time", "time_ns", "monotonic", "monotonic_ns", "perf_counter", "perf_counter_ns"}
)
_WALLCLOCK_DATETIME_ATTRS = frozenset({"now", "utcnow", "today"})

#: Calls that make a float expression safe to store in a ``*_ps`` slot.
_PS_SANITIZERS = frozenset({"int", "round", "floor", "ceil", "len"})

#: Name suffixes that denote power/energy floats (S403).
_POWER_SUFFIXES = ("_watts", "_w", "_joules", "_wh", "_mw", "_uw", "_power")

#: Discouraged unit suffixes in public signatures (S405) and the
#: canonical spelling to use instead.
_DISCOURAGED_SUFFIXES: Dict[str, str] = {
    "_ms": "_ps (integer picoseconds) or _s (float seconds)",
    "_us": "_ps (integer picoseconds) or _s (float seconds)",
    "_ns": "_ps (integer picoseconds)",
    "_msec": "_ps (integer picoseconds) or _s (float seconds)",
    "_usec": "_ps (integer picoseconds) or _s (float seconds)",
    "_sec": "_s or _seconds",
    "_secs": "_s or _seconds",
    "_mw": "_watts (float watts)",
    "_uw": "_watts (float watts)",
    "_mj": "_joules (float joules)",
    "_uj": "_joules (float joules)",
}


@dataclass(frozen=True)
class SourceRule:
    """One source-checker rule: identity plus its check function."""

    rule_id: str
    name: str
    severity: Severity
    summary: str
    check_fn: Callable[["SourceRule", ast.Module, str], Iterator[Diagnostic]]

    def check(self, tree: ast.Module, filename: str) -> Iterator[Diagnostic]:
        return self.check_fn(self, tree, filename)

    def diagnostic(
        self, message: str, filename: str, line: int, hint: str = ""
    ) -> Diagnostic:
        return Diagnostic(
            rule=self.rule_id,
            name=self.name,
            severity=self.severity,
            message=message,
            location=Location(file=filename, line=line),
            hint=hint or None,
        )


# --- helpers -----------------------------------------------------------------


def _terminal_name(node: ast.expr) -> Optional[str]:
    """The identifier a Name/Attribute expression ends in, if any."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _call_name(node: ast.Call) -> Optional[str]:
    return _terminal_name(node.func)


def _module_aliases(tree: ast.Module) -> Dict[str, str]:
    """Map local alias -> imported module name for plain imports."""
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                aliases[item.asname or item.name.split(".")[0]] = item.name
        elif isinstance(node, ast.ImportFrom) and node.module:
            for item in node.names:
                aliases[item.asname or item.name] = f"{node.module}.{item.name}"
    return aliases


def _float_taint(node: ast.expr) -> Optional[ast.expr]:
    """First sub-expression that produces a float, outside any sanitizer.

    Flags float literals, true division and ``float()`` casts; a subtree
    rooted at ``int()``/``round()``/``floor()``/``ceil()`` is trusted.
    """
    if isinstance(node, ast.Call) and _call_name(node) in _PS_SANITIZERS:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        return node
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
        return node
    if isinstance(node, ast.Call) and _call_name(node) == "float":
        return node
    for child in ast.iter_child_nodes(node):
        if isinstance(child, ast.expr):
            taint = _float_taint(child)
            if taint is not None:
                return taint
    return None


# --- S401: wall-clock time in simulation code --------------------------------


def _check_wallclock(rule: SourceRule, tree: ast.Module, filename: str) -> Iterator[Diagnostic]:
    aliases = _module_aliases(tree)
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        offender = None
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            module = aliases.get(func.value.id, func.value.id)
            if module == "time" and func.attr in _WALLCLOCK_TIME_ATTRS:
                offender = f"time.{func.attr}()"
            elif module in ("datetime", "datetime.datetime") and (
                func.attr in _WALLCLOCK_DATETIME_ATTRS
            ):
                offender = f"datetime.{func.attr}()"
        elif isinstance(func, ast.Name):
            target = aliases.get(func.id)
            if target == "time.time" or (
                target in ("datetime.now", "datetime.utcnow") and func.id in aliases
            ):
                offender = f"{target}()"
        if offender is not None:
            yield rule.diagnostic(
                f"{offender} reads the host wall clock inside simulation code",
                filename,
                node.lineno,
                hint="simulated time is kernel.now (integer picoseconds)",
            )


# --- S402: float arithmetic flowing into *_ps --------------------------------


def _ps_targets(node: ast.stmt) -> Iterator[Tuple[str, ast.expr]]:
    """(target_name, value_expr) pairs where the target is a *_ps slot."""
    if isinstance(node, ast.Assign) and node.value is not None:
        for target in node.targets:
            name = _terminal_name(target)
            if name is not None and name.endswith("_ps"):
                yield name, node.value
    elif isinstance(node, ast.AnnAssign) and node.value is not None:
        name = _terminal_name(node.target)
        if name is not None and name.endswith("_ps"):
            yield name, node.value
    elif isinstance(node, ast.AugAssign):
        name = _terminal_name(node.target)
        if name is not None and name.endswith("_ps"):
            yield name, node.value


def _check_float_into_ps(rule: SourceRule, tree: ast.Module, filename: str) -> Iterator[Diagnostic]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            for name, value in _ps_targets(node):
                taint = _float_taint(value)
                if taint is not None:
                    yield rule.diagnostic(
                        f"float-producing expression assigned to {name!r}; simulated "
                        "time must be integer picoseconds",
                        filename,
                        taint.lineno,
                        hint="wrap the expression in round(...) or int(...)",
                    )
        elif isinstance(node, ast.Call):
            for keyword in node.keywords:
                if keyword.arg is not None and keyword.arg.endswith("_ps"):
                    taint = _float_taint(keyword.value)
                    if taint is not None:
                        yield rule.diagnostic(
                            f"float-producing expression passed to {keyword.arg!r}=; "
                            "simulated time must be integer picoseconds",
                            filename,
                            taint.lineno,
                            hint="wrap the expression in round(...) or int(...)",
                        )


# --- S403: float equality on power/energy ------------------------------------


def _is_power_name(node: ast.expr) -> bool:
    name = _terminal_name(node)
    return name is not None and name.endswith(_POWER_SUFFIXES)


def _check_float_eq_power(rule: SourceRule, tree: ast.Module, filename: str) -> Iterator[Diagnostic]:
    for node in ast.walk(tree):
        if not isinstance(node, ast.Compare):
            continue
        if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
            continue
        operands = [node.left, *node.comparators]
        offender = next((op for op in operands if _is_power_name(op)), None)
        if offender is not None:
            yield rule.diagnostic(
                f"exact float equality on power/energy value {_terminal_name(offender)!r}",
                filename,
                node.lineno,
                hint="compare with <=/>= against a threshold, or math.isclose()",
            )


# --- S404: mutable default arguments -----------------------------------------


def _check_mutable_default(rule: SourceRule, tree: ast.Module, filename: str) -> Iterator[Diagnostic]:
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        defaults = list(node.args.defaults) + [
            default for default in node.args.kw_defaults if default is not None
        ]
        for default in defaults:
            mutable = isinstance(default, (ast.List, ast.Dict, ast.Set)) or (
                isinstance(default, ast.Call)
                and _call_name(default) in ("list", "dict", "set")
            )
            if mutable:
                yield rule.diagnostic(
                    f"mutable default argument in {node.name}()",
                    filename,
                    default.lineno,
                    hint="default to None and create the container in the body",
                )


# --- S405 / S406: unit suffixes and annotations in public signatures ---------


def _public_functions(tree: ast.Module) -> Iterator[ast.FunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if not node.name.startswith("_"):
                yield node


def _signature_args(node: ast.FunctionDef) -> Iterator[ast.arg]:
    args = node.args
    for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
        if arg.arg in ("self", "cls"):
            continue
        yield arg


def _check_unit_suffix(rule: SourceRule, tree: ast.Module, filename: str) -> Iterator[Diagnostic]:
    for func in _public_functions(tree):
        for arg in _signature_args(func):
            for suffix, instead in _DISCOURAGED_SUFFIXES.items():
                if arg.arg.endswith(suffix):
                    yield rule.diagnostic(
                        f"parameter {arg.arg!r} of public function {func.name}() uses "
                        f"the non-canonical unit suffix {suffix!r}",
                        filename,
                        arg.lineno,
                        hint=f"use {instead}",
                    )
                    break


def _annotation_name(annotation: Optional[ast.expr]) -> Optional[str]:
    if annotation is None:
        return None
    return _terminal_name(annotation)


def _check_ps_annotation(rule: SourceRule, tree: ast.Module, filename: str) -> Iterator[Diagnostic]:
    for func in _public_functions(tree):
        for arg in _signature_args(func):
            annotated = _annotation_name(arg.annotation)
            if arg.arg.endswith("_ps") and annotated == "float":
                yield rule.diagnostic(
                    f"parameter {arg.arg!r} of {func.name}() is annotated float; "
                    "*_ps values are integer picoseconds",
                    filename,
                    arg.lineno,
                    hint="annotate as int (convert with units.seconds_to_ps)",
                )
            elif arg.arg.endswith(("_watts", "_joules")) and annotated == "int":
                yield rule.diagnostic(
                    f"parameter {arg.arg!r} of {func.name}() is annotated int; "
                    "power/energy values are floats",
                    filename,
                    arg.lineno,
                    hint="annotate as float",
                )
        returns = _annotation_name(func.returns)
        if func.name.endswith("_ps") and returns == "float":
            yield rule.diagnostic(
                f"function {func.name}() returns float; *_ps values are integer "
                "picoseconds",
                filename,
                func.lineno,
                hint="return int (round at the boundary)",
            )


# --- S408: exact histograms in per-cycle hot paths ----------------------------

#: Modules whose instrument calls run once per simulated cycle (or sweep
#: point): unbounded exact histograms there grow with the horizon.
_HOT_PATH_SUFFIXES = (
    "system/flows.py",
    "sim/macro.py",
    "analysis/sweep.py",
    "workloads/standby.py",
)


def _in_hot_path(filename: str) -> bool:
    normalized = filename.replace("\\", "/")
    return normalized.endswith(_HOT_PATH_SUFFIXES)


def _check_exact_histogram_hot_path(
    rule: SourceRule, tree: ast.Module, filename: str
) -> Iterator[Diagnostic]:
    if not _in_hot_path(filename):
        return
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        if not (isinstance(node.func, ast.Attribute) and node.func.attr == "histogram"):
            continue
        # TelemetryStream.histogram() is always bounded — exempt receivers
        # named after the stream seam (the convention the hot paths use)
        receiver = _terminal_name(node.func.value)
        if receiver in ("stream", "_stream"):
            continue
        bounded = next(
            (kw.value for kw in node.keywords if kw.arg == "bounded"), None
        )
        if isinstance(bounded, ast.Constant) and bounded.value is True:
            continue
        yield rule.diagnostic(
            "histogram created without bounded=True in a per-cycle hot path; "
            "exact histograms keep every sample (unbounded over week-scale "
            "macro horizons)",
            filename,
            node.lineno,
            hint="pass bounded=True (BoundedHistogram: log buckets, "
            "exact count/sum/min/max)",
        )


def _rule(
    rule_id: str,
    name: str,
    summary: str,
    check_fn: Callable[[SourceRule, ast.Module, str], Iterator[Diagnostic]],
    severity: Severity = Severity.ERROR,
) -> SourceRule:
    return SourceRule(rule_id, name, severity, summary, check_fn)


#: The source-checker rule catalog, in catalog order.
SOURCE_RULES: Tuple[SourceRule, ...] = (
    _rule("S401", "wallclock-in-sim", "host wall clock read in simulation code",
          _check_wallclock),
    _rule("S402", "float-into-ps", "float expression flowing into a *_ps slot",
          _check_float_into_ps),
    _rule("S403", "float-eq-power", "exact float equality on power/energy",
          _check_float_eq_power),
    _rule("S404", "mutable-default-arg", "mutable default argument",
          _check_mutable_default),
    _rule("S405", "unit-suffix", "non-canonical unit suffix in a public signature",
          _check_unit_suffix, severity=Severity.WARNING),
    _rule("S406", "ps-annotation", "unit-suffixed name with a contradicting annotation",
          _check_ps_annotation),
    # S407 (unknown lint pragma) lives in repro.lint.source next to the
    # pragma scanner it checks.
    _rule("S408", "exact-histogram-in-hot-path",
          "exact (unbounded) histogram created in a per-cycle hot path",
          _check_exact_histogram_hot_path, severity=Severity.WARNING),
)
