"""The memory-encryption engine (MEE) read/write pipeline.

Every access to the protected region goes through here (Fig. 4): writes
are encrypted and authenticated, reads are decrypted after the integrity
tree confirms both the MAC and the freshness of the version counter.

Latency model: the crypto pipeline adds a fixed per-block latency and the
tree walk adds real (modeled) DRAM metadata accesses — serialized, which
is pessimistic but shape-preserving.  The MEE cache shortcuts the walk on
hits, which is what the cache-size ablation measures.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.errors import SecurityError
from repro.sgx.cache import MEECache
from repro.sgx.crypto import CtrCipher, MacKey, derive_key
from repro.sgx.integrity_tree import BLOCK_SIZE, IntegrityTree, TreeGeometry


@dataclass
class MEEStats:
    """Cumulative traffic and timing statistics of the engine."""

    bytes_written: int = 0
    bytes_read: int = 0
    blocks_written: int = 0
    blocks_read: int = 0
    data_latency_ps: int = 0
    crypto_latency_ps: int = 0
    integrity_violations: int = 0

    def reset(self) -> None:
        self.bytes_written = 0
        self.bytes_read = 0
        self.blocks_written = 0
        self.blocks_read = 0
        self.data_latency_ps = 0
        self.crypto_latency_ps = 0
        self.integrity_violations = 0


class MemoryEncryptionEngine:
    """Encrypt/MAC/tree-walk pipeline over one protected region."""

    #: Crypto pipeline latency per 64-byte block (~25 ns: AES pipeline
    #: depth at memory-controller clock; same order as Gueron reports).
    CRYPTO_LATENCY_PS = 25_000

    #: Dynamic energy of the engine per byte processed (pJ/byte).
    CRYPTO_ENERGY_PJ_PER_BYTE = 5.0

    def __init__(
        self,
        device,
        geometry: TreeGeometry,
        master_key: bytes,
        cache: Optional[MEECache] = None,
    ) -> None:
        self.device = device
        self.geometry = geometry
        self.cache = cache if cache is not None else MEECache()
        self._cipher = CtrCipher(derive_key(master_key, "mee-encrypt"))
        self._mac = MacKey(derive_key(master_key, "mee-mac"))
        self.tree = IntegrityTree(geometry, device, self._mac, self.cache)
        self.stats = MEEStats()
        self._powered = True
        self._initialized = False

    # --- lifecycle ---------------------------------------------------------

    def initialize_region(self) -> None:
        """Zero the region and set up consistent metadata (once per region).

        Every data block is written as the version-0 ciphertext of a zero
        block, so a fresh region reads back as zeros through the engine —
        and the at-rest bytes are still keystream, never plaintext.
        """
        zero_block = bytes(BLOCK_SIZE)

        def initial_ciphertext(block: int) -> bytes:
            address = self.geometry.block_address(block)
            ciphertext = self._cipher.encrypt(address, 0, zero_block)
            self.device.write(address, ciphertext)
            return ciphertext

        self.tree.initialize(initial_ciphertext)
        self._initialized = True

    @property
    def powered(self) -> bool:
        return self._powered

    def power_off(self) -> bytes:
        """Power the engine down; returns the state that must survive.

        The root counter is the only mutable secret — it goes into the
        Boot SRAM as part of the ~1 KB on-chip residual context (Sec. 6.2).
        """
        self._powered = False
        self.cache.flush()
        return self.export_state()

    def power_on(self, state: bytes) -> None:
        """Restore the engine from its exported state."""
        self.import_state(state)
        self._powered = True

    def export_state(self) -> bytes:
        """Serialize the on-chip trusted state (root counter)."""
        return struct.pack(">QB", self.tree.root_counter, 1 if self._initialized else 0)

    def import_state(self, state: bytes) -> None:
        """Inverse of :meth:`export_state`."""
        if len(state) != 9:
            raise SecurityError("malformed MEE state blob")
        root, initialized = struct.unpack(">QB", state)
        self.tree.root_counter = root
        self._initialized = bool(initialized)

    def _check_ready(self) -> None:
        if not self._powered:
            raise SecurityError("MEE is powered off")
        if not self._initialized:
            raise SecurityError("protected region not initialized")

    # --- data path -------------------------------------------------------------

    @property
    def data_capacity(self) -> int:
        """Protected data bytes available behind the engine."""
        return self.geometry.data_blocks * BLOCK_SIZE

    def _check_bounds(self, offset: int, length: int) -> None:
        if offset < 0 or length < 0 or offset + length > self.data_capacity:
            raise SecurityError(
                f"protected access [{offset}, {offset + length}) outside "
                f"data capacity {self.data_capacity}"
            )

    def write(self, offset: int, data: bytes) -> int:
        """Encrypt-and-store ``data`` at region ``offset``; returns latency."""
        self._check_ready()
        self._check_bounds(offset, len(data))
        latency = 0
        position = 0
        while position < len(data):
            block = (offset + position) // BLOCK_SIZE
            block_offset = (offset + position) % BLOCK_SIZE
            chunk = min(len(data) - position, BLOCK_SIZE - block_offset)
            latency += self._write_block(
                block, block_offset, data[position : position + chunk]
            )
            position += chunk
        self.stats.bytes_written += len(data)
        return latency

    def _write_block(self, block: int, block_offset: int, chunk: bytes) -> int:
        latency = 0
        address = self.geometry.block_address(block)
        if len(chunk) == BLOCK_SIZE:
            plaintext = chunk
        else:
            # read-modify-write of a partial block (verified read first)
            old, read_latency = self._read_block(block)
            latency += read_latency
            merged = bytearray(old)
            merged[block_offset : block_offset + len(chunk)] = chunk
            plaintext = bytes(merged)
        version = self.tree.read_version(block) + 1
        ciphertext = self._cipher.encrypt(address, version, plaintext)
        before = self.tree.metadata_latency_ps
        latency += self.device.write(address, ciphertext)
        self.tree.update_block(block, version, ciphertext)
        latency += self.tree.metadata_latency_ps - before
        latency += self.CRYPTO_LATENCY_PS
        self.stats.crypto_latency_ps += self.CRYPTO_LATENCY_PS
        self.stats.blocks_written += 1
        return latency

    def read(self, offset: int, length: int) -> Tuple[bytes, int]:
        """Verify-and-decrypt ``length`` bytes; returns ``(data, latency)``."""
        self._check_ready()
        self._check_bounds(offset, length)
        out = bytearray()
        latency = 0
        position = 0
        while position < length:
            block = (offset + position) // BLOCK_SIZE
            block_offset = (offset + position) % BLOCK_SIZE
            chunk = min(length - position, BLOCK_SIZE - block_offset)
            plaintext, block_latency = self._read_block(block)
            latency += block_latency
            out.extend(plaintext[block_offset : block_offset + chunk])
            position += chunk
        self.stats.bytes_read += length
        return bytes(out), latency

    def _read_block(self, block: int) -> Tuple[bytes, int]:
        address = self.geometry.block_address(block)
        ciphertext, latency = self.device.read(address, BLOCK_SIZE)
        before = self.tree.metadata_latency_ps
        try:
            version = self.tree.verify_block(block, ciphertext)
        except SecurityError:
            self.stats.integrity_violations += 1
            raise
        latency += self.tree.metadata_latency_ps - before
        latency += self.CRYPTO_LATENCY_PS
        self.stats.crypto_latency_ps += self.CRYPTO_LATENCY_PS
        self.stats.blocks_read += 1
        plaintext = self._cipher.decrypt(address, version, ciphertext)
        return plaintext, latency

    # --- bulk (FSM) transfers ---------------------------------------------------------

    #: Pipeline fill/setup latency of a bulk FSM transfer: FSM start, DRAM
    #: DLL wake, crypto pipeline fill (~1 us, amortized over the stream).
    BULK_FILL_LATENCY_PS = 1_000_000

    LEAF_ENTRY_BYTES = 16   # version (8) + MAC (8)
    NODE_ENTRY_BYTES = 16   # counter (8) + MAC (8)

    def _bandwidth(self, write: bool) -> float:
        if hasattr(self.device, "bandwidth_bytes_per_s"):
            return self.device.bandwidth_bytes_per_s()
        if write:
            return self.device.write_bandwidth_bytes_per_s
        return self.device.read_bandwidth_bytes_per_s

    def _touched_geometry(self, offset: int, length: int) -> Tuple[int, int]:
        """(data blocks, interior tree nodes) a bulk access touches."""
        first_block = offset // BLOCK_SIZE
        last_block = (offset + max(length - 1, 0)) // BLOCK_SIZE
        blocks = last_block - first_block + 1
        nodes = 0
        lo, hi = first_block, last_block
        for _count in self.geometry.level_counts:
            lo //= 8
            hi //= 8
            nodes += hi - lo + 1
        return blocks, nodes

    def bulk_write(self, offset: int, data: bytes) -> int:
        """Write a large contiguous range the way the save FSM does.

        The functional path is identical to :meth:`write` (every block is
        really encrypted, MAC'd, and tree-updated), but the returned
        latency models the *pipelined* engine with a write-back metadata
        cache: data and metadata stream over the memory bus back-to-back
        instead of serializing a full tree walk per block.  This is the
        model behind the paper's ~18 us save of a 200 KB context to
        DDR3-1600 (Sec. 6.3).
        """
        self.write(offset, data)  # functional effect; serialized latency ignored
        blocks, nodes = self._touched_geometry(offset, len(data))
        # Per block: read the old version (8 B), write version + MAC (16 B).
        leaf_bytes = blocks * (8 + self.LEAF_ENTRY_BYTES)
        # Per interior node: read-modify-write of its counter + MAC.
        node_bytes = nodes * 2 * self.NODE_ENTRY_BYTES
        bus_bytes = len(data) + leaf_bytes + node_bytes
        streaming = bus_bytes / self._bandwidth(write=True) * 1e12
        return self.BULK_FILL_LATENCY_PS + round(streaming)

    def bulk_read(self, offset: int, length: int) -> Tuple[bytes, int]:
        """Read a large contiguous range the way the restore FSM does.

        Functional path identical to :meth:`read` (full verification);
        latency modeled as a pipelined stream: ciphertext plus one pass
        over the touched metadata (leaf entries and interior nodes are
        contiguous arrays, so they stream at full bandwidth).  This is the
        model behind the paper's ~13 us restore (Sec. 6.3).
        """
        data, _serialized = self.read(offset, length)
        blocks, nodes = self._touched_geometry(offset, length)
        leaf_bytes = blocks * self.LEAF_ENTRY_BYTES
        node_bytes = nodes * self.NODE_ENTRY_BYTES
        bus_bytes = length + leaf_bytes + node_bytes
        streaming = bus_bytes / self._bandwidth(write=False) * 1e12
        return data, self.BULK_FILL_LATENCY_PS + round(streaming)

    # --- accounting -----------------------------------------------------------------

    def crypto_energy_joules(self) -> float:
        """Dynamic energy the engine consumed on its crypto pipeline."""
        processed = self.stats.bytes_read + self.stats.bytes_written
        return processed * self.CRYPTO_ENERGY_PJ_PER_BYTE * 1e-12
