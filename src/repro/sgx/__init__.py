"""Functional model of an SGX-style memory encryption engine (MEE).

Sec. 6 stores the processor context in DRAM under SGX protection: the MEE
"encrypts the data for writes (or decrypts for reads) and carries out the
desired authentication", where "the authentication process involves
multiple accesses to the authentication tree metadata inside the DRAM"
mitigated by an internal "MEE cache" (Gueron's MEE, cited as [28]).

This package implements that functionally:

* :mod:`repro.sgx.crypto` — counter-mode encryption + MAC built on
  HMAC-SHA256 (stdlib only; a structural stand-in for AES-CTR + a Carter-
  Wegman MAC with the same interface and properties we need: determinism,
  key separation, tamper sensitivity).
* :class:`MEECache` — the on-chip metadata cache; a hit terminates the
  tree walk because on-chip copies are trusted.
* :class:`IntegrityTree` — an 8-ary version/counter tree with per-block
  MACs; the root counter lives on-chip, everything else really lives in
  the DRAM model so tampering tests can flip bits and watch verification
  fail.
* :class:`MemoryEncryptionEngine` — the read/write pipeline with latency
  and DRAM-traffic accounting.

This is defensive modeling: the attacks exercised in tests are detection
tests (tamper → :class:`~repro.errors.SecurityError`).
"""

from repro.sgx.crypto import CtrCipher, MacKey, derive_key
from repro.sgx.cache import MEECache
from repro.sgx.integrity_tree import IntegrityTree, TreeGeometry
from repro.sgx.mee import MEEStats, MemoryEncryptionEngine

__all__ = [
    "CtrCipher",
    "IntegrityTree",
    "MacKey",
    "MEECache",
    "MEEStats",
    "MemoryEncryptionEngine",
    "TreeGeometry",
    "derive_key",
]
